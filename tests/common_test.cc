#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/compression.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace lidi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("key k1");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key k1");
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusTest, ResultHoldsError) {
  Result<int> r = Status::Timeout("deadline");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout());
}

TEST(StatusTest, ResultMoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'e');
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Comparison) {
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(Slice("", 0)), 0xcbf29ce484222325ULL);
  // Deterministic and spread out.
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("voldemort"), Fnv1a64("voldemort"));
}

TEST(HashTest, Crc32MatchesKnownVector) {
  // The canonical CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32(Slice("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(Slice("", 0)), 0u);
}

TEST(HashTest, Crc32Incremental) {
  const uint32_t whole = Crc32(Slice("hello world"));
  uint32_t inc = Crc32(Slice("hello "));
  inc = Crc32Extend(inc, Slice("world"));
  EXPECT_EQ(inc, whole);
}

TEST(HashTest, Md5Rfc1321Vectors) {
  EXPECT_EQ(Md5Hex(Slice("", 0)), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5Hex(Slice("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5Hex(Slice("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(
      Md5Hex(Slice("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")),
      "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(HashTest, Md5LongInput) {
  // Exercises the multi-block and padding paths.
  std::string input(1000, 'x');
  EXPECT_EQ(Md5Hex(input).size(), 32u);
  EXPECT_EQ(Md5Hex(input), Md5Hex(input));
  std::string input2 = input;
  input2[999] = 'y';
  EXPECT_NE(Md5Hex(input), Md5Hex(input2));
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  ASSERT_EQ(buf.size(), 4u);
  Slice in(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xdeadbeefu);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice in(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodingTest, VarintRoundTripSweep) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 20,
                     1ULL << 35, ~0ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, ZigZagRoundTripSweep) {
  const int64_t values[] = {0,         1,         -1,       63, -64,
                            1LL << 40, -(1LL << 40), INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    std::string buf;
    PutZigZag64(&buf, v);
    Slice in(buf);
    int64_t got;
    ASSERT_TRUE(GetZigZag64(&in, &got)) << v;
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, ZigZagSmallMagnitudeIsShort) {
  // Zig-zag should encode small negative numbers in one byte.
  std::string buf;
  PutZigZag64(&buf, -1);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  PutLengthPrefixed(&buf, Slice(""));
  Slice in(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  EXPECT_EQ(a.ToString(), "payload");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, TruncatedInputsFail) {
  Slice in("\x01", 1);  // length prefix says 1 byte but nothing follows...
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  Slice trunc(buf.data(), buf.size() - 1);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&trunc, &out));
  uint32_t v32;
  Slice tiny("ab", 2);
  EXPECT_FALSE(GetFixed32(&tiny, &v32));
}

TEST(RandomTest, Deterministic) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RandomTest, BytesCompressible) {
  Random r(3);
  const std::string data = r.Bytes(4096);
  std::string compressed;
  ASSERT_TRUE(Compress(CompressionCodec::kDeflate, data, &compressed).ok());
  EXPECT_LT(compressed.size(), data.size());
}

TEST(ZipfTest, SkewConcentratesOnHeadRanks) {
  ZipfGenerator zipf(1000, 0.99, 11);
  int head = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With theta=0.99, top-10 of 1000 ranks should receive well over 25%.
  EXPECT_GT(head, kSamples / 4);
}

TEST(ZipfTest, CoversRangeAndDeterministic) {
  ZipfGenerator a(50, 0.5, 9), b(50, 0.5, 9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = a.Next();
    EXPECT_EQ(v, b.Next());
    EXPECT_LT(v, 50u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 30u);  // tail still gets sampled
}

// Regression for the out-of-domain tail draw: the old implementation
// materialized the full CDF and binary-searched it, and a uniform draw
// landing above the last floating-point CDF entry made std::lower_bound
// return end() — i.e. rank n, outside [0, n). Seed 5618432's first
// NextDouble() is 2.5e-8, which the rejection-inversion sampler maps to the
// far edge of the inversion domain (x ~ n + 0.5, k = n + 1 before the
// clamp), so every one of these draws exercises the boundary.
TEST(ZipfTest, TailDrawStaysInDomain) {
  const uint64_t kTailSeed = 5618432;
  for (const double theta : {0.0, 0.5, 0.9, 0.99, 1.0, 1.2}) {
    for (const uint64_t n : {1ull, 2ull, 50ull, 1000ull}) {
      ZipfGenerator zipf(n, theta, kTailSeed);
      for (int i = 0; i < 200; ++i) {
        EXPECT_LT(zipf.Next(), n) << "n=" << n << " theta=" << theta;
      }
    }
  }
  // Pin the boundary case itself: the first draw under the tail seed must
  // resolve to the last in-domain rank, not n.
  ZipfGenerator tail(1000, 0.99, kTailSeed);
  EXPECT_EQ(tail.Next(), 999u);
}

// The old CDF cost 8 bytes per rank (8 MB per million keys); a 2^30-rank
// generator would have allocated 8.6 GB and looped a billion pow() calls in
// the constructor. Rejection-inversion is O(1) setup and memory, so
// billion-key generators are free — this test fails (OOM or timeout)
// against the old implementation.
TEST(ZipfTest, BillionKeyGeneratorIsCheapAndInDomain) {
  ZipfGenerator zipf(1ull << 30, 0.99, 7);
  uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, zipf.n());
    max_seen = std::max(max_seen, v);
  }
  EXPECT_GT(max_seen, 1ull << 20);  // the deep tail is actually reachable
}

// The sampler must follow the exact Zipf pmf, not just "be skewed":
// empirical frequencies over 200K draws stay within a few relative percent
// of 1/(rank^theta * H_{n,theta}) for every rank of a small domain.
TEST(ZipfTest, MatchesExactZipfPmf) {
  const uint64_t kN = 20;
  const double kTheta = 0.9;
  ZipfGenerator zipf(kN, kTheta, 42);
  std::vector<int> counts(kN, 0);
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Next()]++;
  double harmonic = 0;
  for (uint64_t r = 1; r <= kN; ++r) harmonic += 1.0 / std::pow(r, kTheta);
  for (uint64_t r = 0; r < kN; ++r) {
    const double exact = (1.0 / std::pow(r + 1.0, kTheta)) / harmonic;
    const double emp = static_cast<double>(counts[r]) / kSamples;
    EXPECT_NEAR(emp, exact, 0.15 * exact + 0.002)
        << "rank " << r;
  }
}

TEST(CompressionTest, DeflateRoundTrip) {
  const std::string input = "the quick brown fox jumps over the lazy dog, "
                            "the quick brown fox jumps again and again";
  std::string compressed;
  ASSERT_TRUE(Compress(CompressionCodec::kDeflate, input, &compressed).ok());
  std::string output;
  ASSERT_TRUE(Decompress(CompressionCodec::kDeflate, compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CompressionTest, NoneCodecPassesThrough) {
  std::string out;
  ASSERT_TRUE(Compress(CompressionCodec::kNone, "abc", &out).ok());
  EXPECT_EQ(out, "abc");
  std::string back;
  ASSERT_TRUE(Decompress(CompressionCodec::kNone, out, &back).ok());
  EXPECT_EQ(back, "abc");
}

TEST(CompressionTest, EmptyInput) {
  std::string compressed, output;
  ASSERT_TRUE(Compress(CompressionCodec::kDeflate, Slice("", 0), &compressed).ok());
  ASSERT_TRUE(Decompress(CompressionCodec::kDeflate, compressed, &output).ok());
  EXPECT_TRUE(output.empty());
}

TEST(CompressionTest, CorruptInputRejected) {
  std::string output;
  Status s = Decompress(CompressionCodec::kDeflate, "not deflate data", &output);
  EXPECT_FALSE(s.ok());
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMillis(2);
  EXPECT_EQ(clock.NowMicros(), 3000);
  EXPECT_EQ(clock.NowMillis(), 3);
}

TEST(ClockTest, SystemClockMonotonic) {
  SystemClock* clock = SystemClock::Default();
  const int64_t a = clock->NowMicros();
  const int64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count++; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done = true;
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Average(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(h.Percentile(99), 99, 1.1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_EQ(h.count(), 100u);
}

TEST(HistogramTest, RecordAfterPercentileStillSorts) {
  Histogram h;
  h.Record(5);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5);
  h.Record(1);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1);
}

TEST(HistogramTest, EmptyHistogramReturnsZero) {
  // Regression: every accessor must return 0 on an empty histogram instead
  // of indexing into the empty sample vector.
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Average(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
  EXPECT_EQ(h.count(), 0u);
  // Clear returns a used histogram to the empty contract.
  h.Record(7);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
}

}  // namespace
}  // namespace lidi
