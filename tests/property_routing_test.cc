// Parameterized property tests for Voldemort routing: replica-placement
// invariants over a sweep of cluster shapes.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/address.h"
#include "common/random.h"
#include "voldemort/cluster.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"

namespace lidi::voldemort {
namespace {

struct RoutingParams {
  int nodes;
  int partitions;
  int zones;
  int replication;
  int required_zones;
};

class RoutingPropertyTest : public ::testing::TestWithParam<RoutingParams> {
 protected:
  Cluster MakeCluster() const {
    const RoutingParams& p = GetParam();
    std::vector<Node> nodes;
    for (int i = 0; i < p.nodes; ++i) {
      nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), i % p.zones});
    }
    return Cluster::Uniform(std::move(nodes), p.partitions);
  }

  std::unique_ptr<RouteStrategy> MakeRouting(const Cluster* cluster) const {
    const RoutingParams& p = GetParam();
    if (p.required_zones > 0) {
      return NewZoneAwareRoutingStrategy(cluster, p.replication,
                                         p.required_zones);
    }
    return NewConsistentRoutingStrategy(cluster, p.replication);
  }
};

TEST_P(RoutingPropertyTest, ReplicasAreDistinctNodes) {
  const Cluster cluster = MakeCluster();
  auto routing = MakeRouting(&cluster);
  const int expected =
      std::min(GetParam().replication, GetParam().nodes);
  for (int i = 0; i < 500; ++i) {
    const auto nodes = routing->RouteRequest("key" + std::to_string(i));
    EXPECT_EQ(nodes.size(), static_cast<size_t>(expected));
    EXPECT_EQ(std::set<int>(nodes.begin(), nodes.end()).size(), nodes.size());
  }
}

TEST_P(RoutingPropertyTest, FirstReplicaIsMasterPartitionOwner) {
  const Cluster cluster = MakeCluster();
  auto routing = MakeRouting(&cluster);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    const int master = routing->MasterPartition(key);
    EXPECT_GE(master, 0);
    EXPECT_LT(master, cluster.num_partitions());
    EXPECT_EQ(routing->RouteRequest(key)[0], cluster.OwnerOfPartition(master));
  }
}

TEST_P(RoutingPropertyTest, ZoneConstraintHonoredWhenFeasible) {
  const RoutingParams& p = GetParam();
  if (p.required_zones == 0) return;
  const Cluster cluster = MakeCluster();
  auto routing = MakeRouting(&cluster);
  const int feasible_zones =
      std::min({p.required_zones, p.zones, p.replication});
  for (int i = 0; i < 500; ++i) {
    std::set<int> zones;
    for (int node : routing->RouteRequest("key" + std::to_string(i))) {
      zones.insert(cluster.GetNode(node)->zone_id);
    }
    EXPECT_GE(static_cast<int>(zones.size()), feasible_zones);
  }
}

TEST_P(RoutingPropertyTest, PartitionMoveOnlyRedirectsThatPartition) {
  Cluster cluster = MakeCluster();
  auto routing = MakeRouting(&cluster);
  // Record routes, move one partition, verify only keys mastered by the
  // moved partition change their first replica.
  std::map<std::string, std::vector<int>> before;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "key" + std::to_string(i);
    before[key] = routing->RouteRequest(key);
  }
  const int moved_partition = 0;
  const int old_owner = cluster.OwnerOfPartition(moved_partition);
  const int new_owner = (old_owner + 1) % GetParam().nodes;
  cluster.MovePartition(moved_partition, new_owner);

  for (const auto& [key, old_route] : before) {
    const auto new_route = routing->RouteRequest(key);
    if (routing->MasterPartition(key) != moved_partition &&
        std::find(old_route.begin(), old_route.end(), new_owner) ==
            old_route.end() &&
        std::find(old_route.begin(), old_route.end(), old_owner) ==
            old_route.end()) {
      // Keys untouched by either node keep their exact route.
      EXPECT_EQ(new_route, old_route) << key;
    }
    if (routing->MasterPartition(key) == moved_partition) {
      EXPECT_EQ(new_route[0], new_owner) << key;
    }
  }
}

TEST_P(RoutingPropertyTest, LoadSpreadAcrossNodesIsBounded) {
  const Cluster cluster = MakeCluster();
  auto routing = MakeRouting(&cluster);
  std::map<int, int> master_load;
  const int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    master_load[routing->RouteRequest("user:" + std::to_string(i))[0]]++;
  }
  // Every node below 4x the fair share (non-order-preserving hashing
  // prevents hot spots, paper II.B).
  const double fair = static_cast<double>(kKeys) / GetParam().nodes;
  for (const auto& [node, load] : master_load) {
    EXPECT_LT(load, fair * 4) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClusterShapes, RoutingPropertyTest,
    ::testing::Values(RoutingParams{3, 9, 1, 2, 0},
                      RoutingParams{4, 16, 1, 3, 0},
                      RoutingParams{2, 8, 1, 3, 0},     // N > nodes
                      RoutingParams{12, 48, 1, 3, 0},
                      RoutingParams{6, 24, 2, 3, 2},    // zone-aware
                      RoutingParams{9, 36, 3, 3, 3},    // 3 zones
                      RoutingParams{6, 24, 2, 2, 2},
                      RoutingParams{16, 128, 4, 3, 2}));

}  // namespace
}  // namespace lidi::voldemort
