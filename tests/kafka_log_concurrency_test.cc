// Zero-copy log concurrency: concurrent appenders, lock-free pinned
// readers, and the retention janitor all hammer one PartitionLog. Readers
// decode (CRC-checked) straight out of PinnedSlices and keep a stash of
// them alive across segment deletions — under -DLIDI_SANITIZE=thread or
// address this proves the refcounted chunks never go away under a reader
// and the snapshot/frontier publication protocol is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.h"
#include "common/clock.h"
#include "kafka/log.h"
#include "kafka/message.h"

namespace lidi::kafka {
namespace {

std::string NumberedSet(int writer, int seq) {
  MessageSetBuilder builder;
  builder.Add("w" + std::to_string(writer) + ":" + std::to_string(seq) +
              ":" + std::string(40, 'x'));
  return builder.Build();
}

// Decodes every entry in `pinned`, returning the count; CRC mismatches or
// torn entries fail the test. Reading freed memory is the sanitizers' job.
int64_t DecodeAll(const PinnedSlice& pinned, int64_t offset) {
  MessageSetIterator it(pinned.slice(), offset);
  MessageView view;
  int64_t count = 0;
  while (it.NextView(&view)) {
    EXPECT_EQ(view.payload[0], 'w');
    ++count;
  }
  EXPECT_TRUE(it.status().ok()) << it.status().ToString();
  return count;
}

TEST(LogConcurrencyTest, AppendersReadersAndJanitorShareOneLog) {
  ManualClock clock;
  LogOptions options;
  options.segment_bytes = 2048;        // roll often
  options.flush_interval_messages = 4; // publish often
  options.flush_interval_ms = 1;
  options.retention_ms = 20;           // janitor actively deletes
  PartitionLog log(options, &clock);

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kAppendsPerWriter = 600;
  std::atomic<bool> stop_janitor{false};
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        const std::string set = NumberedSet(w, i);
        log.Append(set, 1);
      }
    });
  }

  // The janitor: advances time past the retention SLA and collects expired
  // segments while appends and reads are in flight.
  std::thread janitor([&log, &clock, &stop_janitor] {
    while (!stop_janitor.load()) {
      clock.AdvanceMillis(25);
      log.DeleteExpiredSegments();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  std::vector<int64_t> decoded(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&log, &done, &decoded, r] {
      // Each reader stashes pinned slices and re-validates the whole stash
      // every pass — long after the janitor dropped their segments.
      std::vector<std::pair<int64_t, PinnedSlice>> stash;
      while (true) {
        const bool final_pass = done.load();
        int64_t offset = log.start_offset();
        while (true) {
          auto pinned = log.ReadPinned(offset, 512);
          if (!pinned.ok()) {
            // The segment expired between picking the offset and reading:
            // restart from the (new) head next pass.
            ASSERT_TRUE(pinned.status().IsNotFound())
                << pinned.status().ToString();
            break;
          }
          if (pinned.value().empty()) break;  // caught up with the frontier
          decoded[r] += DecodeAll(pinned.value(), offset);
          if (stash.size() < 64) stash.emplace_back(offset, pinned.value());
          offset += static_cast<int64_t>(pinned.value().size());
        }
        for (const auto& [stash_offset, slice] : stash) {
          DecodeAll(slice, stash_offset);  // still valid, still CRC-clean
        }
        if (final_pass) break;
        std::this_thread::yield();
      }
    });
  }

  for (auto& t : writers) t.join();
  stop_janitor.store(true);
  janitor.join();
  // With the janitor quiet, a fresh flushed batch guarantees every reader's
  // final pass finds decodable data (the stress phase may have expired
  // everything a reader ever looked at).
  for (int i = 0; i < 8; ++i) log.Append(NumberedSet(9, i), 1);
  log.Flush();
  done.store(true);
  for (auto& t : readers) t.join();

  // Every reader made progress and the log's invariants held up.
  for (int r = 0; r < kReaders; ++r) EXPECT_GT(decoded[r], 0) << "reader " << r;
  EXPECT_LE(log.start_offset(), log.flushed_end_offset());
  EXPECT_LE(log.flushed_end_offset(), log.end_offset());
}

TEST(LogConcurrencyTest, PinnedSliceOutlivesRetentionDeterministic) {
  ManualClock clock;
  LogOptions options;
  options.segment_bytes = 256;
  options.flush_interval_messages = 1;
  options.retention_ms = 10;
  PartitionLog log(options, &clock);

  for (int i = 0; i < 8; ++i) log.Append(NumberedSet(0, i), 1);
  auto pinned = log.ReadPinned(0, 1 << 20);
  ASSERT_TRUE(pinned.ok());
  const int64_t entries = DecodeAll(pinned.value(), 0);
  ASSERT_GT(entries, 0);

  // Expire everything. The read-at-0 path dies, the pinned bytes do not.
  clock.AdvanceMillis(1000);
  EXPECT_GT(log.DeleteExpiredSegments(), 0);
  EXPECT_TRUE(log.ReadPinned(0, 1 << 20).status().IsNotFound());
  EXPECT_EQ(DecodeAll(pinned.value(), 0), entries);
}

}  // namespace
}  // namespace lidi::kafka
