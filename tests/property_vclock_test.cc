// Property tests for the vector-clock algebra and versioned-list semantics.
//
// Each TEST_P instance runs a randomized scenario from a distinct seed; the
// assertions are the algebraic invariants Voldemort's correctness rests on
// (paper II.B: versioning, conflict detection, read-repair reconciliation).

#include <gtest/gtest.h>

#include "common/random.h"
#include "voldemort/vector_clock.h"

#include "status_test_util.h"

namespace lidi::voldemort {
namespace {

class VClockPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  VectorClock RandomClock(Random* rng, int max_nodes, int max_events) {
    VectorClock clock;
    const int events = static_cast<int>(rng->Uniform(max_events + 1));
    for (int i = 0; i < events; ++i) {
      clock.Increment(static_cast<int>(rng->Uniform(max_nodes)));
    }
    return clock;
  }
};

TEST_P(VClockPropertyTest, CompareIsAntisymmetric) {
  Random rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const VectorClock a = RandomClock(&rng, 5, 8);
    const VectorClock b = RandomClock(&rng, 5, 8);
    const Occurred ab = a.Compare(b);
    const Occurred ba = b.Compare(a);
    switch (ab) {
      case Occurred::kEqual:
        EXPECT_EQ(ba, Occurred::kEqual);
        EXPECT_TRUE(a == b);
        break;
      case Occurred::kBefore:
        EXPECT_EQ(ba, Occurred::kAfter);
        break;
      case Occurred::kAfter:
        EXPECT_EQ(ba, Occurred::kBefore);
        break;
      case Occurred::kConcurrently:
        EXPECT_EQ(ba, Occurred::kConcurrently);
        break;
    }
  }
}

TEST_P(VClockPropertyTest, IncrementStrictlyAdvances) {
  Random rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    VectorClock a = RandomClock(&rng, 5, 8);
    VectorClock b = a;
    b.Increment(static_cast<int>(rng.Uniform(5)));
    EXPECT_EQ(a.Compare(b), Occurred::kBefore);
    EXPECT_TRUE(b.DominatesOrEquals(a));
    EXPECT_FALSE(a == b);
  }
}

TEST_P(VClockPropertyTest, MergeIsLeastUpperBoundIsh) {
  Random rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const VectorClock a = RandomClock(&rng, 6, 10);
    const VectorClock b = RandomClock(&rng, 6, 10);
    const VectorClock m = a.Merge(b);
    // Upper bound of both.
    EXPECT_TRUE(m.DominatesOrEquals(a));
    EXPECT_TRUE(m.DominatesOrEquals(b));
    // Commutative and idempotent.
    EXPECT_TRUE(m == b.Merge(a));
    EXPECT_TRUE(m == m.Merge(a));
    EXPECT_TRUE(m == m.Merge(m));
    // Entry-wise max: counter of each node is max of the inputs.
    for (const auto& [node, counter] : m.entries()) {
      EXPECT_EQ(counter, std::max(a.CounterOf(node), b.CounterOf(node)));
    }
  }
}

TEST_P(VClockPropertyTest, SerializationRoundTripsRandomClocks) {
  Random rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const VectorClock clock = RandomClock(&rng, 20, 40);
    std::string buf;
    clock.EncodeTo(&buf);
    Slice in(buf);
    auto decoded = VectorClock::DecodeFrom(&in);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(clock == decoded.value());
    EXPECT_TRUE(in.empty());
  }
}

TEST_P(VClockPropertyTest, VersionedListIsAlwaysAnAntichain) {
  // Model: after any sequence of InsertVersioned calls, no list element
  // dominates another — the on-node invariant that makes conflict
  // surfacing sound.
  Random rng(GetParam());
  std::vector<Versioned> list;
  for (int step = 0; step < 300; ++step) {
    Versioned candidate;
    if (!list.empty() && rng.Bernoulli(0.6)) {
      // Descend from a random existing version (normal update path).
      candidate.version = list[rng.Uniform(list.size())].version;
    }
    candidate.version.Increment(static_cast<int>(rng.Uniform(4)));
    candidate.value = "v" + std::to_string(step);
    // discard-ok: ObsoleteVersion is an expected outcome of the random
    // insert mix; the antichain check below is the property under test.
    (void)InsertVersioned(&list, candidate);

    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = 0; j < list.size(); ++j) {
        if (i == j) continue;
        ASSERT_EQ(list[i].version.Compare(list[j].version),
                  Occurred::kConcurrently)
            << "list holds comparable versions at step " << step;
      }
    }
    ASSERT_LE(list.size(), 4u);  // at most one branch per writer node
  }
}

TEST_P(VClockPropertyTest, ResolveConcurrentIsMaximalAntichain) {
  Random rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    // Build a random partial order of versions (chains with branch points).
    std::vector<Versioned> all;
    for (int i = 0; i < 20; ++i) {
      Versioned v;
      if (!all.empty() && rng.Bernoulli(0.7)) {
        v.version = all[rng.Uniform(all.size())].version;
      }
      v.version.Increment(static_cast<int>(rng.Uniform(3)));
      v.value = "v" + std::to_string(i);
      all.push_back(v);
    }
    auto resolved = ResolveConcurrent(all);
    ASSERT_FALSE(resolved.empty());
    // (1) Antichain.
    for (size_t i = 0; i < resolved.size(); ++i) {
      for (size_t j = i + 1; j < resolved.size(); ++j) {
        EXPECT_EQ(resolved[i].version.Compare(resolved[j].version),
                  Occurred::kConcurrently);
      }
    }
    // (2) Complete: every input is dominated-or-equaled by some output.
    for (const Versioned& input : all) {
      bool covered = false;
      for (const Versioned& out : resolved) {
        if (out.version.DominatesOrEquals(input.version)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << input.version.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VClockPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace lidi::voldemort
