#include "common/status.h"
namespace lidi {
Status DoWork();
void Caller() {
  // discard-ok: fixture — best-effort call whose failure is benign.
  (void)DoWork();
}
}  // namespace lidi
