#define LIDI_NODISCARD [[nodiscard]]
namespace lidi {
class LIDI_NODISCARD Status {
 public:
  bool ok() const { return true; }
};
template <typename T>
class LIDI_NODISCARD Result {
 public:
  Status status() const { return Status(); }
};
}  // namespace lidi
