// Fixture: both types have lost their LIDI_NODISCARD attribute.
#define LIDI_NODISCARD [[nodiscard]]
namespace lidi {
class Status {
 public:
  bool ok() const { return true; }
};
template <typename T>
class Result {
 public:
  Status status() const { return Status(); }
};
}  // namespace lidi
