#include "common/status.h"
namespace lidi {
Status DoWork();
void Caller() {
  // A void-cast discard with no discard-ok justification.
  (void)DoWork();
}
}  // namespace lidi
