namespace lidi::net {
void HandleFrame(Conn* conn) {
  MutexLock lock(&conn->mu);
  // Parks the reactor thread waiting for the response slot.
  conn->cv.Wait(&conn->mu);
}
void ReadConn(Reactor* r, Conn* conn) { HandleFrame(conn); }
void ReactorLoop(Reactor* r) {
  while (!r->stop) {
    const int n = ::epoll_wait(r->epfd, r->events, 64, -1);
    for (int i = 0; i < n; ++i) ReadConn(r, r->conns[i]);
  }
}
}  // namespace lidi::net
