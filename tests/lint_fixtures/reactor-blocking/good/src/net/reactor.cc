namespace lidi::net {
void HandleFrame(Conn* conn) {
  MutexLock lock(&conn->mu);
  conn->queue.push_back(conn->frame);
  conn->cv.NotifyOne();  // hand off to a worker; never parks
}
void ReadConn(Reactor* r, Conn* conn) { HandleFrame(conn); }
void ReactorLoop(Reactor* r) {
  while (!r->stop) {
    const int n = ::epoll_wait(r->epfd, r->events, 64, -1);
    for (int i = 0; i < n; ++i) ReadConn(r, r->conns[i]);
  }
}
void ClientCall(Conn* conn) {
  // Blocking is fine OFF the reactor: this function is not reachable from
  // any epoll loop.
  MutexLock lock(&conn->mu);
  conn->cv.Wait(&conn->mu);
}
}  // namespace lidi::net
