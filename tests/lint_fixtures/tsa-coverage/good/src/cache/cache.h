#include "common/sync.h"
namespace lidi {
class Cache {
 public:
  void Put(int key);
 private:
  Mutex mu_{"cache"};
  int size_ LIDI_GUARDED_BY(mu_) = 0;
  int hits_ LIDI_GUARDED_BY(mu_) = 0;
  // tsa-ok: written once before any thread is spawned.
  int generation_ = 0;
  const int capacity_ = 8;
  std::atomic<int> epoch_{0};
};
}  // namespace lidi
