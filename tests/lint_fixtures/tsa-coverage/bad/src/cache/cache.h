#include "common/sync.h"
namespace lidi {
class Cache {
 public:
  void Put(int key);
 private:
  Mutex mu_{"cache"};
  int size_ LIDI_GUARDED_BY(mu_) = 0;
  // Mutable, unannotated, no waiver: the finding.
  int hits_ = 0;
  const int capacity_ = 8;        // const: exempt
  std::atomic<int> epoch_{0};     // atomic: exempt
};
}  // namespace lidi
