#include "common/clock.h"
#include "common/random.h"
namespace lidi::sim {
// std::chrono and rand() appear only in this comment and in the string
// below -- neither is executable nondeterminism.
const char* kDoc = "uses std::chrono? no. uses rand()? also no.";
int64_t NowMillis(const ManualClock& clock) { return clock.NowMillis(); }
int RollDie(Random* rng) { return static_cast<int>(rng->Uniform(6)); }
}  // namespace lidi::sim
