#include <chrono>
namespace lidi::sim {
// Mentioning std::chrono here in a comment must NOT trip the check.
int64_t NowMillis() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
int RollDie() { return rand() % 6; }
}  // namespace lidi::sim
