#!/usr/bin/env python3
"""Golden-fixture driver for scripts/lidi_check.py (ctest label `lint`).

For every check, two miniature source trees live next to this script:

    <check>/bad/    one deliberate violation (plus exempt look-alikes that
                    must NOT trip); expected.txt holds the EXACT diagnostics
                    lidi-check must emit, one per line.
    <check>/good/   the corrected twin (annotation, waiver, or redesign);
                    lidi-check must exit 0 with no findings.

The comparison is exact, not substring: a fixture failing with the right
exit code but different file:line or message text is a regression in the
analyzer's diagnostics and fails this driver. The token backend is forced so
the goldens are stable across environments with and without libclang.

Usage: run_fixtures.py <path-to-lidi_check.py>
"""

import os
import subprocess
import sys

CHECKS = ("must-check", "reactor-blocking", "sim-determinism",
          "tsa-coverage")


def run(checker, root, check):
    proc = subprocess.run(
        [sys.executable, checker, "--root", root, "--backend", "token",
         "--checks", check, "--quiet"],
        capture_output=True, text=True)
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    return proc.returncode, lines


def main():
    if len(sys.argv) != 2:
        print("usage: run_fixtures.py <lidi_check.py>", file=sys.stderr)
        return 2
    checker = os.path.abspath(sys.argv[1])
    here = os.path.dirname(os.path.abspath(__file__))
    failures = []

    for check in CHECKS:
        bad = os.path.join(here, check, "bad")
        good = os.path.join(here, check, "good")

        code, lines = run(checker, bad, check)
        with open(os.path.join(bad, "expected.txt")) as f:
            expected = [l.rstrip("\n") for l in f if l.strip()]
        if code != 1:
            failures.append(f"{check}/bad: expected exit 1, got {code}\n"
                            "  output: " + "\n  ".join(lines))
        elif lines != expected:
            failures.append(
                f"{check}/bad: diagnostics differ from expected.txt\n"
                "  expected:\n    " + "\n    ".join(expected) +
                "\n  actual:\n    " + "\n    ".join(lines))
        else:
            print(f"ok   {check}/bad ({len(expected)} exact diagnostics)")

        code, lines = run(checker, good, check)
        if code != 0 or lines:
            failures.append(f"{check}/good: expected clean exit 0, got "
                            f"{code}\n  output: " + "\n  ".join(lines))
        else:
            print(f"ok   {check}/good (clean)")

    if failures:
        print("\nFAIL:")
        for f in failures:
            print("  " + f)
        return 1
    print("all lint fixtures pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
