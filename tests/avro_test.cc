#include <gtest/gtest.h>

#include "avro/codec.h"
#include "avro/datum.h"
#include "avro/json.h"
#include "avro/schema.h"

namespace lidi::avro {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(json::Parse("null").value()->is_null());
  EXPECT_TRUE(json::Parse("true").value()->AsBool());
  EXPECT_FALSE(json::Parse("false").value()->AsBool());
  EXPECT_DOUBLE_EQ(json::Parse("3.5").value()->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(json::Parse("-17").value()->AsNumber(), -17);
  EXPECT_EQ(json::Parse("\"hi\\n\"").value()->AsString(), "hi\n");
}

TEST(JsonTest, ParsesNested) {
  auto r = json::Parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(r.ok());
  const json::Value& v = *r.value();
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2]->Get("b")->AsString(), "c");
  EXPECT_TRUE(v.Get("d")->Get("e")->is_null());
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("{'single':1}").ok());
  EXPECT_FALSE(json::Parse("1 2").ok());
}

TEST(JsonTest, DumpRoundTrips) {
  const std::string text = R"({"k":[1,true,null,"s"],"n":-2.5})";
  auto v = json::Parse(text);
  ASSERT_TRUE(v.ok());
  auto v2 = json::Parse(v.value()->Dump());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v.value()->Dump(), v2.value()->Dump());
}

TEST(JsonTest, UnicodeEscape) {
  auto v = json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value()->AsString(), "A\xc3\xa9");
}

TEST(SchemaTest, ParsesPrimitives) {
  EXPECT_EQ(ParseSchema("\"string\"").value()->type(), Type::kString);
  EXPECT_EQ(ParseSchema("\"long\"").value()->type(), Type::kLong);
  EXPECT_EQ(ParseSchema(R"({"type":"int"})").value()->type(), Type::kInt);
}

TEST(SchemaTest, ParsesRecordWithIndexAnnotations) {
  auto r = ParseSchema(R"({
    "type":"record","name":"Song","fields":[
      {"name":"title","type":"string","indexed":true},
      {"name":"lyrics","type":"string","indexed":true,"index_type":"text"},
      {"name":"year","type":"int","default":0}
    ]})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r.value();
  EXPECT_EQ(s.type(), Type::kRecord);
  EXPECT_EQ(s.name(), "Song");
  ASSERT_EQ(s.fields().size(), 3u);
  EXPECT_TRUE(s.fields()[0].indexed);
  EXPECT_FALSE(s.fields()[0].text_indexed);
  EXPECT_TRUE(s.fields()[1].text_indexed);
  EXPECT_EQ(s.fields()[2].default_json, "0");
  EXPECT_EQ(s.FieldIndex("year"), 2);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
}

TEST(SchemaTest, ParsesUnionArrayMapEnum) {
  auto u = ParseSchema(R"(["null","string"])");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value()->type(), Type::kUnion);
  ASSERT_EQ(u.value()->branches().size(), 2u);

  auto a = ParseSchema(R"({"type":"array","items":"long"})");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value()->item_schema()->type(), Type::kLong);

  auto m = ParseSchema(R"({"type":"map","values":"double"})");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value()->value_schema()->type(), Type::kDouble);

  auto e = ParseSchema(R"({"type":"enum","name":"Color","symbols":["R","G"]})");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->SymbolIndex("G"), 1);
}

TEST(SchemaTest, ToJsonReparses) {
  auto r = ParseSchema(R"({
    "type":"record","name":"T","fields":[
      {"name":"a","type":["null","string"]},
      {"name":"b","type":{"type":"array","items":"int"},"default":[]}
    ]})");
  ASSERT_TRUE(r.ok());
  auto r2 = ParseSchema(r.value()->ToJson());
  ASSERT_TRUE(r2.ok()) << r.value()->ToJson();
  EXPECT_EQ(r.value()->ToJson(), r2.value()->ToJson());
}

TEST(SchemaTest, RejectsBadSchemas) {
  EXPECT_FALSE(ParseSchema("\"notatype\"").ok());
  EXPECT_FALSE(ParseSchema(R"({"type":"record","name":"X"})").ok());
  EXPECT_FALSE(ParseSchema(R"({"type":"array"})").ok());
  EXPECT_FALSE(ParseSchema("[]").ok());
}

SchemaPtr SongSchema() {
  return ParseSchema(R"({
    "type":"record","name":"Song","fields":[
      {"name":"title","type":"string"},
      {"name":"year","type":"int"},
      {"name":"tags","type":{"type":"array","items":"string"}},
      {"name":"plays","type":{"type":"map","values":"long"}}
    ]})").value();
}

DatumPtr SongDatum() {
  auto d = Datum::Record("Song");
  d->SetField("title", Datum::String("At Last"));
  d->SetField("year", Datum::Int(1960));
  auto tags = Datum::Array();
  tags->items().push_back(Datum::String("jazz"));
  tags->items().push_back(Datum::String("soul"));
  d->SetField("tags", tags);
  auto plays = Datum::Map();
  plays->entries()["us"] = Datum::Long(100000);
  plays->entries()["uk"] = Datum::Long(50000);
  d->SetField("plays", plays);
  return d;
}

TEST(CodecTest, RecordRoundTrip) {
  auto schema = SongSchema();
  auto datum = SongDatum();
  std::string buf;
  ASSERT_TRUE(Encode(*schema, *datum, &buf).ok());
  Slice in(buf);
  auto decoded = Decode(*schema, &in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(in.empty());
  EXPECT_TRUE(decoded.value()->Equals(*datum));
}

TEST(CodecTest, AllPrimitivesRoundTrip) {
  struct Case {
    const char* schema;
    DatumPtr datum;
  };
  const Case cases[] = {
      {"\"null\"", Datum::Null()},
      {"\"boolean\"", Datum::Boolean(true)},
      {"\"int\"", Datum::Int(-12345)},
      {"\"long\"", Datum::Long(1LL << 60)},
      {"\"float\"", Datum::Float(2.5f)},
      {"\"double\"", Datum::Double(-0.125)},
      {"\"string\"", Datum::String("héllo")},
      {"\"bytes\"", Datum::Bytes(std::string("\x00\xff\x01", 3))},
  };
  for (const Case& c : cases) {
    auto schema = ParseSchema(c.schema).value();
    std::string buf;
    ASSERT_TRUE(Encode(*schema, *c.datum, &buf).ok()) << c.schema;
    Slice in(buf);
    auto decoded = Decode(*schema, &in);
    ASSERT_TRUE(decoded.ok()) << c.schema;
    EXPECT_TRUE(decoded.value()->Equals(*c.datum)) << c.schema;
  }
}

TEST(CodecTest, UnionRoundTrip) {
  auto schema = ParseSchema(R"(["null","string"])").value();
  std::string buf;
  ASSERT_TRUE(Encode(*schema, *Datum::String("x"), &buf).ok());
  Slice in(buf);
  auto d = Decode(*schema, &in);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value()->union_branch(), 1);
  EXPECT_EQ(d.value()->union_value()->string_value(), "x");

  buf.clear();
  ASSERT_TRUE(Encode(*schema, *Datum::Null(), &buf).ok());
  Slice in2(buf);
  auto d2 = Decode(*schema, &in2);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2.value()->union_branch(), 0);
}

TEST(CodecTest, EnumRoundTrip) {
  auto schema =
      ParseSchema(R"({"type":"enum","name":"C","symbols":["R","G","B"]})")
          .value();
  std::string buf;
  ASSERT_TRUE(Encode(*schema, *Datum::Enum(2, "B"), &buf).ok());
  Slice in(buf);
  auto d = Decode(*schema, &in);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value()->enum_symbol(), "B");
}

TEST(CodecTest, MissingFieldWithoutDefaultFails) {
  auto schema = SongSchema();
  auto d = Datum::Record("Song");
  d->SetField("title", Datum::String("x"));
  std::string buf;
  EXPECT_FALSE(Encode(*schema, *d, &buf).ok());
}

TEST(CodecTest, TruncatedDataRejected) {
  auto schema = SongSchema();
  std::string buf;
  ASSERT_TRUE(Encode(*schema, *SongDatum(), &buf).ok());
  for (size_t cut : {size_t{1}, buf.size() / 2, buf.size() - 1}) {
    Slice in(buf.data(), cut);
    EXPECT_FALSE(Decode(*schema, &in).ok()) << "cut=" << cut;
  }
}

// --- schema resolution: the "freely evolvable" document schemas of IV.A ---

TEST(ResolutionTest, ReaderAddsFieldWithDefault) {
  auto writer = ParseSchema(R"({
    "type":"record","name":"P","fields":[{"name":"a","type":"int"}]})").value();
  auto reader = ParseSchema(R"({
    "type":"record","name":"P","fields":[
      {"name":"a","type":"int"},
      {"name":"b","type":"string","default":"none"}]})").value();
  auto d = Datum::Record("P");
  d->SetField("a", Datum::Int(5));
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *d, &buf).ok());
  Slice in(buf);
  auto out = DecodeResolved(*writer, *reader, &in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()->GetField("a")->int_value(), 5);
  EXPECT_EQ(out.value()->GetField("b")->string_value(), "none");
}

TEST(ResolutionTest, ReaderDropsField) {
  auto writer = ParseSchema(R"({
    "type":"record","name":"P","fields":[
      {"name":"a","type":"int"},
      {"name":"junk","type":{"type":"array","items":"string"}},
      {"name":"c","type":"long"}]})").value();
  auto reader = ParseSchema(R"({
    "type":"record","name":"P","fields":[
      {"name":"a","type":"int"},{"name":"c","type":"long"}]})").value();
  auto d = Datum::Record("P");
  d->SetField("a", Datum::Int(1));
  auto junk = Datum::Array();
  junk->items().push_back(Datum::String("zzz"));
  d->SetField("junk", junk);
  d->SetField("c", Datum::Long(99));
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *d, &buf).ok());
  Slice in(buf);
  auto out = DecodeResolved(*writer, *reader, &in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()->GetField("c")->long_value(), 99);
  EXPECT_EQ(out.value()->GetField("junk"), nullptr);
  EXPECT_TRUE(in.empty());
}

TEST(ResolutionTest, NumericPromotionIntToLongAndDouble) {
  auto writer = ParseSchema("\"int\"").value();
  auto reader_long = ParseSchema("\"long\"").value();
  auto reader_double = ParseSchema("\"double\"").value();
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *Datum::Int(42), &buf).ok());
  Slice in(buf);
  auto as_long = DecodeResolved(*writer, *reader_long, &in);
  ASSERT_TRUE(as_long.ok());
  EXPECT_EQ(as_long.value()->type(), Type::kLong);
  EXPECT_EQ(as_long.value()->long_value(), 42);

  Slice in2(buf);
  auto as_double = DecodeResolved(*writer, *reader_double, &in2);
  ASSERT_TRUE(as_double.ok());
  EXPECT_DOUBLE_EQ(as_double.value()->double_value(), 42.0);
}

TEST(ResolutionTest, DemotionRejected) {
  auto writer = ParseSchema("\"long\"").value();
  auto reader = ParseSchema("\"int\"").value();
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *Datum::Long(1), &buf).ok());
  Slice in(buf);
  EXPECT_FALSE(DecodeResolved(*writer, *reader, &in).ok());
}

TEST(ResolutionTest, WriterUnionReaderScalar) {
  auto writer = ParseSchema(R"(["null","int"])").value();
  auto reader = ParseSchema("\"long\"").value();
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *Datum::Int(9), &buf).ok());
  Slice in(buf);
  auto out = DecodeResolved(*writer, *reader, &in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()->long_value(), 9);
}

TEST(ResolutionTest, ScalarWriterReaderUnion) {
  auto writer = ParseSchema("\"string\"").value();
  auto reader = ParseSchema(R"(["null","string"])").value();
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *Datum::String("v"), &buf).ok());
  Slice in(buf);
  auto out = DecodeResolved(*writer, *reader, &in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->union_branch(), 1);
  EXPECT_EQ(out.value()->union_value()->string_value(), "v");
}

TEST(ResolutionTest, DefaultValuesForComplexTypes) {
  auto writer = ParseSchema(R"({
    "type":"record","name":"P","fields":[{"name":"a","type":"int"}]})").value();
  auto reader = ParseSchema(R"({
    "type":"record","name":"P","fields":[
      {"name":"a","type":"int"},
      {"name":"tags","type":{"type":"array","items":"string"},"default":["x"]},
      {"name":"opt","type":["null","long"],"default":null}]})").value();
  auto d = Datum::Record("P");
  d->SetField("a", Datum::Int(1));
  std::string buf;
  ASSERT_TRUE(Encode(*writer, *d, &buf).ok());
  Slice in(buf);
  auto out = DecodeResolved(*writer, *reader, &in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.value()->GetField("tags")->items().size(), 1u);
  EXPECT_EQ(out.value()->GetField("tags")->items()[0]->string_value(), "x");
  EXPECT_EQ(out.value()->GetField("opt")->union_branch(), 0);
}

TEST(DatumTest, EqualsIsStructural) {
  EXPECT_TRUE(SongDatum()->Equals(*SongDatum()));
  auto other = SongDatum();
  other->SetField("year", Datum::Int(1961));
  EXPECT_FALSE(SongDatum()->Equals(*other));
}

TEST(DatumTest, ToStringRendersFields) {
  const std::string s = SongDatum()->ToString();
  EXPECT_NE(s.find("At Last"), std::string::npos);
  EXPECT_NE(s.find("1960"), std::string::npos);
}

}  // namespace
}  // namespace lidi::avro
