// Status assertion helpers for tests.
//
// lidi::Status and lidi::Result<T> are LIDI_NODISCARD: a test may not drop
// one on the floor. Setup and traffic that a test assumes succeeds is
// asserted with these macros; a call whose failure is the point of the test
// uses a visible `(void)` cast with a `discard-ok:` reason instead (see
// DESIGN.md, "Static analysis contract").
#ifndef LIDI_TESTS_STATUS_TEST_UTIL_H_
#define LIDI_TESTS_STATUS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/status.h"

namespace lidi {
namespace test_util {

inline Status ToStatus(const Status& s) { return s; }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace test_util
}  // namespace lidi

// ASSERT_OK aborts the test on failure (use in void-returning test bodies);
// EXPECT_OK records the failure and continues (safe in non-void helpers).
#define ASSERT_OK(expr)                                    \
  do {                                                     \
    const ::lidi::Status lidi_assert_ok_status =           \
        ::lidi::test_util::ToStatus((expr));               \
    ASSERT_TRUE(lidi_assert_ok_status.ok())                \
        << #expr << " -> " << lidi_assert_ok_status.ToString(); \
  } while (0)

#define EXPECT_OK(expr)                                    \
  do {                                                     \
    const ::lidi::Status lidi_expect_ok_status =           \
        ::lidi::test_util::ToStatus((expr));               \
    EXPECT_TRUE(lidi_expect_ok_status.ok())                \
        << #expr << " -> " << lidi_expect_ok_status.ToString(); \
  } while (0)

#endif  // LIDI_TESTS_STATUS_TEST_UTIL_H_
