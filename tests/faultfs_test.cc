// Crash/fault-injection tests for the durable I/O layer (src/io) and the
// three persistence layers riding on it: kafka::PartitionLog,
// storage::LogStructuredEngine, and sqlstore::Binlog.
//
// The property tests run hundreds of seeded FaultFs schedules (short
// writes, ENOSPC, sync failures, a crash point torn at byte granularity)
// and assert the durability contract after Restart() + reopen: everything
// acknowledged as durable is intact, and recovered state is a clean prefix
// of acknowledged state. Every schedule is deterministic in its seed; a
// failing seed replays exactly via the LIDI_FAULTFS_SEED env knob, e.g.
//   LIDI_FAULTFS_SEED=1234567 ctest -R faultfs_test
//
// The regression tests pin the three silent-data-loss bugs this layer
// exposed (see DESIGN.md, durability contract): dishonest persisted-byte
// accounting on failed writes, segment-index skew when recovery skipped
// unreadable files, and torn tails validated by length prefix alone.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/sync.h"
#include "io/arena.h"
#include "io/fault_fs.h"
#include "io/file.h"
#include "io/group_commit.h"
#include "io/submission_queue.h"
#include "kafka/log.h"
#include "kafka/message.h"
#include "obs/metrics.h"
#include "sqlstore/database.h"
#include "storage/log_engine.h"

#include "status_test_util.h"

namespace lidi {
namespace {

constexpr int kSchedulesPerLayer = 220;

/// Seeds to run: all of [1, n] normally; exactly the one from
/// LIDI_FAULTFS_SEED when set (replaying a reported failure).
std::vector<uint64_t> Seeds(int n) {
  if (const char* env = std::getenv("LIDI_FAULTFS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  std::vector<uint64_t> seeds;
  for (int i = 1; i <= n; ++i) seeds.push_back(static_cast<uint64_t>(i));
  return seeds;
}

std::string ReplayHint(uint64_t seed) {
  return "schedule seed=" + std::to_string(seed) +
         " (replay: LIDI_FAULTFS_SEED=" + std::to_string(seed) + ")";
}

std::string OneSet(const std::string& payload) {
  kafka::MessageSetBuilder builder;
  builder.Add(payload);
  return builder.Build();
}

std::vector<std::string> ReadAllPayloads(kafka::PartitionLog* log) {
  std::vector<std::string> out;
  int64_t offset = log->start_offset();
  while (offset < log->flushed_end_offset()) {
    auto data = log->Read(offset, 1 << 20);
    if (!data.ok() || data.value().empty()) break;
    kafka::MessageSetIterator it(data.value(), offset);
    kafka::Message m;
    while (it.Next(&m)) out.push_back(m.payload);
    offset = it.next_fetch_offset();
  }
  return out;
}

std::map<std::string, std::string> ScanAll(storage::LogStructuredEngine* e) {
  std::map<std::string, std::string> out;
  e->ForEach([&out](Slice k, Slice v) {
    out[k.ToString()] = v.ToString();
    return true;
  });
  return out;
}

// ---------------------------------------------------------------------------
// FaultFs itself
// ---------------------------------------------------------------------------

TEST(FaultFsTest, SchedulesAreDeterministicInTheSeed) {
  for (int run = 0; run < 2; ++run) {
    static std::string first_content;
    static int64_t first_failures = 0;
    auto mem = io::NewMemFs();
    io::FaultFsOptions fopts;
    fopts.seed = 42;
    fopts.short_write_probability = 0.5;
    fopts.write_error_probability = 0.2;
    io::FaultFs fs(mem.get(), fopts);
    ASSERT_TRUE(fs.CreateDirs("/d").ok());
    auto file = fs.OpenAppend("/d/f");
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 50; ++i) {
      // discard-ok: the appends run against deliberately injected write
      // faults; the test compares the failure count across seeded runs.
      (void)file.value()->Append("0123456789abcdef", nullptr);
    }
    std::string content;
    ASSERT_TRUE(fs.ReadFile("/d/f", &content).ok());
    if (run == 0) {
      first_content = content;
      first_failures = fs.injected_failures();
      EXPECT_GT(first_failures, 0);
    } else {
      EXPECT_EQ(content, first_content);
      EXPECT_EQ(fs.injected_failures(), first_failures);
    }
  }
}

TEST(FaultFsTest, AcceptedReportsTheExactPrefixOnDisk) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 7;
  fopts.short_write_probability = 1.0;  // every append is torn
  io::FaultFs fs(mem.get(), fopts);
  auto file = fs.OpenAppend("/f");
  ASSERT_TRUE(file.ok());
  int64_t total_accepted = 0;
  for (int i = 0; i < 20; ++i) {
    int64_t accepted = -1;
    Status s = file.value()->Append("xxxxxxxxxx", &accepted);
    EXPECT_FALSE(s.ok());
    ASSERT_GE(accepted, 0);
    ASSERT_LT(accepted, 10);  // strict prefix
    total_accepted += accepted;
  }
  auto size = fs.FileSize("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), total_accepted);
}

TEST(FaultFsTest, RestartKeepsDurablePrefixAndCutsUnsyncedTail) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 3;
  io::FaultFs fs(mem.get(), fopts);
  {
    auto file = fs.OpenAppend("/f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("durable-part", nullptr).ok());
    ASSERT_TRUE(file.value()->Sync().ok());
    ASSERT_TRUE(file.value()->Append("page-cache-only", nullptr).ok());
  }
  fs.CrashNow();
  std::string ignored;
  EXPECT_FALSE(fs.ReadFile("/f", &ignored).ok());  // dead until reboot
  ASSERT_TRUE(fs.Restart().ok());
  std::string content;
  ASSERT_TRUE(fs.ReadFile("/f", &content).ok());
  ASSERT_GE(content.size(), 12u);  // synced bytes always survive
  EXPECT_EQ(content.substr(0, 12), "durable-part");
  EXPECT_LE(content.size(), 12u + 15u);
}

// ---------------------------------------------------------------------------
// Property: kafka::PartitionLog crash recovery
// ---------------------------------------------------------------------------

// For every schedule: after a crash + restart, the recovered log serves an
// exact prefix of the appended payload sequence (no holes, no corruption),
// and its end covers everything durable_end_offset() had acknowledged.
TEST(FaultFsPropertyTest, PartitionLogRecoversAcknowledgedDurablePrefix) {
  const io::SyncPolicy kPolicies[] = {io::SyncPolicy::kNever,
                                      io::SyncPolicy::kInterval,
                                      io::SyncPolicy::kAlways};
  for (uint64_t seed : Seeds(kSchedulesPerLayer)) {
    SCOPED_TRACE(ReplayHint(seed));
    auto mem = io::NewMemFs();
    Random rng(seed * 7919 + 13);
    io::FaultFsOptions fopts;
    fopts.seed = seed;
    fopts.crash_after_bytes = 64 + static_cast<int64_t>(rng.Uniform(4000));
    fopts.write_error_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    fopts.short_write_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    fopts.sync_error_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    io::FaultFs fs(mem.get(), fopts);

    obs::MetricsRegistry metrics;
    kafka::LogOptions opts;
    opts.data_dir = "/p0";
    opts.fs = &fs;
    opts.metrics = &metrics;
    opts.segment_bytes = 128 + static_cast<int64_t>(rng.Uniform(512));
    opts.flush_interval_messages = 1 + static_cast<int>(rng.Uniform(4));
    opts.flush_interval_ms = 1 << 30;
    opts.sync = kPolicies[rng.Uniform(3)];
    opts.sync_interval_bytes = 64 + static_cast<int64_t>(rng.Uniform(512));
    ManualClock clock;

    std::vector<std::string> written;
    int64_t durable_before = 0;
    {
      kafka::PartitionLog log(opts, &clock);
      for (int i = 0; i < 120 && !fs.crashed(); ++i) {
        const std::string payload = "m" + std::to_string(i) + "-" +
                                    rng.Bytes(1 + rng.Uniform(40));
        log.Append(OneSet(payload), 1);
        written.push_back(payload);
        if (rng.Bernoulli(0.3)) log.Flush();
      }
      log.Flush();
      durable_before = log.durable_end_offset();
      ASSERT_LE(durable_before, log.flushed_end_offset());
    }
    ASSERT_TRUE(fs.Restart().ok());

    kafka::PartitionLog recovered(opts, &clock);
    // The crash-survival promise: nothing acknowledged durable is lost.
    EXPECT_GE(recovered.flushed_end_offset(), durable_before);
    // And whatever came back is an exact prefix of what was appended.
    const auto payloads = ReadAllPayloads(&recovered);
    ASSERT_LE(payloads.size(), written.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      ASSERT_EQ(payloads[i], written[i]) << "payload " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Property: storage::LogStructuredEngine crash recovery
// ---------------------------------------------------------------------------

// Under sync=kAlways, an OK Put/Delete is acknowledged durable; a failed one
// must leave no trace. For every schedule the recovered engine equals the
// model of acknowledged operations exactly.
TEST(FaultFsPropertyTest, LogEngineRecoversExactlyTheAcknowledgedState) {
  for (uint64_t seed : Seeds(kSchedulesPerLayer)) {
    SCOPED_TRACE(ReplayHint(seed));
    auto mem = io::NewMemFs();
    Random rng(seed * 104729 + 7);
    io::FaultFsOptions fopts;
    fopts.seed = seed;
    fopts.crash_after_bytes = 64 + static_cast<int64_t>(rng.Uniform(3000));
    fopts.write_error_probability = rng.Bernoulli(0.3) ? 0.08 : 0.0;
    fopts.short_write_probability = rng.Bernoulli(0.3) ? 0.08 : 0.0;
    fopts.sync_error_probability = rng.Bernoulli(0.3) ? 0.08 : 0.0;
    io::FaultFs fs(mem.get(), fopts);

    storage::LogEngineOptions opts;
    opts.data_dir = "/kv";
    opts.fs = &fs;
    opts.segment_size_bytes = 128 + static_cast<int64_t>(rng.Uniform(512));
    opts.compaction_garbage_ratio = 10.0;  // compaction only when asked
    opts.sync = io::SyncPolicy::kAlways;

    std::map<std::string, std::string> model;
    {
      auto engine = storage::NewLogStructuredEngine(opts);
      for (int i = 0; i < 150 && !fs.crashed(); ++i) {
        const std::string key = "k" + std::to_string(rng.Uniform(25));
        if (rng.Bernoulli(0.2)) {
          if (engine->Delete(key).ok()) model.erase(key);
        } else {
          const std::string value = rng.Bytes(10 + rng.Uniform(40));
          if (engine->Put(key, value).ok()) model[key] = value;
        }
        if (rng.Bernoulli(0.05)) engine->CompactNow();
      }
    }
    ASSERT_TRUE(fs.Restart().ok());

    auto recovered = storage::NewLogStructuredEngine(opts);
    EXPECT_EQ(ScanAll(recovered.get()), model);
    EXPECT_TRUE(recovered->VerifyChecksums().ok());
    EXPECT_TRUE(recovered->RecoveryStatus().ok());
  }
}

// ---------------------------------------------------------------------------
// Property: sqlstore::Binlog crash recovery
// ---------------------------------------------------------------------------

// For every schedule: the recovered binlog is an exact prefix of the
// acknowledged commits, at least as long as DurableScn() promised; SCNs
// stay dense; the next commit continues the sequence.
TEST(FaultFsPropertyTest, BinlogRecoversAcknowledgedDurableCommits) {
  const io::SyncPolicy kPolicies[] = {io::SyncPolicy::kNever,
                                      io::SyncPolicy::kInterval,
                                      io::SyncPolicy::kAlways};
  for (uint64_t seed : Seeds(kSchedulesPerLayer)) {
    SCOPED_TRACE(ReplayHint(seed));
    auto mem = io::NewMemFs();
    Random rng(seed * 65537 + 3);
    io::FaultFsOptions fopts;
    fopts.seed = seed;
    fopts.crash_after_bytes = 32 + static_cast<int64_t>(rng.Uniform(2500));
    fopts.write_error_probability = rng.Bernoulli(0.3) ? 0.08 : 0.0;
    fopts.short_write_probability = rng.Bernoulli(0.3) ? 0.08 : 0.0;
    io::FaultFs fs(mem.get(), fopts);

    sqlstore::BinlogOptions bopts;
    bopts.data_dir = "/db";
    bopts.fs = &fs;
    bopts.sync = kPolicies[rng.Uniform(3)];
    bopts.sync_interval_bytes = 64 + static_cast<int64_t>(rng.Uniform(256));

    // (primary key, value) of the acknowledged commit with scn i+1.
    std::vector<std::pair<std::string, std::string>> acked;
    int64_t durable_before = 0;
    {
      sqlstore::Database db("crashdb", bopts);
      ASSERT_TRUE(db.CreateTable("t").ok());
      for (int i = 0; i < 80 && !fs.crashed(); ++i) {
        const std::string pk = "pk" + std::to_string(i);
        const std::string value = rng.Bytes(5 + rng.Uniform(30));
        auto scn = db.Put("t", pk, {{"val", value}});
        if (scn.ok()) {
          ASSERT_EQ(scn.value(), static_cast<int64_t>(acked.size()) + 1)
              << "SCNs must stay dense";
          acked.emplace_back(pk, value);
        }
      }
      durable_before = db.binlog().DurableScn();
      ASSERT_LE(durable_before, db.binlog().LastScn());
    }
    ASSERT_TRUE(fs.Restart().ok());

    sqlstore::Database db2("crashdb", bopts);
    const int64_t last = db2.binlog().LastScn();
    EXPECT_GE(last, durable_before);  // nothing acknowledged durable is lost
    EXPECT_LE(last, static_cast<int64_t>(acked.size()));
    const auto txns = db2.binlog().ReadAfter(0, 1 << 20);
    ASSERT_EQ(static_cast<int64_t>(txns.size()), last);
    for (size_t i = 0; i < txns.size(); ++i) {
      ASSERT_EQ(txns[i].scn, static_cast<int64_t>(i) + 1);
      ASSERT_EQ(txns[i].changes.size(), 1u);
      EXPECT_EQ(txns[i].changes[0].primary_key, acked[i].first);
      EXPECT_EQ(txns[i].changes[0].row.at("val"), acked[i].second);
    }
    // The sequence continues where the recovered log ends.
    ASSERT_TRUE(db2.CreateTable("t").ok());
    auto next = db2.Put("t", "post", {{"val", "restart"}});
    if (next.ok()) {
      EXPECT_EQ(next.value(), last + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Regression: bugfix 1 — honest persisted-byte accounting
// ---------------------------------------------------------------------------

// Pre-PR, PartitionLog::PersistSealedLocked advanced persisted_bytes even
// when every write failed, so the consumer-visible frontier claimed offsets
// that did not exist on disk and vanished on restart.
TEST(FaultFsRegressionTest, KafkaFailedWritesDoNotAdvanceTheFrontier) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 11;
  fopts.write_error_probability = 1.0;  // disk full: nothing lands
  io::FaultFs fs(mem.get(), fopts);
  obs::MetricsRegistry metrics;
  kafka::LogOptions opts;
  opts.data_dir = "/p0";
  opts.fs = &fs;
  opts.metrics = &metrics;
  ManualClock clock;
  kafka::PartitionLog log(opts, &clock);
  for (int i = 0; i < 5; ++i) log.Append(OneSet("doomed"), 1);
  log.Flush();
  EXPECT_EQ(log.flushed_end_offset(), 0) << "no byte was accepted";
  EXPECT_EQ(log.durable_end_offset(), 0);
  EXPECT_GT(metrics
                .GetCounter("io.write.failed", {{"layer", "kafka.log"}})
                ->Value(),
            0);
  // A restart agrees with the frontier: nothing comes back.
  kafka::PartitionLog recovered(opts, &clock);
  EXPECT_EQ(recovered.flushed_end_offset(), 0);
  EXPECT_TRUE(ReadAllPayloads(&recovered).empty());
}

// Short writes leave the file shorter than the in-memory log; the honest
// counter resumes from the accepted boundary and eventually completes the
// entry, and recovery tolerates the shorter file at every point.
TEST(FaultFsRegressionTest, KafkaShortWritesResumeFromHonestBoundary) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 23;
  // Mostly-torn writes (a short write accepts a strict prefix, so 1.0 could
  // never land the final byte); occasional appends go through whole.
  fopts.short_write_probability = 0.75;
  io::FaultFs fs(mem.get(), fopts);
  kafka::LogOptions opts;
  opts.data_dir = "/p0";
  opts.fs = &fs;
  ManualClock clock;
  const std::string payload(64, 'p');
  {
    kafka::PartitionLog log(opts, &clock);
    log.Append(OneSet(payload), 1);
    // Each flush retries from the honest boundary; a torn write advances it
    // by what stuck. Never does the frontier pass unaccepted bytes.
    for (int i = 0; i < 400 && log.flushed_end_offset() == 0; ++i) {
      log.Flush();
      ASSERT_LE(log.flushed_end_offset(), fs.total_bytes_written());
    }
    EXPECT_GT(log.flushed_end_offset(), 0) << "entry eventually completes";
  }
  kafka::PartitionLog recovered(opts, &clock);
  EXPECT_EQ(ReadAllPayloads(&recovered), std::vector<std::string>{payload});
}

// Pre-PR, LogEngine::PersistAppendLocked advanced persisted_bytes_ whether
// or not the stream took the record; a full disk silently produced an
// engine whose in-memory state no restart could reproduce.
TEST(FaultFsRegressionTest, EngineFailedWritesLeaveNoTrace) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 17;
  fopts.write_error_probability = 1.0;
  io::FaultFs fs(mem.get(), fopts);
  storage::LogEngineOptions opts;
  opts.data_dir = "/kv";
  opts.fs = &fs;
  opts.sync = io::SyncPolicy::kAlways;
  {
    auto engine = storage::NewLogStructuredEngine(opts);
    EXPECT_FALSE(engine->Put("k", "v").ok()) << "failed write must surface";
    std::string v;
    EXPECT_TRUE(engine->Get("k", &v).IsNotFound())
        << "a failed Put must not apply in memory";
    EXPECT_EQ(engine->Count(), 0);
    EXPECT_GT(engine->metrics()
                  ->GetCounter("io.write.failed",
                               {{"layer", "storage.log_engine"}})
                  ->Value(),
              0);
  }
  auto recovered = storage::NewLogStructuredEngine(opts);
  EXPECT_EQ(recovered->Count(), 0);
}

// ---------------------------------------------------------------------------
// Regression: bugfix 2 — recovery preserves the segment-index mapping
// ---------------------------------------------------------------------------

// Pre-PR, RecoverFromDisk skipped an unreadable/missing segment file with
// `continue`, shifting every later segment down one index, so appends
// landed in the wrong files and a second restart read interleaved garbage.
TEST(FaultFsRegressionTest, EngineMissingSegmentKeepsIndexFileMapping) {
  auto mem = io::NewMemFs();
  storage::LogEngineOptions opts;
  opts.data_dir = "/kv";
  opts.fs = mem.get();
  opts.segment_size_bytes = 256;
  opts.compaction_garbage_ratio = 10.0;
  std::map<std::string, std::string> model;
  {
    auto engine = storage::NewLogStructuredEngine(opts);
    for (int i = 0; i < 60; ++i) {
      const std::string key = "k" + std::to_string(i);
      const std::string value = "v" + std::string(30, 'a' + (i % 26));
      ASSERT_TRUE(engine->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_GT(engine->GetStats().segments, 3);
  }
  // Lose a middle segment file (disk corruption, operator error, ...).
  ASSERT_TRUE(mem->RemoveFile("/kv/0000000001.seg").ok());

  std::map<std::string, std::string> first_scan;
  {
    auto engine = storage::NewLogStructuredEngine(opts);
    EXPECT_FALSE(engine->RecoveryStatus().ok()) << "loss must be loud";
    first_scan = ScanAll(engine.get());
    // Records in the surviving files are intact: every recovered value is
    // the one written for that key (index<->file mapping preserved), and
    // the newest keys — written after the lost segment — are all present.
    for (const auto& [key, value] : first_scan) {
      ASSERT_EQ(value, model.at(key)) << key;
    }
    EXPECT_EQ(first_scan.at("k59"), model.at("k59"));
    EXPECT_TRUE(engine->VerifyChecksums().ok());
    // And the log keeps working.
    ASSERT_TRUE(engine->Put("post-loss", "value").ok());
    std::string v;
    ASSERT_TRUE(engine->Get("post-loss", &v).ok());
  }
  // Double-restart consistency: nothing further degrades or shifts.
  auto again = storage::NewLogStructuredEngine(opts);
  auto second_scan = ScanAll(again.get());
  ASSERT_EQ(second_scan.erase("post-loss"), 1u);
  EXPECT_EQ(second_scan, first_scan);
  EXPECT_TRUE(again->VerifyChecksums().ok());
}

// ---------------------------------------------------------------------------
// Regression: bugfix 3 — torn tails validated by CRC, not length alone
// ---------------------------------------------------------------------------

// Pre-PR, PartitionLog recovery accepted any tail whose length prefix
// parsed; garbage with a plausible length was served to consumers as a
// message. Now each entry's payload CRC must verify.
TEST(FaultFsRegressionTest, KafkaPlausibleLengthGarbageIsTruncated) {
  auto mem = io::NewMemFs();
  obs::MetricsRegistry metrics;
  kafka::LogOptions opts;
  opts.data_dir = "/p0";
  opts.fs = mem.get();
  opts.metrics = &metrics;
  ManualClock clock;
  {
    kafka::PartitionLog log(opts, &clock);
    log.Append(OneSet("complete"), 1);
    log.Flush();
  }
  auto size_before = mem->FileSize("/p0/00000000000000000000.log");
  ASSERT_TRUE(size_before.ok());
  {
    // A full-length entry with a valid length prefix but a wrong CRC: ten
    // payload bytes, length = 5 + 10.
    std::string garbage;
    garbage.append("\x0f\x00\x00\x00", 4);  // length 15
    garbage.push_back('\0');                // attributes
    garbage.append("\xef\xbe\xad\xde", 4);  // wrong crc
    garbage.append("evilpaylod", 10);
    auto file = mem->OpenAppend("/p0/00000000000000000000.log");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(garbage, nullptr).ok());
  }
  kafka::PartitionLog recovered(opts, &clock);
  EXPECT_EQ(ReadAllPayloads(&recovered),
            std::vector<std::string>{"complete"});
  EXPECT_EQ(metrics
                .GetCounter("io.recovery.torn_truncations",
                            {{"layer", "kafka.log"}})
                ->Value(),
            1);
  // The garbage is gone from the file too, not buried by later appends.
  auto size_after = mem->FileSize("/p0/00000000000000000000.log");
  ASSERT_TRUE(size_after.ok());
  EXPECT_EQ(size_after.value(), size_before.value());
}

// ---------------------------------------------------------------------------
// sqlstore::Binlog persistence basics
// ---------------------------------------------------------------------------

TEST(PersistentBinlogTest, DatabaseBinlogSurvivesRestart) {
  auto mem = io::NewMemFs();
  sqlstore::BinlogOptions bopts;
  bopts.data_dir = "/db";
  bopts.fs = mem.get();
  {
    sqlstore::Database db("music", bopts);
    ASSERT_TRUE(db.CreateTable("Artists").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.Put("Artists", "a" + std::to_string(i),
                         {{"name", "artist" + std::to_string(i)},
                          {"plays", std::to_string(i * 100)}})
                      .ok());
    }
    // One multi-change transaction and a delete, for coverage of the codec.
    auto txn = db.Begin();
    txn.Put("Artists", "a0", {{"name", "renamed"}});
    txn.Delete("Artists", "a4");
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_EQ(db.binlog().LastScn(), 6);
    EXPECT_EQ(db.binlog().DurableScn(), 6);  // kAlways is the default
  }
  sqlstore::Database db2("music", bopts);
  EXPECT_TRUE(db2.binlog().recovery_status().ok());
  EXPECT_EQ(db2.binlog().LastScn(), 6);
  EXPECT_EQ(db2.binlog().DurableScn(), 6);
  const auto txns = db2.binlog().ReadAfter(0, 100);
  ASSERT_EQ(txns.size(), 6u);
  EXPECT_EQ(txns[2].changes[0].primary_key, "a2");
  EXPECT_EQ(txns[2].changes[0].row.at("plays"), "200");
  ASSERT_EQ(txns[5].changes.size(), 2u);
  EXPECT_EQ(txns[5].changes[0].op, sqlstore::Change::Op::kUpdate);
  EXPECT_EQ(txns[5].changes[0].row.at("name"), "renamed");
  EXPECT_EQ(txns[5].changes[1].op, sqlstore::Change::Op::kDelete);
  EXPECT_EQ(txns[5].changes[1].primary_key, "a4");
  // The sequence continues exactly where it left off.
  ASSERT_TRUE(db2.CreateTable("Artists").ok());
  auto next = db2.Put("Artists", "post", {{"name", "restart"}});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 7);
}

TEST(PersistentBinlogTest, TornTailTruncatedOnRecovery) {
  auto mem = io::NewMemFs();
  obs::MetricsRegistry metrics;
  sqlstore::BinlogOptions bopts;
  bopts.data_dir = "/db";
  bopts.fs = mem.get();
  bopts.metrics = &metrics;
  {
    sqlstore::Binlog binlog(bopts);
    ASSERT_TRUE(binlog.Append({}).ok());
    ASSERT_TRUE(binlog.Append({}).ok());
  }
  {
    // A torn record: plausible length, missing body.
    auto file = mem->OpenAppend("/db/binlog.seg");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(
        file.value()->Append(std::string("\x40\x00\x00\x00\x01\x02", 6),
                             nullptr)
            .ok());
  }
  sqlstore::Binlog recovered(bopts);
  EXPECT_TRUE(recovered.recovery_status().ok());
  EXPECT_EQ(recovered.LastScn(), 2);
  EXPECT_EQ(metrics
                .GetCounter("io.recovery.torn_truncations",
                            {{"layer", "sqlstore.binlog"}})
                ->Value(),
            1);
  auto next = recovered.Append({});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 3);
}

// Sync-policy plumbing sanity: kAlways acknowledges durability, kNever
// never does (until restart proves the bytes), and the counters agree.
TEST(SyncPolicyTest, DurableFrontierFollowsThePolicy) {
  for (io::SyncPolicy policy :
       {io::SyncPolicy::kNever, io::SyncPolicy::kAlways}) {
    auto mem = io::NewMemFs();
    obs::MetricsRegistry metrics;
    kafka::LogOptions opts;
    opts.data_dir = "/p0";
    opts.fs = mem.get();
    opts.metrics = &metrics;
    opts.sync = policy;
    ManualClock clock;
    kafka::PartitionLog log(opts, &clock);
    for (int i = 0; i < 10; ++i) log.Append(OneSet("payload"), 1);
    log.Flush();
    const int64_t syncs =
        metrics.GetCounter("io.sync.count", {{"layer", "kafka.log"}})
            ->Value();
    if (policy == io::SyncPolicy::kAlways) {
      EXPECT_EQ(log.durable_end_offset(), log.flushed_end_offset());
      EXPECT_GT(syncs, 0);
    } else {
      EXPECT_EQ(log.durable_end_offset(), 0);
      EXPECT_EQ(syncs, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Group-commit building blocks: GroupCommitter, SubmissionQueue, RecordArena
// ---------------------------------------------------------------------------

TEST(GroupCommitterTest, LeaderSyncsCoverAndPiggybackersSkipTheDisk) {
  int64_t frontier = 0;
  int syncs = 0;
  io::GroupCommitter committer([&]() -> Result<int64_t> {
    ++syncs;
    frontier += 100;
    return frontier;
  });
  EXPECT_TRUE(committer.SyncTo(50).ok());  // leads: one sync covers to 100
  EXPECT_EQ(syncs, 1);
  EXPECT_EQ(committer.frontier(), 100);
  EXPECT_TRUE(committer.SyncTo(80).ok());  // already covered: no sync
  EXPECT_EQ(syncs, 1);
  EXPECT_TRUE(committer.SyncTo(150).ok());  // past the frontier: leads again
  EXPECT_EQ(syncs, 2);
}

TEST(GroupCommitterTest, FailedSyncBumpsEpochAndRefusesStaleWaiters) {
  bool fail = true;
  int64_t frontier = 0;
  io::GroupCommitter committer([&]() -> Result<int64_t> {
    if (fail) return Status::IOError("injected");
    frontier += 100;
    return frontier;
  });
  const uint64_t stale = committer.epoch();
  Status s = committer.SyncTo(10, stale);
  EXPECT_FALSE(s.ok());  // the leader's own sync failed
  EXPECT_NE(committer.epoch(), stale);
  // A waiter that staged before the failure must NOT be acknowledged by a
  // later successful sync — its bytes may have been rolled back.
  fail = false;
  EXPECT_FALSE(committer.SyncTo(10, stale).ok());
  // A fresh epoch capture sees the world as it is now and succeeds.
  EXPECT_TRUE(committer.SyncTo(10).ok());
}

TEST(GroupCommitterTest, UncoverableTargetErrorsInsteadOfRelead) {
  // The sync succeeds but never reaches the target (a persistent hole left
  // by another appender's failed write): the caller must get an error, not
  // lead forever.
  io::GroupCommitter committer([]() -> Result<int64_t> { return 5; });
  Status s = committer.SyncTo(10);
  EXPECT_FALSE(s.ok());
}

TEST(GroupCommitterTest, ConcurrentWaitersShareOneCoveringSync) {
  auto mem = io::NewMemFs();
  auto file_or = mem->OpenAppend("/f");
  ASSERT_TRUE(file_or.ok());
  std::shared_ptr<io::WritableFile> file = std::move(file_or.value());

  Mutex mu{"test.group_commit_state"};
  int64_t written = 0;  // bytes appended (the staged frontier)
  std::atomic<int> syncs{0};
  io::GroupCommitter committer([&]() -> Result<int64_t> {
    syncs.fetch_add(1);
    int64_t covered = 0;
    {
      // Snapshot BEFORE the sync: bytes appended while the fdatasync is in
      // flight may or may not be covered by it, so they must not be claimed.
      MutexLock lock(&mu);
      covered = written;
    }
    Status s = file->Sync();
    if (!s.ok()) return s;
    return covered;
  });

  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const uint64_t epoch = committer.epoch();
        int64_t target = 0;
        {
          MutexLock lock(&mu);
          if (!file->Append("0123456789", nullptr).ok()) {
            failures.fetch_add(1);
            continue;
          }
          written += 10;
          target = written;
        }
        if (!committer.SyncTo(target, epoch).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(committer.frontier(), kThreads * kAppendsPerThread * 10);
  // The batching claim: far fewer syncs than appends (every append acked
  // durable, but leaders cover parked waiters). With 8 threads the worst
  // case is one sync per append; any batching at all pulls it below.
  EXPECT_LE(syncs.load(), kThreads * kAppendsPerThread);
  EXPECT_GE(syncs.load(), 1);
}

TEST(SubmissionQueueTest, LinkedChainAbortsEverythingAfterAFailure) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 11;
  fopts.write_error_probability = 1.0;  // first link fails
  io::FaultFs fs(mem.get(), fopts);
  auto file = fs.OpenAppend("/f");
  ASSERT_TRUE(file.ok());

  io::SubmissionQueue sq(8);
  ASSERT_TRUE(sq.StageAppend(file.value().get(), "aaaa", 1));
  ASSERT_TRUE(sq.StageAppend(file.value().get(), "bbbb", 2));
  ASSERT_TRUE(sq.StageSync(file.value().get(), 3));
  EXPECT_EQ(sq.Submit(), 3u);

  io::Cqe cqe;
  ASSERT_TRUE(sq.Reap(&cqe));
  EXPECT_EQ(cqe.user_data, 1u);
  EXPECT_FALSE(cqe.status.ok());
  ASSERT_TRUE(sq.Reap(&cqe));
  EXPECT_EQ(cqe.user_data, 2u);
  EXPECT_EQ(cqe.status.code(), Code::kAborted);  // never executed
  EXPECT_EQ(cqe.accepted, 0);
  ASSERT_TRUE(sq.Reap(&cqe));
  EXPECT_EQ(cqe.user_data, 3u);
  EXPECT_EQ(cqe.status.code(), Code::kAborted);
  EXPECT_FALSE(sq.Reap(&cqe));
  EXPECT_EQ(sq.aborted_links(), 2);
  // Nothing after the failed link reached the file.
  auto size = fs.FileSize("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_LT(size.value(), 4);
}

TEST(SubmissionQueueTest, ShortWriteBreaksTheChainWithHonestAccepted) {
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 13;
  fopts.short_write_probability = 1.0;  // every append is torn
  io::FaultFs fs(mem.get(), fopts);
  auto file = fs.OpenAppend("/f");
  ASSERT_TRUE(file.ok());

  io::SubmissionQueue sq;
  ASSERT_TRUE(sq.StageAppend(file.value().get(), "0123456789", 1));
  ASSERT_TRUE(sq.StageAppend(file.value().get(), "abcdefghij", 2));
  sq.Submit();

  io::Cqe first, second;
  ASSERT_TRUE(sq.Reap(&first));
  ASSERT_TRUE(sq.Reap(&second));
  EXPECT_LT(first.accepted, 10);  // strict prefix, honestly reported
  EXPECT_EQ(second.status.code(), Code::kAborted);
  auto size = fs.FileSize("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), first.accepted);  // the later link never ran
}

TEST(SubmissionQueueTest, FullRingRefusesToStage) {
  auto mem = io::NewMemFs();
  auto file = mem->OpenAppend("/f");
  ASSERT_TRUE(file.ok());
  io::SubmissionQueue sq(2);
  EXPECT_TRUE(sq.StageAppend(file.value().get(), "a", 1));
  EXPECT_TRUE(sq.StageAppend(file.value().get(), "b", 2));
  EXPECT_FALSE(sq.StageAppend(file.value().get(), "c", 3));  // ring full
  EXPECT_EQ(sq.Submit(), 2u);
  EXPECT_TRUE(sq.StageAppend(file.value().get(), "c", 3));  // slots freed
  EXPECT_EQ(sq.Submit(), 1u);
  std::string content;
  ASSERT_TRUE(mem->ReadFile("/f", &content).ok());
  EXPECT_EQ(content, "abc");
}

TEST(RecordArenaTest, ReusesRetiredBuffersAndCapsThePool) {
  io::RecordArena arena(/*max_pooled=*/2);
  {
    io::RecordArena::Scratch a(&arena);
    a->assign(1000, 'x');
  }
  EXPECT_EQ(arena.created(), 1);
  EXPECT_EQ(arena.pooled(), 1u);
  {
    io::RecordArena::Scratch b(&arena);
    EXPECT_TRUE(b->empty());             // cleared...
    EXPECT_GE(b->capacity(), 1000u);     // ...but capacity retained
  }
  EXPECT_EQ(arena.reused(), 1);
  // Three concurrent leases: pool can only keep two back.
  std::string* s1 = arena.Acquire();
  std::string* s2 = arena.Acquire();
  std::string* s3 = arena.Acquire();
  arena.Release(s1);
  arena.Release(s2);
  arena.Release(s3);
  EXPECT_EQ(arena.pooled(), 2u);
}

// ---------------------------------------------------------------------------
// Property: group-commit crash schedules (kafka::PartitionLog)
// ---------------------------------------------------------------------------

// Concurrent AppendDurable callers under a crash-armed FaultFs: an append
// acknowledged OK was covered by a group sync, so it must be intact after
// the crash — including schedules where the power is lost between the
// leader's fdatasync and the parked waiters' wakeup (the ack happens on the
// waiter thread, but durability happened at the sync; the recovered log
// must contain the message either way).
TEST(FaultFsPropertyTest, GroupCommitNeverLosesAnAcknowledgedAppend) {
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 30;
  for (uint64_t seed : Seeds(kSchedulesPerLayer)) {
    SCOPED_TRACE(ReplayHint(seed));
    auto mem = io::NewMemFs();
    Random rng(seed * 104729 + 7);
    io::FaultFsOptions fopts;
    fopts.seed = seed;
    fopts.crash_after_bytes = 64 + static_cast<int64_t>(rng.Uniform(3000));
    fopts.write_error_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    fopts.short_write_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    fopts.sync_error_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    io::FaultFs fs(mem.get(), fopts);

    kafka::LogOptions opts;
    opts.data_dir = "/p0";
    opts.fs = &fs;
    opts.segment_bytes = 256 + static_cast<int64_t>(rng.Uniform(512));
    opts.flush_interval_messages = 1;
    opts.flush_interval_ms = 1 << 30;
    opts.sync = io::SyncPolicy::kAlways;
    opts.group_commit = true;
    ManualClock clock;

    // Payloads are pre-generated (Random is not thread-safe); offsets are
    // assigned under the log's writer lock, so (offset -> payload) is the
    // ground truth regardless of thread interleaving.
    std::vector<std::vector<std::string>> payloads(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        payloads[static_cast<size_t>(t)].push_back(
            "t" + std::to_string(t) + "-" + std::to_string(i) + "-" +
            rng.Bytes(1 + rng.Uniform(30)));
      }
    }
    Mutex acked_mu{"test.acked"};
    std::vector<std::pair<int64_t, std::string>> acked;  // (offset, payload)
    {
      kafka::PartitionLog log(opts, &clock);
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (int i = 0; i < kAppendsPerThread && !fs.crashed(); ++i) {
            const std::string& payload =
                payloads[static_cast<size_t>(t)][static_cast<size_t>(i)];
            auto offset = log.AppendDurable(OneSet(payload), 1);
            if (offset.ok()) {
              MutexLock lock(&acked_mu);
              acked.emplace_back(offset.value(), payload);
            }
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    ASSERT_TRUE(fs.Restart().ok());

    kafka::PartitionLog recovered(opts, &clock);
    // (log offset -> payload) of every recovered message.
    std::map<int64_t, std::string> recovered_at;
    {
      int64_t offset = recovered.start_offset();
      while (offset < recovered.flushed_end_offset()) {
        auto data = recovered.Read(offset, 1 << 20);
        if (!data.ok() || data.value().empty()) break;
        kafka::MessageSetIterator it(data.value(), offset);
        kafka::Message m;
        while (it.Next(&m)) recovered_at[m.offset] = m.payload;
        offset = it.next_fetch_offset();
      }
    }
    for (const auto& [offset, payload] : acked) {
      auto it = recovered_at.find(offset);
      ASSERT_NE(it, recovered_at.end())
          << "acked offset " << offset << " missing after crash";
      ASSERT_EQ(it->second, payload)
          << "acked offset " << offset << " corrupted after crash";
    }
  }
}

// ---------------------------------------------------------------------------
// Property: group-commit crash schedules (sqlstore::Binlog)
// ---------------------------------------------------------------------------

// Concurrent group-committed Binlog appenders under a crash-armed FaultFs:
// every OK-acknowledged SCN must be recovered with its exact content, and
// the recovered log must still be a dense SCN sequence (a failed group sync
// rolls the whole in-flight batch back, never a hole out of the middle).
TEST(FaultFsPropertyTest, GroupCommitBinlogNeverLosesAnAcknowledgedCommit) {
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 20;
  for (uint64_t seed : Seeds(kSchedulesPerLayer)) {
    SCOPED_TRACE(ReplayHint(seed));
    auto mem = io::NewMemFs();
    Random rng(seed * 15485863 + 11);
    io::FaultFsOptions fopts;
    fopts.seed = seed;
    fopts.crash_after_bytes = 64 + static_cast<int64_t>(rng.Uniform(2500));
    fopts.write_error_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    fopts.short_write_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    fopts.sync_error_probability = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    io::FaultFs fs(mem.get(), fopts);

    sqlstore::BinlogOptions bopts;
    bopts.data_dir = "/db";
    bopts.fs = &fs;
    bopts.sync = io::SyncPolicy::kAlways;
    bopts.group_commit = true;

    std::vector<std::vector<std::string>> values(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        values[static_cast<size_t>(t)].push_back(
            rng.Bytes(5 + rng.Uniform(30)));
      }
    }
    Mutex acked_mu{"test.acked"};
    std::map<int64_t, std::string> acked;  // scn -> value
    {
      sqlstore::Binlog binlog(bopts);
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (int i = 0; i < kCommitsPerThread && !fs.crashed(); ++i) {
            sqlstore::Change change;
            change.table = "t";
            change.primary_key =
                "pk" + std::to_string(t) + "-" + std::to_string(i);
            change.row = {
                {"val",
                 values[static_cast<size_t>(t)][static_cast<size_t>(i)]}};
            auto scn = binlog.Append({change});
            if (scn.ok()) {
              MutexLock lock(&acked_mu);
              acked[scn.value()] = change.row.at("val");
            }
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    ASSERT_TRUE(fs.Restart().ok());

    sqlstore::Binlog recovered(bopts);
    const auto txns = recovered.ReadAfter(0, 1 << 20);
    for (size_t i = 0; i < txns.size(); ++i) {
      ASSERT_EQ(txns[i].scn, static_cast<int64_t>(i) + 1)
          << "recovered SCNs must stay dense";
    }
    for (const auto& [scn, value] : acked) {
      ASSERT_LE(scn, static_cast<int64_t>(txns.size()))
          << "acked scn " << scn << " missing after crash";
      ASSERT_EQ(txns[static_cast<size_t>(scn) - 1].changes[0].row.at("val"),
                value)
          << "acked scn " << scn << " corrupted after crash";
    }
  }
}

}  // namespace
}  // namespace lidi
