#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/overload.h"

namespace lidi {
namespace {

// The overload-control primitives sit on the hottest request paths of every
// tier (transport dispatch, broker produce, voldemort verbs, router
// admission) and are hit from TCP worker threads concurrently. This suite
// runs under TSan in check.sh (stage 4 matches *concurrency*): the contract
// is not just "no data race" but "no over-grant" — a racing bucket must
// never hand out more than burst tokens, a racing limiter must never admit
// more than max holders.

TEST(TokenBucketTest, RefillIsAPureFunctionOfTimestamps) {
  TokenBucket bucket(/*rate_per_sec=*/10, /*burst=*/2);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));  // burst spent, no time has passed
  // 100ms at 10/s refills exactly one token; a stale timestamp afterwards
  // must not refund anything (refill clamps to the latest time seen).
  EXPECT_TRUE(bucket.TryAcquire(100'000));
  EXPECT_FALSE(bucket.TryAcquire(50'000));
  EXPECT_FALSE(bucket.TryAcquire(100'000));
}

TEST(TokenBucketTest, DisabledBucketAlwaysGrants) {
  TokenBucket bucket(/*rate_per_sec=*/0, /*burst=*/1);
  EXPECT_FALSE(bucket.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
}

TEST(TokenBucketConcurrencyTest, RacingAcquirersNeverOverdraw) {
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 2000;
  constexpr double kBurst = 100;
  TokenBucket bucket(/*rate_per_sec=*/1e-9, kBurst);  // ~no refill in-test
  std::atomic<int64_t> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bucket, &granted] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (bucket.TryAcquire(/*now_micros=*/1000)) {
          granted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), static_cast<int64_t>(kBurst));
}

TEST(PerClientQuotaConcurrencyTest, BucketCreationRaceKeepsPerClientBounds) {
  constexpr int kThreads = 8;
  constexpr int kClients = 4;
  constexpr int kAttemptsPerThread = 500;
  constexpr double kBurst = 50;
  PerClientQuota quota(/*rate_per_sec=*/1e-9, kBurst);
  std::atomic<int64_t> granted[kClients] = {};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Every thread hits every client, so first-sight bucket creation races
    // on all of them.
    threads.emplace_back([&quota, &granted] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        const int c = i % kClients;
        if (quota.Admit("client-" + std::to_string(c), /*now_micros=*/1000)) {
          granted[c].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(granted[c].load(), static_cast<int64_t>(kBurst))
        << "client " << c;
  }
}

TEST(PerClientQuotaConcurrencyTest, KillSwitchRacesSafelyWithAdmits) {
  PerClientQuota quota(/*rate_per_sec=*/1, /*burst=*/1);
  std::atomic<bool> stop{false};
  std::thread toggler([&quota, &stop] {
    for (int i = 0; i < 2000; ++i) quota.set_enforcing(i % 2 == 0);
    stop.store(true);
  });
  while (!stop.load()) {
    quota.Admit("c", 0);
  }
  toggler.join();
  // The interleaving above is the point (TSan coverage); the functional
  // checks must hold no matter how the race played out. Off: always grants
  // without touching the bucket. On: the burst-1 bucket is empty after at
  // most one grant, and nothing refills at t=0.
  quota.set_enforcing(false);
  EXPECT_TRUE(quota.Admit("c", 0));
  quota.set_enforcing(true);
  quota.Admit("c", 0);
  EXPECT_FALSE(quota.Admit("c", 0));
}

TEST(InflightLimiterConcurrencyTest, NeverAdmitsMoreThanMaxHolders) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  constexpr int64_t kMax = 3;
  InflightLimiter limiter(kMax);
  std::atomic<int64_t> inside{0};
  std::atomic<int64_t> high_water{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        InflightGuard guard(&limiter);
        if (!guard.admitted()) continue;
        const int64_t now = inside.fetch_add(1, std::memory_order_acq_rel) + 1;
        int64_t seen = high_water.load(std::memory_order_relaxed);
        while (now > seen &&
               !high_water.compare_exchange_weak(seen, now,
                                                 std::memory_order_relaxed)) {
        }
        inside.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(high_water.load(), kMax);
  EXPECT_GT(high_water.load(), 0);
  EXPECT_EQ(limiter.inflight(), 0);  // every admitted guard exited
}

TEST(InflightLimiterTest, DisabledLimiterNeverCounts) {
  InflightLimiter limiter(0);
  EXPECT_FALSE(limiter.enabled());
  {
    InflightGuard a(&limiter);
    InflightGuard b(&limiter);
    EXPECT_TRUE(a.admitted());
    EXPECT_TRUE(b.admitted());
    EXPECT_EQ(limiter.inflight(), 0);
  }
  EXPECT_EQ(limiter.inflight(), 0);  // Exit on a disabled limiter is a no-op
}

}  // namespace
}  // namespace lidi
