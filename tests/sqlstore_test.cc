#include <gtest/gtest.h>

#include "common/hash.h"
#include "sqlstore/database.h"

#include "status_test_util.h"

namespace lidi::sqlstore {
namespace {

TEST(RowCodecTest, RoundTrip) {
  Row row{{"artist", "Etta James"}, {"album", "Gold"}, {"year", "2007"}};
  std::string buf;
  EncodeRow(row, &buf);
  auto decoded = DecodeRow(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), row);
}

TEST(RowCodecTest, EmptyRow) {
  std::string buf;
  EncodeRow(Row{}, &buf);
  auto decoded = DecodeRow(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(RowCodecTest, TruncatedRejected) {
  Row row{{"a", "b"}};
  std::string buf;
  EncodeRow(row, &buf);
  EXPECT_FALSE(DecodeRow(Slice(buf.data(), buf.size() - 1)).ok());
}

TEST(DatabaseTest, CreateTableAndCrud) {
  Database db("member_db");
  ASSERT_TRUE(db.CreateTable("profiles").ok());
  EXPECT_TRUE(db.CreateTable("profiles").code() == Code::kAlreadyExists);
  EXPECT_TRUE(db.HasTable("profiles"));

  ASSERT_TRUE(db.Put("profiles", "m1", Row{{"name", "Ada"}}).ok());
  auto row = db.Get("profiles", "m1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value().at("name"), "Ada");

  ASSERT_TRUE(db.Put("profiles", "m1", Row{{"name", "Ada L"}}).ok());
  EXPECT_EQ(db.Get("profiles", "m1").value().at("name"), "Ada L");
  EXPECT_EQ(db.RowCount("profiles"), 1);

  ASSERT_TRUE(db.Delete("profiles", "m1").ok());
  EXPECT_TRUE(db.Get("profiles", "m1").status().IsNotFound());
}

TEST(DatabaseTest, MissingTableFailsWholeTransaction) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  auto txn = db.Begin();
  txn.Put("t", "k1", Row{{"c", "v"}});
  txn.Put("ghost", "k2", Row{{"c", "v"}});
  EXPECT_FALSE(txn.Commit().ok());
  // Atomicity: the valid change must not have been applied either.
  EXPECT_TRUE(db.Get("t", "k1").status().IsNotFound());
}

TEST(DatabaseTest, TransactionIsAtomicInBinlog) {
  // Paper III.B: "A single user's action can trigger atomic updates to
  // multiple rows across stores/tables, e.g. an insert into a member's
  // mailbox and update on the member's mailbox unread count."
  Database db("mailbox_db");
  ASSERT_OK(db.CreateTable("mailbox"));
  ASSERT_OK(db.CreateTable("unread_count"));
  auto txn = db.Begin();
  txn.Put("mailbox", "m1:msg9", Row{{"body", "hello"}});
  txn.Put("unread_count", "m1", Row{{"n", "9"}});
  auto scn = txn.Commit();
  ASSERT_TRUE(scn.ok());

  const auto txns = db.binlog().ReadAfter(0, 100);
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_EQ(txns[0].scn, scn.value());
  ASSERT_EQ(txns[0].changes.size(), 2u);
  EXPECT_EQ(txns[0].changes[0].table, "mailbox");
  EXPECT_EQ(txns[0].changes[1].table, "unread_count");
}

TEST(DatabaseTest, BinlogPreservesCommitOrder) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Put("t", "k" + std::to_string(i), Row{}).ok());
  }
  const auto txns = db.binlog().ReadAfter(0, 1000);
  ASSERT_EQ(txns.size(), 50u);
  for (size_t i = 1; i < txns.size(); ++i) {
    EXPECT_EQ(txns[i].scn, txns[i - 1].scn + 1) << "SCNs must be dense";
  }
  EXPECT_EQ(db.binlog().LastScn(), 50);
}

TEST(DatabaseTest, BinlogReplayableFromAnyScn) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  for (int i = 0; i < 20; ++i) ASSERT_OK(db.Put("t", "k" + std::to_string(i), Row{}));
  auto tail = db.binlog().ReadAfter(15, 100);
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail[0].scn, 16);
  auto limited = db.binlog().ReadAfter(0, 3);
  ASSERT_EQ(limited.size(), 3u);
}

TEST(DatabaseTest, InsertVsUpdateOpResolved) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  ASSERT_OK(db.Put("t", "k", Row{{"v", "1"}}));
  ASSERT_OK(db.Put("t", "k", Row{{"v", "2"}}));
  ASSERT_OK(db.Delete("t", "k"));
  const auto txns = db.binlog().ReadAfter(0, 10);
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_EQ(txns[0].changes[0].op, Change::Op::kInsert);
  EXPECT_EQ(txns[1].changes[0].op, Change::Op::kUpdate);
  EXPECT_EQ(txns[2].changes[0].op, Change::Op::kDelete);
}

TEST(DatabaseTest, PartitionFunctionStampsChanges) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  db.SetPartitionFunction([](Slice key) {
    return static_cast<int>(Fnv1a64(key) % 8);
  });
  ASSERT_OK(db.Put("t", "some-key", Row{}));
  const auto txns = db.binlog().ReadAfter(0, 10);
  const int expected = static_cast<int>(Fnv1a64("some-key") % 8);
  EXPECT_EQ(txns[0].changes[0].partition, expected);
}

TEST(DatabaseTest, TriggersFireOnCommit) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  std::vector<std::string> seen;
  db.AddTrigger([&seen](const Change& change, int64_t scn) {
    seen.push_back(change.primary_key + "@" + std::to_string(scn));
  });
  ASSERT_OK(db.Put("t", "k1", Row{}));
  ASSERT_OK(db.Put("t", "k2", Row{}));
  EXPECT_EQ(seen, (std::vector<std::string>{"k1@1", "k2@2"}));
}

TEST(DatabaseTest, SemiSyncFailureFailsCommit) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  bool relay_up = false;
  db.SetSemiSyncCallback([&relay_up](const CommittedTransaction&) {
    return relay_up ? Status::OK() : Status::Unavailable("relay down");
  });
  EXPECT_FALSE(db.Put("t", "k", Row{}).ok());
  relay_up = true;
  EXPECT_TRUE(db.Put("t", "k", Row{}).ok());
}

TEST(DatabaseTest, SemiSyncSeesFullTransaction) {
  Database db("d");
  ASSERT_OK(db.CreateTable("a"));
  ASSERT_OK(db.CreateTable("b"));
  size_t observed_changes = 0;
  db.SetSemiSyncCallback([&](const CommittedTransaction& txn) {
    observed_changes = txn.changes.size();
    return Status::OK();
  });
  auto txn = db.Begin();
  txn.Put("a", "k", Row{});
  txn.Put("b", "k", Row{});
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(observed_changes, 2u);
}

TEST(DatabaseTest, ScanIteratesInKeyOrder) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  ASSERT_OK(db.Put("t", "b", Row{{"v", "2"}}));
  ASSERT_OK(db.Put("t", "a", Row{{"v", "1"}}));
  ASSERT_OK(db.Put("t", "c", Row{{"v", "3"}}));
  std::vector<std::string> keys;
  ASSERT_TRUE(db.Scan("t", [&keys](const std::string& pk, const Row&) {
                  keys.push_back(pk);
                  return true;
                }).ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DatabaseTest, AbortDiscardsChanges) {
  Database db("d");
  ASSERT_OK(db.CreateTable("t"));
  auto txn = db.Begin();
  txn.Put("t", "k", Row{});
  txn.Abort();
  EXPECT_EQ(txn.change_count(), 0);
  EXPECT_EQ(db.binlog().TransactionCount(), 0);
}

}  // namespace
}  // namespace lidi::sqlstore
