#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"
#include "common/random.h"
#include "kafka/audit.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/log.h"
#include "kafka/message.h"
#include "kafka/mirror.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi::kafka {
namespace {

// ---------------------------------------------------------------------------
// Message sets
// ---------------------------------------------------------------------------

TEST(MessageSetTest, BuildAndIterate) {
  MessageSetBuilder builder;
  builder.Add("alpha");
  builder.Add("beta");
  builder.Add("gamma");
  EXPECT_EQ(builder.count(), 3);
  const std::string set = builder.Build();
  EXPECT_TRUE(builder.empty());

  MessageSetIterator it(set, 1000);
  Message message;
  std::vector<std::string> payloads;
  std::vector<int64_t> offsets;
  while (it.Next(&message)) {
    payloads.push_back(message.payload);
    offsets.push_back(message.offset);
  }
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(payloads, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  // Message ids: increasing but not consecutive — each advances by the
  // previous entry's length (V.B).
  EXPECT_EQ(offsets[0], 1000);
  EXPECT_EQ(offsets[1], 1000 + MessageEntrySize(5));
  EXPECT_EQ(offsets[2], offsets[1] + MessageEntrySize(4));
  EXPECT_EQ(it.next_fetch_offset(), offsets[2] + MessageEntrySize(5));
}

TEST(MessageSetTest, CompressedWrapperRoundTrip) {
  MessageSetBuilder builder(CompressionCodec::kDeflate);
  for (int i = 0; i < 50; ++i) {
    builder.Add("event payload number " + std::to_string(i));
  }
  const std::string set = builder.Build();
  auto count = CountMessages(set);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 50);

  // The compressed wrapper must be smaller than the plain encoding.
  MessageSetBuilder plain;
  for (int i = 0; i < 50; ++i) {
    plain.Add("event payload number " + std::to_string(i));
  }
  EXPECT_LT(set.size(), plain.Build().size());
}

TEST(MessageSetTest, CompressedOffsetAdvancesAtWrapperBoundary) {
  MessageSetBuilder builder(CompressionCodec::kDeflate);
  builder.Add("a");
  builder.Add("b");
  const std::string set = builder.Build();
  MessageSetIterator it(set, 500);
  Message message;
  ASSERT_TRUE(it.Next(&message));
  EXPECT_EQ(message.offset, 500);  // inner messages share the wrapper offset
  ASSERT_TRUE(it.Next(&message));
  EXPECT_EQ(message.offset, 500);
  EXPECT_FALSE(it.Next(&message));
  EXPECT_EQ(it.next_fetch_offset(), 500 + static_cast<int64_t>(set.size()));
}

TEST(MessageSetTest, CorruptCrcDetected) {
  MessageSetBuilder builder;
  builder.Add("payload");
  std::string set = builder.Build();
  set[set.size() - 1] ^= 0x1;  // flip a payload bit
  MessageSetIterator it(set, 0);
  Message message;
  EXPECT_FALSE(it.Next(&message));
  EXPECT_FALSE(it.status().ok());
}

TEST(MessageSetTest, PartialTrailingEntryIgnored) {
  MessageSetBuilder builder;
  builder.Add("one");
  builder.Add("two");
  const std::string set = builder.Build();
  // Truncate mid-second-entry: the iterator delivers the first message and
  // stops cleanly (consumer re-fetches from next_fetch_offset).
  Slice partial(set.data(), set.size() - 3);
  MessageSetIterator it(partial, 0);
  Message message;
  ASSERT_TRUE(it.Next(&message));
  EXPECT_EQ(message.payload, "one");
  EXPECT_FALSE(it.Next(&message));
  EXPECT_TRUE(it.status().ok());
  EXPECT_EQ(it.next_fetch_offset(), MessageEntrySize(3));
}

// ---------------------------------------------------------------------------
// Partition log
// ---------------------------------------------------------------------------

class LogTest : public ::testing::Test {
 protected:
  std::string OneMessageSet(const std::string& payload) {
    MessageSetBuilder builder;
    builder.Add(payload);
    return builder.Build();
  }

  ManualClock clock_;
};

TEST_F(LogTest, AppendAssignsByteOffsets) {
  PartitionLog log(LogOptions{}, &clock_);
  const std::string set = OneMessageSet("hello");
  EXPECT_EQ(log.Append(set, 1), 0);
  EXPECT_EQ(log.Append(set, 1), static_cast<int64_t>(set.size()));
  EXPECT_EQ(log.end_offset(), 2 * static_cast<int64_t>(set.size()));
}

TEST_F(LogTest, FlushPolicyByMessageCount) {
  LogOptions options;
  options.flush_interval_messages = 3;
  options.flush_interval_ms = 1 << 30;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet("x");
  log.Append(set, 1);
  log.Append(set, 1);
  // Two unflushed messages: not yet visible.
  EXPECT_EQ(log.flushed_end_offset(), 0);
  auto r = log.Read(0, 1 << 20);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  log.Append(set, 1);  // third message triggers the flush
  EXPECT_EQ(log.flushed_end_offset(), 3 * static_cast<int64_t>(set.size()));
  EXPECT_FALSE(log.Read(0, 1 << 20).value().empty());
}

TEST_F(LogTest, FlushPolicyByTime) {
  LogOptions options;
  options.flush_interval_messages = 1000;
  options.flush_interval_ms = 50;
  PartitionLog log(options, &clock_);
  log.Append(OneMessageSet("x"), 1);
  EXPECT_EQ(log.flushed_end_offset(), 0);
  clock_.AdvanceMillis(60);
  log.Append(OneMessageSet("y"), 1);  // append notices the elapsed timer
  EXPECT_GT(log.flushed_end_offset(), 0);
}

TEST_F(LogTest, ReadTruncatesAtEntryBoundaries) {
  PartitionLog log(LogOptions{}, &clock_);
  const std::string set = OneMessageSet("0123456789");  // 19 bytes
  for (int i = 0; i < 5; ++i) log.Append(set, 1);
  log.Flush();
  // Ask for 2.5 entries worth of bytes: get exactly 2 entries.
  auto r = log.Read(0, static_cast<int64_t>(set.size() * 5 / 2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2 * set.size());
  // Reading from the boundary of entry 2 works.
  auto r2 = log.Read(2 * static_cast<int64_t>(set.size()), 1 << 20);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().size(), 3 * set.size());
}

TEST_F(LogTest, ReadAlwaysReturnsAtLeastOneEntry) {
  PartitionLog log(LogOptions{}, &clock_);
  const std::string set = OneMessageSet(std::string(1000, 'x'));
  log.Append(set, 1);
  log.Flush();
  auto r = log.Read(0, 10);  // max_bytes smaller than one entry
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), set.size());
}

TEST_F(LogTest, SegmentsRollAtConfiguredSize) {
  LogOptions options;
  options.segment_bytes = 100;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet(std::string(40, 'x'));
  for (int i = 0; i < 10; ++i) log.Append(set, 1);
  EXPECT_GT(log.segment_count(), 2);
  log.Flush();
  // All offsets remain readable across segments.
  int64_t offset = 0;
  int messages = 0;
  while (offset < log.flushed_end_offset()) {
    auto r = log.Read(offset, 1 << 20);
    ASSERT_TRUE(r.ok()) << offset;
    ASSERT_FALSE(r.value().empty());
    MessageSetIterator it(r.value(), offset);
    Message m;
    while (it.Next(&m)) ++messages;
    offset = it.next_fetch_offset();
  }
  EXPECT_EQ(messages, 10);
}

TEST_F(LogTest, TimeBasedRetentionDeletesOldSegments) {
  LogOptions options;
  options.segment_bytes = 100;
  options.retention_ms = 1000;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet(std::string(40, 'x'));
  for (int i = 0; i < 6; ++i) log.Append(set, 1);
  log.Flush();
  clock_.AdvanceMillis(2000);
  // New data in a fresh window.
  for (int i = 0; i < 2; ++i) log.Append(set, 1);
  log.Flush();
  const int deleted = log.DeleteExpiredSegments();
  EXPECT_GT(deleted, 0);
  EXPECT_GT(log.start_offset(), 0);
  // Old offsets now fail NotFound; fresh data is still readable.
  EXPECT_TRUE(log.Read(0, 1024).status().IsNotFound());
  EXPECT_TRUE(log.Read(log.start_offset(), 1024).ok());
}

TEST_F(LogTest, RewindReadIsRepeatable) {
  PartitionLog log(LogOptions{}, &clock_);
  const std::string set = OneMessageSet("replayable");
  log.Append(set, 1);
  log.Flush();
  auto first = log.Read(0, 1 << 20);
  auto again = log.Read(0, 1 << 20);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());
}

TEST_F(LogTest, MisalignedOffsetCaughtAtIteration) {
  // As in Kafka, a fetch from a non-boundary offset is detected when the
  // consumer iterates the bytes: the CRC of the garbage "entry" fails (or no
  // complete entry parses). Either way no bogus message is delivered.
  PartitionLog log(LogOptions{}, &clock_);
  log.Append(OneMessageSet("abcdefgh"), 1);
  log.Flush();
  auto r = log.Read(1, 1024);
  if (r.ok() && !r.value().empty()) {
    MessageSetIterator it(r.value(), 1);
    Message message;
    bool delivered_garbage = false;
    while (it.Next(&message)) delivered_garbage = true;
    EXPECT_TRUE(!delivered_garbage || !it.status().ok());
  }
}

TEST_F(LogTest, ReadAtEverySegmentBoundary) {
  LogOptions options;
  options.segment_bytes = 100;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet(std::string(40, 'x'));
  for (int i = 0; i < 10; ++i) log.Append(set, 1);
  log.Flush();
  ASSERT_GT(log.segment_count(), 2);
  // Every entry boundary — including the ones where a fresh segment starts —
  // serves a read, and the pinned and copying paths agree byte for byte.
  const int64_t entry = static_cast<int64_t>(set.size());
  for (int64_t offset = 0; offset < log.flushed_end_offset();
       offset += entry) {
    auto pinned = log.ReadPinned(offset, 2 * entry);
    auto copied = log.Read(offset, 2 * entry);
    ASSERT_TRUE(pinned.ok()) << offset;
    ASSERT_TRUE(copied.ok()) << offset;
    EXPECT_EQ(pinned.value().ToString(), copied.value()) << offset;
    EXPECT_FALSE(pinned.value().empty()) << offset;
  }
  // The frontier itself: readable, empty — "nothing new yet", not an error.
  auto at_end = log.ReadPinned(log.flushed_end_offset(), 1024);
  ASSERT_TRUE(at_end.ok());
  EXPECT_TRUE(at_end.value().empty());
  // Past the log entirely: InvalidArgument.
  EXPECT_FALSE(log.ReadPinned(log.end_offset() + 1, 1024).ok());
}

TEST_F(LogTest, ReadStopsAtFlushedFrontier) {
  LogOptions options;
  options.flush_interval_messages = 1 << 20;  // manual flushes only
  options.flush_interval_ms = 1 << 30;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet("frontier");
  log.Append(set, 1);
  log.Append(set, 1);
  log.Flush();
  log.Append(set, 1);  // unflushed tail beyond the frontier
  ASSERT_EQ(log.flushed_end_offset(), 2 * static_cast<int64_t>(set.size()));
  ASSERT_EQ(log.end_offset(), 3 * static_cast<int64_t>(set.size()));
  // A read straddling the frontier returns only the flushed prefix, however
  // much budget remains.
  auto r = log.ReadPinned(0, 1 << 20);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2 * set.size());
  // At the frontier: empty, and the unflushed entry is invisible until...
  auto at_frontier = log.ReadPinned(2 * static_cast<int64_t>(set.size()), 64);
  ASSERT_TRUE(at_frontier.ok());
  EXPECT_TRUE(at_frontier.value().empty());
  log.Flush();  // ...now it is.
  auto after = log.ReadPinned(2 * static_cast<int64_t>(set.size()), 64);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), set.size());
}

TEST_F(LogTest, PinnedSliceSurvivesRetentionMidRead) {
  LogOptions options;
  options.segment_bytes = 100;
  options.retention_ms = 1000;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet(std::string(40, 'y'));
  for (int i = 0; i < 4; ++i) log.Append(set, 1);
  log.Flush();
  auto pinned = log.ReadPinned(0, 1 << 20);
  ASSERT_TRUE(pinned.ok());
  const std::string before = pinned.value().ToString();
  ASSERT_FALSE(before.empty());

  // The janitor fires between a consumer's fetch and its decode: the offset
  // is gone, the bytes the consumer already holds are not.
  clock_.AdvanceMillis(2000);
  log.Append(set, 1);
  log.Flush();
  ASSERT_GT(log.DeleteExpiredSegments(), 0);
  EXPECT_TRUE(log.ReadPinned(0, 1024).status().IsNotFound());
  EXPECT_EQ(pinned.value().ToString(), before);
  MessageSetIterator it(pinned.value().slice(), 0);
  Message m;
  int decoded = 0;
  while (it.Next(&m)) ++decoded;
  EXPECT_TRUE(it.status().ok());
  EXPECT_GT(decoded, 0);
}

TEST_F(LogTest, ReadPinnedReportsGatheredBytes) {
  // Flush-per-append with tiny segments forces multi-chunk layouts; a read
  // served by one chunk gathers nothing, a straddling read reports the
  // bytes it had to concatenate.
  LogOptions options;
  options.segment_bytes = 100;
  PartitionLog log(options, &clock_);
  const std::string set = OneMessageSet(std::string(40, 'z'));
  for (int i = 0; i < 6; ++i) log.Append(set, 1);
  log.Flush();
  int64_t gathered = -1;
  auto one = log.ReadPinned(0, 1, &gathered);  // single entry: one chunk
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().size(), set.size());
  EXPECT_EQ(gathered, 0);
  auto all = log.ReadPinned(0, 1 << 20, &gathered);  // spans segments
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 6 * set.size());
  EXPECT_EQ(gathered, static_cast<int64_t>(all.value().size()));
}

// ---------------------------------------------------------------------------
// Cluster fixture
// ---------------------------------------------------------------------------

class KafkaClusterTest : public ::testing::Test {
 protected:
  static constexpr int kBrokers = 2;
  static constexpr int kPartitionsPerBroker = 2;

  void StartCluster(BrokerOptions options = {}) {
    options.log.flush_interval_messages = 1;  // immediate visibility
    for (int i = 0; i < kBrokers; ++i) {
      brokers_.push_back(
          std::make_unique<Broker>(i, &zk_, &network_, &clock_, options));
      ASSERT_OK(brokers_.back()->CreateTopic("activity", kPartitionsPerBroker));
    }
  }

  ManualClock clock_;
  zk::ZooKeeper zk_;
  net::Network network_;
  std::vector<std::unique_ptr<Broker>> brokers_;
};

TEST_F(KafkaClusterTest, ProduceAndConsumeEndToEnd) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.Send("activity", "event-" + std::to_string(i)).ok());
  }
  Consumer consumer("c1", "group1", &zk_, &network_);
  ASSERT_TRUE(consumer.Subscribe("activity").ok());
  EXPECT_EQ(consumer.OwnedPartitions("activity").size(),
            static_cast<size_t>(kBrokers * kPartitionsPerBroker));

  std::multiset<std::string> received;
  for (int round = 0; round < 50 && received.size() < 20; ++round) {
    auto messages = consumer.Poll("activity");
    ASSERT_TRUE(messages.ok());
    for (const Message& m : messages.value()) received.insert(m.payload);
  }
  EXPECT_EQ(received.size(), 20u);
  EXPECT_EQ(received.count("event-0"), 1u);
}

TEST_F(KafkaClusterTest, KeyHashPartitioningPreservesKeyOrder) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        producer.Send("activity", "member-42", "evt" + std::to_string(i)).ok());
  }
  // All ten land on the same partition, in order.
  Consumer consumer("c1", "g", &zk_, &network_);
  ASSERT_OK(consumer.Subscribe("activity"));
  std::vector<std::string> received;
  for (int round = 0; round < 50 && received.size() < 10; ++round) {
    auto messages = consumer.Poll("activity");
    ASSERT_TRUE(messages.ok());
    for (const Message& m : messages.value()) received.push_back(m.payload);
  }
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received[i], "evt" + std::to_string(i));
  }
}

TEST_F(KafkaClusterTest, BatchingAndCompressionDeliverAllMessages) {
  StartCluster();
  ProducerOptions options;
  options.batch_size = 25;
  options.codec = CompressionCodec::kDeflate;
  Producer producer("p1", &zk_, &network_, options);
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(producer.Send("activity", rng.Bytes(200)).ok());
  }
  ASSERT_TRUE(producer.Flush().ok());
  EXPECT_LT(producer.bytes_on_wire(), 100 * 200);  // compression won

  Consumer consumer("c1", "g", &zk_, &network_);
  ASSERT_OK(consumer.Subscribe("activity"));
  int64_t received = 0;
  for (int round = 0; round < 100 && received < 100; ++round) {
    auto messages = consumer.Poll("activity");
    ASSERT_TRUE(messages.ok());
    received += static_cast<int64_t>(messages.value().size());
  }
  EXPECT_EQ(received, 100);
}

TEST_F(KafkaClusterTest, ConsumerGroupsSplitPartitionsExclusively) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(producer.Send("activity", "m" + std::to_string(i)));
  }
  Consumer c1("c1", "g", &zk_, &network_);
  Consumer c2("c2", "g", &zk_, &network_);
  ASSERT_TRUE(c1.Subscribe("activity").ok());
  ASSERT_TRUE(c2.Subscribe("activity").ok());
  // Membership changed after c1's initial rebalance; polls re-rebalance.
  int64_t total = 0;
  for (int round = 0; round < 100 && total < 40; ++round) {
    auto m1 = c1.Poll("activity");
    auto m2 = c2.Poll("activity");
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    total += static_cast<int64_t>(m1.value().size() + m2.value().size());
  }
  EXPECT_EQ(total, 40);

  // Exclusive ownership: the partition sets are disjoint and cover all.
  auto o1 = c1.OwnedPartitions("activity");
  auto o2 = c2.OwnedPartitions("activity");
  EXPECT_EQ(o1.size() + o2.size(),
            static_cast<size_t>(kBrokers * kPartitionsPerBroker));
  for (const auto& tp : o1) {
    EXPECT_EQ(std::find(o2.begin(), o2.end(), tp), o2.end());
  }
  EXPECT_GT(c1.messages_consumed(), 0);
  EXPECT_GT(c2.messages_consumed(), 0);
}

TEST_F(KafkaClusterTest, IndependentGroupsEachGetFullStream) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 15; ++i) ASSERT_OK(producer.Send("activity", "m"));
  Consumer g1("c1", "group-a", &zk_, &network_);
  Consumer g2("c2", "group-b", &zk_, &network_);
  ASSERT_OK(g1.Subscribe("activity"));
  ASSERT_OK(g2.Subscribe("activity"));
  int64_t n1 = 0, n2 = 0;
  for (int round = 0; round < 50; ++round) {
    n1 += static_cast<int64_t>(g1.Poll("activity").value().size());
    n2 += static_cast<int64_t>(g2.Poll("activity").value().size());
  }
  EXPECT_EQ(n1, 15);
  EXPECT_EQ(n2, 15);
}

TEST_F(KafkaClusterTest, ConsumerDepartureTriggersRebalance) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  auto c1 = std::make_unique<Consumer>("c1", "g", &zk_, &network_);
  auto c2 = std::make_unique<Consumer>("c2", "g", &zk_, &network_);
  ASSERT_OK(c1->Subscribe("activity"));
  ASSERT_OK(c2->Subscribe("activity"));
  for (int round = 0; round < 5; ++round) {
    ASSERT_OK(c1->Poll("activity"));
    ASSERT_OK(c2->Poll("activity"));
  }
  ASSERT_LT(c1->OwnedPartitions("activity").size(),
            static_cast<size_t>(kBrokers * kPartitionsPerBroker));

  // c2 leaves; its ephemeral owner nodes vanish; c1 takes everything over.
  c2->Close();
  for (int round = 0; round < 5; ++round) ASSERT_OK(c1->Poll("activity"));
  EXPECT_EQ(c1->OwnedPartitions("activity").size(),
            static_cast<size_t>(kBrokers * kPartitionsPerBroker));

  // And messages still flow.
  for (int i = 0; i < 8; ++i) ASSERT_OK(producer.Send("activity", "x"));
  int64_t got = 0;
  for (int round = 0; round < 50 && got < 8; ++round) {
    got += static_cast<int64_t>(c1->Poll("activity").value().size());
  }
  EXPECT_EQ(got, 8);
}

TEST_F(KafkaClusterTest, OffsetsCommitAndResume) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 10; ++i) ASSERT_OK(producer.Send("activity", "m" + std::to_string(i)));
  {
    Consumer consumer("c1", "g", &zk_, &network_);
    ASSERT_OK(consumer.Subscribe("activity"));
    int64_t got = 0;
    for (int round = 0; round < 50 && got < 10; ++round) {
      got += static_cast<int64_t>(consumer.Poll("activity").value().size());
    }
    ASSERT_EQ(got, 10);
    ASSERT_TRUE(consumer.CommitOffsets().ok());
  }
  // Restarted consumer resumes past the committed messages.
  for (int i = 0; i < 5; ++i) ASSERT_OK(producer.Send("activity", "new" + std::to_string(i)));
  Consumer restarted("c1", "g", &zk_, &network_);
  ASSERT_OK(restarted.Subscribe("activity"));
  std::vector<std::string> received;
  for (int round = 0; round < 50 && received.size() < 5; ++round) {
    auto messages = restarted.Poll("activity");
    ASSERT_TRUE(messages.ok());
    for (auto& m : messages.value()) received.push_back(m.payload);
  }
  ASSERT_EQ(received.size(), 5u);
  for (const std::string& p : received) {
    EXPECT_EQ(p.rfind("new", 0), 0u) << p;
  }
}

TEST_F(KafkaClusterTest, RewindReconsumesMessages) {
  StartCluster();
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 6; ++i) ASSERT_OK(producer.Send("activity", "m"));
  Consumer consumer("c1", "g", &zk_, &network_);
  ASSERT_OK(consumer.Subscribe("activity"));
  int64_t got = 0;
  for (int round = 0; round < 50 && got < 6; ++round) {
    got += static_cast<int64_t>(consumer.Poll("activity").value().size());
  }
  ASSERT_EQ(got, 6);
  // Rewind every owned partition to 0 and re-consume: same 6 again.
  for (const auto& tp : consumer.OwnedPartitions("activity")) {
    consumer.Seek("activity", tp, 0);
  }
  int64_t replay = 0;
  for (int round = 0; round < 50 && replay < 6; ++round) {
    replay += static_cast<int64_t>(consumer.Poll("activity").value().size());
  }
  EXPECT_EQ(replay, 6);
}

TEST_F(KafkaClusterTest, TransferModesProduceSameBytes) {
  BrokerOptions sendfile_options;
  sendfile_options.transfer_mode = TransferMode::kSendfile;
  StartCluster(sendfile_options);
  Producer producer("p1", &zk_, &network_);
  ASSERT_OK(producer.Send("activity", "payload"));
  auto direct = brokers_[0]->Fetch("activity", 0, 0, 1 << 20);
  // Whichever broker got the message, compare both paths on it.
  for (auto& broker : brokers_) {
    for (int p = 0; p < kPartitionsPerBroker; ++p) {
      auto data = broker->Fetch("activity", p, 0, 1 << 20);
      ASSERT_TRUE(data.ok());
    }
  }
  const TransferStats stats = brokers_[0]->transfer_stats();
  EXPECT_GT(stats.fetches, 0);
}

TEST_F(KafkaClusterTest, AuditDetectsNoLossPipeline) {
  StartCluster();
  for (auto& broker : brokers_) ASSERT_OK(broker->CreateTopic(kAuditTopic, 1));
  Producer producer("p1", &zk_, &network_);
  ProducerAudit audit("p1", &producer, &clock_, /*window_ms=*/1000);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(producer.Send("activity", "m" + std::to_string(i)).ok());
    audit.RecordProduced("activity");
  }
  clock_.AdvanceMillis(1500);  // close the window
  EXPECT_GT(audit.MaybeEmit(), 0);

  AuditValidator validator;
  Consumer data_consumer("c-data", "g-data", &zk_, &network_);
  ASSERT_OK(data_consumer.Subscribe("activity"));
  for (int round = 0; round < 60; ++round) {
    validator.RecordConsumed(
        "activity",
        static_cast<int64_t>(data_consumer.Poll("activity").value().size()));
  }
  Consumer audit_consumer("c-audit", "g-audit", &zk_, &network_);
  ASSERT_OK(audit_consumer.Subscribe(kAuditTopic));
  for (int round = 0; round < 30; ++round) {
    auto messages = audit_consumer.Poll(kAuditTopic);
    ASSERT_TRUE(messages.ok());
    ASSERT_TRUE(validator.IngestAuditMessages(messages.value()).ok());
  }
  EXPECT_EQ(validator.ProducedCount("activity"), 30);
  EXPECT_EQ(validator.ConsumedCount("activity"), 30);
  EXPECT_TRUE(validator.Validate("activity"));
}

TEST_F(KafkaClusterTest, MirrorReplicatesToOfflineCluster) {
  StartCluster();  // live cluster at /kafka
  // Offline cluster at /kafka-offline (separate broker ids/address space
  // would collide; use distinct ids).
  BrokerOptions offline_options;
  offline_options.zk_root = "/kafka-offline";
  offline_options.log.flush_interval_messages = 1;
  auto offline_broker = std::make_unique<Broker>(100, &zk_, &network_, &clock_,
                                                 offline_options);
  ASSERT_OK(offline_broker->CreateTopic("activity", 2));

  Producer producer("p-live", &zk_, &network_);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(producer.Send("activity", "e" + std::to_string(i)).ok());
  }

  MirrorMaker mirror("mirror", "activity", &zk_, &network_, "/kafka",
                     "/kafka-offline");
  auto pumped = mirror.PumpToHead();
  ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  EXPECT_EQ(pumped.value(), 25);

  ConsumerOptions offline_consumer_options;
  offline_consumer_options.zk_root = "/kafka-offline";
  Consumer analyst("hadoop-load", "etl", &zk_, &network_,
                   offline_consumer_options);
  ASSERT_OK(analyst.Subscribe("activity"));
  int64_t got = 0;
  for (int round = 0; round < 60 && got < 25; ++round) {
    got += static_cast<int64_t>(analyst.Poll("activity").value().size());
  }
  EXPECT_EQ(got, 25);
}

TEST_F(KafkaClusterTest, RetentionExpiryRecoversConsumers) {
  BrokerOptions options;
  options.log.segment_bytes = 200;
  options.log.retention_ms = 1000;
  StartCluster(options);
  Producer producer("p1", &zk_, &network_);
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(producer.Send("activity", "k", std::string(50, 'x')));  // one partition
  }
  clock_.AdvanceMillis(5000);
  int deleted = 0;
  for (auto& broker : brokers_) deleted += broker->EnforceRetention();
  EXPECT_GT(deleted, 0);

  // Fresh data after expiry.
  for (int i = 0; i < 3; ++i) ASSERT_OK(producer.Send("activity", "k", "fresh"));
  Consumer consumer("c1", "g", &zk_, &network_);
  ASSERT_OK(consumer.Subscribe("activity"));
  // Force the consumer to start at offset 0 (now expired) on all partitions.
  for (const auto& tp : consumer.OwnedPartitions("activity")) {
    consumer.Seek("activity", tp, 0);
  }
  int64_t got = 0;
  std::vector<std::string> payloads;
  for (int round = 0; round < 80 && got < 3; ++round) {
    auto messages = consumer.Poll("activity");
    ASSERT_TRUE(messages.ok()) << messages.status().ToString();
    for (auto& m : messages.value()) payloads.push_back(m.payload);
    got = static_cast<int64_t>(payloads.size());
  }
  // The consumer recovered from the expired offset and reached fresh data.
  EXPECT_GE(got, 3);
}

}  // namespace
}  // namespace lidi::kafka
