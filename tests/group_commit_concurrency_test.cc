// Concurrency tests for the group-commit path (src/io/group_commit.h and
// its kafka::PartitionLog / sqlstore::Binlog owners), built to run under
// TSan (scripts/check.sh runs every test matching 'concurrency' with
// -fsanitize=thread).
//
// The batching claim needs real overlap to test: a SlowSyncFs decorator
// stretches every Sync() so that while the leader is "at the disk", other
// appender threads stage their records and park — the instruments then must
// show fewer leader syncs than appends and a nonzero piggyback count.
// The crash-arm test points FaultFs at the same schedule shape and checks
// the only promise that matters: an acknowledged append survives a power
// loss that lands mid-batch, between a leader's sync and a waiter's wakeup.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/sync.h"
#include "io/fault_fs.h"
#include "io/file.h"
#include "kafka/log.h"
#include "kafka/message.h"
#include "obs/metrics.h"
#include "sqlstore/database.h"

namespace lidi {
namespace {

/// WritableFile decorator: delegates everything, stretches Sync().
class SlowSyncFile : public io::WritableFile {
 public:
  explicit SlowSyncFile(std::unique_ptr<io::WritableFile> base)
      : base_(std::move(base)) {}
  Status Append(Slice data, int64_t* accepted) override {
    return base_->Append(data, accepted);
  }
  Status Sync() override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<io::WritableFile> base_;
};

/// Fs decorator that makes fdatasync slow (and nothing else): the window in
/// which group-commit batching happens, stretched wide enough to observe.
class SlowSyncFs : public io::Fs {
 public:
  explicit SlowSyncFs(io::Fs* base) : base_(base) {}
  Result<std::unique_ptr<io::WritableFile>> OpenAppend(
      const std::string& path) override {
    auto file = base_->OpenAppend(path);
    if (!file.ok()) return file.status();
    return std::unique_ptr<io::WritableFile>(
        new SlowSyncFile(std::move(file.value())));
  }
  Status ReadFile(const std::string& path, std::string* out) override {
    return base_->ReadFile(path, out);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, int64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status SyncDir(const std::string& path) override {
    return base_->SyncDir(path);
  }
  Result<int64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  io::Fs* const base_;
};

std::string OneSet(const std::string& payload) {
  kafka::MessageSetBuilder builder;
  builder.Add(payload);
  return builder.Build();
}

// Many appenders, one syncer: every AppendDurable is acknowledged durable,
// yet the leader-sync count stays well below the append count because
// parked waiters piggyback on covering syncs.
TEST(GroupCommitConcurrencyTest, ManyAppendersShareLeaderSyncs) {
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 40;
  auto mem = io::NewMemFs();
  SlowSyncFs slow(mem.get());
  obs::MetricsRegistry metrics;

  kafka::LogOptions opts;
  opts.data_dir = "/p0";
  opts.fs = &slow;
  opts.metrics = &metrics;
  opts.flush_interval_messages = 1;
  opts.flush_interval_ms = 1 << 30;
  opts.sync = io::SyncPolicy::kAlways;
  opts.group_commit = true;
  ManualClock clock;
  kafka::PartitionLog log(opts, &clock);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &failures, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!log.AppendDurable(OneSet(payload), 1).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  constexpr int kTotal = kThreads * kAppendsPerThread;
  // Everything acknowledged is inside the durable frontier.
  EXPECT_EQ(log.durable_end_offset(), log.flushed_end_offset());

  const obs::Labels labels{{"layer", "kafka.log"}};
  obs::RegistrySnapshot snap = metrics.Snapshot();
  const int64_t leader_syncs =
      snap.Value("io.group_commit.leader_syncs", labels);
  const int64_t piggybacked =
      snap.Value("io.group_commit.piggybacked", labels);
  ASSERT_GT(leader_syncs, 0);
  // The whole point: with 8 threads against a slow disk, far fewer syncs
  // than appends, and a nonzero piggyback count.
  EXPECT_LT(leader_syncs, kTotal);
  EXPECT_GT(piggybacked, 0);
  // One batch-size sample per leader sync.
  const obs::InstrumentSnapshot* batches =
      snap.Find("io.sync.batch_msgs", labels);
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(batches->hist.count, leader_syncs);
}

// Crash armed mid-run: the power loss lands inside an in-flight batch —
// possibly after the leader's fdatasync but before the parked waiters woke
// to collect their acks. Whatever was acknowledged OK must be recovered.
TEST(GroupCommitConcurrencyTest, CrashMidBatchKeepsEveryAcknowledgedAppend) {
  constexpr int kThreads = 6;
  constexpr int kAppendsPerThread = 40;
  auto mem = io::NewMemFs();
  io::FaultFsOptions fopts;
  fopts.seed = 77;
  fopts.crash_after_bytes = 2000;  // lands mid-run, mid-batch
  io::FaultFs fs(mem.get(), fopts);
  SlowSyncFs slow(&fs);

  kafka::LogOptions opts;
  opts.data_dir = "/p0";
  opts.fs = &slow;
  opts.flush_interval_messages = 1;
  opts.flush_interval_ms = 1 << 30;
  opts.sync = io::SyncPolicy::kAlways;
  opts.group_commit = true;
  ManualClock clock;

  Mutex acked_mu{"test.acked"};
  std::vector<std::pair<int64_t, std::string>> acked;
  {
    kafka::PartitionLog log(opts, &clock);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kAppendsPerThread && !fs.crashed(); ++i) {
          const std::string payload =
              "t" + std::to_string(t) + "-" + std::to_string(i);
          auto offset = log.AppendDurable(OneSet(payload), 1);
          if (offset.ok()) {
            MutexLock lock(&acked_mu);
            acked.emplace_back(offset.value(), payload);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_TRUE(fs.crashed());  // the schedule must actually exercise a crash
  ASSERT_FALSE(acked.empty());
  ASSERT_TRUE(fs.Restart().ok());

  kafka::PartitionLog recovered(opts, &clock);
  std::map<int64_t, std::string> recovered_at;
  int64_t offset = recovered.start_offset();
  while (offset < recovered.flushed_end_offset()) {
    auto data = recovered.Read(offset, 1 << 20);
    if (!data.ok() || data.value().empty()) break;
    kafka::MessageSetIterator it(data.value(), offset);
    kafka::Message m;
    while (it.Next(&m)) recovered_at[m.offset] = m.payload;
    offset = it.next_fetch_offset();
  }
  for (const auto& [acked_offset, payload] : acked) {
    auto it = recovered_at.find(acked_offset);
    ASSERT_NE(it, recovered_at.end())
        << "acked offset " << acked_offset << " lost in the crash";
    EXPECT_EQ(it->second, payload);
  }
}

// Multi-committer binlog: group commit must preserve the dense-SCN
// invariant replication depends on, while batching the syncs.
TEST(GroupCommitConcurrencyTest, BinlogCommittersKeepDenseScns) {
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 30;
  auto mem = io::NewMemFs();
  SlowSyncFs slow(mem.get());
  obs::MetricsRegistry metrics;

  sqlstore::BinlogOptions bopts;
  bopts.data_dir = "/db";
  bopts.fs = &slow;
  bopts.metrics = &metrics;
  bopts.sync = io::SyncPolicy::kAlways;
  bopts.group_commit = true;
  sqlstore::Binlog binlog(bopts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&binlog, &failures, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        sqlstore::Change change;
        change.table = "t";
        change.primary_key =
            "pk" + std::to_string(t) + "-" + std::to_string(i);
        if (!binlog.Append({change}).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  constexpr int kTotal = kThreads * kCommitsPerThread;
  EXPECT_EQ(binlog.LastScn(), kTotal);
  EXPECT_EQ(binlog.DurableScn(), kTotal);  // every ack was covered by a sync
  const auto txns = binlog.ReadAfter(0, kTotal + 1);
  ASSERT_EQ(static_cast<int>(txns.size()), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(txns[static_cast<size_t>(i)].scn, i + 1)
        << "SCNs must stay dense under concurrent group commit";
  }

  const obs::Labels labels{{"layer", "sqlstore.binlog"}};
  obs::RegistrySnapshot snap = metrics.Snapshot();
  const int64_t leader_syncs =
      snap.Value("io.group_commit.leader_syncs", labels);
  ASSERT_GT(leader_syncs, 0);
  EXPECT_LT(leader_syncs, kTotal);
  EXPECT_GT(snap.Value("io.group_commit.piggybacked", labels), 0);
}

}  // namespace
}  // namespace lidi
