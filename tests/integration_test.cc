// Cross-system integration tests: the paper's architecture (Figure I.1) has
// the stream systems feeding the derived-data systems. These tests wire
// multiple lidi systems together, including under injected network faults.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "avro/codec.h"
#include "common/clock.h"
#include "databus/bootstrap.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/address.h"
#include "net/network.h"
#include "sqlstore/database.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// Primary DB -> Databus -> Voldemort cache (the Company Follow architecture,
// paper II.C + III.E: Databus as a cache-invalidation/population tier).
// ---------------------------------------------------------------------------

class CachePopulator : public databus::Consumer {
 public:
  explicit CachePopulator(voldemort::StoreClient* cache) : cache_(cache) {}

  Status OnEvent(const databus::Event& event) override {
    if (event.op == databus::Event::Op::kDelete) {
      auto current = cache_->Get(event.key);
      if (current.ok()) {
        voldemort::VectorClock clock;
        for (const auto& v : current.value()) clock = clock.Merge(v.version);
        return cache_->Delete(event.key, clock);
      }
      return Status::OK();
    }
    return cache_->PutValue(event.key, event.payload);
  }

 private:
  voldemort::StoreClient* cache_;
};

TEST(IntegrationTest, DatabusKeepsVoldemortCacheConsistent) {
  net::Network network;
  ManualClock clock;

  // Voldemort tier.
  std::vector<voldemort::Node> vnodes;
  for (int i = 0; i < 3; ++i) {
    vnodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(vnodes, 12));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    ASSERT_OK(servers.back()->AddStore("cache"));
  }
  voldemort::StoreClient cache(
      "cache-client", {.name = "cache", .replication_factor = 2,
                       .required_reads = 1, .required_writes = 1},
      metadata, &network, &clock);

  // Primary DB + Databus tier.
  sqlstore::Database primary("primary");
  ASSERT_OK(primary.CreateTable("profiles"));
  databus::Relay relay("relay", &primary, &network);
  CachePopulator populator(&cache);
  databus::DatabusClient pipeline("populator", "relay", "", &network,
                                  &populator);

  // Drive writes + deletes through the primary; pump the pipeline.
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(primary.Put("profiles", "m" + std::to_string(i % 60),
                {{"v", std::to_string(i)}}));
    if (i % 7 == 0) {
      ASSERT_OK(primary.Delete("profiles", "m" + std::to_string(i % 60)));
    }
    if (i % 20 == 19) {
      ASSERT_OK(relay.PollOnce());
      ASSERT_TRUE(pipeline.DrainToHead().ok());
    }
  }
  ASSERT_OK(relay.PollOnce());
  ASSERT_TRUE(pipeline.DrainToHead().ok());

  // The cache must agree with the primary for every key.
  int checked = 0;
  for (int k = 0; k < 60; ++k) {
    const std::string key = "m" + std::to_string(k);
    auto truth = primary.Get("profiles", key);
    auto cached = cache.Get(key);
    if (truth.ok()) {
      ASSERT_TRUE(cached.ok()) << key;
      auto row = sqlstore::DecodeRow(cached.value()[0].value);
      ASSERT_TRUE(row.ok());
      EXPECT_EQ(row.value().at("v"), truth.value().at("v")) << key;
      ++checked;
    } else {
      EXPECT_TRUE(cached.status().IsNotFound()) << key;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(IntegrationTest, PipelineSurvivesTransientNetworkFaults) {
  // With message drops between every tier, retries still converge: Databus
  // clients re-poll, Voldemort writes retry; the final cache equals the
  // primary (the "frequent transient failures" regime of paper II.A).
  net::Network network(/*fault_seed=*/123);
  ManualClock clock;

  std::vector<voldemort::Node> vnodes;
  for (int i = 0; i < 3; ++i) {
    vnodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(vnodes, 12));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    ASSERT_OK(servers.back()->AddStore("cache"));
  }
  voldemort::ClientOptions resilient;
  resilient.failure_detector.minimum_requests = 1 << 30;  // never ban
  voldemort::StoreClient cache(
      "cache-client", {.name = "cache", .replication_factor = 3,
                       .required_reads = 1, .required_writes = 1},
      metadata, &network, &clock, resilient);

  sqlstore::Database primary("primary");
  ASSERT_OK(primary.CreateTable("profiles"));
  databus::Relay relay("relay", &primary, &network);
  CachePopulator populator(&cache);
  databus::ClientOptions client_options;
  client_options.max_event_retries = 50;
  databus::DatabusClient pipeline("populator", "relay", "", &network,
                                  &populator, client_options);

  for (int i = 0; i < 120; ++i) {
    ASSERT_OK(primary.Put("profiles", "m" + std::to_string(i % 40),
                {{"v", std::to_string(i)}}));
  }
  ASSERT_OK(relay.PollOnce());

  network.SetDropProbability(0.25);
  // Drive the pipeline with retries until it reports the head reached.
  int64_t delivered = 0;
  for (int attempt = 0; attempt < 500 && delivered < 120; ++attempt) {
    auto n = pipeline.PollOnce();
    if (n.ok()) delivered += n.value();
  }
  network.SetDropProbability(0);
  ASSERT_TRUE(pipeline.DrainToHead().ok());
  EXPECT_EQ(pipeline.events_skipped(), 0);

  for (int k = 0; k < 40; ++k) {
    const std::string key = "m" + std::to_string(k);
    auto truth = primary.Get("profiles", key);
    ASSERT_TRUE(truth.ok());
    auto cached = cache.Get(key);
    ASSERT_TRUE(cached.ok()) << key << ": " << cached.status().ToString();
    auto row = sqlstore::DecodeRow(cached.value()[0].value);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row.value().at("v"), truth.value().at("v")) << key;
  }
}

// ---------------------------------------------------------------------------
// Espresso -> downstream CDC consumers (paper IV: "ESPRESSO relies on
// Databus for internal replication and therefore provides a Change Data
// Capture pipeline to downstream consumers" — e.g. the search index).
// ---------------------------------------------------------------------------

TEST(IntegrationTest, EspressoChangeStreamFeedsDownstreamIndex) {
  net::Network network;
  zk::ZooKeeper zookeeper;
  SystemClock* clock = SystemClock::Default();

  espresso::SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase(
      {"db", espresso::DatabaseSchema::Partitioning::kHash, 4, 2}));
  ASSERT_OK(registry.CreateTable("db", {"docs", 1}));
  ASSERT_OK(registry.PostDocumentSchema("db", "docs", R"({
    "type":"record","name":"Doc","fields":[{"name":"title","type":"string"}]})"));
  espresso::EspressoRelay relay;
  helix::HelixController controller("c", &zookeeper);
  ASSERT_OK(controller.AddResource({"db", 4, 2}));
  std::vector<std::unique_ptr<espresso::StorageNode>> nodes;
  for (int i = 0; i < 2; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry, &relay, &network, clock);
    auto* raw = node.get();
    raw->SetMasterLookup([&controller](const std::string& db, int p) {
      return controller.MasterOf(db, p);
    });
    ASSERT_OK(controller.ConnectParticipant(raw->name(),
                                  [raw](const helix::Transition& t) {
                                    return raw->HandleTransition(t);
                                  }));
    nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);

  // Write documents through the normal data plane.
  std::set<std::string> expected_keys;
  for (int i = 0; i < 100; ++i) {
    auto doc = avro::Datum::Record("Doc");
    doc->SetField("title", avro::Datum::String("t" + std::to_string(i)));
    const std::string key =
        "r" + std::to_string(i % 25) + "/d" + std::to_string(i);
    ASSERT_TRUE(
        router.PutDocument("/db/docs/" + key, *doc).ok());
    expected_keys.insert(key);
  }

  // A downstream consumer (the "search index") tails every partition's
  // update stream from the relay — the same stream the slaves consume.
  std::set<std::string> indexed_keys;
  for (int p = 0; p < 4; ++p) {
    auto events = relay.Read("db", p, 0, 1 << 20);
    ASSERT_TRUE(events.ok());
    int64_t last_scn = 0;
    for (const auto& event : events.value()) {
      EXPECT_GE(event.scn, last_scn) << "timeline broken in partition " << p;
      last_scn = event.scn;
      indexed_keys.insert(event.key);
    }
  }
  EXPECT_EQ(indexed_keys, expected_keys);
}

// ---------------------------------------------------------------------------
// Kafka consumers under network faults: pulls are idempotent, so drops only
// delay delivery (paper V.B: consumers re-request from their own offset).
// ---------------------------------------------------------------------------

TEST(IntegrationTest, KafkaConsumerSurvivesFetchDrops) {
  net::Network network(/*fault_seed=*/7);
  ManualClock clock;
  zk::ZooKeeper zookeeper;
  kafka::Broker broker(0, &zookeeper, &network, &clock, {});
  ASSERT_OK(broker.CreateTopic("t", 2));
  kafka::Producer producer("p", &zookeeper, &network);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(producer.Send("t", "m" + std::to_string(i)).ok());
  }

  network.SetDropProbability(0.4);
  kafka::Consumer consumer("c", "g", &zookeeper, &network);
  ASSERT_OK(consumer.Subscribe("t"));
  std::multiset<std::string> received;
  for (int round = 0; round < 2000 && received.size() < 100; ++round) {
    auto messages = consumer.Poll("t");
    if (!messages.ok()) continue;  // dropped fetch: just re-poll
    for (const auto& m : messages.value()) received.insert(m.payload);
  }
  EXPECT_EQ(received.size(), 100u);
  // Exactly-once within a stable group: offsets only advance on success.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(received.count("m" + std::to_string(i)), 1u) << i;
  }
}

// ---------------------------------------------------------------------------
// Full-stack smoke: one activity event travels user action -> primary DB ->
// Databus -> Voldemort (profile cache) while the same action is tracked via
// Kafka to the analytics tier — Figure I.1 end to end.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, FigureOneEndToEnd) {
  net::Network network;
  ManualClock clock;
  zk::ZooKeeper zookeeper;

  // Live storage (Voldemort) + primary (sqlstore) + stream (Databus).
  std::vector<voldemort::Node> vnodes{{0, net::MakeAddress(net::Tier::kVoldemort, 0), 0}};
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(vnodes, 4));
  voldemort::VoldemortServer server(0, metadata, &network);
  ASSERT_OK(server.AddStore("cache"));
  voldemort::StoreClient cache("c",
                               {.name = "cache", .replication_factor = 1,
                                .required_reads = 1, .required_writes = 1},
                               metadata, &network, &clock);
  sqlstore::Database primary("primary");
  ASSERT_OK(primary.CreateTable("profiles"));
  databus::Relay relay("relay", &primary, &network);
  CachePopulator populator(&cache);
  databus::DatabusClient pipeline("pop", "relay", "", &network, &populator);

  // Activity tracking (Kafka).
  kafka::Broker broker(0, &zookeeper, &network, &clock, {});
  ASSERT_OK(broker.CreateTopic("profile-updates", 1));
  kafka::Producer tracker("frontend", &zookeeper, &network);
  kafka::Consumer analytics("analytics", "bi", &zookeeper, &network);
  ASSERT_OK(analytics.Subscribe("profile-updates"));

  // The user action.
  ASSERT_TRUE(primary.Put("profiles", "member:1",
                          {{"headline", "Distributed Systems Engineer"}})
                  .ok());
  ASSERT_TRUE(tracker.Send("profile-updates", "member:1 updated profile").ok());

  // Asynchronous tiers catch up.
  ASSERT_OK(relay.PollOnce());
  ASSERT_TRUE(pipeline.DrainToHead().ok());
  auto tracked = analytics.PollUntilData("profile-updates");

  auto cached = cache.Get("member:1");
  ASSERT_TRUE(cached.ok());
  auto row = sqlstore::DecodeRow(cached.value()[0].value);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value().at("headline"), "Distributed Systems Engineer");
  ASSERT_TRUE(tracked.ok());
  ASSERT_EQ(tracked.value().size(), 1u);
  EXPECT_EQ(tracked.value()[0].payload, "member:1 updated profile");
}

}  // namespace
}  // namespace lidi
