// Named chaos scenarios for the deterministic cluster simulation harness
// (src/sim): each test stands up a full lidi deployment (Voldemort ring,
// Kafka brokers + consumer group, primary sqlstore -> Databus relay /
// bootstrap / follower, Espresso cluster under Helix) on one seeded network
// and virtual clock, replays a hand-written chaos schedule, settles, and
// asserts the standard invariant catalogue (see src/sim/invariants.h).
//
// Every scenario is seed-replayable: the schedule plus SimOptions::seed
// fully determine the run, and SimCluster::trace() is byte-identical across
// replays — which the determinism tests below pin.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "sim/invariants.h"
#include "sim/schedule.h"
#include "sim/sim_cluster.h"
#include "voldemort/failure_detector.h"

namespace lidi::sim {
namespace {

SimEvent Ev(EventKind kind, int target, int64_t magnitude = 0) {
  SimEvent e;
  e.kind = kind;
  e.target = target;
  e.magnitude = magnitude;
  return e;
}

// Workload family selectors (target % 4).
constexpr int kVold = 0;
constexpr int kKafka = 1;
constexpr int kEspresso = 2;
constexpr int kPrimary = 3;

// Crashable-entity indices for the default deployment (3 voldemort nodes,
// 2 brokers, 2 espresso nodes): [0,3) voldemort, [3,5) brokers, [5,7)
// espresso, 7 primary, 8 relay, 9 bootstrap.
constexpr int kBroker0 = 3;
constexpr int kBroker1 = 4;
constexpr int kEsn0 = 5;
constexpr int kEsn1 = 6;
constexpr int kPrimaryDb = 7;
constexpr int kRelay = 8;
constexpr int kBootstrap = 9;

std::string Explain(const std::vector<InvariantViolation>& violations,
                    const std::string& trace) {
  std::string out;
  for (const auto& v : violations) {
    out += v.invariant + ": " + v.detail + "\n";
  }
  return out + "--- trace ---\n" + trace;
}

void ExpectClean(uint64_t seed, const std::vector<SimEvent>& events) {
  Schedule schedule;
  schedule.seed = seed;
  schedule.events = events;
  SimOptions options;
  options.seed = seed;
  std::string trace;
  auto violations = RunScheduleOnFreshCluster(options, schedule, &trace);
  EXPECT_TRUE(violations.empty()) << Explain(violations, trace);
}

TEST(SimScenario, PartitionDuringQuorumWrite) {
  ExpectClean(101, {
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kPartition, 0, 1),  // one voldemort node minority-side
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kHeal, 0),
      Ev(EventKind::kWorkload, kVold, 6),
  });
}

TEST(SimScenario, RelayCrashMidPoll) {
  ExpectClean(102, {
      Ev(EventKind::kWorkload, kPrimary, 6),
      Ev(EventKind::kCrashNode, kRelay),
      Ev(EventKind::kWorkload, kPrimary, 6),
      Ev(EventKind::kRestartNode, kRelay),
      Ev(EventKind::kWorkload, kPrimary, 4),
  });
}

TEST(SimScenario, BrokerLossDuringConsumerFetch) {
  ExpectClean(103, {
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kCrashNode, kBroker0),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kRestartNode, kBroker0),
      Ev(EventKind::kWorkload, kKafka, 6),
  });
}

TEST(SimScenario, EspressoMasterFailoverMidPut) {
  ExpectClean(104, {
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kCrashNode, kEsn0),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kWorkload, kEspresso, 6),
      Ev(EventKind::kRestartNode, kEsn0),
      Ev(EventKind::kWorkload, kEspresso, 6),
  });
}

TEST(SimScenario, BootstrapWhileSourceCrashes) {
  ExpectClean(105, {
      Ev(EventKind::kWorkload, kPrimary, 8),
      Ev(EventKind::kCrashNode, kBootstrap),
      Ev(EventKind::kCrashNode, kPrimaryDb),
      Ev(EventKind::kWorkload, kPrimary, 4),  // all fail; none acked
      Ev(EventKind::kRestartNode, kPrimaryDb),
      Ev(EventKind::kRestartNode, kBootstrap),
      Ev(EventKind::kWorkload, kPrimary, 6),
  });
}

TEST(SimScenario, PrimaryPowerLossRecovery) {
  ExpectClean(106, {
      Ev(EventKind::kWorkload, kPrimary, 8),
      Ev(EventKind::kWorkload, kPrimary, 8),
      Ev(EventKind::kCrashNode, kPrimaryDb),
      Ev(EventKind::kRestartNode, kPrimaryDb),
      Ev(EventKind::kWorkload, kPrimary, 6),
  });
}

TEST(SimScenario, VoldemortCrashThenHintedHandoff) {
  ExpectClean(107, {
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kCrashNode, 0),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kRestartNode, 0),
      Ev(EventKind::kWorkload, kVold, 6),
  });
}

TEST(SimScenario, ClockSkewStorm) {
  ExpectClean(108, {
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kClockSkew, 0, 20'000'000),
      Ev(EventKind::kWorkload, kKafka, 6),
      Ev(EventKind::kClockSkew, 0, 20'000'000),
      Ev(EventKind::kWorkload, kEspresso, 6),
      Ev(EventKind::kClockSkew, 0, 20'000'000),
      Ev(EventKind::kWorkload, kPrimary, 6),
  });
}

TEST(SimScenario, DelayBurstUnderLoad) {
  ExpectClean(109, {
      Ev(EventKind::kDelayBurst, 0, 50'000),
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kWorkload, kKafka, 6),
      Ev(EventKind::kWorkload, kEspresso, 6),
      Ev(EventKind::kWorkload, kPrimary, 6),
      Ev(EventKind::kDelayCalm, 0),
      Ev(EventKind::kWorkload, kVold, 4),
  });
}

TEST(SimScenario, IoFaultBurstOnPrimaryBinlog) {
  ExpectClean(110, {
      Ev(EventKind::kIoFaultBurst, 0, 200),
      Ev(EventKind::kWorkload, kPrimary, 8),
      Ev(EventKind::kWorkload, kPrimary, 8),
      Ev(EventKind::kIoFaultCalm, 0),
      Ev(EventKind::kWorkload, kPrimary, 8),
  });
}

TEST(SimScenario, DoubleEspressoCrashAndRebuild) {
  ExpectClean(111, {
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kCrashNode, kEsn0),
      Ev(EventKind::kCrashNode, kEsn1),
      Ev(EventKind::kWorkload, kEspresso, 4),  // masterless: nothing acked
      Ev(EventKind::kRestartNode, kEsn0),
      Ev(EventKind::kRestartNode, kEsn1),
      Ev(EventKind::kWorkload, kEspresso, 6),
  });
}

TEST(SimScenario, RollingBrokerRestarts) {
  ExpectClean(112, {
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kCrashNode, kBroker0),
      Ev(EventKind::kWorkload, kKafka, 6),
      Ev(EventKind::kRestartNode, kBroker0),
      Ev(EventKind::kCrashNode, kBroker1),
      Ev(EventKind::kWorkload, kKafka, 6),
      Ev(EventKind::kRestartNode, kBroker1),
      Ev(EventKind::kWorkload, kKafka, 6),
  });
}

// Broker power loss with group commit on the produce path (the sim brokers
// run sync=always + group_commit): staged message-set writes and covering
// group syncs are in flight across the workload, then the power goes out
// and the broker restarts from whatever the disk's durable prefix holds.
// The no-acked-message-lost and exact-prefix invariants catch any ack that
// outran its covering sync.
TEST(SimScenario, BrokerPowerLossDuringGroupCommitBatch) {
  ExpectClean(114, {
      Ev(EventKind::kWorkload, kKafka, 10),
      Ev(EventKind::kCrashNode, kBroker0),  // power loss mid-stream
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kRestartNode, kBroker0),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kCrashNode, kBroker1),
      Ev(EventKind::kRestartNode, kBroker1),
      Ev(EventKind::kWorkload, kKafka, 6),
  });
}

// Primary power loss during group-committed binlog batches, with the disk
// misbehaving first: failing covering syncs drive the group-commit rollback
// path (drop the in-flight batch, bump the epoch, refuse the acks), then
// the power goes out and the primary recovers. SCN density and the
// no-acked-commit-lost invariant check both sides of the protocol.
TEST(SimScenario, PrimaryPowerLossDuringGroupCommitBatch) {
  ExpectClean(115, {
      Ev(EventKind::kWorkload, kPrimary, 8),
      Ev(EventKind::kIoFaultBurst, kPrimaryDb, 250),
      Ev(EventKind::kWorkload, kPrimary, 10),  // some group syncs fail here
      Ev(EventKind::kCrashNode, kPrimaryDb),   // power loss mid-batch
      Ev(EventKind::kIoFaultCalm, kPrimaryDb),
      Ev(EventKind::kRestartNode, kPrimaryDb),
      Ev(EventKind::kWorkload, kPrimary, 8),
  });
}

TEST(SimScenario, GeneratedChaosMixIsSafe) {
  SimOptions options;
  options.seed = 42;
  std::string trace;
  auto violations =
      RunScheduleOnFreshCluster(options, GenerateSchedule(42, 60), &trace);
  EXPECT_TRUE(violations.empty()) << Explain(violations, trace);
}

// Every event kind is a total function: weird targets, redundant heals,
// double crashes and restarts of running nodes must never wedge or corrupt
// the cluster. This is the property the shrinker relies on.
TEST(SimScenario, ArbitraryEventsAreTotal) {
  ExpectClean(113, {
      Ev(EventKind::kHeal, 99),                // nothing partitioned
      Ev(EventKind::kRestartNode, kPrimaryDb), // already up
      Ev(EventKind::kCrashNode, 1),
      Ev(EventKind::kCrashNode, 1),            // already down
      Ev(EventKind::kDelayCalm, -3),
      Ev(EventKind::kIoFaultCalm, 7),
      Ev(EventKind::kPartition, 63, 40),       // magnitude clamped
      Ev(EventKind::kWorkload, kVold, 4),
      Ev(EventKind::kHeal, 0),
      Ev(EventKind::kRestartNode, 1),
      Ev(EventKind::kWorkload, kVold, 4),
  });
}

// --- determinism: the --seed replay contract -------------------------------

TEST(SimDeterminism, SameSeedSameSchedule) {
  const Schedule a = GenerateSchedule(7, 50);
  const Schedule b = GenerateSchedule(7, 50);
  EXPECT_EQ(FormatSchedule(a), FormatSchedule(b));
}

TEST(SimDeterminism, SameSeedByteIdenticalTrace) {
  const Schedule schedule = GenerateSchedule(7, 50);
  SimOptions options;
  options.seed = 7;
  std::string trace_a;
  std::string trace_b;
  RunScheduleOnFreshCluster(options, schedule, &trace_a);
  RunScheduleOnFreshCluster(options, schedule, &trace_b);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
}

TEST(SimDeterminism, DifferentSeedsDiverge) {
  SimOptions a;
  a.seed = 7;
  SimOptions b;
  b.seed = 8;
  std::string trace_a;
  std::string trace_b;
  RunScheduleOnFreshCluster(a, GenerateSchedule(7, 50), &trace_a);
  RunScheduleOnFreshCluster(b, GenerateSchedule(8, 50), &trace_b);
  EXPECT_NE(trace_a, trace_b);
}

// --- shrinker --------------------------------------------------------------

// ddmin on a synthetic predicate: the "failure" needs a specific crash AND a
// specific io burst; everything else is noise the shrinker must delete.
TEST(SimShrinker, ReducesToMinimalEventPair) {
  Schedule noisy = GenerateSchedule(5, 40);
  noisy.events.insert(noisy.events.begin() + 11,
                      Ev(EventKind::kCrashNode, 17));
  noisy.events.insert(noisy.events.begin() + 29,
                      Ev(EventKind::kIoFaultBurst, 3, 150));
  const auto fails = [](const Schedule& s) {
    bool crash = false;
    bool burst = false;
    for (const auto& e : s.events) {
      if (e.kind == EventKind::kCrashNode && e.target == 17) crash = true;
      if (e.kind == EventKind::kIoFaultBurst && e.magnitude == 150) {
        burst = true;
      }
    }
    return crash && burst;
  };
  ASSERT_TRUE(fails(noisy));
  const Schedule shrunk = ShrinkSchedule(noisy, fails);
  EXPECT_EQ(shrunk.events.size(), 2u) << FormatSchedule(shrunk);
  EXPECT_TRUE(fails(shrunk));
}

TEST(SimShrinker, KeepsSingleCulpritEvent) {
  Schedule noisy = GenerateSchedule(6, 30);
  noisy.events.insert(noisy.events.begin() + 13,
                      Ev(EventKind::kClockSkew, 9, 123456));
  const auto fails = [](const Schedule& s) {
    for (const auto& e : s.events) {
      if (e.kind == EventKind::kClockSkew && e.magnitude == 123456) {
        return true;
      }
    }
    return false;
  };
  const Schedule shrunk = ShrinkSchedule(noisy, fails);
  ASSERT_EQ(shrunk.events.size(), 1u) << FormatSchedule(shrunk);
  EXPECT_EQ(shrunk.events[0].magnitude, 123456);
}

// --- failure-detector probe-on-heal regression -----------------------------

// The bug: IsAvailable resets banned_at on every failed probe, so a node
// whose probe failed moments before a partition healed stayed banned for a
// further full ban interval even though it was answering pings again.
// ProbeBannedNow (wired into Network heal listeners) probes immediately.
TEST(SimFailureDetector, ProbeOnHealRestoresBannedNodeImmediately) {
  ManualClock clock(1'000'000);
  bool reachable = false;
  voldemort::FailureDetector detector(
      {}, &clock, [&reachable](int) { return reachable; });
  for (int i = 0; i < 20; ++i) detector.RecordFailure(0);
  EXPECT_FALSE(detector.IsAvailable(0));
  // Ban interval elapses; the recovery probe runs but the node is still
  // unreachable, which re-arms the ban timer.
  clock.AdvanceMicros(600'000);
  EXPECT_FALSE(detector.IsAvailable(0));
  // The partition heals *now*. Without probe-on-heal the node stays banned
  // (timer just re-armed) even though it answers pings.
  reachable = true;
  EXPECT_FALSE(detector.IsAvailable(0));
  EXPECT_EQ(detector.ProbeBannedNow(), 1);
  EXPECT_TRUE(detector.IsAvailable(0));
  EXPECT_EQ(detector.UnavailableCount(), 0);
}

// Same property end-to-end: the sim cluster wires ProbeBannedNow into the
// network's heal listeners, so a heal re-admits banned replicas at once.
TEST(SimFailureDetector, HealListenerUnbansReplicas) {
  SimOptions options;
  options.seed = 114;
  SimCluster cluster(options);
  cluster.ApplyEvent(Ev(EventKind::kWorkload, kVold, 8));
  cluster.ApplyEvent(Ev(EventKind::kPartition, 0, 1));
  // Enough traffic that the cut node's success ratio collapses.
  for (int i = 0; i < 6; ++i) {
    cluster.ApplyEvent(Ev(EventKind::kWorkload, kVold, 8));
  }
  ASSERT_GE(cluster.voldemort_client()->failure_detector()->UnavailableCount(),
            1);
  cluster.ApplyEvent(Ev(EventKind::kHeal, 0));
  EXPECT_EQ(cluster.voldemort_client()->failure_detector()->UnavailableCount(),
            0);
  cluster.Settle();
  auto violations = cluster.CheckInvariants();
  EXPECT_TRUE(violations.empty()) << Explain(violations, cluster.trace());
}

// --- the re-introduced PR-3 binlog bug -------------------------------------

// The harness must re-find the historical sqlstore defect (persisted-byte
// accounting advancing past a failed binlog append, burying later acked
// commits behind a torn record that recovery truncates). With the legacy
// knob on, some seeded schedule of io faults + commits + power loss loses
// an acked write; with the knob off (the shipped fix), the same schedule
// is clean.
TEST(SimRegression, ReintroducedPersistedBytesBugIsCaught) {
  const auto bug_schedule = [](uint64_t seed) {
    Schedule schedule;
    schedule.seed = seed;
    schedule.events = {
        Ev(EventKind::kWorkload, kPrimary, 8),
        Ev(EventKind::kIoFaultBurst, 0, 700),
        Ev(EventKind::kWorkload, kPrimary, 8),
        Ev(EventKind::kWorkload, kPrimary, 8),
        Ev(EventKind::kIoFaultCalm, 0),
        Ev(EventKind::kWorkload, kPrimary, 8),
        Ev(EventKind::kWorkload, kPrimary, 8),
        Ev(EventKind::kCrashNode, kPrimaryDb),
        Ev(EventKind::kRestartNode, kPrimaryDb),
    };
    return schedule;
  };

  uint64_t failing_seed = 0;
  std::string buggy_trace;
  for (uint64_t seed = 1; seed <= 30 && failing_seed == 0; ++seed) {
    SimOptions buggy;
    buggy.seed = seed;
    buggy.legacy_binlog_bug = true;
    auto violations =
        RunScheduleOnFreshCluster(buggy, bug_schedule(seed), &buggy_trace);
    if (!violations.empty()) failing_seed = seed;
  }
  ASSERT_NE(failing_seed, 0u)
      << "no seed in [1,30] reproduced the legacy binlog bug";

  // The exact same schedule with the shipped fix is clean.
  SimOptions fixed;
  fixed.seed = failing_seed;
  fixed.legacy_binlog_bug = false;
  std::string fixed_trace;
  auto violations = RunScheduleOnFreshCluster(fixed, bug_schedule(failing_seed),
                                              &fixed_trace);
  EXPECT_TRUE(violations.empty()) << Explain(violations, fixed_trace);
}

}  // namespace
}  // namespace lidi::sim
