// Property and parameterized tests for Espresso: partitioning strategies,
// randomized failover schedules, and schema-evolution chains.

#include <gtest/gtest.h>

#include <memory>

#include "avro/codec.h"
#include "common/clock.h"
#include "common/random.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi::espresso {
namespace {

// ---------------------------------------------------------------------------
// Partitioning strategies (incl. the range-based future-work strategy)
// ---------------------------------------------------------------------------

TEST(RangePartitioningTest, BoundariesSplitTheKeySpace) {
  DatabaseSchema schema{"db", DatabaseSchema::Partitioning::kRange, 4, 2,
                        {"g", "n", "t"}};
  EXPECT_EQ(PartitionOf(schema, "alpha"), 0);
  EXPECT_EQ(PartitionOf(schema, "fzzz"), 0);
  EXPECT_EQ(PartitionOf(schema, "g"), 1);  // boundaries are upper-exclusive
  EXPECT_EQ(PartitionOf(schema, "monk"), 1);
  EXPECT_EQ(PartitionOf(schema, "n"), 2);
  EXPECT_EQ(PartitionOf(schema, "silver"), 2);
  EXPECT_EQ(PartitionOf(schema, "t"), 3);
  EXPECT_EQ(PartitionOf(schema, "zz"), 3);
  EXPECT_EQ(PartitionOf(schema, ""), 0);
}

TEST(RangePartitioningTest, AdjacentKeysAreCoLocated) {
  DatabaseSchema schema{"db", DatabaseSchema::Partitioning::kRange, 4, 2,
                        {"2020", "2021", "2022"}};
  // Time-ordered resource ids within the same year share a partition.
  EXPECT_EQ(PartitionOf(schema, "2020-01-15"), PartitionOf(schema, "2020-11-30"));
  EXPECT_NE(PartitionOf(schema, "2019-12-31"), PartitionOf(schema, "2020-01-01"));
}

TEST(RangePartitioningTest, RegistryValidatesBoundaries) {
  SchemaRegistry registry;
  DatabaseSchema wrong_count{"a", DatabaseSchema::Partitioning::kRange, 4, 2,
                             {"m"}};
  EXPECT_FALSE(registry.CreateDatabase(wrong_count).ok());
  DatabaseSchema unsorted{"b", DatabaseSchema::Partitioning::kRange, 3, 2,
                          {"z", "a"}};
  EXPECT_FALSE(registry.CreateDatabase(unsorted).ok());
  DatabaseSchema good{"c", DatabaseSchema::Partitioning::kRange, 3, 2,
                      {"h", "p"}};
  EXPECT_TRUE(registry.CreateDatabase(good).ok());
}

class PartitioningPropertyTest
    : public ::testing::TestWithParam<DatabaseSchema::Partitioning> {};

TEST_P(PartitioningPropertyTest, DeterministicAndInRange) {
  DatabaseSchema schema{"db", GetParam(), 8, 2};
  if (GetParam() == DatabaseSchema::Partitioning::kRange) {
    schema.range_boundaries = {"b", "d", "f", "h", "j", "l", "n"};
  }
  Random rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = rng.Bytes(1 + rng.Uniform(12));
    const int p = PartitionOf(schema, key);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, schema.num_partitions);
    EXPECT_EQ(p, PartitionOf(schema, key));  // deterministic
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PartitioningPropertyTest,
    ::testing::Values(DatabaseSchema::Partitioning::kHash,
                      DatabaseSchema::Partitioning::kUnpartitioned,
                      DatabaseSchema::Partitioning::kRange));

// ---------------------------------------------------------------------------
// Randomized failover schedules: acknowledged writes always survive
// ---------------------------------------------------------------------------

struct FailoverScenario {
  uint64_t seed;
  int nodes;
  int partitions;
  int kills;  // node kills spread through the write stream
};

class FailoverPropertyTest
    : public ::testing::TestWithParam<FailoverScenario> {};

TEST_P(FailoverPropertyTest, AcknowledgedWritesSurviveAnyKillSchedule) {
  const FailoverScenario scenario = GetParam();
  net::Network network;
  zk::ZooKeeper zookeeper;
  SystemClock* clock = SystemClock::Default();
  SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase({"db", DatabaseSchema::Partitioning::kHash,
                           scenario.partitions, 2}));
  ASSERT_OK(registry.CreateTable("db", {"docs", 0}));
  ASSERT_OK(registry.PostDocumentSchema("db", "docs", R"({
    "type":"record","name":"Doc","fields":[{"name":"v","type":"int"}]})"));
  EspressoRelay relay;
  helix::HelixController controller("c", &zookeeper);
  ASSERT_OK(controller.AddResource({"db", scenario.partitions, 2}));
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::map<std::string, zk::SessionId> sessions;
  for (int i = 0; i < scenario.nodes; ++i) {
    auto node = std::make_unique<StorageNode>("esn-" + std::to_string(i),
                                              &registry, &relay, &network,
                                              clock);
    auto* raw = node.get();
    raw->SetMasterLookup([&controller](const std::string& db, int p) {
      return controller.MasterOf(db, p);
    });
    auto session = controller.ConnectParticipant(
        raw->name(),
        [raw](const helix::Transition& t) { return raw->HandleTransition(t); });
    sessions[raw->name()] = session.value();
    nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  Router router("router", &registry, &controller, &network);

  Random rng(scenario.seed);
  std::map<std::string, int> acked;  // uri -> last acknowledged value
  std::set<std::string> killed;
  int kills_left = scenario.kills;
  for (int i = 0; i < 300; ++i) {
    const std::string uri = "/db/docs/r" + std::to_string(rng.Uniform(50));
    auto doc = avro::Datum::Record("Doc");
    doc->SetField("v", avro::Datum::Int(i));
    if (router.PutDocument(uri, *doc).ok()) acked[uri] = i;

    // Kill a random live node at random points (keep at least one alive).
    if (kills_left > 0 && rng.Bernoulli(0.02) &&
        killed.size() + 1 < nodes.size()) {
      std::string victim;
      for (auto& node : nodes) {
        if (killed.count(node->name()) == 0 &&
            (victim.empty() || rng.Bernoulli(0.5))) {
          victim = node->name();
        }
      }
      network.SetNodeDown(victim);
      zookeeper.CloseSession(sessions[victim]);
      killed.insert(victim);
      --kills_left;
      controller.RebalanceToConvergence();
    }
  }
  controller.RebalanceToConvergence();

  // Every acknowledged write must read back with its last value (or newer —
  // values only grow here, so exact match).
  auto latest = registry.LatestDocumentSchema("db", "docs").value();
  for (const auto& [uri, value] : acked) {
    auto doc = router.GetDocument(uri);
    ASSERT_TRUE(doc.ok()) << uri << " after " << killed.size()
                          << " kills: " << doc.status().ToString();
    EXPECT_EQ(doc.value()->GetField("v")->int_value(), value) << uri;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FailoverPropertyTest,
    ::testing::Values(FailoverScenario{1, 3, 8, 1},
                      FailoverScenario{2, 3, 8, 1},
                      FailoverScenario{3, 4, 8, 2},
                      FailoverScenario{4, 4, 16, 2},
                      FailoverScenario{5, 5, 8, 3}));

// ---------------------------------------------------------------------------
// Schema-evolution chains: every version's documents stay readable
// ---------------------------------------------------------------------------

class EvolutionChainTest : public ::testing::TestWithParam<int> {};

TEST_P(EvolutionChainTest, DocumentsFromEveryVersionReadableUnderLatest) {
  SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase({"db", DatabaseSchema::Partitioning::kHash, 2, 1}));
  ASSERT_OK(registry.CreateTable("db", {"docs", 0}));

  const int chain_length = GetParam();
  // Version k has fields f0..fk, all but f0 defaulted.
  std::vector<std::string> payloads;  // one document written per version
  for (int version = 1; version <= chain_length; ++version) {
    std::string fields = R"({"name":"f0","type":"string"})";
    for (int f = 1; f < version; ++f) {
      fields += ",{\"name\":\"f" + std::to_string(f) +
                "\",\"type\":\"long\",\"default\":" + std::to_string(f) + "}";
    }
    const std::string schema_json =
        R"({"type":"record","name":"D","fields":[)" + fields + "]}";
    auto posted = registry.PostDocumentSchema("db", "docs", schema_json);
    ASSERT_TRUE(posted.ok()) << posted.status().ToString() << "\n"
                             << schema_json;
    ASSERT_EQ(posted.value(), version);

    // Write a document with this version's schema.
    auto schema = registry.GetDocumentSchema("db", "docs", version).value();
    auto doc = avro::Datum::Record("D");
    doc->SetField("f0", avro::Datum::String("v" + std::to_string(version)));
    for (int f = 1; f < version; ++f) {
      doc->SetField("f" + std::to_string(f), avro::Datum::Long(100 + f));
    }
    std::string payload;
    ASSERT_TRUE(avro::Encode(*schema, *doc, &payload).ok());
    payloads.push_back(std::move(payload));
  }

  // Every historical document resolves against the latest schema, with
  // defaults filling the fields its writer lacked.
  auto latest = registry.LatestDocumentSchema("db", "docs").value();
  for (int version = 1; version <= chain_length; ++version) {
    auto writer = registry.GetDocumentSchema("db", "docs", version).value();
    Slice payload(payloads[version - 1]);
    auto resolved = avro::DecodeResolved(*writer, *latest.second, &payload);
    ASSERT_TRUE(resolved.ok()) << "version " << version << ": "
                               << resolved.status().ToString();
    EXPECT_EQ(resolved.value()->GetField("f0")->string_value(),
              "v" + std::to_string(version));
    for (int f = version; f < chain_length; ++f) {
      // Fields added after this document was written: default values.
      auto field = resolved.value()->GetField("f" + std::to_string(f));
      ASSERT_NE(field, nullptr);
      EXPECT_EQ(field->long_value(), f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, EvolutionChainTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace lidi::espresso
