// Tests for the API-surface extensions: Voldemort server-side routing
// (Figure II.1's pluggable routing relocated to the server), Espresso
// conditional GET (Table IV.1's etag), and Kafka message streams (the
// createMessageStreams API of V.A).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// Voldemort server-side routing
// ---------------------------------------------------------------------------

class ServerRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<voldemort::Node> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
    }
    metadata_ = std::make_shared<voldemort::ClusterMetadata>(
        voldemort::Cluster::Uniform(nodes, 12));
    voldemort::StoreDefinition def{"s", 3, 2, 2};
    for (int i = 0; i < 3; ++i) {
      servers_.push_back(std::make_unique<voldemort::VoldemortServer>(
          i, metadata_, &network_));
      ASSERT_OK(servers_.back()->AddStore("s"));
      ASSERT_TRUE(
          servers_.back()->EnableServerSideRouting(def, &clock_).ok());
      addresses_.push_back(servers_.back()->address());
    }
  }

  net::Network network_;
  ManualClock clock_;
  std::shared_ptr<voldemort::ClusterMetadata> metadata_;
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers_;
  std::vector<net::Address> addresses_;
};

TEST_F(ServerRoutingTest, ThinClientPutGetDeleteWithoutTopology) {
  voldemort::ThinClient thin("thin", "s", addresses_, &network_);
  ASSERT_TRUE(thin.Put("k", {voldemort::VectorClock{}, "v1"}).ok());
  auto versions = thin.Get("k");
  ASSERT_TRUE(versions.ok()) << versions.status().ToString();
  ASSERT_EQ(versions.value().size(), 1u);
  EXPECT_EQ(versions.value()[0].value, "v1");

  // Update with the read clock; stale clock rejected — the optimistic
  // concurrency contract survives the extra hop.
  ASSERT_TRUE(thin.Put("k", {versions.value()[0].version, "v2"}).ok());
  EXPECT_TRUE(thin.Put("k", {versions.value()[0].version, "v3"})
                  .IsObsoleteVersion());

  auto final_versions = thin.Get("k");
  ASSERT_TRUE(final_versions.ok());
  ASSERT_TRUE(thin.Delete("k", final_versions.value()[0].version).ok());
  EXPECT_TRUE(thin.Get("k").status().IsNotFound());
}

TEST_F(ServerRoutingTest, AnyNodeAnswersForAnyKey) {
  // Hit each node directly for the same key: all must serve it, because the
  // contacted node coordinates (the client needs zero topology).
  voldemort::ThinClient seed("seed", "s", addresses_, &network_);
  ASSERT_TRUE(seed.Put("shared-key", {voldemort::VectorClock{}, "v"}).ok());
  for (const auto& address : addresses_) {
    voldemort::ThinClient single("single", "s", {address}, &network_);
    auto versions = single.Get("shared-key");
    ASSERT_TRUE(versions.ok()) << address;
    EXPECT_EQ(versions.value()[0].value, "v");
  }
}

TEST_F(ServerRoutingTest, ClientAndServerRoutingInteroperate) {
  // The same store accessed through both routing modes sees one history —
  // the "interchange modules" claim of Figure II.1.
  voldemort::StoreClient fat("fat", {"s", 3, 2, 2}, metadata_, &network_,
                             &clock_);
  voldemort::ThinClient thin("thin", "s", addresses_, &network_);
  ASSERT_TRUE(fat.PutValue("k", "from-fat").ok());
  auto via_thin = thin.Get("k");
  ASSERT_TRUE(via_thin.ok());
  EXPECT_EQ(via_thin.value()[0].value, "from-fat");
  ASSERT_TRUE(thin.Put("k", {via_thin.value()[0].version, "from-thin"}).ok());
  auto via_fat = fat.Get("k");
  ASSERT_TRUE(via_fat.ok());
  ASSERT_EQ(via_fat.value().size(), 1u);
  EXPECT_EQ(via_fat.value()[0].value, "from-thin");
}

TEST_F(ServerRoutingTest, ThinClientFailsOverDeadNodes) {
  voldemort::ThinClient thin("thin", "s", addresses_, &network_);
  ASSERT_TRUE(thin.Put("k", {voldemort::VectorClock{}, "v"}).ok());
  network_.SetNodeDown(addresses_[0]);
  // Round-robin starts wherever it is; all keys still resolvable through
  // the two live coordinators.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(thin.Get("k").ok()) << "attempt " << i;
  }
}

// ---------------------------------------------------------------------------
// Espresso conditional GET
// ---------------------------------------------------------------------------

TEST(ConditionalGetTest, NotModifiedSkipsPayload) {
  net::Network network;
  zk::ZooKeeper zookeeper;
  espresso::SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase({"db", espresso::DatabaseSchema::Partitioning::kHash,
                           4, 1}));
  ASSERT_OK(registry.CreateTable("db", {"docs", 0}));
  ASSERT_OK(registry.PostDocumentSchema("db", "docs", R"({
    "type":"record","name":"D","fields":[{"name":"v","type":"string"}]})"));
  espresso::EspressoRelay relay;
  helix::HelixController controller("c", &zookeeper);
  ASSERT_OK(controller.AddResource({"db", 4, 1}));
  espresso::StorageNode node("esn-0", &registry, &relay, &network,
                             SystemClock::Default());
  ASSERT_OK(controller.ConnectParticipant(
      "esn-0",
      [&node](const helix::Transition& t) { return node.HandleTransition(t); }));
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);

  auto doc = avro::Datum::Record("D");
  doc->SetField("v", avro::Datum::String("first"));
  auto etag = router.PutDocument("/db/docs/r1", *doc);
  ASSERT_TRUE(etag.ok());

  // Matching etag: not modified, no payload.
  auto unchanged = router.GetRecordIfModified("/db/docs/r1", etag.value());
  ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
  EXPECT_FALSE(unchanged.value().has_value());

  // Stale etag: full record returned.
  auto doc2 = avro::Datum::Record("D");
  doc2->SetField("v", avro::Datum::String("second"));
  ASSERT_TRUE(router.PutDocument("/db/docs/r1", *doc2).ok());
  auto changed = router.GetRecordIfModified("/db/docs/r1", etag.value());
  ASSERT_TRUE(changed.ok());
  ASSERT_TRUE(changed.value().has_value());
  EXPECT_NE(changed.value()->etag, etag.value());
  EXPECT_FALSE(changed.value()->payload.empty());

  // Empty etag behaves as an unconditional GET.
  auto unconditional = router.GetRecordIfModified("/db/docs/r1", "");
  ASSERT_TRUE(unconditional.ok());
  EXPECT_TRUE(unconditional.value().has_value());

  // Missing documents still report NotFound.
  EXPECT_TRUE(
      router.GetRecordIfModified("/db/docs/ghost", "x").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Kafka message streams
// ---------------------------------------------------------------------------

TEST(MessageStreamsTest, StreamsPartitionTheSubscription) {
  ManualClock clock;
  zk::ZooKeeper zookeeper;
  net::Network network;
  kafka::Broker broker(0, &zookeeper, &network, &clock, {});
  ASSERT_OK(broker.CreateTopic("t", 4));
  kafka::Producer producer("p", &zookeeper, &network);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(producer.Send("t", "m" + std::to_string(i)).ok());
  }
  kafka::Consumer consumer("c", "g", &zookeeper, &network);
  ASSERT_TRUE(consumer.Subscribe("t").ok());

  auto streams = consumer.CreateMessageStreams("t", 2);
  ASSERT_EQ(streams.size(), 2u);
  std::multiset<std::string> stream0, stream1;
  for (int round = 0; round < 200; ++round) {
    auto batch0 = streams[0].Poll();
    auto batch1 = streams[1].Poll();
    ASSERT_TRUE(batch0.ok());
    ASSERT_TRUE(batch1.ok());
    for (auto& m : batch0.value()) stream0.insert(m.payload);
    for (auto& m : batch1.value()) stream1.insert(m.payload);
  }
  // Together: everything exactly once; individually: disjoint non-empty.
  EXPECT_EQ(stream0.size() + stream1.size(), 80u);
  EXPECT_FALSE(stream0.empty());
  EXPECT_FALSE(stream1.empty());
  for (const auto& payload : stream0) {
    EXPECT_EQ(stream1.count(payload), 0u);
  }
}

TEST(MessageStreamsTest, IteratorNextDeliversAndTimesOut) {
  ManualClock clock;
  zk::ZooKeeper zookeeper;
  net::Network network;
  kafka::Broker broker(0, &zookeeper, &network, &clock, {});
  ASSERT_OK(broker.CreateTopic("t", 1));
  kafka::Producer producer("p", &zookeeper, &network);
  ASSERT_OK(producer.Send("t", "only"));
  kafka::Consumer consumer("c", "g", &zookeeper, &network);
  ASSERT_OK(consumer.Subscribe("t"));
  auto streams = consumer.CreateMessageStreams("t", 1);
  auto m = streams[0].Next();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().payload, "only");
  // Stream is drained: Next runs out of its poll budget.
  EXPECT_TRUE(streams[0].Next(/*max_polls=*/3).status().IsTimeout());
}


// ---------------------------------------------------------------------------
// Zone-proximity read affinity (paper II.B: zones are "defined by a
// proximity list of distances from other zones")
// ---------------------------------------------------------------------------

TEST(ZoneAffinityTest, ReadsPreferTheClientsZoneThenProximityOrder) {
  net::Network network;
  ManualClock clock;
  // Three zones, two nodes each; zone 0 considers zone 1 nearer than zone 2.
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), i / 2});
  }
  std::vector<voldemort::Zone> zones = {
      {0, {1, 2}}, {1, {0, 2}}, {2, {1, 0}}};
  std::vector<int> ownership(24);
  for (int p = 0; p < 24; ++p) ownership[p] = p % 6;
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster(nodes, ownership, zones));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 6; ++i) {
    servers.push_back(std::make_unique<voldemort::VoldemortServer>(
        i, metadata, &network));
    ASSERT_OK(servers.back()->AddStore("s"));
  }

  voldemort::ClientOptions options;
  options.client_zone = 0;
  voldemort::StoreDefinition def{"s", 3, 1, 1, 0, 2};  // replicas span zones
  voldemort::StoreClient local("zone0-client", def, metadata, &network,
                               &clock, options);

  // Preference lists: any replica in zone 0 must come first; when zone 0
  // holds no replica, zone 1 must precede zone 2.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto preference = local.PreferenceList(key);
    int last_distance = -1;
    for (int node : preference) {
      const int zone = node / 2;
      const int distance = zone == 0 ? 0 : (zone == 1 ? 1 : 2);
      ASSERT_GE(distance, last_distance)
          << key << ": replica order violates proximity";
      last_distance = distance;
    }
  }

  // With R=1, reads whose replica set includes a zone-0 node never leave
  // the zone: verify via network traffic counters.
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(local.PutValue("k" + std::to_string(i), "v"));
  }
  network.ResetStats();
  int reads_with_local_replica = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto preference = local.PreferenceList(key);
    const bool has_local = preference[0] / 2 == 0;
    if (has_local) ++reads_with_local_replica;
    ASSERT_OK(local.Get(key));
  }
  int64_t remote_gets = 0;
  for (int node = 2; node < 6; ++node) {
    remote_gets +=
        network.GetStats(net::MakeAddress(net::Tier::kVoldemort, node)).calls_received;
  }
  // Remote zones serve only the keys with no zone-0 replica (plus their
  // share of read repairs, which this workload does not trigger).
  EXPECT_EQ(remote_gets, 100 - reads_with_local_replica);
  EXPECT_GT(reads_with_local_replica, 0);
}

}  // namespace
}  // namespace lidi
