#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/address.h"
#include "net/frame.h"
#include "net/transport.h"

namespace lidi {
namespace {

using net::CallOptions;
using net::TcpTransport;
using net::TcpTransportOptions;
using net::Transport;

constexpr char kServer[] = "server-a";
constexpr char kClient[] = "client-1";

void RegisterEcho(Transport* t, const std::string& addr) {
  t->Register(addr, "echo", [](Slice req) -> Result<std::string> {
    return "echo:" + req.ToString();
  });
}

TEST(TcpTransportTest, CallReachesHandlerOverRealSockets) {
  TcpTransport t;
  RegisterEcho(&t, kServer);
  ASSERT_GT(t.ListenPort(kServer), 0);  // a real kernel listener exists
  auto r = t.Call(kClient, kServer, "echo", "hi");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "echo:hi");
  EXPECT_EQ(t.total_calls(), 1);
  EXPECT_EQ(t.GetStats(kClient).calls_sent, 1);
  EXPECT_EQ(t.GetStats(kServer).calls_received, 1);
}

TEST(TcpTransportTest, PayloadPathCarriesPinnedResponse) {
  TcpTransport t;
  const std::string big(256 * 1024, 'k');
  t.RegisterPayload(kServer, "fetch",
                    [&big](Slice) -> Result<PinnedSlice> {
                      return PinnedSlice::Own(std::string(big));
                    });
  auto r = t.CallPayload(kClient, kServer, "fetch", "");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), big.size());
  EXPECT_EQ(r.value().ToString(), big);
}

TEST(TcpTransportTest, HandlerErrorStatusTravelsBack) {
  TcpTransport t;
  t.Register(kServer, "fail", [](Slice) -> Result<std::string> {
    return Status::ObsoleteVersion("stale write");
  });
  auto r = t.Call(kClient, kServer, "fail", "");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsObsoleteVersion());
  EXPECT_EQ(r.status().message(), "stale write");
}

TEST(TcpTransportTest, CrossTransportCallViaStaticPeer) {
  TcpTransport server;
  RegisterEcho(&server, kServer);
  TcpTransport client;
  client.AddStaticPeer(kServer, "127.0.0.1", server.ListenPort(kServer));
  auto r = client.Call(kClient, kServer, "echo", "cross");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "echo:cross");
}

TEST(TcpTransportTest, ConcurrentCallersShareThePool) {
  TcpTransportOptions options;
  options.worker_threads = 4;
  options.connections_per_peer = 2;
  TcpTransport t(options);
  RegisterEcho(&t, kServer);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, &ok, i] {
      for (int j = 0; j < kCallsPerThread; ++j) {
        const std::string body =
            std::to_string(i) + ":" + std::to_string(j);
        auto r = t.Call("caller-" + std::to_string(i), kServer, "echo", body);
        if (r.ok() && r.value() == "echo:" + body) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(t.total_calls(), kThreads * kCallsPerThread);
}

TEST(TcpTransportTest, PeerDisconnectMidCallFailsUnavailable) {
  TcpTransport server;
  Mutex mu;
  CondVar cv;
  bool in_handler = false;
  bool release_handler = false;
  server.Register(kServer, "slow",
                  [&](Slice) -> Result<std::string> {
                    MutexLock lock(&mu);
                    in_handler = true;
                    cv.NotifyAll();
                    while (!release_handler) cv.Wait(&mu);
                    return std::string("late");
                  });

  TcpTransport client;
  client.AddStaticPeer(kServer, "127.0.0.1", server.ListenPort(kServer));

  Status observed = Status::OK();
  std::thread caller([&] {
    observed = client.Call(kClient, kServer, "slow", "").status();
  });
  {
    MutexLock lock(&mu);
    while (!in_handler) cv.Wait(&mu);
  }
  // The peer "crashes" while the call is parked awaiting its response.
  client.DropConnections(kServer);
  caller.join();
  EXPECT_TRUE(observed.IsUnavailable()) << observed.ToString();

  {
    MutexLock lock(&mu);
    release_handler = true;
    cv.NotifyAll();
  }
  // The pool redials on the next call (no lingering poisoned state).
  server.Register(kServer, "echo", [](Slice req) -> Result<std::string> {
    return "echo:" + req.ToString();
  });
  auto r = client.Call(kClient, kServer, "echo", "again");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(TcpTransportTest, DeadlineExpiresWhileHandlerRuns) {
  TcpTransport t;
  t.Register(kServer, "slow", [](Slice) -> Result<std::string> {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return std::string("late");
  });
  CallOptions options;
  options.deadline_micros = SystemClock::Default()->NowMicros() + 50'000;
  auto r = t.Call(kClient, kServer, "slow", "", options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  EXPECT_EQ(r.status().message(),
            std::string("deadline budget exhausted calling ") + kServer);
}

TEST(TcpTransportTest, AlreadyExpiredDeadlineFailsBeforeDialing) {
  TcpTransport t;
  CallOptions options;
  options.deadline_micros = 1;  // epochs ago on the steady clock
  auto r = t.Call(kClient, "never-registered", "m", "", options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
}

TEST(TcpTransportTest, TraceAndDeadlinePropagateThroughFrameHeader) {
  TcpTransport t;
  std::atomic<uint64_t> seen_trace{0};
  std::atomic<int64_t> seen_deadline{0};
  t.Register(kServer, "traced",
             [&](Slice) -> Result<std::string> {
               const obs::TraceContext& ambient = net::internal::AmbientTrace();
               seen_trace = ambient.trace_id;
               seen_deadline = ambient.deadline_micros;
               return std::string("ok");
             });
  obs::TraceContext root = t.metrics()->StartTrace(
      SystemClock::Default()->NowMicros() + 5'000'000);
  CallOptions options;
  options.trace = &root;
  auto r = t.Call(kClient, kServer, "traced", "", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(seen_trace.load(), root.trace_id);
  EXPECT_EQ(seen_deadline.load(), root.deadline_micros);
}

/// Adversarial wire input through a raw kernel socket: garbage and corrupted
/// frames must poison only that connection (server closes it), never the
/// transport.
class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sin.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }
  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  /// Reads until the peer closes; returns everything received.
  std::string ReadToEof() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }
  /// Reads until at least one full frame decodes (or EOF).
  bool ReadFrame(net::Frame* frame) {
    std::string buf;
    char chunk[4096];
    while (true) {
      size_t consumed = 0;
      std::string error;
      if (net::DecodeFrame(Slice(buf), net::kDefaultMaxFrameBytes, frame,
                           &consumed, &error) == net::DecodeStatus::kOk) {
        return true;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(TcpTransportTest, RawSocketSpeaksTheFrameProtocol) {
  TcpTransport t;
  RegisterEcho(&t, kServer);
  RawSocket sock(t.ListenPort(kServer));
  ASSERT_TRUE(sock.connected());

  net::Frame req;
  req.type = net::Frame::kRequest;
  req.correlation_id = 77;
  req.from = "raw-client";
  req.to = kServer;
  req.method = "echo";
  const std::string payload = "raw";
  sock.Send(net::EncodeFrameToString(req, Slice(payload)));

  net::Frame resp;
  ASSERT_TRUE(sock.ReadFrame(&resp));
  EXPECT_EQ(resp.type, net::Frame::kResponse);
  EXPECT_EQ(resp.correlation_id, 77u);
  EXPECT_EQ(resp.status_code, Code::kOk);
  EXPECT_EQ(resp.payload, "echo:raw");
}

TEST(TcpTransportTest, CorruptFramePoisonsOnlyThatConnection) {
  TcpTransport t;
  RegisterEcho(&t, kServer);

  net::Frame req;
  req.type = net::Frame::kRequest;
  req.from = "raw";
  req.to = kServer;
  req.method = "echo";
  std::string wire = net::EncodeFrameToString(req, Slice("x"));
  wire.back() ^= 0x1;  // break the CRC

  RawSocket bad(t.ListenPort(kServer));
  ASSERT_TRUE(bad.connected());
  bad.Send(wire);
  EXPECT_EQ(bad.ReadToEof(), "");  // server closed without responding

  // The transport itself still serves well-formed callers.
  auto r = t.Call(kClient, kServer, "echo", "still-alive");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "echo:still-alive");
}

TEST(TcpTransportTest, OversizedFrameIsRejectedAtTheWire) {
  TcpTransportOptions options;
  options.max_frame_bytes = 1 << 16;
  TcpTransport t(options);
  RegisterEcho(&t, kServer);

  RawSocket sock(t.ListenPort(kServer));
  ASSERT_TRUE(sock.connected());
  // A length prefix claiming 1 GiB: the server must drop the connection
  // after the 4-byte read, not allocate.
  std::string prefix(4, '\0');
  const uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  sock.Send(prefix);
  EXPECT_EQ(sock.ReadToEof(), "");
}

TEST(TcpTransportTest, ShutdownFailsSubsequentCallsAndJoinsCleanly) {
  auto t = std::make_unique<TcpTransport>();
  RegisterEcho(t.get(), kServer);
  ASSERT_TRUE(t->Call(kClient, kServer, "echo", "pre").ok());
  t->Shutdown();
  auto r = t->Call(kClient, kServer, "echo", "post");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(r.status().message(), "transport shut down");
  t.reset();  // destructor joins reactors and workers
}

TEST(TcpTransportTest, TierCodeRunsUnmodifiedOverTcp) {
  // The satellite claim in one test: a handler registered through the same
  // Transport* surface the tiers use, addressed through the typed factory.
  TcpTransport t;
  Transport* transport = &t;
  const net::Address broker = net::MakeAddress(net::Tier::kKafkaBroker, 0);
  transport->Register(broker, "kafka.produce",
                      [](Slice req) -> Result<std::string> {
                        return "ack:" + std::to_string(req.size());
                      });
  auto r = transport->Call("producer-0", broker, "kafka.produce", "abc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "ack:3");
}

}  // namespace
}  // namespace lidi
