// Property tests for the Avro codec: random schemas, random conforming
// datums, encode/decode round trips, and evolution invariants.

#include <gtest/gtest.h>

#include "avro/codec.h"
#include "common/random.h"

namespace lidi::avro {
namespace {

/// Generates a random schema of bounded depth.
SchemaPtr RandomSchema(Random* rng, int depth) {
  const int kind =
      depth <= 0 ? static_cast<int>(rng->Uniform(8))
                 : static_cast<int>(rng->Uniform(12));
  switch (kind) {
    case 0: return Schema::Primitive(Type::kNull);
    case 1: return Schema::Primitive(Type::kBoolean);
    case 2: return Schema::Primitive(Type::kInt);
    case 3: return Schema::Primitive(Type::kLong);
    case 4: return Schema::Primitive(Type::kFloat);
    case 5: return Schema::Primitive(Type::kDouble);
    case 6: return Schema::Primitive(Type::kString);
    case 7: return Schema::Primitive(Type::kBytes);
    case 8: return Schema::Array(RandomSchema(rng, depth - 1));
    case 9: return Schema::Map(RandomSchema(rng, depth - 1));
    case 10: {
      std::vector<Field> fields;
      const int n = 1 + static_cast<int>(rng->Uniform(4));
      for (int i = 0; i < n; ++i) {
        fields.push_back(
            Field{"f" + std::to_string(i), RandomSchema(rng, depth - 1)});
      }
      return Schema::Record("R" + std::to_string(rng->Uniform(100)),
                            std::move(fields));
    }
    default: {
      // Union: null + one non-null branch keeps branches distinguishable.
      std::vector<SchemaPtr> branches;
      branches.push_back(Schema::Primitive(Type::kNull));
      branches.push_back(Schema::Primitive(
          rng->Bernoulli(0.5) ? Type::kString : Type::kLong));
      return Schema::Union(std::move(branches));
    }
  }
}

/// Generates a random datum conforming to `schema`.
DatumPtr RandomDatum(const Schema& schema, Random* rng) {
  switch (schema.type()) {
    case Type::kNull: return Datum::Null();
    case Type::kBoolean: return Datum::Boolean(rng->Bernoulli(0.5));
    case Type::kInt:
      return Datum::Int(static_cast<int32_t>(rng->Next()));
    case Type::kLong: return Datum::Long(static_cast<int64_t>(rng->Next()));
    case Type::kFloat:
      return Datum::Float(static_cast<float>(rng->NextDouble()) * 100);
    case Type::kDouble: return Datum::Double(rng->NextDouble() * 1e6);
    case Type::kString: return Datum::String(rng->Bytes(rng->Uniform(20)));
    case Type::kBytes: return Datum::Bytes(rng->Bytes(rng->Uniform(20)));
    case Type::kEnum:
      return Datum::Enum(0, schema.symbols()[0]);
    case Type::kArray: {
      auto arr = Datum::Array();
      const int n = static_cast<int>(rng->Uniform(4));
      for (int i = 0; i < n; ++i) {
        arr->items().push_back(RandomDatum(*schema.item_schema(), rng));
      }
      return arr;
    }
    case Type::kMap: {
      auto map = Datum::Map();
      const int n = static_cast<int>(rng->Uniform(4));
      for (int i = 0; i < n; ++i) {
        map->entries()["key" + std::to_string(i)] =
            RandomDatum(*schema.value_schema(), rng);
      }
      return map;
    }
    case Type::kRecord: {
      auto rec = Datum::Record(schema.name());
      for (const Field& f : schema.fields()) {
        rec->SetField(f.name, RandomDatum(*f.schema, rng));
      }
      return rec;
    }
    case Type::kUnion: {
      const int branch =
          static_cast<int>(rng->Uniform(schema.branches().size()));
      return Datum::Union(branch,
                          RandomDatum(*schema.branches()[branch], rng));
    }
  }
  return Datum::Null();
}

class AvroPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AvroPropertyTest, EncodeDecodeRoundTripsRandomData) {
  Random rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const SchemaPtr schema = RandomSchema(&rng, 3);
    const DatumPtr datum = RandomDatum(*schema, &rng);
    std::string buf;
    ASSERT_TRUE(Encode(*schema, *datum, &buf).ok())
        << schema->ToJson() << " <- " << datum->ToString();
    Slice in(buf);
    auto decoded = Decode(*schema, &in);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << " schema "
                              << schema->ToJson();
    EXPECT_TRUE(in.empty());
    EXPECT_TRUE(decoded.value()->Equals(*datum))
        << "schema " << schema->ToJson() << "\n got " <<
        decoded.value()->ToString() << "\nwant " << datum->ToString();
  }
}

TEST_P(AvroPropertyTest, SchemaJsonRoundTripsRandomSchemas) {
  Random rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 100; ++trial) {
    const SchemaPtr schema = RandomSchema(&rng, 3);
    auto reparsed = ParseSchema(schema->ToJson());
    ASSERT_TRUE(reparsed.ok()) << schema->ToJson();
    EXPECT_EQ(reparsed.value()->ToJson(), schema->ToJson());
  }
}

TEST_P(AvroPropertyTest, TruncationNeverDecodesToSuccessWithLeftoverGarbage) {
  // Cutting random amounts off the tail must yield an error, never a
  // silently wrong value followed by a clean "ok" with exhausted input.
  Random rng(GetParam() * 131 + 3);
  for (int trial = 0; trial < 60; ++trial) {
    const SchemaPtr schema = RandomSchema(&rng, 2);
    const DatumPtr datum = RandomDatum(*schema, &rng);
    std::string buf;
    ASSERT_TRUE(Encode(*schema, *datum, &buf).ok());
    if (buf.empty()) continue;
    const size_t cut = rng.Uniform(buf.size());
    Slice in(buf.data(), cut);
    auto decoded = Decode(*schema, &in);
    if (decoded.ok()) {
      // A prefix may decode successfully only if it re-decodes to a datum
      // that encodes to exactly that prefix (self-delimiting value).
      std::string re;
      ASSERT_TRUE(Encode(*schema, *decoded.value(), &re).ok());
      EXPECT_EQ(re.size() + in.size(), cut);
    }
  }
}

TEST_P(AvroPropertyTest, AddingDefaultedFieldsIsAlwaysReadable) {
  // Evolution property (paper IV.A): any record schema extended with
  // defaulted fields can read all data written with the old schema.
  Random rng(GetParam() * 977 + 11);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Field> base_fields;
    const int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      base_fields.push_back(
          Field{"f" + std::to_string(i), RandomSchema(&rng, 1)});
    }
    auto writer = Schema::Record("R", base_fields);

    std::vector<Field> evolved_fields = base_fields;
    Field added;
    added.name = "added";
    added.schema = Schema::Primitive(Type::kLong);
    added.default_json = "42";
    evolved_fields.push_back(added);
    auto reader = Schema::Record("R", std::move(evolved_fields));

    const DatumPtr datum = RandomDatum(*writer, &rng);
    std::string buf;
    ASSERT_TRUE(Encode(*writer, *datum, &buf).ok());
    Slice in(buf);
    auto resolved = DecodeResolved(*writer, *reader, &in);
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    ASSERT_NE(resolved.value()->GetField("added"), nullptr);
    EXPECT_EQ(resolved.value()->GetField("added")->long_value(), 42);
    // Old fields survive untouched.
    for (const Field& f : writer->fields()) {
      ASSERT_NE(resolved.value()->GetField(f.name), nullptr) << f.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvroPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace lidi::avro
