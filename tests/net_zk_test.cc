#include <gtest/gtest.h>

#include <atomic>

#include "net/network.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

using net::Network;
using zk::CreateMode;
using zk::EventType;
using zk::WatchEvent;
using zk::ZooKeeper;

TEST(NetworkTest, CallReachesHandler) {
  Network nw;
  nw.Register("server", "echo", [](Slice req) -> Result<std::string> {
    return "echo:" + req.ToString();
  });
  auto r = nw.Call("client", "server", "echo", "hi");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "echo:hi");
}

TEST(NetworkTest, UnknownEndpointAndMethod) {
  Network nw;
  EXPECT_TRUE(nw.Call("c", "ghost", "m", "").status().code() ==
              Code::kNotFound);
  nw.Register("s", "a", [](Slice) -> Result<std::string> { return std::string(""); });
  EXPECT_TRUE(nw.Call("c", "s", "b", "").status().code() == Code::kNotFound);
}

TEST(NetworkTest, DownNodeUnavailableAndRestarts) {
  Network nw;
  nw.Register("s", "m", [](Slice) -> Result<std::string> { return std::string("ok"); });
  nw.SetNodeDown("s");
  EXPECT_FALSE(nw.IsNodeUp("s"));
  EXPECT_TRUE(nw.Call("c", "s", "m", "").status().IsUnavailable());
  nw.SetNodeUp("s");
  EXPECT_TRUE(nw.Call("c", "s", "m", "").ok());
}

TEST(NetworkTest, PartitionBlocksCrossTraffic) {
  Network nw;
  nw.Register("a", "m", [](Slice) -> Result<std::string> { return std::string("a"); });
  nw.Register("b", "m", [](Slice) -> Result<std::string> { return std::string("b"); });
  nw.PartitionOff({"a", "client_a"});
  EXPECT_TRUE(nw.Call("client_a", "b", "m", "").status().IsUnavailable());
  EXPECT_TRUE(nw.Call("client_a", "a", "m", "").ok());
  nw.Heal();
  EXPECT_TRUE(nw.Call("client_a", "b", "m", "").ok());
}

TEST(NetworkTest, DropProbabilityCausesTimeouts) {
  Network nw(/*fault_seed=*/7);
  nw.Register("s", "m", [](Slice) -> Result<std::string> { return std::string("ok"); });
  nw.SetDropProbability(0.5);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!nw.Call("c", "s", "m", "").ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

TEST(NetworkTest, StatsTrackTraffic) {
  Network nw;
  nw.Register("s", "m", [](Slice) -> Result<std::string> { return std::string("xyz"); });
  ASSERT_OK(nw.Call("c", "s", "m", "12345"));
  auto server = nw.GetStats("s");
  auto client = nw.GetStats("c");
  EXPECT_EQ(server.calls_received, 1);
  EXPECT_EQ(server.bytes_received, 5);
  EXPECT_EQ(client.calls_sent, 1);
  EXPECT_EQ(nw.total_calls(), 1);
  nw.ResetStats();
  EXPECT_EQ(nw.GetStats("s").calls_received, 0);
}

TEST(NetworkTest, NestedCallsFromHandler) {
  Network nw;
  nw.Register("backend", "m", [](Slice) -> Result<std::string> { return std::string("B"); });
  nw.Register("frontend", "m", [&nw](Slice req) -> Result<std::string> {
    auto r = nw.Call("frontend", "backend", "m", req);
    if (!r.ok()) return r.status();
    return "F+" + r.value();
  });
  auto r = nw.Call("client", "frontend", "m", "");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "F+B");
}

// --- ZooKeeper ---

TEST(ZkTest, CreateGetSetDelete) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/a", "v1", CreateMode::kPersistent).ok());
  EXPECT_EQ(zk.Get("/a").value(), "v1");
  ASSERT_TRUE(zk.Set("/a", "v2").ok());
  EXPECT_EQ(zk.Get("/a").value(), "v2");
  ASSERT_TRUE(zk.Delete("/a").ok());
  EXPECT_FALSE(zk.Get("/a").ok());
}

TEST(ZkTest, CreateRequiresParent) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  EXPECT_EQ(zk.Create(s, "/a/b", "", CreateMode::kPersistent).code(),
            Code::kNotFound);
  ASSERT_TRUE(zk.Create(s, "/a", "", CreateMode::kPersistent).ok());
  EXPECT_TRUE(zk.Create(s, "/a/b", "", CreateMode::kPersistent).ok());
  EXPECT_EQ(zk.Create(s, "/a", "", CreateMode::kPersistent).code(),
            Code::kAlreadyExists);
}

TEST(ZkTest, CreateRecursiveMakesParents) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_TRUE(
      zk.CreateRecursive(s, "/x/y/z", "data", CreateMode::kPersistent).ok());
  EXPECT_TRUE(zk.Exists("/x"));
  EXPECT_TRUE(zk.Exists("/x/y"));
  EXPECT_EQ(zk.Get("/x/y/z").value(), "data");
}

TEST(ZkTest, DeleteWithChildrenRejected) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_OK(zk.Create(s, "/p", "", CreateMode::kPersistent));
  ASSERT_OK(zk.Create(s, "/p/c", "", CreateMode::kPersistent));
  EXPECT_FALSE(zk.Delete("/p").ok());
  zk.DeleteRecursive("/p");
  EXPECT_FALSE(zk.Exists("/p"));
}

TEST(ZkTest, GetChildrenSorted) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_OK(zk.Create(s, "/g", "", CreateMode::kPersistent));
  ASSERT_OK(zk.Create(s, "/g/b", "", CreateMode::kPersistent));
  ASSERT_OK(zk.Create(s, "/g/a", "", CreateMode::kPersistent));
  ASSERT_OK(zk.Create(s, "/g/a/nested", "", CreateMode::kPersistent));
  auto children = zk.GetChildren("/g");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children.value(), (std::vector<std::string>{"a", "b"}));
}

TEST(ZkTest, SequentialNodesIncrement) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_OK(zk.Create(s, "/q", "", CreateMode::kPersistent));
  std::string p1, p2;
  ASSERT_TRUE(
      zk.Create(s, "/q/n-", "", CreateMode::kPersistentSequential, &p1).ok());
  ASSERT_TRUE(
      zk.Create(s, "/q/n-", "", CreateMode::kPersistentSequential, &p2).ok());
  EXPECT_EQ(p1, "/q/n-0000000000");
  EXPECT_EQ(p2, "/q/n-0000000001");
}

TEST(ZkTest, EphemeralsVanishOnSessionClose) {
  ZooKeeper zk;
  auto s1 = zk.CreateSession();
  auto s2 = zk.CreateSession();
  ASSERT_OK(zk.Create(s1, "/live", "", CreateMode::kPersistent));
  ASSERT_OK(zk.Create(s1, "/live/a", "", CreateMode::kEphemeral));
  ASSERT_OK(zk.Create(s2, "/live/b", "", CreateMode::kEphemeral));
  EXPECT_EQ(zk.GetChildren("/live").value().size(), 2u);
  zk.CloseSession(s1);
  auto children = zk.GetChildren("/live").value();
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "b");
}

TEST(ZkTest, DataWatchFiresOnceOnChange) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_OK(zk.Create(s, "/w", "v0", CreateMode::kPersistent));
  std::atomic<int> fired{0};
  EventType seen{};
  ASSERT_OK(zk.Get("/w", [&](const WatchEvent& e) {
    fired++;
    seen = e.type;
  }));
  ASSERT_OK(zk.Set("/w", "v1"));
  ASSERT_OK(zk.Set("/w", "v2"));  // watch is one-shot: second set must not re-fire
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(seen, EventType::kNodeDataChanged);
}

TEST(ZkTest, ChildWatchFiresOnCreateAndDelete) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_OK(zk.Create(s, "/cw", "", CreateMode::kPersistent));
  std::atomic<int> fired{0};
  ASSERT_OK(zk.GetChildren("/cw", [&](const WatchEvent&) { fired++; }));
  ASSERT_OK(zk.Create(s, "/cw/x", "", CreateMode::kPersistent));
  EXPECT_EQ(fired.load(), 1);
  ASSERT_OK(zk.GetChildren("/cw", [&](const WatchEvent&) { fired++; }));
  ASSERT_OK(zk.Delete("/cw/x"));
  EXPECT_EQ(fired.load(), 2);
}

TEST(ZkTest, ExistenceWatchFiresOnCreation) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  std::atomic<int> fired{0};
  EXPECT_FALSE(zk.Exists("/later", [&](const WatchEvent& e) {
    if (e.type == EventType::kNodeCreated) fired++;
  }));
  ASSERT_OK(zk.Create(s, "/later", "", CreateMode::kPersistent));
  EXPECT_EQ(fired.load(), 1);
}

TEST(ZkTest, WatchFiresWhenEphemeralOwnerDies) {
  // This is the liveness-detection pattern Kafka consumers and Helix use.
  ZooKeeper zk;
  auto owner = zk.CreateSession();
  ASSERT_OK(zk.Create(owner, "/members", "", CreateMode::kPersistent));
  ASSERT_OK(zk.Create(owner, "/members/node1", "", CreateMode::kEphemeral));
  std::atomic<int> fired{0};
  ASSERT_OK(zk.GetChildren("/members", [&](const WatchEvent&) { fired++; }));
  zk.CloseSession(owner);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(zk.GetChildren("/members").value().empty());
}

TEST(ZkTest, CompareAndSet) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  ASSERT_OK(zk.Create(s, "/lock", "free", CreateMode::kPersistent));
  EXPECT_TRUE(zk.CompareAndSet("/lock", "free", "held-by-1").ok());
  EXPECT_TRUE(zk.CompareAndSet("/lock", "free", "held-by-2")
                  .IsObsoleteVersion());
  EXPECT_EQ(zk.Get("/lock").value(), "held-by-1");
}

TEST(ZkTest, BadPathsRejected) {
  ZooKeeper zk;
  auto s = zk.CreateSession();
  EXPECT_FALSE(zk.Create(s, "nope", "", CreateMode::kPersistent).ok());
  EXPECT_FALSE(zk.Create(s, "/trailing/", "", CreateMode::kPersistent).ok());
  EXPECT_FALSE(zk.Create(s, "", "", CreateMode::kPersistent).ok());
}

}  // namespace
}  // namespace lidi
