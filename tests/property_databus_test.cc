// Property tests for the Databus pipeline: randomized write/poll/bootstrap
// interleavings must always converge replicas to the source state, and the
// zk substrate is model-checked against a map.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "common/random.h"
#include "databus/bootstrap.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "net/network.h"
#include "sqlstore/database.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// Databus end-to-end convergence under random interleavings
// ---------------------------------------------------------------------------

class ReplicaState : public databus::Consumer {
 public:
  Status OnEvent(const databus::Event& event) override {
    if (event.op == databus::Event::Op::kDelete) {
      state.erase(event.key);
    } else {
      auto row = sqlstore::DecodeRow(event.payload);
      if (!row.ok()) return row.status();
      state[event.key] = row.value();
    }
    return Status::OK();
  }
  std::map<std::string, sqlstore::Row> state;
};

struct PipelineScenario {
  uint64_t seed;
  int64_t relay_capacity;
  int consumers;
  double delete_fraction;
};

class DatabusPropertyTest
    : public ::testing::TestWithParam<PipelineScenario> {};

TEST_P(DatabusPropertyTest, ReplicasConvergeToSourceUnderRandomSchedules) {
  const PipelineScenario scenario = GetParam();
  net::Network network;
  sqlstore::Database db("src");
  ASSERT_OK(db.CreateTable("t"));
  // The relay's ingest batch must fit its circular buffer, or events would
  // be evicted before any listener could see them (a deployment constraint:
  // buffer capacity bounds the downstream poll interval).
  databus::Relay relay(
      "relay", &db, &network,
      databus::RelayOptions{
          .buffer_capacity_events = scenario.relay_capacity,
          .poll_batch_transactions =
              std::max<int64_t>(1, scenario.relay_capacity / 2)});
  databus::BootstrapServer bootstrap("bootstrap", "relay", &network);

  std::vector<std::unique_ptr<ReplicaState>> replicas;
  std::vector<std::unique_ptr<databus::DatabusClient>> clients;
  for (int c = 0; c < scenario.consumers; ++c) {
    replicas.push_back(std::make_unique<ReplicaState>());
    clients.push_back(std::make_unique<databus::DatabusClient>(
        "c" + std::to_string(c), "relay", "bootstrap", &network,
        replicas.back().get()));
  }

  Random rng(scenario.seed);
  for (int step = 0; step < 2500; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.55) {
      const std::string key = "k" + std::to_string(rng.Uniform(120));
      if (rng.Bernoulli(scenario.delete_fraction)) {
        ASSERT_OK(db.Delete("t", key));
      } else {
        ASSERT_OK(db.Put("t", key, {{"v", std::to_string(step)}}));
      }
    } else if (action < 0.75) {
      ASSERT_OK(relay.PollOnce());
      // The bootstrap's log writer listens continuously (paper Fig III.3);
      // it must never fall behind the relay's circular buffer, so it runs
      // whenever the relay ingests.
      ASSERT_TRUE(bootstrap.PollRelayOnce().ok());
    } else if (action < 0.85) {
      if (rng.Bernoulli(0.5)) bootstrap.ApplyLogOnce();
    } else {
      const size_t c = rng.Uniform(clients.size());
      ASSERT_OK(clients[c]->PollOnce());  // may bootstrap if the relay evicted
    }
  }
  // Final drain: pump everything to the head.
  for (;;) {
    auto polled = relay.PollOnce();
    ASSERT_TRUE(polled.ok());
    auto fetched = bootstrap.PollRelayOnce();
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    if (polled.value() == 0 && fetched.value() == 0) break;
  }
  bootstrap.ApplyLogOnce();
  for (auto& client : clients) {
    ASSERT_TRUE(client->DrainToHead().ok());
  }

  std::map<std::string, sqlstore::Row> source;
  ASSERT_OK(db.Scan("t", [&source](const std::string& pk, const sqlstore::Row& row) {
    source[pk] = row;
    return true;
  }));
  for (size_t c = 0; c < replicas.size(); ++c) {
    EXPECT_EQ(replicas[c]->state, source)
        << "replica " << c << " diverged (seed " << scenario.seed << ")";
    EXPECT_EQ(clients[c]->events_skipped(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DatabusPropertyTest,
    ::testing::Values(PipelineScenario{1, 1 << 20, 1, 0.1},   // roomy relay
                      PipelineScenario{2, 64, 2, 0.1},        // evicting relay
                      PipelineScenario{3, 64, 3, 0.3},        // delete-heavy
                      PipelineScenario{4, 16, 2, 0.2},        // tiny relay
                      PipelineScenario{5, 256, 4, 0.05}));

// ---------------------------------------------------------------------------
// ZooKeeper model check: random ops vs a flat map model
// ---------------------------------------------------------------------------

class ZkModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZkModelTest, MatchesFlatModelUnderRandomOps) {
  zk::ZooKeeper zookeeper;
  auto session = zookeeper.CreateSession();
  std::map<std::string, std::string> model;  // path -> data

  Random rng(GetParam());
  auto random_path = [&rng]() {
    std::string path;
    const int depth = 1 + static_cast<int>(rng.Uniform(3));
    for (int d = 0; d < depth; ++d) {
      path += "/n" + std::to_string(rng.Uniform(5));
    }
    return path;
  };
  auto parent_of = [](const std::string& path) {
    const size_t pos = path.find_last_of('/');
    return pos == 0 ? std::string("/") : path.substr(0, pos);
  };

  for (int step = 0; step < 3000; ++step) {
    const std::string path = random_path();
    const double action = rng.NextDouble();
    if (action < 0.35) {
      const std::string data = "d" + std::to_string(step);
      const Status s =
          zookeeper.Create(session, path, data, zk::CreateMode::kPersistent);
      const std::string parent = parent_of(path);
      const bool parent_ok = parent == "/" || model.count(parent) > 0;
      if (model.count(path) > 0) {
        EXPECT_EQ(s.code(), Code::kAlreadyExists) << path;
      } else if (!parent_ok) {
        EXPECT_EQ(s.code(), Code::kNotFound) << path;
      } else {
        EXPECT_TRUE(s.ok()) << path << " " << s.ToString();
        model[path] = data;
      }
    } else if (action < 0.55) {
      const std::string data = "s" + std::to_string(step);
      const Status s = zookeeper.Set(path, data);
      if (model.count(path) > 0) {
        EXPECT_TRUE(s.ok());
        model[path] = data;
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else if (action < 0.75) {
      auto r = zookeeper.Get(path);
      if (model.count(path) > 0) {
        ASSERT_TRUE(r.ok()) << path;
        EXPECT_EQ(r.value(), model[path]);
      } else {
        EXPECT_TRUE(r.status().IsNotFound());
      }
    } else if (action < 0.9) {
      const Status s = zookeeper.Delete(path);
      const std::string prefix = path + "/";
      bool has_children = false;
      for (const auto& [p, d] : model) {
        if (p.compare(0, prefix.size(), prefix) == 0) has_children = true;
      }
      if (model.count(path) == 0) {
        EXPECT_TRUE(s.IsNotFound()) << path;
      } else if (has_children) {
        EXPECT_FALSE(s.ok()) << path;
      } else {
        EXPECT_TRUE(s.ok()) << path;
        model.erase(path);
      }
    } else {
      // Children listing must match the model exactly.
      auto children = zookeeper.GetChildren(path);
      std::vector<std::string> expected;
      const std::string prefix = path + "/";
      for (const auto& [p, d] : model) {
        if (p.compare(0, prefix.size(), prefix) == 0 &&
            p.find('/', prefix.size()) == std::string::npos) {
          expected.push_back(p.substr(prefix.size()));
        }
      }
      if (model.count(path) == 0 && path != "/") {
        EXPECT_FALSE(children.ok());
      } else {
        ASSERT_TRUE(children.ok());
        EXPECT_EQ(children.value(), expected) << path;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZkModelTest,
                         ::testing::Values(7, 14, 21, 28, 35));

}  // namespace
}  // namespace lidi
