#include <gtest/gtest.h>

#include <memory>

#include "databus/bootstrap.h"
#include "databus/client.h"
#include "databus/event.h"
#include "databus/relay.h"
#include "net/network.h"
#include "sqlstore/database.h"

#include "status_test_util.h"

namespace lidi::databus {
namespace {

using sqlstore::Database;
using sqlstore::Row;

TEST(EventCodecTest, RoundTrip) {
  Event e;
  e.scn = 42;
  e.source = "profiles";
  e.key = "m1";
  e.op = Event::Op::kDelete;
  e.partition = 7;
  e.end_of_txn = false;
  e.payload = "data";
  std::string buf;
  EncodeEvent(e, &buf);
  Slice in(buf);
  auto decoded = DecodeEvent(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), e);
  EXPECT_TRUE(in.empty());
}

TEST(EventCodecTest, ListRoundTripAndTruncation) {
  std::vector<Event> events(3);
  events[0].scn = 1;
  events[1].scn = 2;
  events[2].scn = 3;
  events[2].payload = std::string(100, 'x');
  std::string buf;
  EncodeEventList(events, &buf);
  auto decoded = DecodeEventList(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), events);
  EXPECT_FALSE(DecodeEventList(Slice(buf.data(), buf.size() - 5)).ok());
}

TEST(FilterTest, SourceAndPartitionFilters) {
  Event e;
  e.source = "profiles";
  e.partition = 5;

  Filter none;
  EXPECT_TRUE(none.Matches(e));

  Filter by_source;
  by_source.sources = {"profiles"};
  EXPECT_TRUE(by_source.Matches(e));
  by_source.sources = {"connections"};
  EXPECT_FALSE(by_source.Matches(e));

  Filter by_partition;
  by_partition.mod_base = 4;
  by_partition.mod_residues = {1};  // 5 % 4 == 1
  EXPECT_TRUE(by_partition.Matches(e));
  by_partition.mod_residues = {0};
  EXPECT_FALSE(by_partition.Matches(e));
}

TEST(FilterTest, SerializationRoundTrip) {
  Filter f;
  f.sources = {"a", "b"};
  f.mod_base = 8;
  f.mod_residues = {0, 3, 7};
  std::string buf;
  f.EncodeTo(&buf);
  Slice in(buf);
  auto decoded = Filter::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sources, f.sources);
  EXPECT_EQ(decoded.value().mod_base, f.mod_base);
  EXPECT_EQ(decoded.value().mod_residues, f.mod_residues);
}

// ---------------------------------------------------------------------------
// Relay
// ---------------------------------------------------------------------------

class DatabusTest : public ::testing::Test {
 protected:
  DatabusTest() : db_("member_db") {
    EXPECT_OK(db_.CreateTable("profiles"));
    EXPECT_OK(db_.CreateTable("connections"));
  }

  void WriteProfiles(int from, int count) {
    for (int i = from; i < from + count; ++i) {
      ASSERT_TRUE(db_.Put("profiles", "m" + std::to_string(i),
                          Row{{"name", "member-" + std::to_string(i)}})
                      .ok());
    }
  }

  net::Network network_;
  Database db_;
};

TEST_F(DatabusTest, RelayCapturesCommitOrder) {
  Relay relay("relay-1", &db_, &network_);
  WriteProfiles(0, 10);
  auto polled = relay.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.value(), 10);

  auto events = relay.ReadEvents(0, 100, Filter{});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 10u);
  for (size_t i = 1; i < events.value().size(); ++i) {
    EXPECT_GT(events.value()[i].scn, events.value()[i - 1].scn);
  }
  EXPECT_EQ(events.value()[0].source, "profiles");
}

TEST_F(DatabusTest, RelayServesFromSequenceNumber) {
  Relay relay("relay-1", &db_, &network_);
  WriteProfiles(0, 20);
  ASSERT_OK(relay.PollOnce());
  auto events = relay.ReadEvents(15, 100, Filter{});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 5u);
  EXPECT_EQ(events.value()[0].scn, 16);
}

TEST_F(DatabusTest, RelayTransactionEnvelope) {
  Relay relay("relay-1", &db_, &network_);
  auto txn = db_.Begin();
  txn.Put("profiles", "m1", Row{{"name", "x"}});
  txn.Put("connections", "m1:m2", Row{});
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_OK(relay.PollOnce());
  auto events = relay.ReadEvents(0, 10, Filter{});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 2u);
  EXPECT_EQ(events.value()[0].scn, events.value()[1].scn);
  EXPECT_FALSE(events.value()[0].end_of_txn);
  EXPECT_TRUE(events.value()[1].end_of_txn);
}

TEST_F(DatabusTest, RelayEvictionForcesBootstrapError) {
  RelayOptions options;
  options.buffer_capacity_events = 5;
  Relay relay("relay-1", &db_, &network_, options);
  WriteProfiles(0, 20);
  ASSERT_OK(relay.PollOnce());
  EXPECT_EQ(relay.buffered_events(), 5);
  EXPECT_EQ(relay.min_buffered_scn(), 16);
  // Reading from the beginning must fail: range evicted.
  EXPECT_TRUE(relay.ReadEvents(0, 100, Filter{}).status().IsNotFound());
  // Reading from within the buffer succeeds.
  EXPECT_TRUE(relay.ReadEvents(16, 100, Filter{}).ok());
}

TEST_F(DatabusTest, RelayServerSideFiltering) {
  db_.SetPartitionFunction([](Slice key) {
    return key.empty() ? 0 : (key[key.size() - 1] - '0') % 4;
  });
  Relay relay("relay-1", &db_, &network_);
  WriteProfiles(0, 8);  // keys m0..m7, partitions 0..3
  ASSERT_OK(relay.PollOnce());
  Filter f;
  f.mod_base = 4;
  f.mod_residues = {2};
  auto events = relay.ReadEvents(0, 100, f);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 2u);  // m2, m6
  for (const Event& e : events.value()) {
    EXPECT_EQ(e.partition % 4, 2);
  }
}

TEST_F(DatabusTest, ChainedRelayReplicatesStream) {
  Relay primary("relay-1", &db_, &network_);
  Relay chained("relay-2", net::Address("relay-1"), &network_);
  WriteProfiles(0, 10);
  ASSERT_OK(primary.PollOnce());
  auto polled = chained.PollOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.value(), 10);
  auto events = chained.ReadEvents(0, 100, Filter{});
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events.value().size(), 10u);
}

TEST_F(DatabusTest, RelayIsStatelessAcrossRestart) {
  // A relay that "restarts" (new instance) re-pulls from the source of
  // truth and serves the same stream (Section III.D).
  WriteProfiles(0, 10);
  {
    Relay relay("relay-1", &db_, &network_);
    ASSERT_OK(relay.PollOnce());
    EXPECT_EQ(relay.buffered_events(), 10);
  }
  Relay restarted("relay-1", &db_, &network_);
  ASSERT_OK(restarted.PollOnce());
  auto events = restarted.ReadEvents(0, 100, Filter{});
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events.value().size(), 10u);
}

// ---------------------------------------------------------------------------
// Bootstrap server
// ---------------------------------------------------------------------------

TEST_F(DatabusTest, BootstrapLogAndSnapshotStorages) {
  Relay relay("relay-1", &db_, &network_);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);
  WriteProfiles(0, 10);
  ASSERT_OK(relay.PollOnce());
  ASSERT_TRUE(bootstrap.PollRelayOnce().ok());
  EXPECT_EQ(bootstrap.log_size(), 10);
  EXPECT_EQ(bootstrap.snapshot_keys(), 0);  // applier has not run
  EXPECT_EQ(bootstrap.ApplyLogOnce(), 10);
  EXPECT_EQ(bootstrap.snapshot_keys(), 10);
  EXPECT_EQ(bootstrap.applied_scn(), 10);
}

TEST_F(DatabusTest, ConsolidatedDeltaReturnsOnlyLastUpdatePerKey) {
  Relay relay("relay-1", &db_, &network_);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);
  // 50 updates to the same key plus one to another key.
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(db_.Put("profiles", "hot", Row{{"v", std::to_string(i)}}));
  }
  ASSERT_OK(db_.Put("profiles", "cold", Row{{"v", "x"}}));
  ASSERT_OK(relay.PollOnce());
  ASSERT_OK(bootstrap.PollRelayOnce());
  bootstrap.ApplyLogOnce();

  auto delta = bootstrap.ConsolidatedDelta(0, Filter{});
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta.value().size(), 2u);  // "fast playback": 51 events -> 2
  for (const Event& e : delta.value()) {
    if (e.key == "hot") {
      auto row = sqlstore::DecodeRow(e.payload);
      ASSERT_TRUE(row.ok());
      EXPECT_EQ(row.value().at("v"), "49");
    }
  }
}

TEST_F(DatabusTest, ConsolidatedDeltaHonorsSinceScn) {
  Relay relay("relay-1", &db_, &network_);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);
  WriteProfiles(0, 10);
  ASSERT_OK(relay.PollOnce());
  ASSERT_OK(bootstrap.PollRelayOnce());
  bootstrap.ApplyLogOnce();
  auto delta = bootstrap.ConsolidatedDelta(7, Filter{});
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().size(), 3u);
}

TEST_F(DatabusTest, ConsistentSnapshotExcludesDeletes) {
  Relay relay("relay-1", &db_, &network_);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);
  WriteProfiles(0, 5);
  ASSERT_OK(db_.Delete("profiles", "m2"));
  ASSERT_OK(relay.PollOnce());
  ASSERT_OK(bootstrap.PollRelayOnce());
  bootstrap.ApplyLogOnce();
  auto snapshot = bootstrap.ConsistentSnapshot(Filter{});
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().rows.size(), 4u);
  EXPECT_EQ(snapshot.value().snapshot_scn, 6);
  for (const Event& e : snapshot.value().rows) EXPECT_NE(e.key, "m2");
}

TEST_F(DatabusTest, SnapshotConsistentWithUnappliedLogTail) {
  // The replay path: snapshot serving must reflect events the applier has
  // not folded yet.
  Relay relay("relay-1", &db_, &network_);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);
  WriteProfiles(0, 5);
  ASSERT_OK(relay.PollOnce());
  ASSERT_OK(bootstrap.PollRelayOnce());
  bootstrap.ApplyLogOnce(3);  // applier lags behind
  auto snapshot = bootstrap.ConsistentSnapshot(Filter{});
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().rows.size(), 5u);
  EXPECT_EQ(snapshot.value().snapshot_scn, 5);
}

// ---------------------------------------------------------------------------
// Client library
// ---------------------------------------------------------------------------

class RecordingConsumer : public Consumer {
 public:
  Status OnEvent(const Event& event) override {
    if (fail_next_ > 0) {
      --fail_next_;
      return Status::Internal("injected consumer failure");
    }
    events.push_back(event);
    return Status::OK();
  }
  void OnCheckpoint(int64_t scn) override { last_checkpoint = scn; }
  void OnBootstrap(bool snapshot_phase) override {
    bootstraps++;
    if (snapshot_phase) snapshot_bootstraps++;
  }

  void FailNext(int n) { fail_next_ = n; }

  std::vector<Event> events;
  int64_t last_checkpoint = 0;
  int bootstraps = 0;
  int snapshot_bootstraps = 0;

 private:
  int fail_next_ = 0;
};

TEST_F(DatabusTest, ClientConsumesFromRelay) {
  Relay relay("relay-1", &db_, &network_);
  RecordingConsumer consumer;
  DatabusClient client("client-1", "relay-1", "", &network_, &consumer);
  WriteProfiles(0, 10);
  ASSERT_OK(relay.PollOnce());
  auto r = client.DrainToHead();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), 10);
  EXPECT_EQ(consumer.events.size(), 10u);
  EXPECT_EQ(client.checkpoint_scn(), 10);
  EXPECT_EQ(consumer.last_checkpoint, 10);
}

TEST_F(DatabusTest, ClientIncrementalConsumption) {
  Relay relay("relay-1", &db_, &network_);
  RecordingConsumer consumer;
  DatabusClient client("client-1", "relay-1", "", &network_, &consumer);
  WriteProfiles(0, 5);
  ASSERT_OK(relay.PollOnce());
  ASSERT_OK(client.DrainToHead());
  WriteProfiles(5, 5);
  ASSERT_OK(relay.PollOnce());
  ASSERT_OK(client.DrainToHead());
  EXPECT_EQ(consumer.events.size(), 10u);
  // No duplicates: scns strictly increase.
  for (size_t i = 1; i < consumer.events.size(); ++i) {
    EXPECT_GT(consumer.events[i].scn, consumer.events[i - 1].scn);
  }
}

TEST_F(DatabusTest, ClientRetriesFailingConsumer) {
  Relay relay("relay-1", &db_, &network_);
  RecordingConsumer consumer;
  ClientOptions options;
  options.max_event_retries = 3;
  DatabusClient client("client-1", "relay-1", "", &network_, &consumer,
                       options);
  WriteProfiles(0, 1);
  ASSERT_OK(relay.PollOnce());
  consumer.FailNext(2);  // fails twice, then succeeds within retry budget
  auto r = client.PollOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(consumer.events.size(), 1u);
  EXPECT_EQ(client.events_skipped(), 0);
}

TEST_F(DatabusTest, ClientSkipsPoisonEventAfterRetries) {
  Relay relay("relay-1", &db_, &network_);
  RecordingConsumer consumer;
  ClientOptions options;
  options.max_event_retries = 2;
  DatabusClient client("client-1", "relay-1", "", &network_, &consumer,
                       options);
  WriteProfiles(0, 2);
  ASSERT_OK(relay.PollOnce());
  consumer.FailNext(3);  // exhausts 1 + 2 retries for the first event only
  auto r = client.PollOnce();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(client.events_skipped(), 1);
  EXPECT_EQ(consumer.events.size(), 1u);  // second event delivered
  EXPECT_EQ(client.checkpoint_scn(), 2);  // stream continues past the poison
}

TEST_F(DatabusTest, ClientFallsBackToBootstrapWhenRelayEvicts) {
  RelayOptions relay_options;
  relay_options.buffer_capacity_events = 5;
  Relay relay("relay-1", &db_, &network_, relay_options);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);

  // Bootstrap keeps the long history while the relay evicts: it polls the
  // relay continuously, so it sees every event before eviction.
  for (int i = 0; i < 30; ++i) {
    WriteProfiles(i, 1);
    ASSERT_OK(relay.PollOnce());
    ASSERT_TRUE(bootstrap.PollRelayOnce().ok());
  }
  bootstrap.ApplyLogOnce();
  ASSERT_EQ(bootstrap.log_size(), 30);
  EXPECT_EQ(relay.buffered_events(), 5);

  RecordingConsumer consumer;
  DatabusClient client("client-1", "relay-1", "bootstrap-1", &network_,
                       &consumer);
  client.RestoreCheckpoint(2);  // has state, but the relay evicted scn 3..25
  auto r = client.DrainToHead();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(consumer.bootstraps, 1);
  EXPECT_EQ(consumer.snapshot_bootstraps, 0);  // consolidated delta path
  EXPECT_EQ(client.checkpoint_scn(), 30);
  // Consolidated delta: 28 distinct keys remained (m3..m30 minus dupes —
  // all keys distinct here, so every key with scn > 2).
  EXPECT_EQ(consumer.events.size(), 28u);
}

TEST_F(DatabusTest, FreshClientBootstrapsViaSnapshot) {
  RelayOptions relay_options;
  relay_options.buffer_capacity_events = 5;
  Relay relay("relay-1", &db_, &network_, relay_options);
  BootstrapServer bootstrap("bootstrap-1", "relay-1", &network_);
  for (int batch = 0; batch < 6; ++batch) {
    WriteProfiles(batch * 5, 5);
    ASSERT_OK(relay.PollOnce());
    ASSERT_OK(bootstrap.PollRelayOnce());
  }
  bootstrap.ApplyLogOnce();

  RecordingConsumer consumer;
  DatabusClient client("client-1", "relay-1", "bootstrap-1", &network_,
                       &consumer);
  auto r = client.DrainToHead();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(consumer.snapshot_bootstraps, 1);
  EXPECT_EQ(consumer.events.size(), 30u);
  EXPECT_EQ(client.checkpoint_scn(), 30);

  // After bootstrapping, new writes flow from the relay (switchover back).
  WriteProfiles(100, 3);
  ASSERT_OK(relay.PollOnce());
  ASSERT_TRUE(client.DrainToHead().ok());
  EXPECT_EQ(consumer.events.size(), 33u);
  EXPECT_EQ(consumer.bootstraps, 1);  // no second bootstrap
}

TEST_F(DatabusTest, PartitionedConsumerGroupSplitsStream) {
  // Data source/subscriber isolation (III.B): two consumers partition the
  // computation; each sees a disjoint subset, together the whole stream.
  db_.SetPartitionFunction([](Slice key) {
    return static_cast<int>(key.size() > 1 ? (key[1] - '0') : 0);
  });
  Relay relay("relay-1", &db_, &network_);
  WriteProfiles(0, 10);  // m0..m9 -> partitions 0..9
  ASSERT_OK(relay.PollOnce());

  RecordingConsumer even_consumer, odd_consumer;
  ClientOptions even_options, odd_options;
  even_options.filter.mod_base = 2;
  even_options.filter.mod_residues = {0};
  odd_options.filter.mod_base = 2;
  odd_options.filter.mod_residues = {1};
  DatabusClient even("c-even", "relay-1", "", &network_, &even_consumer,
                     even_options);
  DatabusClient odd("c-odd", "relay-1", "", &network_, &odd_consumer,
                    odd_options);
  ASSERT_TRUE(even.DrainToHead().ok());
  ASSERT_TRUE(odd.DrainToHead().ok());
  EXPECT_EQ(even_consumer.events.size(), 5u);
  EXPECT_EQ(odd_consumer.events.size(), 5u);
  for (const Event& e : even_consumer.events) EXPECT_EQ(e.partition % 2, 0);
  for (const Event& e : odd_consumer.events) EXPECT_EQ(e.partition % 2, 1);
}

TEST_F(DatabusTest, ManyConsumersDoNotIncreaseSourceLoad) {
  // Paper III.B: "Isolate the source database from the number of
  // subscribers". The binlog read count depends on relay polls only.
  Relay relay("relay-1", &db_, &network_);
  WriteProfiles(0, 10);
  ASSERT_OK(relay.PollOnce());
  const int64_t source_reads_before = db_.binlog().ReadCalls();

  std::vector<std::unique_ptr<RecordingConsumer>> consumers;
  std::vector<std::unique_ptr<DatabusClient>> clients;
  for (int i = 0; i < 50; ++i) {
    consumers.push_back(std::make_unique<RecordingConsumer>());
    clients.push_back(std::make_unique<DatabusClient>(
        "c" + std::to_string(i), "relay-1", "", &network_,
        consumers.back().get()));
    ASSERT_TRUE(clients.back()->DrainToHead().ok());
    EXPECT_EQ(consumers.back()->events.size(), 10u);
  }
  EXPECT_EQ(db_.binlog().ReadCalls(), source_reads_before);
}

}  // namespace
}  // namespace lidi::databus
