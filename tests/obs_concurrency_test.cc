#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/network.h"
#include "obs/metrics.h"

// Concurrency torture for the observability layer; run under
// -DLIDI_SANITIZE=thread to prove the relaxed-atomic instrument paths and
// the locked registry paths are race-free.

namespace lidi {
namespace {

TEST(ObsConcurrencyTest, ShardedCounterAddsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kAddsPerThread);
}

TEST(ObsConcurrencyTest, WritersRaceRegistrationsAndSnapshots) {
  obs::MetricsRegistry registry;
  std::atomic<bool> stop{false};

  // Writers hammer instruments, re-resolving them by name so Get* races
  // with other Get* and with Snapshot.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, t] {
      const std::string label = std::to_string(t % 2);
      for (int i = 0; i < 20'000; ++i) {
        registry.GetCounter("rpc.count", {{"node", label}})->Increment();
        registry.GetGauge("occupancy", {{"node", label}})->Set(i);
        registry.GetHistogram("lat", {{"node", label}})->Record(i % 1000);
      }
    });
  }

  // Span recorders exercise the ring buffer lock.
  std::vector<std::thread> spanners;
  for (int t = 0; t < 2; ++t) {
    spanners.emplace_back([&registry] {
      for (int i = 0; i < 5'000; ++i) {
        obs::ScopedSpan span(&registry, "op");
        span.set_outcome(Code::kOk);
      }
    });
  }

  // Snapshotters and renderers read continuously while writers run.
  std::thread snapshotter([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::RegistrySnapshot snap = registry.Snapshot();
      for (const obs::InstrumentSnapshot& is : snap.instruments) {
        // Percentile folds the bucket array; exercise it under racing
        // Record calls.
        if (is.kind == obs::InstrumentKind::kHistogram) {
          (void)is.hist.Percentile(99);
        }
      }
      (void)snap.ToText();
    }
  });

  // The kill switch flips while traffic is in flight.
  std::thread toggler([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      registry.set_enabled(false);
      registry.set_enabled(true);
    }
  });

  for (auto& thread : writers) thread.join();
  for (auto& thread : spanners) thread.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  toggler.join();

  // Totals are not exact (the toggler drops some increments); the structure
  // must still be coherent.
  registry.set_enabled(true);
  obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_NE(snap.Find("rpc.count", {{"node", "0"}}), nullptr);
  EXPECT_NE(snap.Find("lat", {{"node", "1"}}), nullptr);
}

TEST(ObsConcurrencyTest, ConcurrentNetworkCallsRecordConsistentStats) {
  net::Network nw;
  nw.Register("s", "echo",
              [](Slice req) -> Result<std::string> { return req.ToString(); });
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&nw, t] {
      const std::string from = "c" + std::to_string(t);
      for (int i = 0; i < kCallsPerThread; ++i) {
        ASSERT_TRUE(nw.Call(from, "s", "echo", "abc").ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(nw.GetStats("s").calls_received, kThreads * kCallsPerThread);
  obs::RegistrySnapshot snap = nw.metrics()->Snapshot();
  EXPECT_EQ(snap.Value("net.calls_received", {{"endpoint", "s"}}),
            kThreads * kCallsPerThread);
  const obs::InstrumentSnapshot* lat =
      snap.Find("net.call_micros", {{"method", "echo"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, kThreads * kCallsPerThread);
}

}  // namespace
}  // namespace lidi
