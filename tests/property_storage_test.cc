// Property tests for the storage engines: random operation sequences
// checked against a model map, parameterized over engine tuning.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "storage/engine.h"
#include "storage/log_engine.h"

#include "status_test_util.h"

namespace lidi::storage {
namespace {

struct LogEngineParams {
  int64_t segment_bytes;
  double garbage_ratio;
  uint64_t seed;
};

class LogEnginePropertyTest
    : public ::testing::TestWithParam<LogEngineParams> {};

TEST_P(LogEnginePropertyTest, MatchesModelUnderRandomOps) {
  const LogEngineParams params = GetParam();
  LogEngineOptions options;
  options.segment_size_bytes = params.segment_bytes;
  options.compaction_garbage_ratio = params.garbage_ratio;
  auto engine = NewLogStructuredEngine(options);
  std::map<std::string, std::string> model;
  Random rng(params.seed);

  for (int step = 0; step < 4000; ++step) {
    const std::string key = "k" + std::to_string(rng.Uniform(80));
    const double op = rng.NextDouble();
    if (op < 0.55) {
      const std::string value = rng.Bytes(rng.Uniform(120));
      ASSERT_TRUE(engine->Put(key, value).ok());
      model[key] = value;
    } else if (op < 0.75) {
      ASSERT_TRUE(engine->Delete(key).ok());
      model.erase(key);
    } else if (op < 0.95) {
      std::string value;
      const Status s = engine->Get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
        EXPECT_EQ(value, it->second);
      }
    } else {
      engine->CompactNow();
    }
    ASSERT_EQ(engine->Count(), static_cast<int64_t>(model.size()));
  }

  // Full scan equals the model.
  std::map<std::string, std::string> scanned;
  engine->ForEach([&scanned](Slice k, Slice v) {
    scanned[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(scanned, model);
  EXPECT_TRUE(engine->VerifyChecksums().ok());

  const LogEngineStats stats = engine->GetStats();
  EXPECT_EQ(stats.live_keys, static_cast<int64_t>(model.size()));
  EXPECT_GE(stats.total_bytes, 0);
}

TEST_P(LogEnginePropertyTest, CompactionPreservesDataAndReclaimsSpace) {
  const LogEngineParams params = GetParam();
  LogEngineOptions options;
  options.segment_size_bytes = params.segment_bytes;
  options.compaction_garbage_ratio = 10.0;  // never auto-compact
  auto engine = NewLogStructuredEngine(options);
  Random rng(params.seed);

  // Overwrite a small key set many times: mostly garbage accumulates.
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(20));
    const std::string value = rng.Bytes(100);
    ASSERT_OK(engine->Put(key, value));
    model[key] = value;
  }
  const int64_t before = engine->GetStats().total_bytes;
  engine->CompactNow();
  const LogEngineStats after = engine->GetStats();
  EXPECT_LT(after.total_bytes, before / 4);
  EXPECT_EQ(after.dead_bytes, 0);
  EXPECT_EQ(after.compactions, 1);

  std::map<std::string, std::string> scanned;
  engine->ForEach([&scanned](Slice k, Slice v) {
    scanned[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(scanned, model);
  EXPECT_TRUE(engine->VerifyChecksums().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, LogEnginePropertyTest,
    ::testing::Values(LogEngineParams{1 << 20, 0.5, 1},   // defaults
                      LogEngineParams{512, 0.5, 2},       // tiny segments
                      LogEngineParams{512, 0.1, 3},       // eager compaction
                      LogEngineParams{1 << 14, 0.9, 4},   // lazy compaction
                      LogEngineParams{256, 0.3, 5}));

class EngineContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<StorageEngine> MakeEngine() {
    if (std::string(GetParam()) == "memtable") return NewMemTableEngine();
    return NewLogStructuredEngine();
  }
};

TEST_P(EngineContractTest, BasicContract) {
  auto engine = MakeEngine();
  std::string value;
  EXPECT_TRUE(engine->Get("missing", &value).IsNotFound());
  EXPECT_TRUE(engine->Put("a", "1").ok());
  EXPECT_TRUE(engine->Put("a", "2").ok());  // overwrite
  ASSERT_TRUE(engine->Get("a", &value).ok());
  EXPECT_EQ(value, "2");
  EXPECT_EQ(engine->Count(), 1);
  EXPECT_TRUE(engine->Delete("a").ok());
  EXPECT_TRUE(engine->Delete("a").ok());  // idempotent
  EXPECT_TRUE(engine->Get("a", &value).IsNotFound());
  EXPECT_EQ(engine->Count(), 0);
}

TEST_P(EngineContractTest, BinaryKeysAndValues) {
  auto engine = MakeEngine();
  const std::string key("\x00\x01\xff", 3);
  const std::string val("\xde\xad\x00\xbe\xef", 5);
  ASSERT_TRUE(engine->Put(key, val).ok());
  std::string got;
  ASSERT_TRUE(engine->Get(key, &got).ok());
  EXPECT_EQ(got, val);
}

TEST_P(EngineContractTest, ForEachEarlyStop) {
  auto engine = MakeEngine();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine->Put("k" + std::to_string(i), "v"));
  }
  int visited = 0;
  engine->ForEach([&visited](Slice, Slice) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineContractTest,
                         ::testing::Values("memtable", "logstructured"));

}  // namespace
}  // namespace lidi::storage
