#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/clock.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/admin.h"
#include "voldemort/bulk_build.h"
#include "voldemort/client.h"
#include "voldemort/cluster.h"
#include "voldemort/failure_detector.h"
#include "voldemort/metadata.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"
#include "voldemort/vector_clock.h"

#include "status_test_util.h"

namespace lidi::voldemort {
namespace {

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

TEST(VectorClockTest, FreshClocksEqual) {
  VectorClock a, b;
  EXPECT_EQ(a.Compare(b), Occurred::kEqual);
}

TEST(VectorClockTest, IncrementOrdersCausally) {
  VectorClock a;
  a.Increment(1);
  VectorClock b = a;
  b.Increment(2);
  EXPECT_EQ(a.Compare(b), Occurred::kBefore);
  EXPECT_EQ(b.Compare(a), Occurred::kAfter);
  EXPECT_TRUE(b.DominatesOrEquals(a));
  EXPECT_FALSE(a.DominatesOrEquals(b));
}

TEST(VectorClockTest, DivergentHistoriesConcurrent) {
  VectorClock base;
  base.Increment(1);
  VectorClock x = base, y = base;
  x.Increment(2);
  y.Increment(3);
  EXPECT_EQ(x.Compare(y), Occurred::kConcurrently);
  EXPECT_EQ(y.Compare(x), Occurred::kConcurrently);
}

TEST(VectorClockTest, MergeDominatesBoth) {
  VectorClock x, y;
  x.Increment(1);
  x.Increment(1);
  y.Increment(2);
  VectorClock m = x.Merge(y);
  EXPECT_TRUE(m.DominatesOrEquals(x));
  EXPECT_TRUE(m.DominatesOrEquals(y));
  EXPECT_EQ(m.CounterOf(1), 2);
  EXPECT_EQ(m.CounterOf(2), 1);
}

TEST(VectorClockTest, SerializationRoundTrip) {
  VectorClock c;
  c.Increment(3);
  c.Increment(700);
  c.Increment(3);
  std::string buf;
  c.EncodeTo(&buf);
  Slice in(buf);
  auto decoded = VectorClock::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(c == decoded.value());
  EXPECT_TRUE(in.empty());
}

TEST(VersionedListTest, InsertRejectsObsolete) {
  std::vector<Versioned> list;
  VectorClock v1;
  v1.Increment(1);
  ASSERT_TRUE(InsertVersioned(&list, {v1, "a"}).ok());
  // Same clock again: obsolete.
  EXPECT_TRUE(InsertVersioned(&list, {v1, "b"}).IsObsoleteVersion());
  // Strictly older clock: obsolete.
  VectorClock v0;
  EXPECT_TRUE(InsertVersioned(&list, {v0, "c"}).IsObsoleteVersion());
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].value, "a");
}

TEST(VersionedListTest, InsertSupersedesDominated) {
  std::vector<Versioned> list;
  VectorClock v1;
  v1.Increment(1);
  ASSERT_TRUE(InsertVersioned(&list, {v1, "old"}).ok());
  VectorClock v2 = v1;
  v2.Increment(1);
  ASSERT_TRUE(InsertVersioned(&list, {v2, "new"}).ok());
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].value, "new");
}

TEST(VersionedListTest, InsertKeepsConcurrent) {
  std::vector<Versioned> list;
  VectorClock x, y;
  x.Increment(1);
  y.Increment(2);
  ASSERT_TRUE(InsertVersioned(&list, {x, "from-1"}).ok());
  ASSERT_TRUE(InsertVersioned(&list, {y, "from-2"}).ok());
  EXPECT_EQ(list.size(), 2u);
}

TEST(VersionedListTest, ResolveConcurrentDropsDominated) {
  VectorClock v1, v2, other;
  v1.Increment(1);
  v2 = v1;
  v2.Increment(1);
  other.Increment(9);
  std::vector<Versioned> all = {{v1, "old"}, {v2, "new"}, {other, "branch"}};
  auto resolved = ResolveConcurrent(all);
  ASSERT_EQ(resolved.size(), 2u);
  std::set<std::string> values;
  for (const auto& v : resolved) values.insert(v.value);
  EXPECT_EQ(values, (std::set<std::string>{"new", "branch"}));
}

TEST(VersionedListTest, EncodeDecodeRoundTrip) {
  VectorClock v1, v2;
  v1.Increment(1);
  v2.Increment(2);
  std::vector<Versioned> list = {{v1, "alpha"}, {v2, std::string("\0b", 2)}};
  std::string buf;
  EncodeVersionedList(list, &buf);
  auto decoded = DecodeVersionedList(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), list);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

Cluster MakeCluster(int num_nodes, int num_partitions, int num_zones = 1) {
  std::vector<Node> nodes;
  for (int i = 0; i < num_nodes; ++i) {
    nodes.push_back(Node{i, net::MakeAddress(net::Tier::kVoldemort, i), i % num_zones});
  }
  return Cluster::Uniform(std::move(nodes), num_partitions);
}

TEST(RoutingTest, PreferenceListHasDistinctNodes) {
  Cluster cluster = MakeCluster(6, 24);
  auto routing = NewConsistentRoutingStrategy(&cluster, 3);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    auto nodes = routing->RouteRequest(key);
    ASSERT_EQ(nodes.size(), 3u) << key;
    EXPECT_EQ(std::set<int>(nodes.begin(), nodes.end()).size(), 3u);
  }
}

TEST(RoutingTest, DeterministicAndUsesMasterPartitionOwner) {
  Cluster cluster = MakeCluster(4, 16);
  auto routing = NewConsistentRoutingStrategy(&cluster, 2);
  auto a = routing->RouteRequest("some-key");
  auto b = routing->RouteRequest("some-key");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0],
            cluster.OwnerOfPartition(routing->MasterPartition("some-key")));
}

TEST(RoutingTest, SpreadAvoidsHotSpots) {
  // Non-order-preserving hashing: sequential keys spread over partitions.
  Cluster cluster = MakeCluster(4, 16);
  auto routing = NewConsistentRoutingStrategy(&cluster, 1);
  std::map<int, int> counts;
  const int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) {
    counts[routing->MasterPartition("user:" + std::to_string(i))]++;
  }
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [p, c] : counts) {
    EXPECT_GT(c, kKeys / 16 / 3) << "partition " << p << " underloaded";
    EXPECT_LT(c, kKeys / 16 * 3) << "partition " << p << " overloaded";
  }
}

TEST(RoutingTest, ZoneAwareSpansRequiredZones) {
  Cluster cluster = MakeCluster(6, 24, /*num_zones=*/2);
  auto routing = NewZoneAwareRoutingStrategy(&cluster, 3, /*required_zones=*/2);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "zk-" + std::to_string(i);
    std::set<int> zones;
    for (int node : routing->RouteRequest(key)) {
      zones.insert(cluster.GetNode(node)->zone_id);
    }
    EXPECT_GE(zones.size(), 2u) << key;
  }
}

TEST(RoutingTest, ReplicationCappedByNodeCount) {
  Cluster cluster = MakeCluster(2, 8);
  auto routing = NewConsistentRoutingStrategy(&cluster, 3);
  EXPECT_EQ(routing->RouteRequest("k").size(), 2u);
}

TEST(ChordBaselineTest, HopsGrowLogarithmically) {
  // The design ablation of Section II.A: full topology is O(1); Chord is
  // O(log N). Average hops for 1024 nodes should be well above the average
  // for 16 nodes, and in the ballpark of log2(N)/2.
  double avg16 = 0, avg1024 = 0;
  {
    ChordBaseline ring(16);
    for (int i = 0; i < 200; ++i) {
      avg16 += ring.LookupHops("key" + std::to_string(i), i % 16);
    }
    avg16 /= 200;
  }
  {
    ChordBaseline ring(1024);
    for (int i = 0; i < 200; ++i) {
      avg1024 += ring.LookupHops("key" + std::to_string(i), i % 1024);
    }
    avg1024 /= 200;
  }
  EXPECT_GT(avg1024, avg16);
  EXPECT_LT(avg16, 8);
  EXPECT_LT(avg1024, 14);  // ~log2(1024)=10, give slack
  EXPECT_GT(avg1024, 2);
}

// ---------------------------------------------------------------------------
// Failure detector
// ---------------------------------------------------------------------------

TEST(FailureDetectorTest, BansBelowThresholdAfterMinRequests) {
  ManualClock clock;
  FailureDetectorOptions options;
  options.threshold = 0.8;
  options.minimum_requests = 10;
  FailureDetector fd(options, &clock, [](int) { return false; });
  // 5 failures only: below minimum_requests, still available.
  for (int i = 0; i < 5; ++i) fd.RecordFailure(1);
  EXPECT_TRUE(fd.IsAvailable(1));
  for (int i = 0; i < 5; ++i) fd.RecordFailure(1);
  EXPECT_FALSE(fd.IsAvailable(1));
  EXPECT_EQ(fd.UnavailableCount(), 1);
}

TEST(FailureDetectorTest, HighSuccessRatioStaysAvailable) {
  ManualClock clock;
  FailureDetector fd(FailureDetectorOptions{}, &clock, [](int) { return true; });
  for (int i = 0; i < 95; ++i) fd.RecordSuccess(2);
  for (int i = 0; i < 5; ++i) fd.RecordFailure(2);
  EXPECT_TRUE(fd.IsAvailable(2));
}

TEST(FailureDetectorTest, RecoversViaAsyncProbe) {
  ManualClock clock;
  FailureDetectorOptions options;
  options.ban_millis = 500;
  bool node_up = false;
  FailureDetector fd(options, &clock, [&node_up](int) { return node_up; });
  for (int i = 0; i < 20; ++i) fd.RecordFailure(3);
  EXPECT_FALSE(fd.IsAvailable(3));
  // Ban interval elapses but probe still fails.
  clock.AdvanceMillis(600);
  EXPECT_FALSE(fd.IsAvailable(3));
  // Next interval: node is reachable again.
  node_up = true;
  clock.AdvanceMillis(600);
  EXPECT_TRUE(fd.IsAvailable(3));
  EXPECT_EQ(fd.UnavailableCount(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end cluster fixture
// ---------------------------------------------------------------------------

class VoldemortClusterTest : public ::testing::Test {
 protected:
  static constexpr char kStore[] = "test-store";

  void StartCluster(int num_nodes, int num_partitions, int num_zones = 1) {
    metadata_ = std::make_shared<ClusterMetadata>(
        MakeCluster(num_nodes, num_partitions, num_zones));
    for (int i = 0; i < num_nodes; ++i) {
      servers_.push_back(
          std::make_unique<VoldemortServer>(i, metadata_, &network_));
      ASSERT_OK(servers_.back()->AddStore(kStore));
    }
  }

  std::unique_ptr<StoreClient> MakeClient(StoreDefinition def,
                                          ClientOptions options = {}) {
    def.name = kStore;
    options.failure_detector.ban_millis = 50;
    return std::make_unique<StoreClient>("client", std::move(def), metadata_,
                                         &network_, &clock_, options);
  }

  net::Network network_;
  ManualClock clock_;
  std::shared_ptr<ClusterMetadata> metadata_;
  std::vector<std::unique_ptr<VoldemortServer>> servers_;
};

TEST_F(VoldemortClusterTest, PutGetRoundTrip) {
  StartCluster(4, 16);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 2,
                            .required_writes = 2});
  ASSERT_TRUE(client->PutValue("member:1", "profile-data").ok());
  auto r = client->Get("member:1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].value, "profile-data");
}

TEST_F(VoldemortClusterTest, GetMissingIsNotFound) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 2,
                            .required_reads = 1,
                            .required_writes = 1});
  EXPECT_TRUE(client->Get("ghost").status().IsNotFound());
}

TEST_F(VoldemortClusterTest, UpdateRequiresDescendingClock) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 2,
                            .required_writes = 2});
  ASSERT_TRUE(client->PutValue("k", "v1").ok());
  auto r = client->Get("k");
  ASSERT_TRUE(r.ok());

  // Writing with the read clock succeeds (descends).
  ASSERT_TRUE(client->Put("k", Versioned{r.value()[0].version, "v2"}).ok());
  // Writing again with the stale clock loses the optimistic race.
  Status stale = client->Put("k", Versioned{r.value()[0].version, "v3"});
  EXPECT_TRUE(stale.IsObsoleteVersion()) << stale.ToString();
  auto now = client->Get("k");
  ASSERT_TRUE(now.ok());
  ASSERT_EQ(now.value().size(), 1u);
  EXPECT_EQ(now.value()[0].value, "v2");
}

TEST_F(VoldemortClusterTest, ApplyUpdateRetriesOnConflict) {
  StartCluster(3, 9);
  auto c1 = MakeClient({.replication_factor = 3,
                        .required_reads = 2,
                        .required_writes = 2});
  ASSERT_TRUE(c1->PutValue("counter", "0").ok());

  // The applyUpdate loop increments a counter; run it many times and verify
  // no update is lost even though each one re-reads.
  for (int i = 0; i < 25; ++i) {
    Status s = c1->ApplyUpdate(
        "counter",
        [](const std::vector<Versioned>& current) {
          const int v = current.empty() ? 0 : std::stoi(current[0].value);
          return std::to_string(v + 1);
        },
        /*max_retries=*/5);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  auto r = c1->Get("counter");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].value, "25");
}

TEST_F(VoldemortClusterTest, TransformedPutAppendsServerSide) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 2,
                            .required_writes = 2});
  // Seed with an encoded empty list.
  std::string empty_list;
  EncodeStringList({}, &empty_list);
  ASSERT_TRUE(client->PutValue("follows:alice", empty_list).ok());

  for (const char* company : {"linkedin", "acme", "globex"}) {
    auto cur = client->Get("follows:alice");
    ASSERT_TRUE(cur.ok());
    Transform append;
    append.type = Transform::Type::kAppend;
    append.item = company;
    ASSERT_TRUE(
        client->Put("follows:alice", cur.value()[0].version, append).ok());
  }
  auto r = client->Get("follows:alice");
  ASSERT_TRUE(r.ok());
  auto list = DecodeStringList(r.value()[0].value);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value(),
            (std::vector<std::string>{"linkedin", "acme", "globex"}));
}

TEST_F(VoldemortClusterTest, TransformedGetReturnsSublist) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 2,
                            .required_writes = 2});
  std::string value;
  EncodeStringList({"a", "b", "c", "d", "e"}, &value);
  ASSERT_TRUE(client->PutValue("list", value).ok());

  Transform sublist;
  sublist.type = Transform::Type::kSublist;
  sublist.offset = 1;
  sublist.count = 3;
  auto r = client->Get("list", sublist);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto items = DecodeStringList(r.value()[0].value);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items.value(), (std::vector<std::string>{"b", "c", "d"}));
}

TEST_F(VoldemortClusterTest, DeleteRemovesDominatedVersions) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 2,
                            .required_writes = 2});
  ASSERT_TRUE(client->PutValue("doomed", "x").ok());
  auto r = client->Get("doomed");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(client->Delete("doomed", r.value()[0].version).ok());
  EXPECT_TRUE(client->Get("doomed").status().IsNotFound());
}

TEST_F(VoldemortClusterTest, QuorumFailsWhenTooManyNodesDown) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 2,
                            .required_writes = 3});
  network_.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, 0));
  // W=3 with one replica down can never be satisfied.
  Status s = client->PutValue("k", "v");
  EXPECT_FALSE(s.ok());
}

TEST_F(VoldemortClusterTest, ReadsSurviveNodeFailureWithQuorum) {
  StartCluster(4, 16);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 1,
                            .required_writes = 2});
  ASSERT_TRUE(client->PutValue("resilient", "v").ok());
  network_.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, client->PreferenceList("resilient")[0]));
  auto r = client->Get("resilient");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()[0].value, "v");
}

TEST_F(VoldemortClusterTest, ReadRepairHealsStaleReplica) {
  StartCluster(3, 9);
  ClientOptions options;
  options.enable_read_repair = true;
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 3,
                            .required_writes = 1},
                           options);
  const std::string key = "repair-me";
  const auto preference = client->PreferenceList(key);

  // Write v1 everywhere, then kill the last replica and write v2 (W=1 still
  // succeeds). The dead replica misses v2.
  ASSERT_TRUE(client->PutValue(key, "v1").ok());
  const int straggler = preference.back();
  network_.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, straggler));
  auto v1 = client->Get(key);
  // ^ also re-records failures; read with R=3 fails now, so drop to direct put
  ASSERT_TRUE(v1.status().ok() || v1.status().code() == Code::kInsufficientNodes);

  auto client_w = MakeClient({.replication_factor = 3,
                              .required_reads = 1,
                              .required_writes = 1});
  auto cur = client_w->Get(key);
  ASSERT_TRUE(cur.ok());
  ASSERT_TRUE(client_w->Put(key, Versioned{cur.value()[0].version, "v2"}).ok());

  // Straggler restarts with stale data.
  network_.SetNodeUp(net::MakeAddress(net::Tier::kVoldemort, straggler));
  std::string stale;
  ASSERT_TRUE(servers_[straggler]->GetEngine(kStore)->Get(key, &stale).ok());
  auto stale_list = DecodeVersionedList(stale);
  ASSERT_TRUE(stale_list.ok());
  EXPECT_EQ(stale_list.value()[0].value, "v1");

  // A read with R=3 touches the straggler and repairs it.
  clock_.AdvanceMillis(100);  // lift any failure-detector ban
  auto repaired_read = client->Get(key);
  ASSERT_TRUE(repaired_read.ok()) << repaired_read.status().ToString();
  EXPECT_EQ(repaired_read.value()[0].value, "v2");

  std::string healed;
  ASSERT_TRUE(servers_[straggler]->GetEngine(kStore)->Get(key, &healed).ok());
  auto healed_list = DecodeVersionedList(healed);
  ASSERT_TRUE(healed_list.ok());
  ASSERT_EQ(healed_list.value().size(), 1u);
  EXPECT_EQ(healed_list.value()[0].value, "v2");
}

// Regression test for a discarded-Status bug: ReadRepair used to ignore the
// result of the repair put, incrementing voldemort.read_repairs even when the
// write was rejected — the counter claimed a heal that never happened, and a
// genuinely dead repair target never fed the failure detector. A quota-starved
// straggler (admits the read, sheds the repair put with Overloaded) makes the
// failure deterministic: the honest accounting is read_repairs == 0,
// read_repair_failures == 1, and the replica is still stale.
TEST(VoldemortReadRepairAccountingTest, FailedRepairPutIsCountedHonestly) {
  net::Network network;
  ManualClock clock;
  auto metadata = std::make_shared<ClusterMetadata>(MakeCluster(3, 9));

  // Every server carries a near-zero quota (burst of a single request) but
  // starts with enforcement off, so setup traffic is never charged. Only the
  // straggler's quota is armed later.
  VoldemortServerOptions quota;
  quota.quota_requests_per_sec = 1e-6;
  quota.quota_burst = 1;
  std::vector<std::unique_ptr<VoldemortServer>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<VoldemortServer>(i, metadata, &network, quota));
    servers.back()->SetQuotaEnforcing(false);
    ASSERT_OK(servers.back()->AddStore("test-store"));
  }

  ClientOptions options;
  options.enable_read_repair = true;
  options.failure_detector.ban_millis = 50;
  StoreClient reader("reader", StoreDefinition{"test-store", 3, 3, 1},
                     metadata, &network, &clock, options);
  StoreClient writer("writer", StoreDefinition{"test-store", 3, 1, 1},
                     metadata, &network, &clock, options);

  const std::string key = "repair-quota";
  const auto preference = reader.PreferenceList(key);
  const int straggler = preference.back();

  // v1 lands everywhere; the straggler then misses v2.
  ASSERT_OK(writer.PutValue(key, "v1"));
  network.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, straggler));
  auto cur = writer.Get(key);
  ASSERT_OK(cur);
  ASSERT_OK(writer.Put(key, Versioned{cur.value()[0].version, "v2"}));
  network.SetNodeUp(net::MakeAddress(net::Tier::kVoldemort, straggler));
  clock.AdvanceMillis(100);  // lift any failure-detector ban

  // Arm the straggler's quota. The reader has never been charged there, so
  // its bucket is minted full at the next request: one token, which the R=3
  // get consumes. The follow-up repair put is shed with Overloaded.
  servers[straggler]->SetQuotaEnforcing(true);
  auto repaired_read = reader.Get(key);
  ASSERT_OK(repaired_read);
  EXPECT_EQ(repaired_read.value()[0].value, "v2");

  auto* repairs = network.metrics()->GetCounter("voldemort.read_repairs",
                                                {{"client", "reader"}});
  auto* repair_failures = network.metrics()->GetCounter(
      "voldemort.read_repair_failures", {{"client", "reader"}});
  EXPECT_EQ(repairs->Value(), 0);
  EXPECT_EQ(repair_failures->Value(), 1);
  // Overloaded means the node is alive — shedding a repair must not ban it.
  EXPECT_TRUE(reader.failure_detector()->IsAvailable(straggler));
  // And the replica really is still stale: nothing was repaired.
  std::string stale;
  ASSERT_OK(servers[straggler]->GetEngine("test-store")->Get(key, &stale));
  auto stale_list = DecodeVersionedList(stale);
  ASSERT_OK(stale_list);
  EXPECT_EQ(stale_list.value()[0].value, "v1");

  // Quota lifted, the next get's repair lands and is counted exactly once.
  servers[straggler]->SetQuotaEnforcing(false);
  ASSERT_OK(reader.Get(key));
  EXPECT_EQ(repairs->Value(), 1);
  EXPECT_EQ(repair_failures->Value(), 1);
  std::string healed;
  ASSERT_OK(servers[straggler]->GetEngine("test-store")->Get(key, &healed));
  auto healed_list = DecodeVersionedList(healed);
  ASSERT_OK(healed_list);
  ASSERT_EQ(healed_list.value().size(), 1u);
  EXPECT_EQ(healed_list.value()[0].value, "v2");
}

TEST_F(VoldemortClusterTest, HintedHandoffParksAndDeliversSlops) {
  StartCluster(4, 16);
  ClientOptions options;
  options.enable_hinted_handoff = true;
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 1,
                            .required_writes = 1},
                           options);
  const std::string key = "hinted";
  const auto preference = client->PreferenceList(key);
  const int victim = preference[1];
  network_.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, victim));

  ASSERT_TRUE(client->PutValue(key, "payload").ok());

  // The hint must be parked on the node outside the preference list.
  int64_t total_slops = 0;
  for (const auto& server : servers_) total_slops += server->SlopCount();
  EXPECT_EQ(total_slops, 1);

  // Victim restarts; pushing slops delivers the write.
  network_.SetNodeUp(net::MakeAddress(net::Tier::kVoldemort, victim));
  int delivered = 0;
  for (const auto& server : servers_) delivered += server->PushSlops();
  EXPECT_EQ(delivered, 1);

  std::string value;
  ASSERT_TRUE(servers_[victim]->GetEngine(kStore)->Get(key, &value).ok());
  auto list = DecodeVersionedList(value);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value()[0].value, "payload");
}

TEST_F(VoldemortClusterTest, ZoneAwareWritesSpanZones) {
  StartCluster(6, 24, /*num_zones=*/2);
  auto client = MakeClient({.replication_factor = 3,
                            .required_reads = 1,
                            .required_writes = 2,
                            .zone_count_reads = 0,
                            .zone_count_writes = 2});
  ASSERT_TRUE(client->PutValue("zoned", "v").ok());
  std::set<int> zones;
  for (int node : client->PreferenceList("zoned")) {
    zones.insert(metadata_->GetNodeUnsafe(node)->zone_id);
  }
  EXPECT_GE(zones.size(), 2u);
}

TEST_F(VoldemortClusterTest, AdminAddDeleteStoreEverywhere) {
  StartCluster(3, 9);
  AdminClient admin(metadata_, &network_);
  ASSERT_TRUE(admin.AddStoreEverywhere("new-store").ok());
  for (const auto& server : servers_) {
    EXPECT_TRUE(server->HasStore("new-store"));
  }
  ASSERT_TRUE(admin.DeleteStoreEverywhere("new-store").ok());
  for (const auto& server : servers_) {
    EXPECT_FALSE(server->HasStore("new-store"));
  }
}

TEST_F(VoldemortClusterTest, RebalanceMovesPartitionWithoutDataLoss) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 1,
                            .required_reads = 1,
                            .required_writes = 1});
  // Write keys, remember which partition each belongs to.
  const Cluster cluster = metadata_->SnapshotCluster();
  auto routing = NewConsistentRoutingStrategy(&cluster, 1);
  std::vector<std::string> keys_in_p0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "rk-" + std::to_string(i);
    ASSERT_TRUE(client->PutValue(key, "v" + std::to_string(i)).ok());
    if (routing->MasterPartition(key) == 0) keys_in_p0.push_back(key);
  }
  ASSERT_FALSE(keys_in_p0.empty());
  const int old_owner = metadata_->OwnerOfPartition(0);
  const int new_owner = (old_owner + 1) % 3;

  // Expand onto the new node.
  AdminClient admin(metadata_, &network_);
  ASSERT_TRUE(admin.MigratePartition(kStore, 0, new_owner).ok());
  EXPECT_EQ(metadata_->OwnerOfPartition(0), new_owner);

  // All keys must remain readable, now routed to the new owner.
  for (const std::string& key : keys_in_p0) {
    auto r = client->Get(key);
    ASSERT_TRUE(r.ok()) << key << ": " << r.status().ToString();
  }
  // And the new owner holds them locally.
  std::string value;
  EXPECT_TRUE(
      servers_[new_owner]->GetEngine(kStore)->Get(keys_in_p0[0], &value).ok());
}

TEST_F(VoldemortClusterTest, RedirectionDuringMigrationServesRequests) {
  StartCluster(3, 9);
  auto client = MakeClient({.replication_factor = 1,
                            .required_reads = 1,
                            .required_writes = 1});
  // Find a key on partition 0.
  const Cluster cluster = metadata_->SnapshotCluster();
  auto routing = NewConsistentRoutingStrategy(&cluster, 1);
  std::string key;
  for (int i = 0;; ++i) {
    key = "mig-" + std::to_string(i);
    if (routing->MasterPartition(key) == 0) break;
  }
  const int old_owner = metadata_->OwnerOfPartition(0);
  const int new_owner = (old_owner + 1) % 3;

  // Manually enter the migration window: writes through the old owner are
  // pair-routed — applied locally AND forwarded to the new owner — so the
  // partition stays fully served from the source while the destination
  // accumulates every write it will need at cutover (DESIGN.md §13).
  metadata_->StartMigration(0, new_owner);
  ASSERT_TRUE(client->PutValue(key, "written-during-migration").ok());
  // Both sides of the pair must hold the value: the source because it still
  // owns the partition, the destination because the cutover does NOT
  // re-copy.
  std::string value;
  EXPECT_TRUE(servers_[new_owner]->GetEngine(kStore)->Get(key, &value).ok());
  EXPECT_TRUE(servers_[old_owner]->GetEngine(kStore)->Get(key, &value).ok());
  auto r = client->Get(key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].value, "written-during-migration");
  metadata_->FinishMigration(0);
  // After cutover the key reads back through the new owner.
  auto after = client->Get(key);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value()[0].value, "written-during-migration");
}

// ---------------------------------------------------------------------------
// Read-only pipeline (build -> pull -> swap)
// ---------------------------------------------------------------------------

class ReadOnlyPipelineTest : public VoldemortClusterTest {
 protected:
  static constexpr char kRoStore[] = "pymk";

  void StartReadOnly(int num_nodes, int num_partitions) {
    StartCluster(num_nodes, num_partitions);
    for (auto& server : servers_) ASSERT_OK(server->AddReadOnlyStore(kRoStore));
    for (auto& server : servers_) controller_servers_.push_back(server.get());
  }

  std::map<std::string, std::string> MakeRecords(int n, const std::string& tag) {
    std::map<std::string, std::string> records;
    for (int i = 0; i < n; ++i) {
      records["member:" + std::to_string(i)] =
          tag + "-recs-" + std::to_string(i);
    }
    return records;
  }

  BulkFileRepository repo_;
  std::vector<VoldemortServer*> controller_servers_;
};

TEST_F(ReadOnlyPipelineTest, BuildPullSwapServesData) {
  StartReadOnly(3, 9);
  auto records = MakeRecords(500, "v1");
  repo_.Publish(kRoStore, 1,
                BulkBuild(records, metadata_->SnapshotCluster(), 2));
  ReadOnlyController controller(controller_servers_, &repo_);
  ASSERT_TRUE(controller.Pull(kRoStore, 1).ok());
  ASSERT_TRUE(controller.SwapAll(kRoStore, 1).ok());

  StoreDefinition def;
  def.name = kRoStore;
  def.replication_factor = 2;
  def.required_reads = 1;
  def.required_writes = 1;
  StoreClient client("ro-client", def, metadata_, &network_, &clock_);
  for (int i = 0; i < 500; i += 37) {
    const std::string key = "member:" + std::to_string(i);
    auto r = client.ReadOnlyGet(key);
    ASSERT_TRUE(r.ok()) << key << ": " << r.status().ToString();
    EXPECT_EQ(r.value(), records[key]);
  }
  EXPECT_TRUE(client.ReadOnlyGet("member:99999").status().IsNotFound());
}

TEST_F(ReadOnlyPipelineTest, NewVersionSwapsAtomicallyAndRollsBack) {
  StartReadOnly(3, 9);
  ReadOnlyController controller(controller_servers_, &repo_);
  repo_.Publish(kRoStore, 1,
                BulkBuild(MakeRecords(100, "v1"), metadata_->SnapshotCluster(), 2));
  repo_.Publish(kRoStore, 2,
                BulkBuild(MakeRecords(100, "v2"), metadata_->SnapshotCluster(), 2));
  ASSERT_TRUE(controller.Pull(kRoStore, 1).ok());
  ASSERT_TRUE(controller.SwapAll(kRoStore, 1).ok());
  ASSERT_TRUE(controller.Pull(kRoStore, 2).ok());
  ASSERT_TRUE(controller.SwapAll(kRoStore, 2).ok());

  StoreDefinition def;
  def.name = kRoStore;
  def.replication_factor = 2;
  def.required_reads = 1;
  def.required_writes = 1;
  StoreClient client("ro-client", def, metadata_, &network_, &clock_);
  EXPECT_EQ(client.ReadOnlyGet("member:5").value(), "v2-recs-5");

  // Data problem discovered: instantaneous rollback to v1 on all nodes.
  ASSERT_TRUE(controller.RollbackAll(kRoStore).ok());
  EXPECT_EQ(client.ReadOnlyGet("member:5").value(), "v1-recs-5");
}

TEST_F(ReadOnlyPipelineTest, SwapToMissingVersionFails) {
  StartReadOnly(2, 4);
  ReadOnlyController controller(controller_servers_, &repo_);
  EXPECT_FALSE(controller.SwapAll(kRoStore, 42).ok());
}

TEST_F(ReadOnlyPipelineTest, ThrottleCallbackObservesChunks) {
  StartReadOnly(2, 4);
  repo_.Publish(kRoStore, 1,
                BulkBuild(MakeRecords(400, "v1"), metadata_->SnapshotCluster(), 1));
  ReadOnlyController controller(controller_servers_, &repo_);
  PullOptions options;
  options.throttle_chunk_bytes = 512;
  int callbacks = 0;
  options.throttle_callback = [&callbacks](int64_t) { ++callbacks; };
  ASSERT_TRUE(controller.Pull(kRoStore, 1, options).ok());
  EXPECT_GT(callbacks, 4);  // multiple throttle pauses happened
}

TEST_F(ReadOnlyPipelineTest, IndexEntriesSortedByMd5) {
  Cluster cluster = MakeCluster(1, 1);
  auto result = BulkBuild(MakeRecords(300, "x"), cluster, 1);
  const ReadOnlyFiles& files = result.files_per_node.at(0);
  ASSERT_EQ(files.index.size() % 24, 0u);
  for (size_t i = 24; i < files.index.size(); i += 24) {
    EXPECT_LT(memcmp(files.index.data() + i - 24, files.index.data() + i, 16),
              0)
        << "index not sorted at entry " << i / 24;
  }
}

TEST_F(ReadOnlyPipelineTest, SearchVerifiesStoredKey) {
  // Direct unit test of the binary search layer.
  Cluster cluster = MakeCluster(1, 1);
  std::map<std::string, std::string> records{{"alpha", "1"}, {"beta", "2"}};
  auto result = BulkBuild(records, cluster, 1);
  const ReadOnlyFiles& files = result.files_per_node.at(0);
  auto value = ReadOnlySearch(files, "alpha");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), "1");
  EXPECT_TRUE(ReadOnlySearch(files, "gamma").status().IsNotFound());
}


TEST_F(ReadOnlyPipelineTest, InterpolationSearchAgreesWithBinarySearch) {
  // The future-work index format (II.C) must be a drop-in: identical results
  // on hits, misses and collisions, over the same files.
  Cluster cluster = MakeCluster(1, 1);
  auto result = BulkBuild(MakeRecords(5000, "x"), cluster, 1);
  const ReadOnlyFiles& files = result.files_per_node.at(0);
  for (int i = 0; i < 5000; i += 7) {
    const std::string key = "member:" + std::to_string(i);
    const auto binary = ReadOnlySearch(files, key);
    const auto interp = ReadOnlyInterpolationSearch(files, key);
    ASSERT_TRUE(binary.ok());
    ASSERT_TRUE(interp.ok()) << key;
    EXPECT_EQ(interp.value(), binary.value());
  }
  for (int i = 0; i < 200; ++i) {
    const std::string missing = "ghost:" + std::to_string(i);
    EXPECT_EQ(ReadOnlySearch(files, missing).status().IsNotFound(),
              ReadOnlyInterpolationSearch(files, missing)
                  .status()
                  .IsNotFound());
  }
  // Empty index.
  ReadOnlyFiles empty;
  EXPECT_TRUE(
      ReadOnlyInterpolationSearch(empty, "k").status().IsNotFound());
}

}  // namespace
}  // namespace lidi::voldemort
