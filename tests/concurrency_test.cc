// Concurrency and divergence coverage: the Dynamo split-brain scenario
// (divergent version histories surfaced to the application), optimistic-lock
// races between writers, multi-threaded stress, and the un-partitioned
// Espresso mode.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/clock.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/mirror.h"
#include "kafka/producer.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// The Dynamo divergence scenario (paper II.B: "any replica of a given
// partition is able to accept a write. As a result, it is possible for
// divergent version histories to form on multiple nodes during failures /
// partitions" — and Get must surface both versions to the application).
// ---------------------------------------------------------------------------

TEST(DivergenceTest, PartitionedWritersProduceConcurrentVersions) {
  net::Network network;
  ManualClock clock;
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 4));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    ASSERT_OK(servers.back()->AddStore("s"));
  }
  voldemort::ClientOptions options;
  options.enable_hinted_handoff = false;  // keep the divergence clean
  options.failure_detector.ban_millis = 1;
  options.failure_detector.minimum_requests = 2;  // trip fast in the test
  voldemort::StoreDefinition def{"s", 2, 1, 1};  // sloppy: R=1, W=1

  // Writer A lives with node 0, writer B with node 1; the network splits.
  voldemort::StoreClient a("writer-a", def, metadata, &network, &clock, options);
  voldemort::StoreClient b("writer-b", def, metadata, &network, &clock, options);
  const std::string key = "profile";
  network.PartitionOff({"writer-a", net::MakeAddress(net::Tier::kVoldemort, 0)});

  // Each writer retries until its failure detector bans the unreachable
  // replica and a reachable coordinator takes the write — the paper's
  // failure-detector-guided routing in action.
  auto put_with_retries = [&clock](voldemort::StoreClient* client,
                                   const std::string& k,
                                   const std::string& value) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      clock.AdvanceMillis(5);
      if (client->PutValue(k, value).ok()) return true;
    }
    return false;
  };
  ASSERT_TRUE(put_with_retries(&a, key, "version-from-a"));
  ASSERT_TRUE(put_with_retries(&b, key, "version-from-b"));

  // Heal: a read that reaches both replicas surfaces BOTH versions — the
  // application resolves, exactly as Figure II.2's API promises.
  network.Heal();
  clock.AdvanceMillis(100);
  voldemort::StoreClient reader("reader", {"s", 2, 2, 1}, metadata, &network,
                                &clock, options);
  auto versions = reader.Get(key);
  ASSERT_TRUE(versions.ok()) << versions.status().ToString();
  ASSERT_EQ(versions.value().size(), 2u) << "expected divergent histories";
  std::set<std::string> values;
  for (const auto& v : versions.value()) values.insert(v.value);
  EXPECT_EQ(values,
            (std::set<std::string>{"version-from-a", "version-from-b"}));

  // The application resolves by writing with the merged clock.
  voldemort::VectorClock merged;
  for (const auto& v : versions.value()) merged = merged.Merge(v.version);
  ASSERT_TRUE(reader.Put(key, {merged, "resolved"}).ok());
  auto resolved = reader.Get(key);
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved.value().size(), 1u);
  EXPECT_EQ(resolved.value()[0].value, "resolved");
}

TEST(DivergenceTest, OptimisticLockLoserGetsObsoleteVersion) {
  // Paper II.B: "Two concurrent updates to the same key results in one of
  // the clients failing due to an already written vector clock."
  net::Network network;
  ManualClock clock;
  std::vector<voldemort::Node> nodes{{0, net::MakeAddress(net::Tier::kVoldemort, 0), 0}};
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 2));
  voldemort::VoldemortServer server(0, metadata, &network);
  ASSERT_OK(server.AddStore("s"));
  voldemort::StoreDefinition def{"s", 1, 1, 1};
  voldemort::StoreClient c1("c1", def, metadata, &network, &clock);
  voldemort::StoreClient c2("c2", def, metadata, &network, &clock);

  ASSERT_TRUE(c1.PutValue("k", "base").ok());
  const auto base = c1.Get("k").value()[0].version;
  // Both clients try to update from the same read version.
  ASSERT_TRUE(c1.Put("k", {base, "first"}).ok());
  EXPECT_TRUE(c2.Put("k", {base, "second"}).IsObsoleteVersion());
  // The loser retries through ApplyUpdate and succeeds.
  EXPECT_TRUE(c2.ApplyUpdate(
                    "k",
                    [](const std::vector<voldemort::Versioned>&) {
                      return std::string("second-retried");
                    },
                    3)
                  .ok());
  EXPECT_EQ(c1.Get("k").value()[0].value, "second-retried");
}

// ---------------------------------------------------------------------------
// Multi-threaded stress: thread-safety smoke tests over the shared tiers
// ---------------------------------------------------------------------------

TEST(ThreadStressTest, ParallelVoldemortClients) {
  net::Network network;
  ManualClock clock;
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 12));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    ASSERT_OK(servers.back()->AddStore("s"));
  }

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      voldemort::StoreClient client("client-" + std::to_string(t),
                                    {"s", 2, 1, 1}, metadata, &network,
                                    &clock);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Disjoint key ranges per thread: exercises server/engine locking
        // without optimistic-lock noise.
        const std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(i % 50);
        if (!client.PutValue(key, "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
        if (!client.Get(key).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadStressTest, ParallelKafkaProducersAndConsumer) {
  net::Network network;
  ManualClock clock;
  zk::ZooKeeper zookeeper;
  kafka::Broker broker(0, &zookeeper, &network, &clock, {});
  ASSERT_OK(broker.CreateTopic("t", 4));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p]() {
      kafka::Producer producer("p" + std::to_string(p), &zookeeper, &network);
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_OK(producer.Send("t", "m"));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  kafka::Consumer consumer("c", "g", &zookeeper, &network);
  ASSERT_OK(consumer.Subscribe("t"));
  int64_t got = 0;
  for (int round = 0; round < 10'000 && got < kProducers * kPerProducer;
       ++round) {
    auto messages = consumer.Poll("t");
    ASSERT_TRUE(messages.ok());
    got += static_cast<int64_t>(messages.value().size());
  }
  EXPECT_EQ(got, kProducers * kPerProducer);
}

// ---------------------------------------------------------------------------
// Compressed mirroring (cross-DC transfer is where compression pays, V.B)
// ---------------------------------------------------------------------------

TEST(CompressedMirrorTest, MirrorRecompressesAndDeliversExactly) {
  net::Network network;
  ManualClock clock;
  zk::ZooKeeper zookeeper;
  kafka::Broker live(0, &zookeeper, &network, &clock, {});
  ASSERT_OK(live.CreateTopic("t", 2));
  kafka::BrokerOptions offline_options;
  offline_options.zk_root = "/kafka-offline";
  kafka::Broker offline(100, &zookeeper, &network, &clock, offline_options);
  ASSERT_OK(offline.CreateTopic("t", 2));

  kafka::Producer producer("p", &zookeeper, &network);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(producer.Send("t", "event body " + std::to_string(i)));
  }
  kafka::MirrorMaker mirror("m", "t", &zookeeper, &network, "/kafka",
                            "/kafka-offline", CompressionCodec::kDeflate);
  auto pumped = mirror.PumpToHead();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(pumped.value(), 50);

  kafka::ConsumerOptions offline_consumer;
  offline_consumer.zk_root = "/kafka-offline";
  kafka::Consumer analyst("a", "g", &zookeeper, &network, offline_consumer);
  ASSERT_OK(analyst.Subscribe("t"));
  std::multiset<std::string> received;
  for (int round = 0; round < 200 && received.size() < 50; ++round) {
    auto messages = analyst.Poll("t");
    ASSERT_TRUE(messages.ok());
    for (auto& m : messages.value()) received.insert(m.payload);
  }
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received.count("event body " + std::to_string(i)), 1u);
  }
}

// ---------------------------------------------------------------------------
// Un-partitioned Espresso databases (paper IV.A: "hash-based partitioning or
// un-partitioned (all documents are stored on all nodes)")
// ---------------------------------------------------------------------------

TEST(UnpartitionedTest, AllDocumentsOnAllNodes) {
  net::Network network;
  zk::ZooKeeper zookeeper;
  SystemClock* clock = SystemClock::Default();
  espresso::SchemaRegistry registry;
  // Un-partitioned: one partition replicated onto every node.
  ASSERT_OK(registry.CreateDatabase(
      {"conf", espresso::DatabaseSchema::Partitioning::kUnpartitioned, 1, 3}));
  ASSERT_OK(registry.CreateTable("conf", {"settings", 0}));
  ASSERT_OK(registry.PostDocumentSchema("conf", "settings", R"({
    "type":"record","name":"S","fields":[{"name":"v","type":"string"}]})"));
  espresso::EspressoRelay relay;
  helix::HelixController controller("c", &zookeeper);
  ASSERT_OK(controller.AddResource({"conf", 1, 3}));
  std::vector<std::unique_ptr<espresso::StorageNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry, &relay, &network, clock);
    auto* raw = node.get();
    ASSERT_OK(controller.ConnectParticipant(raw->name(), [raw](const helix::Transition& t) {
      return raw->HandleTransition(t);
    }));
    nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);

  for (int i = 0; i < 10; ++i) {
    auto doc = avro::Datum::Record("S");
    doc->SetField("v", avro::Datum::String("x"));
    ASSERT_TRUE(
        router.PutDocument("/conf/settings/key" + std::to_string(i), *doc).ok());
  }
  for (auto& node : nodes) node->CatchUpAll();
  // Every node holds every document.
  for (auto& node : nodes) {
    EXPECT_EQ(node->DocumentCount("conf", "settings"), 10) << node->name();
  }
}

}  // namespace
}  // namespace lidi
