#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/schedule.h"
#include "sim/sim_cluster.h"
#include "workload/key_mix.h"
#include "workload/open_loop.h"
#include "workload/stack.h"

namespace lidi::workload {
namespace {

// ---------------------------------------------------------------------------
// Key / session mixes.
// ---------------------------------------------------------------------------

TEST(KeyMixTest, DeterministicAcrossInstances) {
  KeyMixOptions options;
  options.num_keys = 1000;
  options.seed = 17;
  KeyMix a(options);
  KeyMix b(options);
  for (int i = 0; i < 200; ++i) {
    const uint64_t rank = a.NextRank();
    EXPECT_EQ(rank, b.NextRank());
    EXPECT_LT(rank, 1000u);
  }
}

TEST(KeyMixTest, KeysCarryThePrefix) {
  KeyMixOptions options;
  options.num_keys = 10;
  options.prefix = "company:";
  KeyMix mix(options);
  EXPECT_EQ(mix.KeyAt(3), "company:3");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(mix.NextKey().rfind("company:", 0), 0u);
  }
}

TEST(KeyMixTest, ZipfSkewsTowardLowRanks) {
  KeyMixOptions options;
  options.num_keys = 100'000;
  options.theta = 0.99;
  KeyMix mix(options);
  int64_t low = 0;
  const int64_t draws = 20'000;
  for (int64_t i = 0; i < draws; ++i) {
    if (mix.NextRank() < 100) ++low;
  }
  // Under uniform sampling ranks < 100 would get ~0.1% of draws; the skewed
  // mix concentrates a large multiple of that on the hot head.
  EXPECT_GT(low, draws / 20);
}

TEST(SessionMixTest, DeterministicAndWellFormed) {
  SessionMixOptions options;
  options.num_users = 2'000'000;  // far beyond table size: O(1)-memory path
  options.keys_per_user = 4;
  options.client_shards = 3;
  options.seed = 9;
  SessionMix a(options);
  SessionMix b(options);
  for (int i = 0; i < 500; ++i) {
    const SessionMix::Op x = a.Next();
    const SessionMix::Op y = b.Next();
    EXPECT_EQ(x.user, y.user);
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.is_read, y.is_read);
    EXPECT_LT(x.user, 2'000'000u);
    EXPECT_EQ(x.client, "client-" + std::to_string(x.user % 3));
    EXPECT_EQ(x.key.rfind("u" + std::to_string(x.user) + ":k", 0), 0u);
  }
}

TEST(SessionMixTest, SessionsReuseTheSameUser) {
  SessionMixOptions options;
  options.mean_session_ops = 16;
  options.seed = 4;
  SessionMix mix(options);
  // Consecutive ops mostly belong to the same user's session (a session
  // ends with probability 1/mean per op).
  int64_t same = 0;
  uint64_t prev = mix.Next().user;
  const int64_t draws = 2000;
  for (int64_t i = 0; i < draws; ++i) {
    const uint64_t user = mix.Next().user;
    if (user == prev) ++same;
    prev = user;
  }
  EXPECT_GT(same, draws / 2);
}

// ---------------------------------------------------------------------------
// Open-loop driver: coordinated-omission accounting.
// ---------------------------------------------------------------------------

TEST(OpenLoopDriverTest, InstantOperationsHaveZeroIntendedLatency) {
  ManualClock clock(1'000'000);
  obs::MetricsRegistry metrics(&clock);
  OpenLoopOptions options;
  options.arrival_per_sec = 1000;
  options.operations = 100;
  options.metrics = &metrics;
  options.virtual_clock = &clock;
  OpenLoopDriver driver(options);
  const OpenLoopReport report = driver.Run([](int64_t) { return Status::OK(); });
  EXPECT_EQ(report.issued, 100);
  EXPECT_EQ(report.ok, 100);
  EXPECT_EQ(report.overloaded, 0);
  EXPECT_EQ(report.max_micros, 0);
  // The virtual clock advanced exactly along the arrival schedule.
  EXPECT_NEAR(report.achieved_per_sec, 1000, 50);
}

TEST(OpenLoopDriverTest, BacklogIsChargedToEveryDelayedRequest) {
  // Arrival period 1000us, service time 2000us: the backlog grows 1000us per
  // request. A closed-loop (coordinated-omission) measurement would report a
  // flat 2000us; the intended-start accounting must show latency climbing
  // linearly to service + (N-1) * backlog-growth.
  ManualClock clock(1'000'000);
  obs::MetricsRegistry metrics(&clock);
  OpenLoopOptions options;
  options.arrival_per_sec = 1000;
  options.operations = 50;
  options.metrics = &metrics;
  options.virtual_clock = &clock;
  OpenLoopDriver driver(options);
  const OpenLoopReport report = driver.Run([&](int64_t) {
    clock.AdvanceMicros(2000);  // the operation's service time
    return Status::OK();
  });
  EXPECT_EQ(report.max_micros, 2000 + 49 * 1000);
  EXPECT_GT(report.p99_micros, report.p50_micros);
  // The median request waited far longer than one service time.
  EXPECT_GT(report.p50_micros, 4000);
}

TEST(OpenLoopDriverTest, ClassifiesOverloadedSeparatelyFromErrors) {
  ManualClock clock(1'000'000);
  obs::MetricsRegistry metrics(&clock);
  OpenLoopOptions options;
  options.arrival_per_sec = 1000;
  options.operations = 30;
  options.metrics = &metrics;
  options.virtual_clock = &clock;
  OpenLoopDriver driver(options);
  const OpenLoopReport report = driver.Run([](int64_t i) -> Status {
    if (i % 3 == 1) return Status::Overloaded("shed");
    if (i % 3 == 2) return Status::Corruption("boom");
    return Status::OK();
  });
  EXPECT_EQ(report.ok, 10);
  EXPECT_EQ(report.overloaded, 10);
  EXPECT_EQ(report.errors, 10);
  // Shed and failed requests still count against the achieved goodput.
  EXPECT_LT(report.achieved_per_sec, 400);
}

// ---------------------------------------------------------------------------
// Four-tier stack under the session mix.
// ---------------------------------------------------------------------------

TEST(FourTierStackTest, UnquotaedStackServesTheWholeMixCleanly) {
  ManualClock clock(1'000'000);
  obs::MetricsRegistry metrics(&clock);
  net::Network network(42, &metrics, &clock);
  FourTierStack stack(&network, &clock);
  SessionMixOptions mix_options;
  mix_options.seed = 21;
  SessionMix mix(mix_options);
  for (int i = 0; i < 400; ++i) {
    const Status status = stack.Step(mix.Next());
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(stack.TotalOverloadRejects(), 0);
  EXPECT_GT(stack.databus_delivered(), 0);
}

TEST(FourTierStackTest, QuotaedStackShedsTypedOverloadsOnly) {
  ManualClock clock(1'000'000);
  obs::MetricsRegistry metrics(&clock);
  net::Network network(42, &metrics, &clock);
  StackOptions options;
  options.voldemort_quota_per_sec = 1;  // ManualClock barely moves: ~no refill
  options.kafka_produce_quota_per_sec = 1;
  options.quota_burst = 2;
  FourTierStack stack(&network, &clock, options);
  SessionMixOptions mix_options;
  mix_options.seed = 21;
  SessionMix mix(mix_options);
  int64_t overloaded = 0;
  for (int i = 0; i < 400; ++i) {
    const Status status = stack.Step(mix.Next());
    if (status.IsOverloaded()) {
      ++overloaded;
    } else {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_GT(stack.TotalOverloadRejects(), 0);
  // The kill switch ends the shedding without rebuilding the stack.
  stack.SetQuotaEnforcing(false);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(stack.Step(mix.Next()).IsOverloaded());
  }
}

// ---------------------------------------------------------------------------
// Sim overload schedule: graceful degradation under chaos + quotas.
// ---------------------------------------------------------------------------

// Chaos (crash/partition/restart) interleaved with workload bursts far over
// the per-client quota. The acceptance contract: shedding must actually
// happen (the quota is biting) AND the whole invariant catalogue — above
// all no-acked-write-lost — must still hold, because a shed operation is an
// attempted-but-unacked write, which the history bookkeeping already
// tolerates. Overload is degraded service, never data loss.
TEST(SimOverloadScheduleTest, ShedsUnderQuotaWithoutLosingAckedWrites) {
  sim::SimOptions options;
  options.seed = 11;
  options.overload_quota_per_sec = 25;
  options.overload_quota_burst = 2;
  sim::SimCluster cluster(options);

  sim::Schedule schedule;
  schedule.seed = 11;
  for (int round = 0; round < 4; ++round) {
    for (int family = 0; family < 4; ++family) {
      schedule.events.push_back(
          {sim::EventKind::kWorkload, family, /*ops=*/40});
    }
    schedule.events.push_back({sim::EventKind::kCrashNode, round, 0});
    schedule.events.push_back(
        {sim::EventKind::kWorkload, round % 4, /*ops=*/30});
    schedule.events.push_back({sim::EventKind::kRestartNode, round, 0});
    schedule.events.push_back({sim::EventKind::kClockSkew, 0, 20'000});
  }
  schedule.events.push_back({sim::EventKind::kPartition, 1, 2});
  schedule.events.push_back({sim::EventKind::kWorkload, 0, 30});
  schedule.events.push_back({sim::EventKind::kHeal, 0, 0});

  const std::vector<sim::InvariantViolation> violations =
      cluster.RunToCompletion(schedule);
  for (const sim::InvariantViolation& violation : violations) {
    ADD_FAILURE() << violation.invariant << ": " << violation.detail;
  }

  int64_t quota_rejects = 0;
  for (int i = 0; i < options.voldemort_nodes; ++i) {
    quota_rejects += cluster.voldemort_server(i)->quota_rejects();
  }
  for (int i = 0; i < options.kafka_brokers; ++i) {
    if (cluster.broker(i) != nullptr) {
      quota_rejects += cluster.broker(i)->quota_rejects();
    }
  }
  EXPECT_GT(quota_rejects, 0) << "overload schedule never shed: quota inert";
}

// Determinism survives the overload knobs: the token buckets refill off the
// virtual clock, so the same seed + schedule still gives a byte-identical
// trace.
TEST(SimOverloadScheduleTest, OverloadRunsAreDeterministic) {
  sim::SimOptions options;
  options.seed = 5;
  options.overload_quota_per_sec = 25;
  options.overload_quota_burst = 2;
  const sim::Schedule schedule = sim::GenerateSchedule(5, 40);
  std::string trace_a;
  std::string trace_b;
  sim::RunScheduleOnFreshCluster(options, schedule, &trace_a);
  sim::RunScheduleOnFreshCluster(options, schedule, &trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());
}

}  // namespace
}  // namespace lidi::workload
