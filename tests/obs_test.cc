#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "io/group_commit.h"
#include "kafka/broker.h"
#include "kafka/message.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "storage/log_engine.h"
#include "zk/zookeeper.h"

namespace lidi {
namespace {

using obs::HistogramBuckets;
using obs::Labels;
using obs::MetricsRegistry;

// --- instruments ---

TEST(MetricsRegistryTest, CounterIdentityAndValue) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("x.count", {{"node", "a"}});
  ASSERT_NE(c, nullptr);
  // Same (name, labels) -> same instrument, regardless of label order.
  EXPECT_EQ(registry.GetCounter("x.count", {{"node", "a"}}), c);
  obs::Counter* c2 =
      registry.GetCounter("multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(registry.GetCounter("multi", {{"a", "1"}, {"b", "2"}}), c2);
  // Distinct labels -> distinct instrument.
  EXPECT_NE(registry.GetCounter("x.count", {{"node", "b"}}), c);

  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42);
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("dual"), nullptr);
  EXPECT_EQ(registry.GetGauge("dual"), nullptr);
  EXPECT_EQ(registry.GetHistogram("dual"), nullptr);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsWrites) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Gauge* g = registry.GetGauge("g");
  obs::LatencyHistogram* h = registry.GetHistogram("h");
  registry.set_enabled(false);
  c->Increment();
  g->Add(5);
  h->Record(10);
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0);
  // Gauge::Set records state, not traffic: it applies even when disabled.
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  registry.set_enabled(true);
  c->Increment();
  EXPECT_EQ(c->Value(), 1);
}

TEST(MetricsRegistryTest, GaugeSetAddReset) {
  MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("occupancy");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  g->Reset();
  EXPECT_EQ(g->Value(), 0);
}

// --- histogram buckets ---

TEST(HistogramBucketsTest, LadderBoundaries) {
  // 1-2-5 ladder over ten decades.
  EXPECT_EQ(HistogramBuckets::UpperBound(0), 1);
  EXPECT_EQ(HistogramBuckets::UpperBound(1), 2);
  EXPECT_EQ(HistogramBuckets::UpperBound(2), 5);
  EXPECT_EQ(HistogramBuckets::UpperBound(3), 10);
  EXPECT_EQ(HistogramBuckets::UpperBound(4), 20);
  EXPECT_EQ(HistogramBuckets::UpperBound(5), 50);
  EXPECT_EQ(HistogramBuckets::UpperBound(29), 5'000'000'000);
  // Overflow bucket is unbounded.
  EXPECT_EQ(HistogramBuckets::UpperBound(HistogramBuckets::kCount - 1),
            INT64_MAX);
}

TEST(HistogramBucketsTest, BucketForEdges) {
  EXPECT_EQ(HistogramBuckets::BucketFor(0), 0);
  EXPECT_EQ(HistogramBuckets::BucketFor(1), 0);  // bounds are inclusive
  EXPECT_EQ(HistogramBuckets::BucketFor(2), 1);
  EXPECT_EQ(HistogramBuckets::BucketFor(3), 2);
  EXPECT_EQ(HistogramBuckets::BucketFor(5), 2);
  EXPECT_EQ(HistogramBuckets::BucketFor(6), 3);
  EXPECT_EQ(HistogramBuckets::BucketFor(999), 9);  // (500, 1000]
  EXPECT_EQ(HistogramBuckets::BucketFor(5'000'000'000), 29);
  // Past the last bound: the overflow bucket.
  EXPECT_EQ(HistogramBuckets::BucketFor(5'000'000'001),
            HistogramBuckets::kCount - 1);
}

TEST(LatencyHistogramTest, RecordSnapshotAndPercentiles) {
  MetricsRegistry registry;
  obs::LatencyHistogram* h = registry.GetHistogram("lat");

  // Empty histogram: explicit zero contract.
  obs::HistogramSnapshot empty = h->Snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.Average(), 0);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0);
  EXPECT_EQ(empty.max, 0);

  for (int i = 0; i < 90; ++i) h->Record(4);    // bucket (2, 5]
  for (int i = 0; i < 10; ++i) h->Record(900);  // bucket (500, 1000]
  obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.sum, 90 * 4 + 10 * 900);
  EXPECT_EQ(snap.max, 900);
  // p50 interpolates inside the (2, 5] bucket; p99 inside (500, 1000],
  // clamped to the exact max.
  EXPECT_GT(snap.Percentile(50), 2.0);
  EXPECT_LE(snap.Percentile(50), 5.0);
  EXPECT_GT(snap.Percentile(99), 500.0);
  EXPECT_LE(snap.Percentile(99), 900.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 900.0);

  h->Reset();
  EXPECT_EQ(h->Count(), 0);
}

TEST(LatencyHistogramTest, OverflowBucketInterpolatesAgainstMax) {
  MetricsRegistry registry;
  obs::LatencyHistogram* h = registry.GetHistogram("lat");
  h->Record(6'000'000'000);  // past the last bounded bucket
  obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.buckets[HistogramBuckets::kCount - 1], 1);
  EXPECT_EQ(snap.max, 6'000'000'000);
  EXPECT_LE(snap.Percentile(99), 6'000'000'000.0);
  EXPECT_GT(snap.Percentile(99), 0.0);
}

// Bucket-0 lower-edge contract: when the rank falls in the very first
// bucket, interpolation starts from lo = 0 — there is no UpperBound(-1).
// Every estimate must land inside [0, UpperBound(0)] and p=0 must not go
// negative or above the bucket's upper edge.
TEST(LatencyHistogramTest, PercentileBucketZeroLowerEdgeIsZero) {
  MetricsRegistry registry;
  obs::LatencyHistogram* h = registry.GetHistogram("lat");
  // All samples in bucket 0: (.., 1] — value 1 is the first upper bound.
  for (int i = 0; i < 100; ++i) h->Record(1);
  obs::HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.buckets[0], 100);
  for (const double p : {0.0, 0.5, 50.0, 99.0, 100.0}) {
    const double est = snap.Percentile(p);
    EXPECT_GE(est, 0.0) << "p=" << p;
    EXPECT_LE(est, static_cast<double>(HistogramBuckets::UpperBound(0)))
        << "p=" << p;
  }
  // p=0 sits at the very bottom of bucket 0: the interpolation fraction is
  // 0, so the estimate is exactly the lower edge, 0.
  EXPECT_DOUBLE_EQ(snap.Percentile(0), 0.0);
  // Out-of-range p is clamped, not undefined.
  EXPECT_DOUBLE_EQ(snap.Percentile(-5), snap.Percentile(0));
  EXPECT_DOUBLE_EQ(snap.Percentile(200), snap.Percentile(100));
}

// A single-bucket (single-sample) snapshot: every percentile interpolates
// within that one bucket and clamps to the exact max.
TEST(LatencyHistogramTest, PercentileSingleSampleSnapshot) {
  MetricsRegistry registry;
  obs::LatencyHistogram* h = registry.GetHistogram("lat");
  h->Record(42);  // bucket (20, 50]
  obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 42.0);
  for (const double p : {0.0, 50.0, 99.9}) {
    const double est = snap.Percentile(p);
    EXPECT_GE(est, 20.0) << "p=" << p;
    EXPECT_LE(est, 42.0) << "p=" << p;
  }
}

// Overflow-only snapshot: all mass in the unbounded bucket. The lower edge
// is the last bounded ladder rung and the upper edge is the recorded max;
// no percentile may exceed max or fall below the rung.
TEST(LatencyHistogramTest, PercentileOverflowOnlySnapshot) {
  MetricsRegistry registry;
  obs::LatencyHistogram* h = registry.GetHistogram("lat");
  for (int i = 0; i < 10; ++i) h->Record(7'000'000'000);
  obs::HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.buckets[HistogramBuckets::kCount - 1], 10);
  const double rung =
      static_cast<double>(HistogramBuckets::UpperBound(HistogramBuckets::kCount - 2));
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    const double est = snap.Percentile(p);
    EXPECT_GE(est, rung) << "p=" << p;
    EXPECT_LE(est, 7'000'000'000.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 7'000'000'000.0);
}

// --- snapshot API ---

TEST(MetricsRegistryTest, SnapshotIsSortedAndStable) {
  MetricsRegistry registry;
  registry.GetCounter("zz.last")->Add(1);
  registry.GetCounter("aa.first")->Add(2);
  registry.GetGauge("mm.middle", {{"k", "v"}})->Set(3);

  obs::RegistrySnapshot snap1 = registry.Snapshot();
  ASSERT_EQ(snap1.instruments.size(), 3u);
  EXPECT_EQ(snap1.instruments[0].full_name(), "aa.first");
  EXPECT_EQ(snap1.instruments[1].full_name(), "mm.middle{k=v}");
  EXPECT_EQ(snap1.instruments[2].full_name(), "zz.last");

  // A second snapshot of an unchanged registry lines up exactly.
  obs::RegistrySnapshot snap2 = registry.Snapshot();
  ASSERT_EQ(snap2.instruments.size(), snap1.instruments.size());
  for (size_t i = 0; i < snap1.instruments.size(); ++i) {
    EXPECT_EQ(snap2.instruments[i].full_name(),
              snap1.instruments[i].full_name());
    EXPECT_EQ(snap2.instruments[i].value, snap1.instruments[i].value);
  }

  EXPECT_EQ(snap1.Value("aa.first"), 2);
  EXPECT_EQ(snap1.Value("mm.middle", {{"k", "v"}}), 3);
  // Missing instruments read as zero, like a production metric store.
  EXPECT_EQ(snap1.Value("no.such"), 0);
  EXPECT_EQ(snap1.Find("no.such"), nullptr);
}

TEST(MetricsRegistryTest, ResetAllZeroesInstrumentsAndClearsSpans) {
  ManualClock clock;
  MetricsRegistry registry(&clock);
  registry.GetCounter("c")->Add(5);
  registry.GetGauge("g")->Set(6);
  registry.GetHistogram("h")->Record(7);
  { obs::ScopedSpan span(&registry, "work"); }
  ASSERT_EQ(registry.Snapshot().spans.size(), 1u);

  registry.ResetAll();
  obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("c"), 0);
  EXPECT_EQ(snap.Value("g"), 0);
  EXPECT_EQ(snap.Find("h")->hist.count, 0);
  EXPECT_TRUE(snap.spans.empty());
}

// --- group-commit instruments ---

TEST(GroupCommitInstrumentsTest, ExportedInSnapshot) {
  MetricsRegistry registry;
  int64_t frontier = 0;
  io::GroupCommitOptions options;
  options.metrics = &registry;
  options.layer = "test.layer";
  io::GroupCommitter committer(
      [&frontier]() -> Result<int64_t> { return frontier; }, options);

  // Two single-threaded syncs: each caller leads its own batch of one.
  frontier = 10;
  ASSERT_TRUE(committer.SyncTo(10).ok());
  frontier = 20;
  ASSERT_TRUE(committer.SyncTo(20).ok());
  // Already covered: acknowledged without a sync — the piggyback count.
  ASSERT_TRUE(committer.SyncTo(15).ok());

  const Labels labels{{"layer", "test.layer"}};
  obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("io.group_commit.leader_syncs", labels), 2);
  EXPECT_EQ(snap.Value("io.group_commit.piggybacked", labels), 1);
  const obs::InstrumentSnapshot* batches =
      snap.Find("io.sync.batch_msgs", labels);
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(batches->hist.count, 2);  // one batch-size sample per leader sync
}

// --- spans ---

TEST(ScopedSpanTest, RecordsDurationOutcomeAndParentage) {
  ManualClock clock;
  MetricsRegistry registry(&clock);
  {
    obs::ScopedSpan root(&registry, "outer");
    root.set_outcome(Code::kTimeout);
    clock.AdvanceMicros(10);
    {
      obs::ScopedSpan child(&registry, "inner", &root.context());
      child.set_peer("node-1");
      child.add_bytes_sent(3);
      child.add_bytes_received(8);
      clock.AdvanceMicros(5);
    }
    clock.AdvanceMicros(10);
  }
  obs::RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);  // oldest first: inner finished first
  const obs::SpanRecord& inner = snap.spans[0];
  const obs::SpanRecord& outer = snap.spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(outer.parent_span_id, 0u);
  EXPECT_EQ(inner.duration_micros, 5);
  EXPECT_EQ(outer.duration_micros, 25);
  EXPECT_EQ(inner.outcome, Code::kOk);
  EXPECT_EQ(outer.outcome, Code::kTimeout);
  EXPECT_EQ(inner.peer, "node-1");
  EXPECT_EQ(inner.bytes_sent, 3);
  EXPECT_EQ(inner.bytes_received, 8);
}

TEST(ScopedSpanTest, InheritsDeadlineBudgetFromParent) {
  MetricsRegistry registry;
  obs::TraceContext root = registry.StartTrace(/*deadline_micros=*/12345);
  obs::ScopedSpan child(&registry, "hop", &root);
  EXPECT_EQ(child.context().trace_id, root.trace_id);
  EXPECT_EQ(child.context().deadline_micros, 12345);
  EXPECT_NE(child.context().span_id, root.span_id);
}

TEST(ScopedSpanTest, NullRegistryIsNoOp) {
  obs::ScopedSpan span(nullptr, "nothing");
  span.set_outcome(Code::kInternal);
  span.set_peer("x");
  // Destruction must not crash; there is nowhere to record to.
}

TEST(MetricsRegistryTest, SpanRingDropsOldestPastCapacity) {
  ManualClock clock;
  MetricsRegistry registry(&clock);
  registry.set_span_capacity(2);
  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan span(&registry, "s" + std::to_string(i));
  }
  obs::RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans[0].name, "s1");
  EXPECT_EQ(snap.spans[1].name, "s2");
}

TEST(MetricsRegistryTest, DisabledRegistryDropsSpans) {
  MetricsRegistry registry;
  registry.set_enabled(false);
  { obs::ScopedSpan span(&registry, "dropped"); }
  EXPECT_TRUE(registry.Snapshot().spans.empty());
}

// --- renderers ---

TEST(RenderTest, TextContainsInstrumentsAndSpans) {
  ManualClock clock;
  MetricsRegistry registry(&clock);
  registry.GetCounter("net.calls", {{"endpoint", "s"}})->Add(3);
  registry.GetGauge("storage.keys")->Set(9);
  registry.GetHistogram("lat")->Record(42);
  { obs::ScopedSpan span(&registry, "op"); }

  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("net.calls{endpoint=s} = 3 (counter)"),
            std::string::npos);
  EXPECT_NE(text.find("storage.keys = 9 (gauge)"), std::string::npos);
  EXPECT_NE(text.find("lat n=1"), std::string::npos);
  EXPECT_NE(text.find("--- spans (1 most recent) ---"), std::string::npos);
  EXPECT_NE(text.find("op"), std::string::npos);
}

TEST(RenderTest, JsonOneObjectPerLine) {
  MetricsRegistry registry;
  registry.GetCounter("kafka.fetch.count", {{"broker", "0"}})->Add(7);
  registry.GetHistogram("lat")->Record(10);

  const std::string json = registry.Snapshot().ToJson("E-obs");
  EXPECT_NE(json.find("{\"experiment\": \"E-obs\", \"instrument\": "
                      "\"kafka.fetch.count\", \"broker\": \"0\", "
                      "\"value\": 7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"instrument\": \"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\": "), std::string::npos);
  // One object per line: every line starts with '{' and ends with '}'.
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(json[start], '{');
    EXPECT_EQ(json[end - 1], '}');
    start = end + 1;
  }
}

// --- stats structs as views over the registry ---

TEST(StatsParityTest, EndpointStatsMatchRegistrySnapshot) {
  net::Network nw;
  nw.Register("s", "m",
              [](Slice) -> Result<std::string> { return std::string("xyz"); });
  ASSERT_TRUE(nw.Call("c", "s", "m", "12345").ok());

  const net::EndpointStats server = nw.GetStats("s");
  const net::EndpointStats client = nw.GetStats("c");
  obs::RegistrySnapshot snap = nw.metrics()->Snapshot();
  const Labels s_labels{{"endpoint", "s"}};
  const Labels c_labels{{"endpoint", "c"}};
  EXPECT_EQ(snap.Value("net.calls_received", s_labels),
            server.calls_received);
  EXPECT_EQ(snap.Value("net.bytes_received", s_labels),
            server.bytes_received);
  EXPECT_EQ(snap.Value("net.bytes_sent", s_labels), server.bytes_sent);
  EXPECT_EQ(snap.Value("net.calls_sent", c_labels), client.calls_sent);
  EXPECT_EQ(snap.Value("net.bytes_sent", c_labels), 5);
  // The per-method latency histogram recorded the call.
  const obs::InstrumentSnapshot* lat =
      snap.Find("net.call_micros", {{"method", "m"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, 1);
}

TEST(StatsParityTest, TransferStatsMatchRegistrySnapshot) {
  zk::ZooKeeper zk;
  net::Network nw;
  ManualClock clock;
  kafka::BrokerOptions options;
  options.transfer_mode = kafka::TransferMode::kSendfile;
  kafka::Broker broker(0, &zk, &nw, &clock, options);
  ASSERT_TRUE(broker.CreateTopic("t", 1).ok());

  kafka::MessageSetBuilder builder;
  builder.Add("payload-bytes");
  ASSERT_TRUE(broker.Produce("t", 0, builder.Build()).ok());
  broker.FlushAll();
  ASSERT_TRUE(broker.Fetch("t", 0, 0, 1 << 20).ok());

  const kafka::TransferStats stats = broker.transfer_stats();
  EXPECT_GT(stats.fetches, 0);
  EXPECT_GT(stats.bytes_avoided, 0);
  obs::RegistrySnapshot snap = nw.metrics()->Snapshot();
  const Labels labels{{"broker", "0"}};
  EXPECT_EQ(snap.Value("kafka.fetch.bytes_copied", labels),
            stats.bytes_copied);
  EXPECT_EQ(snap.Value("kafka.fetch.bytes_avoided", labels),
            stats.bytes_avoided);
  EXPECT_EQ(snap.Value("kafka.fetch.syscalls", labels), stats.syscalls);
  EXPECT_EQ(snap.Value("kafka.fetch.count", labels), stats.fetches);
  EXPECT_EQ(snap.Value("kafka.produce.count", labels), 1);
  broker.Shutdown();
}

TEST(StatsParityTest, LogEngineStatsMatchRegistrySnapshot) {
  storage::LogEngineOptions options;
  options.compaction_garbage_ratio = 10.0;  // only compact on demand
  auto engine = storage::NewLogStructuredEngine(options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine->Put("k" + std::to_string(i % 10), "value").ok());
  }
  engine->CompactNow();

  const storage::LogEngineStats stats = engine->GetStats();
  EXPECT_EQ(stats.live_keys, 10);
  EXPECT_EQ(stats.compactions, 1);
  obs::RegistrySnapshot snap = engine->metrics()->Snapshot();
  EXPECT_EQ(snap.Value("storage.live_keys"), stats.live_keys);
  EXPECT_EQ(snap.Value("storage.segments"), stats.segments);
  EXPECT_EQ(snap.Value("storage.total_bytes"), stats.total_bytes);
  EXPECT_EQ(snap.Value("storage.dead_bytes"), stats.dead_bytes);
  EXPECT_EQ(snap.Value("storage.compactions"), stats.compactions);
}

// --- RPC spans through the network ---

TEST(NetworkSpanTest, NestedCallsShareOneTrace) {
  net::Network nw;
  nw.Register("backend", "b.m",
              [](Slice) -> Result<std::string> { return std::string("B"); });
  nw.Register("frontend", "f.m", [&nw](Slice req) -> Result<std::string> {
    // No explicit trace: the nested call attaches to the enclosing span via
    // the ambient context.
    auto r = nw.Call("frontend", "backend", "b.m", req);
    if (!r.ok()) return r.status();
    return "F+" + r.value();
  });
  ASSERT_TRUE(nw.Call("client", "frontend", "f.m", "req").ok());

  obs::RegistrySnapshot snap = nw.metrics()->Snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);  // inner hop finished first
  const obs::SpanRecord& inner = snap.spans[0];
  const obs::SpanRecord& outer = snap.spans[1];
  EXPECT_EQ(inner.name, "b.m");
  EXPECT_EQ(outer.name, "f.m");
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(inner.peer, "backend");
  EXPECT_EQ(outer.bytes_sent, 3);      // "req"
  EXPECT_EQ(outer.bytes_received, 3);  // "F+B"
  EXPECT_EQ(outer.outcome, Code::kOk);
}

TEST(NetworkSpanTest, ExplicitTraceAndFailureOutcome) {
  net::Network nw;
  obs::TraceContext root = nw.metrics()->StartTrace();
  auto r = nw.Call("c", "ghost", "m", "x", net::CallOptions{&root});
  EXPECT_TRUE(r.status().IsNotFound());
  obs::RegistrySnapshot snap = nw.metrics()->Snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].trace_id, root.trace_id);
  EXPECT_EQ(snap.spans[0].parent_span_id, root.span_id);
  EXPECT_EQ(snap.spans[0].outcome, Code::kNotFound);
}

TEST(NetworkSpanTest, DeadlineBudgetFailsFast) {
  ManualClock clock(/*start_micros=*/1000);
  net::Network nw(/*fault_seed=*/42, nullptr, &clock);
  bool reached = false;
  nw.Register("s", "m", [&reached](Slice) -> Result<std::string> {
    reached = true;
    return std::string("ok");
  });
  net::CallOptions expired;
  expired.deadline_micros = 500;  // already past at t=1000
  EXPECT_TRUE(nw.Call("c", "s", "m", "", expired).status().IsTimeout());
  EXPECT_FALSE(reached);

  net::CallOptions live;
  live.deadline_micros = 2000;
  EXPECT_TRUE(nw.Call("c", "s", "m", "", live).ok());
  EXPECT_TRUE(reached);
}

TEST(NetworkSpanTest, DeadlinePropagatesToNestedCalls) {
  ManualClock clock(/*start_micros=*/1000);
  net::Network nw(/*fault_seed=*/42, nullptr, &clock);
  nw.Register("backend", "m",
              [](Slice) -> Result<std::string> { return std::string("B"); });
  nw.Register("frontend", "m", [&nw, &clock](Slice) -> Result<std::string> {
    clock.AdvanceMicros(100);  // the frontend burns the remaining budget
    return nw.Call("frontend", "backend", "m", "");
  });
  net::CallOptions options;
  options.deadline_micros = 1050;
  // The outer call starts inside budget; the nested hop inherits the
  // deadline through the ambient context and fails fast.
  EXPECT_TRUE(nw.Call("client", "frontend", "m", "", options)
                  .status()
                  .IsTimeout());
}

}  // namespace
}  // namespace lidi
