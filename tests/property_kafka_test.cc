// Property tests for the Kafka log and message-set layer, parameterized
// over log tunings and randomized batches.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "kafka/log.h"
#include "kafka/message.h"

namespace lidi::kafka {
namespace {

struct LogParams {
  int64_t segment_bytes;
  int flush_every;
  uint64_t seed;
};

class KafkaLogPropertyTest : public ::testing::TestWithParam<LogParams> {};

TEST_P(KafkaLogPropertyTest, ChainedReadsRecoverEveryFlushedMessageInOrder) {
  const LogParams params = GetParam();
  ManualClock clock;
  LogOptions options;
  options.segment_bytes = params.segment_bytes;
  options.flush_interval_messages = params.flush_every;
  options.flush_interval_ms = 1 << 30;
  PartitionLog log(options, &clock);

  Random rng(params.seed);
  std::vector<std::string> appended;
  for (int batch = 0; batch < 100; ++batch) {
    MessageSetBuilder builder(rng.Bernoulli(0.3) ? CompressionCodec::kDeflate
                                                 : CompressionCodec::kNone);
    const int n = 1 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < n; ++i) {
      const std::string payload =
          "b" + std::to_string(batch) + "-" + rng.Bytes(rng.Uniform(300));
      builder.Add(payload);
      appended.push_back(payload);
    }
    log.Append(builder.Build(), n);
  }
  log.Flush();

  // Read the whole log with randomized max_bytes per fetch; the chained
  // result must be exactly the appended sequence.
  std::vector<std::string> read;
  int64_t offset = log.start_offset();
  int guard = 0;
  while (offset < log.flushed_end_offset() && guard++ < 100000) {
    const int64_t max_bytes = 1 + static_cast<int64_t>(rng.Uniform(4000));
    auto data = log.Read(offset, max_bytes);
    ASSERT_TRUE(data.ok()) << data.status().ToString() << " @" << offset;
    if (data.value().empty()) break;
    MessageSetIterator it(data.value(), offset);
    Message m;
    while (it.Next(&m)) read.push_back(m.payload);
    ASSERT_TRUE(it.status().ok()) << it.status().ToString();
    ASSERT_GT(it.next_fetch_offset(), offset) << "no progress";
    offset = it.next_fetch_offset();
  }
  EXPECT_EQ(read, appended);
}

TEST_P(KafkaLogPropertyTest, OffsetsAreMonotoneAndDense) {
  const LogParams params = GetParam();
  ManualClock clock;
  LogOptions options;
  options.segment_bytes = params.segment_bytes;
  options.flush_interval_messages = 1;
  PartitionLog log(options, &clock);
  Random rng(params.seed * 3 + 1);

  int64_t expected_offset = 0;
  for (int i = 0; i < 300; ++i) {
    MessageSetBuilder builder;
    builder.Add(rng.Bytes(rng.Uniform(100)));
    const std::string set = builder.Build();
    const int64_t assigned = log.Append(set, 1);
    // The next message's id is the current id plus the current length (V.B).
    EXPECT_EQ(assigned, expected_offset);
    expected_offset += static_cast<int64_t>(set.size());
  }
  EXPECT_EQ(log.end_offset(), expected_offset);
}

TEST_P(KafkaLogPropertyTest, RetentionNeverBreaksTheRemainingLog) {
  const LogParams params = GetParam();
  ManualClock clock;
  LogOptions options;
  options.segment_bytes = params.segment_bytes;
  options.flush_interval_messages = 1;
  options.retention_ms = 1000;
  PartitionLog log(options, &clock);
  Random rng(params.seed * 7 + 5);

  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      MessageSetBuilder builder;
      builder.Add(rng.Bytes(50));
      log.Append(builder.Build(), 1);
    }
    clock.AdvanceMillis(300);
    log.DeleteExpiredSegments();

    // start_offset is monotone, and everything from it remains readable.
    const int64_t start = log.start_offset();
    int64_t offset = start;
    while (offset < log.flushed_end_offset()) {
      auto data = log.Read(offset, 1 << 16);
      ASSERT_TRUE(data.ok()) << offset;
      if (data.value().empty()) break;
      MessageSetIterator it(data.value(), offset);
      Message m;
      while (it.Next(&m)) {
      }
      ASSERT_TRUE(it.status().ok());
      offset = it.next_fetch_offset();
    }
    // Expired offsets report NotFound, not garbage.
    if (start > 0) {
      EXPECT_TRUE(log.Read(0, 1024).status().IsNotFound());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, KafkaLogPropertyTest,
    ::testing::Values(LogParams{1 << 20, 1, 1},    // big segments, eager flush
                      LogParams{300, 1, 2},        // tiny segments
                      LogParams{300, 7, 3},        // tiny + batched flush
                      LogParams{4096, 20, 4},      // medium
                      LogParams{1 << 16, 3, 5}));

class MessageSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageSetPropertyTest, RandomBatchesRoundTripBothCodecs) {
  Random rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const CompressionCodec codec = rng.Bernoulli(0.5)
                                       ? CompressionCodec::kDeflate
                                       : CompressionCodec::kNone;
    MessageSetBuilder builder(codec);
    std::vector<std::string> payloads;
    const int n = 1 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < n; ++i) {
      payloads.push_back(rng.Bytes(rng.Uniform(500)));
      builder.Add(payloads.back());
    }
    const std::string set = builder.Build();
    MessageSetIterator it(set, 0);
    Message m;
    std::vector<std::string> got;
    while (it.Next(&m)) got.push_back(m.payload);
    ASSERT_TRUE(it.status().ok());
    EXPECT_EQ(got, payloads);
    EXPECT_EQ(it.next_fetch_offset(), static_cast<int64_t>(set.size()));
  }
}

TEST_P(MessageSetPropertyTest, RandomCorruptionNeverYieldsWrongPayloadSilently) {
  Random rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    MessageSetBuilder builder;
    std::vector<std::string> payloads;
    for (int i = 0; i < 3; ++i) {
      payloads.push_back(rng.Bytes(40));
      builder.Add(payloads.back());
    }
    std::string set = builder.Build();
    // Flip one random bit.
    const size_t byte = rng.Uniform(set.size());
    set[byte] ^= static_cast<char>(1 << rng.Uniform(8));

    MessageSetIterator it(set, 0);
    Message m;
    int index = 0;
    bool wrong_payload = false;
    while (it.Next(&m)) {
      // Any delivered message must be byte-identical to an original at its
      // position — corruption must surface as an error or early stop, never
      // as altered data. (A flipped bit in a length header may legitimately
      // re-frame the stream; CRC then guarantees the fabricated frame is
      // rejected.)
      if (index >= 3 || m.payload != payloads[index]) wrong_payload = true;
      ++index;
    }
    if (wrong_payload) {
      EXPECT_FALSE(it.status().ok())
          << "corrupted payload delivered without error, trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageSetPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace lidi::kafka
