#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// Mutex / MutexLock semantics
// ---------------------------------------------------------------------------

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu("test.counter");
  int counter = 0;  // guarded by mu (local, so no annotation possible)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu("test.trylock");
  std::atomic<bool> acquired{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    mu.lock();
    acquired.store(true);
    while (!release.load()) std::this_thread::yield();
    mu.unlock();
  });
  while (!acquired.load()) std::this_thread::yield();
  EXPECT_FALSE(mu.try_lock());
  release.store(true);
  holder.join();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, NameAndRankAccessors) {
  Mutex anonymous;
  EXPECT_STREQ(anonymous.name(), "<anonymous>");
  EXPECT_EQ(anonymous.rank(), -1);
  Mutex ranked("kafka.test", 42);
  EXPECT_STREQ(ranked.name(), "kafka.test");
  EXPECT_EQ(ranked.rank(), 42);
}

TEST(MutexLockTest, UnlockReleasesForOtherThreads) {
  // The Unlock/Lock window is the drop-the-lock-across-I/O idiom used by
  // the producer flush and consumer rebalance paths.
  Mutex mu("test.window");
  MutexLock lock(&mu);
  lock.Unlock();
  std::thread other([&] {
    MutexLock inner(&mu);  // must not block forever
  });
  other.join();
  lock.Lock();  // reacquire; destructor releases
}

// ---------------------------------------------------------------------------
// SharedMutex semantics
// ---------------------------------------------------------------------------

TEST(SharedMutexTest, ReadersOverlap) {
  SharedMutex smu("test.shared");
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ReaderLock lock(&smu);
      inside.fetch_add(1);
      // Spin until both readers are inside the critical section at once —
      // impossible if lock_shared were exclusive.
      for (int i = 0; i < 100000 && !both_seen.load(); ++i) {
        if (inside.load() == 2) both_seen.store(true);
        std::this_thread::yield();
      }
      inside.fetch_sub(1);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_TRUE(both_seen.load());
}

TEST(SharedMutexTest, WriterIsExclusive) {
  SharedMutex smu("test.shared_writer");
  int value = 0;  // guarded by smu
  constexpr int kWriters = 4;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        WriterLock lock(&smu);
        ++value;
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      ReaderLock lock(&smu);
      int snapshot = value;
      EXPECT_GE(snapshot, 0);
      EXPECT_LE(snapshot, kWriters * kIncrements);
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();
  ReaderLock lock(&smu);
  EXPECT_EQ(value, kWriters * kIncrements);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu("test.cv");
  CondVar cv;
  bool ready = false;  // guarded by mu
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = true;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu("test.cv_timeout");
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));
}

#if LIDI_LOCK_ORDER_CHECKS

// ---------------------------------------------------------------------------
// Lock-order registry: consistent orders stay silent
// ---------------------------------------------------------------------------

TEST(LockOrderTest, ConsistentOrderAcrossThreadsIsSilent) {
  Mutex a("order.consistent.a");
  Mutex b("order.consistent.b");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock la(&a);
        MutexLock lb(&b);  // always a -> b: never an inversion
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(LockOrderTest, RankedAscentIsSilent) {
  Mutex outer("order.rank.outer", 10);
  Mutex inner("order.rank.inner", 20);
  for (int i = 0; i < 10; ++i) {
    MutexLock lo(&outer);
    MutexLock li(&inner);  // rank 10 -> 20: declared hierarchy, silent
  }
}

TEST(LockOrderTest, SharedAcquisitionsInOrderAreSilent) {
  Mutex mu("order.shared.m");
  SharedMutex smu("order.shared.s");
  for (int i = 0; i < 10; ++i) {
    MutexLock lock(&mu);
    ReaderLock reader(&smu);  // consistent mu -> smu order
  }
}

// ---------------------------------------------------------------------------
// Lock-order registry: violations abort the (forked) subprocess
// ---------------------------------------------------------------------------

using SyncDeathTest = ::testing::Test;

TEST(SyncDeathTest, ReentrantAcquisitionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex mu("death.reentrant");
  EXPECT_DEATH(
      {
        mu.lock();
        mu.lock();  // self-deadlock: caught before blocking
      },
      "reentrant acquisition");
}

TEST(SyncDeathTest, LockOrderInversionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex a("death.order.a");
  Mutex b("death.order.b");
  EXPECT_DEATH(
      {
        a.lock();  // record the a -> b edge...
        b.lock();
        b.unlock();
        a.unlock();
        b.lock();  // ...then acquire in the reverse order
        a.lock();
      },
      "lock-order inversion");
}

TEST(SyncDeathTest, LockOrderInversionPrintsBothChains) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex a("death.chains.a");
  Mutex b("death.chains.b");
  // The abort message must carry both acquisition chains by lock name so
  // the inversion is debuggable without a core dump.
  EXPECT_DEATH(
      {
        a.lock();
        b.lock();
        b.unlock();
        a.unlock();
        b.lock();
        a.lock();
      },
      "\"death\\.chains\\.b\" -> \"death\\.chains\\.a\"");
}

TEST(SyncDeathTest, RankInversionAbortsWithoutPriorObservation) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex low("death.rank.low", 10);
  Mutex high("death.rank.high", 20);
  // No a->b edge was ever recorded: ranks alone catch the inversion on the
  // very first bad acquisition.
  EXPECT_DEATH(
      {
        high.lock();
        low.lock();
      },
      "lock-rank inversion");
}

TEST(SyncDeathTest, SharedAcquisitionParticipatesInOrdering) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex mu("death.shared.m");
  SharedMutex smu("death.shared.s");
  // Reader-then-writer inversions deadlock just as hard as exclusive ones;
  // lock_shared must feed the same registry.
  EXPECT_DEATH(
      {
        mu.lock();
        smu.lock_shared();
        smu.unlock_shared();
        mu.unlock();
        smu.lock_shared();
        mu.lock();
      },
      "lock-order inversion");
}

#endif  // LIDI_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace lidi
