#include <gtest/gtest.h>

#include <map>
#include <set>

#include "helix/helix.h"
#include "zk/zookeeper.h"

namespace lidi::helix {
namespace {

class HelixTest : public ::testing::Test {
 protected:
  void Connect(const std::string& instance) {
    auto session = controller_->ConnectParticipant(
        instance, [this, instance](const Transition& t) {
          transitions_.push_back(t);
          return Status::OK();
        });
    ASSERT_TRUE(session.ok());
    sessions_[instance] = session.value();
  }

  void Crash(const std::string& instance) {
    zk_.CloseSession(sessions_[instance]);
    sessions_.erase(instance);
  }

  void SetUpCluster(int instances, ResourceConfig config) {
    controller_ = std::make_unique<HelixController>("espresso", &zk_);
    ASSERT_TRUE(controller_->AddResource(config).ok());
    for (int i = 0; i < instances; ++i) {
      Connect("node-" + std::to_string(i));
    }
  }

  zk::ZooKeeper zk_;
  std::unique_ptr<HelixController> controller_;
  std::map<std::string, zk::SessionId> sessions_;
  std::vector<Transition> transitions_;
};

TEST_F(HelixTest, IdealStateAssignsMasterAndSlaves) {
  SetUpCluster(3, ResourceConfig{"db", 6, 2});
  const Assignment ideal = controller_->ComputeIdealState("db");
  ASSERT_EQ(ideal.size(), 6u);
  for (const auto& [partition, states] : ideal) {
    int masters = 0, slaves = 0;
    for (const auto& [instance, state] : states) {
      if (state == ReplicaState::kMaster) ++masters;
      if (state == ReplicaState::kSlave) ++slaves;
    }
    EXPECT_EQ(masters, 1) << "partition " << partition;
    EXPECT_EQ(slaves, 1) << "partition " << partition;
  }
}

TEST_F(HelixTest, IdealStateBalancesMasters) {
  SetUpCluster(3, ResourceConfig{"db", 9, 2});
  std::map<std::string, int> master_counts;
  for (const auto& [partition, states] : controller_->ComputeIdealState("db")) {
    for (const auto& [instance, state] : states) {
      if (state == ReplicaState::kMaster) master_counts[instance]++;
    }
  }
  for (const auto& [instance, count] : master_counts) {
    EXPECT_EQ(count, 3) << instance;
  }
}

TEST_F(HelixTest, RebalanceConvergesCurrentToIdeal) {
  SetUpCluster(3, ResourceConfig{"db", 6, 2});
  EXPECT_TRUE(controller_->GetCurrentState("db").empty());
  const int transitions = controller_->RebalanceToConvergence();
  EXPECT_GT(transitions, 0);
  // CURRENTSTATE == BESTPOSSIBLESTATE == IDEALSTATE (all nodes live).
  EXPECT_EQ(controller_->GetCurrentState("db"),
            controller_->ComputeIdealState("db"));
  EXPECT_TRUE(controller_->MasterlessPartitions("db").empty());
  // Fixed point: no further transitions.
  EXPECT_EQ(controller_->RebalanceOnce(), 0);
}

TEST_F(HelixTest, OfflineToMasterRoutesThroughSlave) {
  SetUpCluster(1, ResourceConfig{"db", 1, 1});
  controller_->RebalanceToConvergence();
  ASSERT_EQ(transitions_.size(), 2u);
  EXPECT_EQ(transitions_[0].from, ReplicaState::kOffline);
  EXPECT_EQ(transitions_[0].to, ReplicaState::kSlave);
  EXPECT_EQ(transitions_[1].from, ReplicaState::kSlave);
  EXPECT_EQ(transitions_[1].to, ReplicaState::kMaster);
}

TEST_F(HelixTest, NodeFailurePromotesSlave) {
  SetUpCluster(3, ResourceConfig{"db", 6, 2});
  controller_->RebalanceToConvergence();

  // Find a partition mastered by node-0 and its slave.
  const Assignment before = controller_->GetCurrentState("db");
  int victim_partition = -1;
  std::string slave;
  for (const auto& [partition, states] : before) {
    for (const auto& [instance, state] : states) {
      if (instance == "node-0" && state == ReplicaState::kMaster) {
        victim_partition = partition;
        for (const auto& [other, other_state] : states) {
          if (other_state == ReplicaState::kSlave) slave = other;
        }
      }
    }
  }
  ASSERT_GE(victim_partition, 0);
  ASSERT_FALSE(slave.empty());

  Crash("node-0");
  controller_->RebalanceToConvergence();
  // Every partition has a master again, and node-0 holds nothing.
  EXPECT_TRUE(controller_->MasterlessPartitions("db").empty());
  for (const auto& [partition, states] : controller_->GetCurrentState("db")) {
    EXPECT_EQ(states.count("node-0"), 0u) << "partition " << partition;
  }
  EXPECT_NE(controller_->MasterOf("db", victim_partition), "node-0");
}

TEST_F(HelixTest, NodeAdditionRedistributes) {
  SetUpCluster(2, ResourceConfig{"db", 8, 2});
  controller_->RebalanceToConvergence();
  std::map<std::string, int> before;
  for (const auto& [p, states] : controller_->GetCurrentState("db")) {
    for (const auto& [inst, st] : states) {
      if (st == ReplicaState::kMaster) before[inst]++;
    }
  }
  EXPECT_EQ(before["node-0"], 4);
  EXPECT_EQ(before["node-1"], 4);

  Connect("node-2");
  controller_->RebalanceToConvergence();
  std::map<std::string, int> after;
  for (const auto& [p, states] : controller_->GetCurrentState("db")) {
    for (const auto& [inst, st] : states) {
      if (st == ReplicaState::kMaster) after[inst]++;
    }
  }
  EXPECT_GT(after["node-2"], 0);
  EXPECT_TRUE(controller_->MasterlessPartitions("db").empty());
}

TEST_F(HelixTest, AtMostOneMasterPerPartitionAlways) {
  SetUpCluster(4, ResourceConfig{"db", 12, 3});
  controller_->RebalanceToConvergence();
  // After each single transition step, check the one-master invariant by
  // replaying with a max_transitions budget of 1.
  Crash("node-1");
  for (int step = 0; step < 200; ++step) {
    const int n = controller_->RebalanceOnce(/*max_transitions=*/1);
    const Assignment current = controller_->GetCurrentState("db");
    for (const auto& [partition, states] : current) {
      int masters = 0;
      for (const auto& [instance, state] : states) {
        if (state == ReplicaState::kMaster) ++masters;
      }
      ASSERT_LE(masters, 1) << "partition " << partition << " step " << step;
    }
    if (n == 0) break;
  }
  EXPECT_TRUE(controller_->MasterlessPartitions("db").empty());
}

TEST_F(HelixTest, FailedTransitionRetriedNextRound) {
  controller_ = std::make_unique<HelixController>("espresso", &zk_);
  ASSERT_TRUE(controller_->AddResource(ResourceConfig{"db", 1, 1}).ok());
  int failures_left = 2;
  auto session = controller_->ConnectParticipant(
      "flaky", [&failures_left](const Transition& t) {
        if (failures_left > 0) {
          --failures_left;
          return Status::Unavailable("transition failed");
        }
        return Status::OK();
      });
  ASSERT_TRUE(session.ok());
  controller_->RebalanceOnce();
  EXPECT_EQ(controller_->MasterlessPartitions("db").size(), 1u);
  controller_->RebalanceToConvergence();
  EXPECT_TRUE(controller_->MasterlessPartitions("db").empty());
}

TEST_F(HelixTest, MasterlessReportedWhileAllNodesDown) {
  SetUpCluster(2, ResourceConfig{"db", 4, 2});
  controller_->RebalanceToConvergence();
  Crash("node-0");
  Crash("node-1");
  controller_->RebalanceToConvergence();
  EXPECT_EQ(controller_->MasterlessPartitions("db").size(), 4u);
  EXPECT_TRUE(controller_->LiveInstances().empty());
  EXPECT_EQ(controller_->ConfiguredInstances().size(), 2u);
}

TEST_F(HelixTest, ReplicasCappedByLiveInstances) {
  SetUpCluster(1, ResourceConfig{"db", 4, 3});
  controller_->RebalanceToConvergence();
  for (const auto& [partition, states] :
       controller_->GetCurrentState("db")) {
    EXPECT_EQ(states.size(), 1u);
  }
}

}  // namespace
}  // namespace lidi::helix
