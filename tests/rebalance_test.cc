// Online cluster elasticity under chaos (ISSUE 10): named sim scenarios
// that grow the cluster and move partitions across all three stateful
// tiers WHILE traffic is running — Voldemort ring expansion with
// proxy-pair handoff, Kafka partition reassignment gated on follower
// catch-up, Espresso mastership moves through the Helix pipeline. Every
// scenario is a hand-written, seed-replayable schedule (replay with
// LIDI_SIM_SEED=<seed> just like the property sweep), settled and held to
// the standard invariant catalogue, which includes the rebalance-ownership
// checker: every acked write must be readable at its *current* owner, and
// the check also runs ONLINE at the instant of each Voldemort cutover.
//
// The teeth test at the bottom re-runs the headline doubling schedule with
// SimOptions::disable_handoff_safety (pair-writes off, Kafka catch-up gate
// off) and demands that the very same schedule now violates invariants —
// proving the scenarios would catch a broken handoff path, not just pass
// vacuously.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/invariants.h"
#include "sim/schedule.h"
#include "sim/sim_cluster.h"
#include "voldemort/metadata.h"

#include "status_test_util.h"

namespace lidi::sim {
namespace {

SimEvent Ev(EventKind kind, int target, int64_t magnitude = 0) {
  SimEvent e;
  e.kind = kind;
  e.target = target;
  e.magnitude = magnitude;
  return e;
}

// Workload family selectors (target % 4).
constexpr int kVold = 0;
constexpr int kKafka = 1;
constexpr int kEspresso = 2;
constexpr int kPrimary = 3;

// Elastic-tier selectors for kAddNode / kStartRebalance (target % 3).
constexpr int kVoldTier = 0;
constexpr int kKafkaTier = 1;
constexpr int kEspressoTier = 2;

// Crashable-entity indices for the default deployment (3 voldemort nodes,
// 2 brokers, 2 espresso nodes). Entity indices shift as tiers grow, so the
// schedules below only crash low-numbered voldemort nodes (stable) or use
// the initial layout before any adds.
constexpr int kVold0 = 0;

std::string Explain(const std::vector<InvariantViolation>& violations,
                    const std::string& trace) {
  std::string out;
  for (const auto& v : violations) {
    out += v.invariant + ": " + v.detail + "\n";
  }
  return out + "--- trace ---\n" + trace;
}

void ExpectClean(uint64_t seed, const std::vector<SimEvent>& events) {
  Schedule schedule;
  schedule.seed = seed;
  schedule.events = events;
  SimOptions options;
  options.seed = seed;
  std::string trace;
  auto violations = RunScheduleOnFreshCluster(options, schedule, &trace);
  EXPECT_TRUE(violations.empty()) << Explain(violations, trace);
}

// A node joins the ring in the middle of quorum-write traffic: the join
// itself must be invisible (the new node owns zero partitions until the
// executor moves some), and the subsequent stepped migration — plan, bulk
// copy, cutover — interleaves with further writes that pair-route to the
// destination.
TEST(RebalanceScenario, NodeJoinsMidQuorumWrite) {
  ExpectClean(201, {
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kAddNode, kVoldTier),
      Ev(EventKind::kWorkload, kVold, 8),        // ring grew; routing unchanged
      Ev(EventKind::kStartRebalance, kVoldTier, 1),  // plan + StartMigration
      Ev(EventKind::kWorkload, kVold, 8),        // pair-written mid-handoff
      Ev(EventKind::kStartRebalance, kVoldTier, 1),  // bulk copy
      Ev(EventKind::kWorkload, kVold, 8),        // the copy<->cutover window
      Ev(EventKind::kStartRebalance, kVoldTier, 1),  // cutover + online check
      Ev(EventKind::kWorkload, kVold, 8),        // reads route to new owner
  });
}

// The migration source suffers an omission crash between the bulk copy and
// the cutover: the executor's attempt accounting must either finish the
// move once the source returns or abort it cleanly — never flip ownership
// to a destination that now cannot be completed, and never wedge.
TEST(RebalanceScenario, MigrationSourceCrashesMidCopy) {
  ExpectClean(202, {
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kAddNode, kVoldTier),
      Ev(EventKind::kStartRebalance, kVoldTier, 2),  // StartMigration + copy
      Ev(EventKind::kCrashNode, kVold0),         // source goes dark mid-move
      Ev(EventKind::kWorkload, kVold, 8),        // pair writes can't reach it
      Ev(EventKind::kStartRebalance, kVoldTier, 2),  // retries against a dead source
      Ev(EventKind::kRestartNode, kVold0),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 4),  // now completes (or re-plans)
      Ev(EventKind::kWorkload, kVold, 6),
  });
}

// Cutover races client reads: traffic lands immediately before and after
// every ownership flip, so a read routed by a stale view or a cutover that
// published an incomplete destination shows up as a rebalance-ownership or
// no-acked-write-lost violation. The online half of the checker fires at
// the cutover instant itself, before read repair can mask a hole.
TEST(RebalanceScenario, CutoverRacesClientRead) {
  ExpectClean(203, {
      Ev(EventKind::kWorkload, kVold, 10),
      Ev(EventKind::kAddNode, kVoldTier),
      Ev(EventKind::kAddNode, kVoldTier),
      // Step every move one action at a time with reads/writes between:
      // each triple is plan -> copy -> cutover for one partition move.
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),  // cutover: reads race this
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 6),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),  // second cutover
      Ev(EventKind::kWorkload, kVold, 6),
  });
}

// Kafka leadership moves while produce/fetch traffic is live: a new broker
// joins, a reassignment begins, and the leader flip is gated on the target
// replica catching up over the fetch path — with messages produced into
// the replicated topic before, during, and after the transfer. The
// rebalance-ownership checker demands every acked replicated message be
// present in the *current* leader's log.
TEST(RebalanceScenario, KafkaLeaderMovesMidFetch) {
  ExpectClean(204, {
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kAddNode, kKafkaTier),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kStartRebalance, kKafkaTier, 1),  // begin reassignment
      Ev(EventKind::kWorkload, kKafka, 8),        // produce during catch-up
      Ev(EventKind::kStartRebalance, kKafkaTier, 1),  // sync + maybe complete
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kStartRebalance, kKafkaTier, 2),
      Ev(EventKind::kWorkload, kKafka, 6),        // fetches span the flip
  });
}

// Espresso mastership moves through the Helix transition pipeline while
// puts are in flight: new storage nodes join, RebalanceOnce executes a
// bounded number of demote/promote transitions per step, and the router's
// epoch-gated retry absorbs the Unavailable window between steps.
TEST(RebalanceScenario, EspressoMastershipMovesUnderPuts) {
  ExpectClean(205, {
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kAddNode, kEspressoTier),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kStartRebalance, kEspressoTier, 1),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kStartRebalance, kEspressoTier, 2),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kStartRebalance, kEspressoTier, 8),
      Ev(EventKind::kWorkload, kEspresso, 6),
  });
}

// --- the headline artifact: double the cluster under live traffic ---------

// One schedule that doubles every stateful tier (3->6 voldemort nodes,
// 2->4 brokers, 2->4 espresso nodes) while all four workload families keep
// running, stepping every migration/reassignment/transition live. Built
// once so the teeth test below can replay the exact same schedule with the
// handoff safety knob off.
Schedule DoublingSchedule(uint64_t seed) {
  Schedule schedule;
  schedule.seed = seed;
  schedule.events = {
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kWorkload, kPrimary, 6),
      // Grow every tier to double size.
      Ev(EventKind::kAddNode, kVoldTier),
      Ev(EventKind::kAddNode, kKafkaTier),
      Ev(EventKind::kAddNode, kEspressoTier),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kAddNode, kVoldTier),
      Ev(EventKind::kAddNode, kKafkaTier),
      Ev(EventKind::kAddNode, kEspressoTier),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kAddNode, kVoldTier),
      Ev(EventKind::kWorkload, kEspresso, 8),
      // Interleave single-step rebalance actions with traffic on every
      // family: each voldemort triple is plan/copy/cutover for one move,
      // with acked writes landing inside every copy<->cutover window.
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kStartRebalance, kKafkaTier, 1),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kStartRebalance, kKafkaTier, 1),
      Ev(EventKind::kStartRebalance, kEspressoTier, 2),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kPrimary, 6),
      Ev(EventKind::kStartRebalance, kKafkaTier, 2),
      Ev(EventKind::kWorkload, kKafka, 8),
      Ev(EventKind::kStartRebalance, kEspressoTier, 4),
      Ev(EventKind::kWorkload, kEspresso, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kStartRebalance, kVoldTier, 1),
      Ev(EventKind::kWorkload, kVold, 8),
      Ev(EventKind::kWorkload, kKafka, 6),
      Ev(EventKind::kWorkload, kEspresso, 6),
      Ev(EventKind::kWorkload, kPrimary, 6),
  };
  return schedule;
}

TEST(RebalanceHeadline, DoublingClusterUnderLiveTraffic) {
  SimOptions options;
  options.seed = 210;
  SimCluster cluster(options);
  const Schedule schedule = DoublingSchedule(210);
  for (const auto& event : schedule.events) cluster.ApplyEvent(event);
  cluster.Settle();
  auto violations = cluster.CheckInvariants();
  EXPECT_TRUE(violations.empty()) << Explain(violations, cluster.trace());
  // The growth really happened: every stateful tier doubled...
  EXPECT_EQ(cluster.voldemort_node_count(), 6);
  EXPECT_EQ(cluster.kafka_broker_count(), 4);
  EXPECT_EQ(cluster.espresso_node_count(), 4);
  // ...and ownership really moved (live moves plus any settle-time drain),
  // with nothing left in flight.
  EXPECT_GT(cluster.rebalancer()->moves_completed(), 0);
  EXPECT_TRUE(cluster.rebalancer()->idle());
  EXPECT_TRUE(cluster.voldemort_metadata()->Snapshot().migrations.empty());
}

// Determinism contract for the headline schedule: same seed, byte-identical
// trace — the LIDI_SIM_SEED replay story holds for elastic schedules too.
TEST(RebalanceHeadline, DoublingScheduleIsSeedReplayable) {
  SimOptions options;
  options.seed = 210;
  std::string trace_a;
  std::string trace_b;
  RunScheduleOnFreshCluster(options, DoublingSchedule(210), &trace_a);
  RunScheduleOnFreshCluster(options, DoublingSchedule(210), &trace_b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
}

// --- teeth: the same schedule must FAIL with the safety path killed -------

// Acceptance criterion from ISSUE 10: disabling the proxy-pair/catch-up
// path (test-only knob) must make a doubling schedule fail. With pairing
// off, writes acked into the copy<->cutover window exist only on the old
// owner, and the online rebalance-ownership check at cutover sees the hole
// before read repair can heal it. Some seeds shake out windows with no
// write to the moving partition, so scan a small seed range — the fixed
// protocol must then be clean on the exact seed that failed.
TEST(RebalanceTeeth, KillingHandoffSafetyLosesAckedWrites) {
  uint64_t failing_seed = 0;
  for (uint64_t seed = 210; seed <= 240 && failing_seed == 0; ++seed) {
    SimOptions unsafe;
    unsafe.seed = seed;
    unsafe.disable_handoff_safety = true;
    auto violations =
        RunScheduleOnFreshCluster(unsafe, DoublingSchedule(seed));
    if (!violations.empty()) failing_seed = seed;
  }
  ASSERT_NE(failing_seed, 0u)
      << "no seed in [210,240] exposed the disabled handoff path — the "
         "rebalance scenarios have no teeth";

  SimOptions safe;
  safe.seed = failing_seed;
  std::string trace;
  auto violations =
      RunScheduleOnFreshCluster(safe, DoublingSchedule(failing_seed), &trace);
  EXPECT_TRUE(violations.empty()) << Explain(violations, trace);
}

// --- satellite regression: atomic ring-metadata snapshots -----------------

// The bug this pins: routing decisions that read topology and the
// migration table through two separate accessors tear across a concurrent
// cutover — the ownership flip lands between the reads, and a server
// pair-writes for a partition it no longer owns (or skips one it is
// mid-handoff on). ClusterMetadata::Snapshot() returns one coherent
// RoutingView (cluster + migrations + version) under a single reader
// acquisition; this test pins the coherence and the version discipline.
TEST(RebalanceRegression, RoutingViewSnapshotsAreCoherent) {
  std::vector<voldemort::Node> nodes{{0, "n0", 0}, {1, "n1", 0}};
  voldemort::ClusterMetadata metadata(voldemort::Cluster::Uniform(nodes, 4));

  const voldemort::RoutingView before = metadata.Snapshot();
  EXPECT_TRUE(before.migrations.empty());
  const int owner_before = before.cluster.OwnerOfPartition(0);

  metadata.StartMigration(/*partition=*/0, /*to_node=*/1);
  const voldemort::RoutingView during = metadata.Snapshot();
  ASSERT_TRUE(during.MigrationOf(0).has_value());
  EXPECT_EQ(during.MigrationOf(0)->from_node, owner_before);
  EXPECT_EQ(during.MigrationOf(0)->to_node, 1);
  // The ownership flip has NOT happened yet in this same view: migration
  // visible => cluster still routes to the old owner. A torn read pair
  // would violate exactly this.
  EXPECT_EQ(during.cluster.OwnerOfPartition(0), owner_before);
  EXPECT_GT(during.version, before.version);

  metadata.FinishMigration(0);
  const voldemort::RoutingView after = metadata.Snapshot();
  // And the flip and the migration's disappearance are atomic in the view:
  // new owner visible => no in-flight migration for the partition.
  EXPECT_EQ(after.cluster.OwnerOfPartition(0), 1);
  EXPECT_FALSE(after.MigrationOf(0).has_value());
  EXPECT_GT(after.version, during.version);

  // Snapshots are value copies: the earlier views still describe their
  // moment coherently after further mutation.
  metadata.AddNode({2, "n2", 0});
  EXPECT_EQ(during.cluster.OwnerOfPartition(0), owner_before);
  ASSERT_TRUE(during.MigrationOf(0).has_value());
  EXPECT_EQ(metadata.Snapshot().cluster.nodes().size(), 3u);
  EXPECT_GT(metadata.Snapshot().version, after.version);
}

}  // namespace
}  // namespace lidi::sim
