// Model-based property tests for the inverted index: every query result is
// cross-checked against a naive scan over the raw documents.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "invidx/inverted_index.h"

namespace lidi::invidx {
namespace {

/// Naive reference implementation: linear scan with substring token logic.
class NaiveIndex {
 public:
  void Index(const std::string& doc_id,
             const std::map<std::string, std::string>& fields,
             const std::set<std::string>& text_fields) {
    docs_[doc_id] = {fields, text_fields};
  }
  void Remove(const std::string& doc_id) { docs_.erase(doc_id); }

  std::vector<std::string> Search(const Query& query) const {
    std::vector<std::string> out;
    for (const auto& [doc_id, doc] : docs_) {
      bool all = true;
      for (const auto& clause : query.clauses) {
        if (!Matches(doc, clause)) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(doc_id);
    }
    return out;
  }

 private:
  struct Doc {
    std::map<std::string, std::string> fields;
    std::set<std::string> text_fields;
  };

  static bool Matches(const Doc& doc, const Query::Clause& clause) {
    auto it = doc.fields.find(clause.field);
    if (it == doc.fields.end()) return false;
    const bool is_text = doc.text_fields.count(clause.field) > 0;
    auto lower = [](std::string s) {
      for (char& c : s) c = static_cast<char>(std::tolower(c));
      return s;
    };
    if (!is_text) {
      // Keyword field: exact lowercase match of the whole value.
      return lower(it->second) == lower(clause.text);
    }
    // Text field: the clause tokens must appear consecutively.
    const auto doc_tokens = Tokenize(it->second);
    const auto query_tokens = Tokenize(clause.text);
    if (query_tokens.empty()) return false;
    if (!clause.phrase && query_tokens.size() == 1) {
      return std::find(doc_tokens.begin(), doc_tokens.end(),
                       query_tokens[0]) != doc_tokens.end();
    }
    for (size_t start = 0;
         start + query_tokens.size() <= doc_tokens.size(); ++start) {
      bool match = true;
      for (size_t i = 0; i < query_tokens.size(); ++i) {
        if (doc_tokens[start + i] != query_tokens[i]) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    return false;
  }

  std::map<std::string, Doc> docs_;
};

class InvidxModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvidxModelTest, MatchesNaiveScanUnderRandomOps) {
  Random rng(GetParam());
  InvertedIndex index;
  NaiveIndex naive;

  // A small vocabulary so phrases repeat across documents.
  const std::vector<std::string> vocab = {"lucy", "sky",     "diamonds",
                                          "come", "together", "walrus",
                                          "let",  "it",       "be"};
  auto random_text = [&](int words) {
    std::string text;
    for (int i = 0; i < words; ++i) {
      if (i) text += ' ';
      text += vocab[rng.Uniform(vocab.size())];
    }
    return text;
  };

  for (int step = 0; step < 600; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.5) {
      // Index (or re-index) a random document.
      const std::string doc_id = "d" + std::to_string(rng.Uniform(40));
      std::map<std::string, std::string> fields;
      fields["body"] = random_text(2 + static_cast<int>(rng.Uniform(8)));
      fields["year"] = std::to_string(1960 + rng.Uniform(10));
      index.IndexDocument(doc_id, fields, {"body"});
      naive.Index(doc_id, fields, {"body"});
    } else if (action < 0.6) {
      const std::string doc_id = "d" + std::to_string(rng.Uniform(40));
      index.RemoveDocument(doc_id);
      naive.Remove(doc_id);
    } else {
      // Random query: term, phrase, keyword, or conjunction.
      Query query;
      const int shape = static_cast<int>(rng.Uniform(4));
      if (shape == 0) {
        query.clauses.push_back({"body", vocab[rng.Uniform(vocab.size())],
                                 false});
      } else if (shape == 1) {
        query.clauses.push_back(
            {"body", random_text(2 + static_cast<int>(rng.Uniform(2))),
             true});
      } else if (shape == 2) {
        query.clauses.push_back(
            {"year", std::to_string(1960 + rng.Uniform(10)), false});
      } else {
        query.clauses.push_back({"body", vocab[rng.Uniform(vocab.size())],
                                 false});
        query.clauses.push_back(
            {"year", std::to_string(1960 + rng.Uniform(10)), false});
      }
      auto got = index.Search(query);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), naive.Search(query))
          << "step " << step << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvidxModelTest,
                         ::testing::Values(3, 6, 9, 12, 15));

}  // namespace
}  // namespace lidi::invidx
