// Persistence and crash-recovery tests for the Kafka partition log's
// file-backed mode (LogOptions::data_dir): flushed data survives a process
// restart; unflushed data is lost (the paper's flush-policy durability
// model, V.B); torn trailing writes are truncated on recovery.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/clock.h"
#include "common/random.h"
#include "kafka/log.h"
#include "common/random.h"
#include "kafka/message.h"
#include "io/file.h"
#include "storage/log_engine.h"

#include "status_test_util.h"

namespace lidi::kafka {
namespace {

class PersistentLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lidi-log-" +
            std::to_string(
                std::chrono::steady_clock::now().time_since_epoch().count()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  LogOptions Options() {
    LogOptions options;
    options.data_dir = dir_.string();
    options.segment_bytes = 256;
    options.flush_interval_messages = 1;
    return options;
  }

  std::string OneSet(const std::string& payload) {
    MessageSetBuilder builder;
    builder.Add(payload);
    return builder.Build();
  }

  std::vector<std::string> ReadAll(PartitionLog* log) {
    std::vector<std::string> out;
    int64_t offset = log->start_offset();
    while (offset < log->flushed_end_offset()) {
      auto data = log->Read(offset, 1 << 20);
      if (!data.ok() || data.value().empty()) break;
      MessageSetIterator it(data.value(), offset);
      Message m;
      while (it.Next(&m)) out.push_back(m.payload);
      offset = it.next_fetch_offset();
    }
    return out;
  }

  std::filesystem::path dir_;
  ManualClock clock_;
};

TEST_F(PersistentLogTest, FlushedDataSurvivesRestart) {
  std::vector<std::string> written;
  {
    PartitionLog log(Options(), &clock_);
    for (int i = 0; i < 40; ++i) {
      written.push_back("m" + std::to_string(i) + "-" + std::string(20, 'x'));
      log.Append(OneSet(written.back()), 1);
    }
    log.Flush();
  }  // "process exit"
  PartitionLog recovered(Options(), &clock_);
  EXPECT_EQ(ReadAll(&recovered), written);
  EXPECT_GT(recovered.segment_count(), 1);  // multi-segment recovery
}

TEST_F(PersistentLogTest, UnflushedTailLostOnCrash) {
  LogOptions options = Options();
  options.flush_interval_messages = 1000;  // nothing auto-flushes
  options.flush_interval_ms = 1 << 30;
  {
    PartitionLog log(options, &clock_);
    log.Append(OneSet("durable"), 1);
    log.Flush();
    log.Append(OneSet("lost-on-crash"), 1);  // never flushed
  }
  PartitionLog recovered(options, &clock_);
  EXPECT_EQ(ReadAll(&recovered), std::vector<std::string>{"durable"});
}

TEST_F(PersistentLogTest, RestartedLogContinuesAtCorrectOffsets) {
  int64_t end_before;
  {
    PartitionLog log(Options(), &clock_);
    for (int i = 0; i < 10; ++i) log.Append(OneSet("a"), 1);
    log.Flush();
    end_before = log.end_offset();
  }
  PartitionLog recovered(Options(), &clock_);
  EXPECT_EQ(recovered.end_offset(), end_before);
  const int64_t next = recovered.Append(OneSet("post-restart"), 1);
  EXPECT_EQ(next, end_before);  // offsets continue exactly where they were
  recovered.Flush();
  const auto all = ReadAll(&recovered);
  ASSERT_EQ(all.size(), 11u);
  EXPECT_EQ(all.back(), "post-restart");
}

TEST_F(PersistentLogTest, TornTrailingWriteTruncatedOnRecovery) {
  {
    PartitionLog log(Options(), &clock_);
    log.Append(OneSet("complete"), 1);
    log.Flush();
  }
  // Simulate a torn write: append garbage that looks like a partial entry.
  std::filesystem::path segment;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    segment = entry.path();
  }
  {
    std::ofstream out(segment, std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x01, 0x02};  // len=64, 2 B
    out.write(torn, sizeof(torn));
  }
  PartitionLog recovered(Options(), &clock_);
  EXPECT_EQ(ReadAll(&recovered), std::vector<std::string>{"complete"});
  // And the log keeps working after truncation.
  recovered.Append(OneSet("after"), 1);
  recovered.Flush();
  EXPECT_EQ(ReadAll(&recovered).size(), 2u);
}

TEST_F(PersistentLogTest, RetentionRemovesSegmentFiles) {
  LogOptions options = Options();
  options.retention_ms = 1000;
  {
    PartitionLog log(options, &clock_);
    for (int i = 0; i < 30; ++i) log.Append(OneSet(std::string(40, 'x')), 1);
    log.Flush();
    const int files_before =
        static_cast<int>(std::distance(
            std::filesystem::directory_iterator(dir_),
            std::filesystem::directory_iterator{}));
    EXPECT_GT(files_before, 1);
    clock_.AdvanceMillis(5000);
    log.Append(OneSet("fresh"), 1);
    log.Flush();
    EXPECT_GT(log.DeleteExpiredSegments(), 0);
    const int files_after =
        static_cast<int>(std::distance(
            std::filesystem::directory_iterator(dir_),
            std::filesystem::directory_iterator{}));
    EXPECT_LT(files_after, files_before);
  }
  // Recovery after retention: only the retained range comes back.
  PartitionLog recovered(options, &clock_);
  EXPECT_GT(recovered.start_offset(), 0);
  const auto all = ReadAll(&recovered);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.back(), "fresh");
}

TEST_F(PersistentLogTest, RandomizedRestartEquivalence) {
  // Property: after any prefix of appends+flushes, restart yields exactly
  // the flushed prefix.
  Random rng(99);
  std::vector<std::string> flushed_payloads;
  std::vector<std::string> pending;
  LogOptions options = Options();
  options.flush_interval_messages = 1000;
  options.flush_interval_ms = 1 << 30;
  {
    PartitionLog log(options, &clock_);
    for (int i = 0; i < 200; ++i) {
      const std::string payload = "p" + std::to_string(i) + rng.Bytes(30);
      log.Append(OneSet(payload), 1);
      pending.push_back(payload);
      if (rng.Bernoulli(0.2)) {
        log.Flush();
        flushed_payloads.insert(flushed_payloads.end(), pending.begin(),
                                pending.end());
        pending.clear();
      }
    }
  }
  PartitionLog recovered(options, &clock_);
  EXPECT_EQ(ReadAll(&recovered), flushed_payloads);
}


// ---------------------------------------------------------------------------
// Log-structured engine persistence (the BDB-JE-style replay recovery)
// ---------------------------------------------------------------------------

class PersistentEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lidi-eng-" +
            std::to_string(
                std::chrono::steady_clock::now().time_since_epoch().count()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  storage::LogEngineOptions Options() {
    storage::LogEngineOptions options;
    options.data_dir = dir_.string();
    options.segment_size_bytes = 512;
    options.compaction_garbage_ratio = 10.0;  // manual compaction only
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(PersistentEngineTest, StateSurvivesRestart) {
  std::map<std::string, std::string> model;
  {
    auto engine = storage::NewLogStructuredEngine(Options());
    Random rng(5);
    for (int i = 0; i < 500; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(60));
      if (rng.Bernoulli(0.25)) {
        ASSERT_OK(engine->Delete(key));
        model.erase(key);
      } else {
        const std::string value = rng.Bytes(50);
        ASSERT_OK(engine->Put(key, value));
        model[key] = value;
      }
    }
  }  // crash
  auto recovered = storage::NewLogStructuredEngine(Options());
  std::map<std::string, std::string> scanned;
  recovered->ForEach([&scanned](Slice k, Slice v) {
    scanned[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(scanned, model);
  EXPECT_TRUE(recovered->VerifyChecksums().ok());
  // Writes continue after recovery.
  ASSERT_TRUE(recovered->Put("post", "restart").ok());
  std::string v;
  ASSERT_TRUE(recovered->Get("post", &v).ok());
  EXPECT_EQ(v, "restart");
}

TEST_F(PersistentEngineTest, CompactionStateSurvivesRestart) {
  std::map<std::string, std::string> model;
  {
    auto engine = storage::NewLogStructuredEngine(Options());
    for (int i = 0; i < 400; ++i) {
      const std::string key = "k" + std::to_string(i % 10);
      ASSERT_OK(engine->Put(key, "v" + std::to_string(i)));
      model[key] = "v" + std::to_string(i);
    }
    engine->CompactNow();
  }
  auto recovered = storage::NewLogStructuredEngine(Options());
  std::map<std::string, std::string> scanned;
  recovered->ForEach([&scanned](Slice k, Slice v) {
    scanned[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(scanned, model);
}

TEST_F(PersistentEngineTest, CorruptTailDiscardedOnRecovery) {
  {
    auto engine = storage::NewLogStructuredEngine(Options());
    ASSERT_OK(engine->Put("good", "value"));
  }
  // Corrupt the last few bytes of the newest segment file.
  std::filesystem::path newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (newest.empty() || entry.path() > newest) newest = entry.path();
  }
  {
    std::ofstream out(newest, std::ios::binary | std::ios::app);
    out.write("\x01\x02\x03", 3);
  }
  auto recovered = storage::NewLogStructuredEngine(Options());
  std::string v;
  EXPECT_TRUE(recovered->Get("good", &v).ok());
  EXPECT_EQ(v, "value");
  EXPECT_TRUE(recovered->VerifyChecksums().ok());
}

// ---------------------------------------------------------------------------
// Compaction I/O failure handling (regression tests for discarded-Status
// bugs: CompactLocked used to ignore the results of RemoveFile / SyncDir on
// the old generation, so a failed remove left stale segments that recovery
// would replay — resurrecting deleted keys — and a failed directory sync
// claimed durability the disk never promised.)
// ---------------------------------------------------------------------------

// Delegating filesystem with per-call failure switches; everything not
// explicitly failed passes through to the in-memory substrate.
class FlakyFs : public io::Fs {
 public:
  explicit FlakyFs(io::Fs* base) : base_(base) {}

  bool fail_remove = false;
  bool fail_syncdir = false;

  Result<std::unique_ptr<io::WritableFile>> OpenAppend(
      const std::string& path) override {
    return base_->OpenAppend(path);
  }
  Status ReadFile(const std::string& path, std::string* out) override {
    return base_->ReadFile(path, out);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Status RemoveFile(const std::string& path) override {
    if (fail_remove) return Status::IOError("injected remove failure: " + path);
    return base_->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, int64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status SyncDir(const std::string& path) override {
    if (fail_syncdir) return Status::IOError("injected dir-sync failure");
    return base_->SyncDir(path);
  }
  Result<int64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  io::Fs* const base_;
};

class CompactionFaultTest : public ::testing::Test {
 protected:
  storage::LogEngineOptions Options() {
    storage::LogEngineOptions options;
    options.data_dir = "/eng";
    options.fs = &flaky_;
    options.segment_size_bytes = 512;
    options.compaction_garbage_ratio = 10.0;  // manual compaction only
    return options;
  }

  std::unique_ptr<io::Fs> mem_ = io::NewMemFs();
  FlakyFs flaky_{mem_.get()};
};

TEST_F(CompactionFaultTest, CompactionRemoveFailureCannotResurrectDeletedKeys) {
  std::map<std::string, std::string> model;
  {
    auto engine = storage::NewLogStructuredEngine(Options());
    // Lots of overwrites across many 512-byte segments, then delete half the
    // keyspace: the old generation holds every overwritten and deleted
    // record, the compacted generation only the five survivors.
    for (int i = 0; i < 400; ++i) {
      const std::string key = "k" + std::to_string(i % 10);
      ASSERT_OK(engine->Put(key, "v" + std::to_string(i)));
      model[key] = "v" + std::to_string(i);
    }
    for (int k = 5; k < 10; ++k) {
      const std::string key = "k" + std::to_string(k);
      ASSERT_OK(engine->Delete(key));
      model.erase(key);
    }
    const int64_t segments_before = engine->GetStats().segments;

    // Every surplus-segment RemoveFile fails; the engine must fall back to
    // truncating the stale files so recovery cannot replay them.
    flaky_.fail_remove = true;
    engine->CompactNow();
    flaky_.fail_remove = false;

    ASSERT_LT(engine->GetStats().segments, segments_before)
        << "compaction should have shrunk the segment count";
    // The truncate fallback defused every stale segment: not degraded.
    EXPECT_OK(engine->RecoveryStatus());
  }  // crash

  auto recovered = storage::NewLogStructuredEngine(Options());
  EXPECT_OK(recovered->RecoveryStatus());
  std::map<std::string, std::string> scanned;
  recovered->ForEach([&scanned](Slice k, Slice v) {
    scanned[k.ToString()] = v.ToString();
    return true;
  });
  EXPECT_EQ(scanned, model) << "stale old-generation segments must not "
                               "resurrect overwritten or deleted records";
  std::string v;
  EXPECT_TRUE(recovered->Get("k7", &v).IsNotFound());
}

TEST_F(CompactionFaultTest, CompactionDirSyncFailureMarksEngineDegraded) {
  auto engine = storage::NewLogStructuredEngine(Options());
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(engine->Put("k" + std::to_string(i % 5), std::string(40, 'x')));
  }
  ASSERT_OK(engine->RecoveryStatus());

  flaky_.fail_syncdir = true;
  engine->CompactNow();
  flaky_.fail_syncdir = false;

  // The renames may not survive power loss; the engine must say so instead
  // of silently claiming the compaction durable.
  EXPECT_FALSE(engine->RecoveryStatus().ok());
  // The in-flight state is still fully readable.
  std::string v;
  ASSERT_OK(engine->Get("k0", &v));
  EXPECT_EQ(v, std::string(40, 'x'));
}

}  // namespace
}  // namespace lidi::kafka
