// Tests for the paper's named future-work features, implemented as
// extensions: Kafka intra-cluster replication (V.D), Espresso global
// secondary indexes via an update-stream listener (IV.A), Databus
// declarative transformations (III.E), and the Voldemort read-only update
// stream (II.C).

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "databus/multitenant.h"
#include "databus/transformation.h"
#include "espresso/global_index.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "kafka/replication.h"
#include "net/address.h"
#include "net/network.h"
#include "sqlstore/database.h"
#include "voldemort/readonly_store.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// Kafka intra-cluster replication
// ---------------------------------------------------------------------------

class ReplicationTest : public ::testing::Test {
 protected:
  static constexpr int kPartitions = 4;

  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      brokers_.push_back(std::make_unique<kafka::Broker>(
          i, &zk_, &network_, &clock_, kafka::BrokerOptions{}));
    }
    manager_ =
        std::make_unique<kafka::ReplicatedTopicManager>(&zk_, &network_);
    ASSERT_TRUE(manager_
                    ->CreateReplicatedTopic(
                        "t", kPartitions,
                        {brokers_[0].get(), brokers_[1].get(),
                         brokers_[2].get()})
                    .ok());
    for (int i = 0; i < 3; ++i) {
      fetchers_.push_back(std::make_unique<kafka::ReplicaFetcher>(
          brokers_[i].get(), manager_.get(), &network_));
    }
  }

  int64_t ProduceOne(int partition, const std::string& payload) {
    kafka::MessageSetBuilder builder;
    builder.Add(payload);
    auto offset =
        manager_->ProduceToLeader("test", "t", partition, builder.Build());
    EXPECT_TRUE(offset.ok()) << offset.status().ToString();
    return offset.ok() ? offset.value() : -1;
  }

  void SyncAll() {
    for (auto& fetcher : fetchers_) {
      ASSERT_TRUE(fetcher->SyncOnce("t", kPartitions).ok());
    }
  }

  ManualClock clock_;
  zk::ZooKeeper zk_;
  net::Network network_;
  std::vector<std::unique_ptr<kafka::Broker>> brokers_;
  std::unique_ptr<kafka::ReplicatedTopicManager> manager_;
  std::vector<std::unique_ptr<kafka::ReplicaFetcher>> fetchers_;
};

TEST_F(ReplicationTest, LeadersSpreadOverReplicas) {
  std::set<int> leaders;
  for (int p = 0; p < kPartitions; ++p) {
    auto leader = manager_->LeaderOf("t", p);
    ASSERT_TRUE(leader.ok());
    leaders.insert(leader.value());
    auto replicas = manager_->ReplicasOf("t", p);
    ASSERT_TRUE(replicas.ok());
    EXPECT_EQ(replicas.value().size(), 3u);
  }
  EXPECT_EQ(leaders.size(), 3u);  // round-robin over 3 brokers
}

TEST_F(ReplicationTest, FollowersMirrorLeaderByteForByte) {
  for (int i = 0; i < 50; ++i) {
    ProduceOne(i % kPartitions, "m" + std::to_string(i));
  }
  SyncAll();
  for (int p = 0; p < kPartitions; ++p) {
    const int leader = manager_->LeaderOf("t", p).value();
    auto leader_data =
        brokers_[leader]->Fetch("t", p, 0, 1 << 20);
    ASSERT_TRUE(leader_data.ok());
    for (auto& broker : brokers_) {
      if (broker->id() == leader) continue;
      auto follower_data = broker->Fetch("t", p, 0, 1 << 20);
      ASSERT_TRUE(follower_data.ok());
      EXPECT_EQ(follower_data.value(), leader_data.value())
          << "partition " << p << " follower " << broker->id();
    }
  }
}

TEST_F(ReplicationTest, FailoverPromotesCaughtUpFollowerWithZeroLoss) {
  std::map<int, std::vector<std::string>> produced;  // per partition
  for (int i = 0; i < 60; ++i) {
    const int p = i % kPartitions;
    produced[p].push_back("m" + std::to_string(i));
    ProduceOne(p, produced[p].back());
  }
  SyncAll();  // fully replicated before the crash

  // Find a partition led by broker 0 and kill broker 0.
  int victim_partition = -1;
  for (int p = 0; p < kPartitions; ++p) {
    if (manager_->LeaderOf("t", p).value() == 0) victim_partition = p;
  }
  ASSERT_GE(victim_partition, 0);
  brokers_[0]->Shutdown();
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, 0));

  auto moved = manager_->FailoverDeadLeaders("t");
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(moved.value(), 0);
  const int new_leader = manager_->LeaderOf("t", victim_partition).value();
  EXPECT_NE(new_leader, 0);

  // Every message of the failed partition is served by the new leader.
  auto data = manager_->FetchFromLeader("test", "t", victim_partition, 0,
                                        1 << 20);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  kafka::MessageSetIterator it(data.value(), 0);
  kafka::Message m;
  std::vector<std::string> recovered;
  while (it.Next(&m)) recovered.push_back(m.payload);
  EXPECT_EQ(recovered, produced[victim_partition]);

  // Writes continue through the new leader.
  const int64_t offset = ProduceOne(victim_partition, "after-failover");
  EXPECT_GE(offset, 0);
}

TEST_F(ReplicationTest, UnsyncedTailLostOnFailoverAcksOneSemantics) {
  const int p = 0;
  ProduceOne(p, "replicated");
  SyncAll();
  ProduceOne(p, "acked-but-not-fetched");  // followers never sync this
  const int old_leader = manager_->LeaderOf("t", p).value();
  brokers_[old_leader]->Shutdown();
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, old_leader));
  ASSERT_TRUE(manager_->FailoverDeadLeaders("t").ok());

  auto data = manager_->FetchFromLeader("test", "t", p, 0, 1 << 20);
  ASSERT_TRUE(data.ok());
  kafka::MessageSetIterator it(data.value(), 0);
  kafka::Message m;
  std::vector<std::string> recovered;
  while (it.Next(&m)) recovered.push_back(m.payload);
  EXPECT_EQ(recovered, std::vector<std::string>{"replicated"});
}

TEST_F(ReplicationTest, NoLiveFollowerLeavesPartitionOffline) {
  brokers_[1]->Shutdown();
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, 1));
  brokers_[2]->Shutdown();
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, 2));
  brokers_[0]->Shutdown();
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, 0));
  auto moved = manager_->FailoverDeadLeaders("t");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 0);  // nothing to promote
}

// ---------------------------------------------------------------------------
// Espresso global secondary index
// ---------------------------------------------------------------------------

TEST(GlobalIndexTest, IndexesAcrossPartitionsViaUpdateStream) {
  net::Network network;
  zk::ZooKeeper zookeeper;
  SystemClock* clock = SystemClock::Default();
  espresso::SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase(
      {"db", espresso::DatabaseSchema::Partitioning::kHash, 8, 2}));
  ASSERT_OK(registry.CreateTable("db", {"docs", 1}));
  ASSERT_OK(registry.PostDocumentSchema("db", "docs", R"({
    "type":"record","name":"Doc","fields":[
      {"name":"title","type":"string","indexed":true},
      {"name":"body","type":"string","indexed":true,"index_type":"text"}]})"));
  espresso::EspressoRelay relay;
  helix::HelixController controller("c", &zookeeper);
  ASSERT_OK(controller.AddResource({"db", 8, 2}));
  std::vector<std::unique_ptr<espresso::StorageNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry, &relay, &network, clock);
    auto* raw = node.get();
    ASSERT_OK(controller.ConnectParticipant(raw->name(),
                                  [raw](const helix::Transition& t) {
                                    return raw->HandleTransition(t);
                                  }));
    nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);

  // Documents under many different resource_ids -> many partitions; the
  // needle phrase appears in three of them.
  for (int i = 0; i < 60; ++i) {
    auto doc = avro::Datum::Record("Doc");
    doc->SetField("title", avro::Datum::String("t" + std::to_string(i)));
    doc->SetField("body",
                  avro::Datum::String(i % 20 == 0 ? "the needle phrase here"
                                                  : "ordinary text"));
    ASSERT_TRUE(router
                    .PutDocument("/db/docs/r" + std::to_string(i) + "/d",
                                 *doc)
                    .ok());
  }

  espresso::GlobalIndexer indexer("db", &registry, &relay);
  EXPECT_EQ(indexer.CatchUp(), 60);
  EXPECT_EQ(indexer.documents_indexed(), 60);

  // A LOCAL query cannot span resource ids; the global one can.
  auto global = indexer.Query("docs", "body:\"needle phrase\"");
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global.value().size(), 3u);

  // Incremental: deletes and new writes are reflected after catch-up.
  ASSERT_TRUE(router.DeleteDocument("/db/docs/r0/d").ok());
  indexer.CatchUp();
  auto after_delete = indexer.Query("docs", "body:\"needle phrase\"");
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(after_delete.value().size(), 2u);
}

// ---------------------------------------------------------------------------
// Databus declarative transformations
// ---------------------------------------------------------------------------

TEST(TransformationTest, ParseAcceptsAndRejects) {
  EXPECT_TRUE(databus::Transformation::Parse("").ok());
  EXPECT_TRUE(databus::Transformation::Parse("project a,b").ok());
  EXPECT_TRUE(
      databus::Transformation::Parse("project a; rename b:c; where d=e").ok());
  EXPECT_FALSE(databus::Transformation::Parse("explode a").ok());
  EXPECT_FALSE(databus::Transformation::Parse("rename broken").ok());
  EXPECT_FALSE(databus::Transformation::Parse("where novalue").ok());
}

TEST(TransformationTest, ProjectRenameWhere) {
  auto t = databus::Transformation::Parse(
               "project name,country; rename name:member_name; "
               "where country=us")
               .value();
  databus::Event event;
  event.op = databus::Event::Op::kUpsert;
  sqlstore::EncodeRow({{"name", "ada"}, {"country", "us"}, {"ssn", "x"}},
                      &event.payload);
  auto result = t.Apply(event);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_value());
  auto row = sqlstore::DecodeRow(result.value()->payload);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value().size(), 2u);
  EXPECT_EQ(row.value().at("member_name"), "ada");
  EXPECT_EQ(row.value().count("ssn"), 0u);  // projected away

  // Filtered out.
  databus::Event foreign = event;
  foreign.payload.clear();
  sqlstore::EncodeRow({{"name", "bob"}, {"country", "de"}}, &foreign.payload);
  auto filtered = t.Apply(foreign);
  ASSERT_TRUE(filtered.ok());
  EXPECT_FALSE(filtered.value().has_value());
}

TEST(TransformationTest, AppliedInsideClientLibrary) {
  net::Network network;
  sqlstore::Database db("src");
  ASSERT_OK(db.CreateTable("members"));
  databus::Relay relay("relay", &db, &network);
  ASSERT_OK(db.Put("members", "m1", {{"name", "ada"}, {"country", "us"}, {"ssn", "1"}}));
  ASSERT_OK(db.Put("members", "m2", {{"name", "bob"}, {"country", "de"}, {"ssn", "2"}}));
  ASSERT_OK(db.Put("members", "m3", {{"name", "eve"}, {"country", "us"}, {"ssn", "3"}}));
  ASSERT_OK(relay.PollOnce());

  std::vector<sqlstore::Row> seen;
  databus::CallbackConsumer sink([&seen](const databus::Event& e) {
    auto row = sqlstore::DecodeRow(e.payload);
    if (row.ok()) seen.push_back(row.value());
    return Status::OK();
  });
  databus::ClientOptions options;
  options.transformation =
      databus::Transformation::Parse("project name; where country=us").value();
  databus::DatabusClient client("c", "relay", "", &network, &sink, options);
  ASSERT_TRUE(client.DrainToHead().ok());

  ASSERT_EQ(seen.size(), 2u);  // bob filtered out
  for (const auto& row : seen) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_EQ(row.count("name"), 1u);
  }
  // Checkpoint still reached the head past filtered events.
  EXPECT_EQ(client.checkpoint_scn(), 3);
}

// ---------------------------------------------------------------------------
// Voldemort read-only update stream
// ---------------------------------------------------------------------------

TEST(SwapListenerTest, FiresOnSwapAndRollback) {
  voldemort::ReadOnlyStore store;
  std::vector<int64_t> notified;
  store.AddSwapListener([&notified](int64_t v) { notified.push_back(v); });
  ASSERT_TRUE(store.AddVersion(1, {}).ok());
  ASSERT_TRUE(store.AddVersion(2, {}).ok());
  ASSERT_TRUE(store.Swap(1).ok());
  ASSERT_TRUE(store.Swap(2).ok());
  ASSERT_TRUE(store.Rollback().ok());
  EXPECT_EQ(notified, (std::vector<int64_t>{1, 2, 1}));
  // Failed swaps do not notify.
  EXPECT_FALSE(store.Swap(99).ok());
  EXPECT_EQ(notified.size(), 3u);
}


// ---------------------------------------------------------------------------
// Databus multi-tenancy
// ---------------------------------------------------------------------------

TEST(MultiTenantRelayTest, TenantsServeIndependentStreams) {
  net::Network network;
  sqlstore::Database profiles_db("profiles_db");
  ASSERT_OK(profiles_db.CreateTable("t"));
  sqlstore::Database jobs_db("jobs_db");
  ASSERT_OK(jobs_db.CreateTable("t"));

  databus::MultiTenantRelay relay("mt-relay", &network, 1024);
  ASSERT_TRUE(relay.AddTenant("profiles", &profiles_db).ok());
  ASSERT_TRUE(relay.AddTenant("jobs", &jobs_db).ok());
  EXPECT_TRUE(relay.AddTenant("profiles", &profiles_db)
                  .code() == Code::kAlreadyExists);
  EXPECT_FALSE(relay.AddTenant("bad/name", &jobs_db).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(profiles_db.Put("t", "p" + std::to_string(i), {}));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(jobs_db.Put("t", "j" + std::to_string(i), {}));
  }
  ASSERT_TRUE(relay.PollAllOnce().ok());

  // The standard client library works unchanged against a tenant stream.
  databus::CallbackConsumer count_profiles([](const databus::Event&) {
    return Status::OK();
  });
  databus::DatabusClient profiles_client("cp", relay.TenantAddress("profiles"),
                                         "", &network, &count_profiles);
  auto n = profiles_client.DrainToHead();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 10);

  databus::CallbackConsumer count_jobs([](const databus::Event&) {
    return Status::OK();
  });
  databus::DatabusClient jobs_client("cj", relay.TenantAddress("jobs"), "",
                                     &network, &count_jobs);
  auto m = jobs_client.DrainToHead();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), 4);
}

TEST(MultiTenantRelayTest, NoisyTenantCannotEvictQuietTenant) {
  net::Network network;
  sqlstore::Database noisy_db("noisy");
  ASSERT_OK(noisy_db.CreateTable("t"));
  sqlstore::Database quiet_db("quiet");
  ASSERT_OK(quiet_db.CreateTable("t"));

  databus::MultiTenantRelay relay("mt-relay", &network, /*budget=*/64);
  ASSERT_TRUE(relay.AddTenant("noisy", &noisy_db).ok());
  ASSERT_TRUE(relay.AddTenant("quiet", &quiet_db).ok());
  const int64_t share = relay.BufferShare();

  ASSERT_OK(quiet_db.Put("t", "important", {}));
  ASSERT_OK(relay.PollAllOnce());
  // The noisy tenant floods far beyond the whole process budget.
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(noisy_db.Put("t", "spam" + std::to_string(i), {}));
    if (i % 10 == 0) ASSERT_OK(relay.PollAllOnce());
  }
  while (relay.PollAllOnce().value() > 0) {
  }
  // Isolation: the noisy tenant filled only its own share; the quiet
  // tenant's single event is still buffered and servable.
  EXPECT_LE(relay.BufferedEvents("noisy"), share);
  EXPECT_EQ(relay.BufferedEvents("quiet"), 1);

  databus::CallbackConsumer sink([](const databus::Event&) {
    return Status::OK();
  });
  databus::DatabusClient quiet_client("cq", relay.TenantAddress("quiet"), "",
                                      &network, &sink);
  auto n = quiet_client.DrainToHead();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1);
}

}  // namespace
}  // namespace lidi
