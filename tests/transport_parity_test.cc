#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/tcp_transport.h"
#include "net/transport.h"

namespace lidi {
namespace {

/// Regression suite for the Transport error contract: unknown-method,
/// unknown-endpoint, and post-shutdown dispatch must produce the SAME typed
/// error with the SAME message on both Call paths (owned-string and
/// payload) and on both backends (sim and TCP). Tier retry logic branches
/// on these codes, so a backend that drifted would change cluster behavior
/// silently.
class TransportParityTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<net::Transport> Make() {
    if (std::string(GetParam()) == "sim") {
      return std::make_unique<net::Network>();
    }
    return std::make_unique<net::TcpTransport>();
  }
};

TEST_P(TransportParityTest, UnknownEndpointIsNotFoundOnBothPaths) {
  auto t = Make();
  const Status via_string = t->Call("c", "ghost", "m", "").status();
  const Status via_payload = t->CallPayload("c", "ghost", "m", "").status();
  EXPECT_EQ(via_string.code(), Code::kNotFound);
  EXPECT_EQ(via_string.message(), "no endpoint: ghost");
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());
}

TEST_P(TransportParityTest, UnknownMethodIsNotFoundOnBothPaths) {
  auto t = Make();
  t->Register("s", "known", [](Slice) -> Result<std::string> {
    return std::string("ok");
  });
  const Status via_string = t->Call("c", "s", "missing", "").status();
  const Status via_payload = t->CallPayload("c", "s", "missing", "").status();
  EXPECT_EQ(via_string.code(), Code::kNotFound);
  EXPECT_EQ(via_string.message(), "no method missing at s");
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());
}

TEST_P(TransportParityTest, PostShutdownDispatchIsUnavailableOnBothPaths) {
  auto t = Make();
  t->Register("s", "m", [](Slice) -> Result<std::string> {
    return std::string("ok");
  });
  ASSERT_TRUE(t->Call("c", "s", "m", "").ok());
  t->Shutdown();
  const Status via_string = t->Call("c", "s", "m", "").status();
  const Status via_payload = t->CallPayload("c", "s", "m", "").status();
  EXPECT_EQ(via_string.code(), Code::kUnavailable);
  EXPECT_EQ(via_string.message(), "transport shut down");
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());
  // Shutdown is idempotent and sticky.
  t->Shutdown();
  EXPECT_EQ(t->Call("c", "s", "m", "").status().code(), Code::kUnavailable);
}

TEST_P(TransportParityTest, StringPathIsAThinWrapperOverPayloadPath) {
  auto t = Make();
  // A handler registered through the string surface serves the payload
  // surface and vice versa: one handler table, one dispatch path.
  t->Register("s", "m1", [](Slice req) -> Result<std::string> {
    return "s:" + req.ToString();
  });
  t->RegisterPayload("s", "m2", [](Slice req) -> Result<PinnedSlice> {
    return PinnedSlice::Own("p:" + req.ToString());
  });
  auto p1 = t->CallPayload("c", "s", "m1", "x");
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value().ToString(), "s:x");
  auto s2 = t->Call("c", "s", "m2", "y");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value(), "p:y");
}

TEST_P(TransportParityTest, HandlerErrorsPassThroughVerbatim) {
  auto t = Make();
  t->Register("s", "m", [](Slice) -> Result<std::string> {
    return Status::InsufficientNodes("1 of 2 required replicas");
  });
  const Status s = t->Call("c", "s", "m", "").status();
  EXPECT_EQ(s.code(), Code::kInsufficientNodes);
  EXPECT_EQ(s.message(), "1 of 2 required replicas");
}

TEST_P(TransportParityTest, StatsCountBothDirections) {
  auto t = Make();
  t->Register("s", "m", [](Slice) -> Result<std::string> {
    return std::string("four");
  });
  ASSERT_TRUE(t->Call("c", "s", "m", "abc").ok());
  EXPECT_EQ(t->GetStats("c").calls_sent, 1);
  EXPECT_EQ(t->GetStats("c").bytes_sent, 3);
  EXPECT_EQ(t->GetStats("s").calls_received, 1);
  EXPECT_EQ(t->total_calls(), 1);
  t->ResetStats();
  EXPECT_EQ(t->GetStats("c").calls_sent, 0);
  EXPECT_EQ(t->total_calls(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportParityTest,
                         ::testing::Values("sim", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace lidi
