#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "espresso/router.h"
#include "espresso/schema.h"
#include "helix/helix.h"
#include "net/network.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "voldemort/cluster.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"
#include "voldemort/wire.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

/// Regression suite for the Transport error contract: unknown-method,
/// unknown-endpoint, post-shutdown dispatch — and the overload contract
/// (dispatch-queue shed, per-client quota, router admission) — must produce
/// the SAME typed error with the SAME message on both Call paths
/// (owned-string and payload) and on both backends (sim and TCP). Tier
/// retry logic branches on these codes, so a backend that drifted would
/// change cluster behavior silently.
class TransportParityTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<net::Transport> Make(int64_t max_dispatch_inflight = 0) {
    if (std::string(GetParam()) == "sim") {
      return std::make_unique<net::Network>(/*fault_seed=*/42,
                                            /*metrics=*/nullptr,
                                            /*clock=*/nullptr,
                                            max_dispatch_inflight);
    }
    net::TcpTransportOptions options;
    options.max_dispatch_inflight = max_dispatch_inflight;
    return std::make_unique<net::TcpTransport>(options);
  }
};

TEST_P(TransportParityTest, UnknownEndpointIsNotFoundOnBothPaths) {
  auto t = Make();
  const Status via_string = t->Call("c", "ghost", "m", "").status();
  const Status via_payload = t->CallPayload("c", "ghost", "m", "").status();
  EXPECT_EQ(via_string.code(), Code::kNotFound);
  EXPECT_EQ(via_string.message(), "no endpoint: ghost");
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());
}

TEST_P(TransportParityTest, UnknownMethodIsNotFoundOnBothPaths) {
  auto t = Make();
  t->Register("s", "known", [](Slice) -> Result<std::string> {
    return std::string("ok");
  });
  const Status via_string = t->Call("c", "s", "missing", "").status();
  const Status via_payload = t->CallPayload("c", "s", "missing", "").status();
  EXPECT_EQ(via_string.code(), Code::kNotFound);
  EXPECT_EQ(via_string.message(), "no method missing at s");
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());
}

TEST_P(TransportParityTest, PostShutdownDispatchIsUnavailableOnBothPaths) {
  auto t = Make();
  t->Register("s", "m", [](Slice) -> Result<std::string> {
    return std::string("ok");
  });
  ASSERT_TRUE(t->Call("c", "s", "m", "").ok());
  t->Shutdown();
  const Status via_string = t->Call("c", "s", "m", "").status();
  const Status via_payload = t->CallPayload("c", "s", "m", "").status();
  EXPECT_EQ(via_string.code(), Code::kUnavailable);
  EXPECT_EQ(via_string.message(), "transport shut down");
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());
  // Shutdown is idempotent and sticky.
  t->Shutdown();
  EXPECT_EQ(t->Call("c", "s", "m", "").status().code(), Code::kUnavailable);
}

TEST_P(TransportParityTest, StringPathIsAThinWrapperOverPayloadPath) {
  auto t = Make();
  // A handler registered through the string surface serves the payload
  // surface and vice versa: one handler table, one dispatch path.
  t->Register("s", "m1", [](Slice req) -> Result<std::string> {
    return "s:" + req.ToString();
  });
  t->RegisterPayload("s", "m2", [](Slice req) -> Result<PinnedSlice> {
    return PinnedSlice::Own("p:" + req.ToString());
  });
  auto p1 = t->CallPayload("c", "s", "m1", "x");
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value().ToString(), "s:x");
  auto s2 = t->Call("c", "s", "m2", "y");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value(), "p:y");
}

TEST_P(TransportParityTest, HandlerErrorsPassThroughVerbatim) {
  auto t = Make();
  t->Register("s", "m", [](Slice) -> Result<std::string> {
    return Status::InsufficientNodes("1 of 2 required replicas");
  });
  const Status s = t->Call("c", "s", "m", "").status();
  EXPECT_EQ(s.code(), Code::kInsufficientNodes);
  EXPECT_EQ(s.message(), "1 of 2 required replicas");
}

TEST_P(TransportParityTest, StatsCountBothDirections) {
  auto t = Make();
  t->Register("s", "m", [](Slice) -> Result<std::string> {
    return std::string("four");
  });
  ASSERT_TRUE(t->Call("c", "s", "m", "abc").ok());
  EXPECT_EQ(t->GetStats("c").calls_sent, 1);
  EXPECT_EQ(t->GetStats("c").bytes_sent, 3);
  EXPECT_EQ(t->GetStats("s").calls_received, 1);
  EXPECT_EQ(t->total_calls(), 1);
  t->ResetStats();
  EXPECT_EQ(t->GetStats("c").calls_sent, 0);
  EXPECT_EQ(t->total_calls(), 0);
}

TEST_P(TransportParityTest, BoundedDispatchShedsOverloadedBeforeAnyWork) {
  // One dispatch slot: the outer handler holds it, so the nested call it
  // places is refused admission — reject-before-work, the typed Overloaded
  // error (not a timeout, not Unavailable) propagates back verbatim.
  auto t = Make(/*max_dispatch_inflight=*/1);
  t->Register("s2", "m", [](Slice) -> Result<std::string> {
    return std::string("never reached");
  });
  auto* raw = t.get();
  t->Register("s", "outer", [raw](Slice) -> Result<std::string> {
    auto nested = raw->Call("s", "s2", "m", "");
    if (!nested.ok()) return nested.status();
    return nested.value();
  });
  const Status shed = t->Call("c", "s", "outer", "").status();
  EXPECT_EQ(shed.code(), Code::kOverloaded);
  EXPECT_TRUE(shed.IsOverloaded());
  EXPECT_EQ(shed.message(), "dispatch queue full at s2");
  // With the outer handler done, the slot is free again: no sticky state.
  auto ok = t->Call("c", "s2", "m", "");
  ASSERT_TRUE(ok.ok());
}

TEST_P(TransportParityTest, VoldemortQuotaExceededIsOverloadedOnBothBackends) {
  auto t = Make();
  std::vector<voldemort::Node> nodes{
      {0, net::MakeAddress(net::Tier::kVoldemort, 0), 0}};
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 4));
  voldemort::VoldemortServerOptions options;
  options.quota_requests_per_sec = 1e-6;  // effectively no refill mid-test
  options.quota_burst = 1;
  voldemort::VoldemortServer server(0, metadata, t.get(), options);
  ASSERT_OK(server.AddStore("st"));
  // The quota gate runs before request decode, so even a garbage request
  // spends the client's one token...
  const Status first = t->Call("c", server.address(), "v.get", "").status();
  EXPECT_NE(first.code(), Code::kOverloaded);
  // ...and the next request from the same client is shed, typed and
  // attributed. A different client still has its own bucket.
  const Status second = t->Call("c", server.address(), "v.get", "").status();
  EXPECT_EQ(second.code(), Code::kOverloaded);
  EXPECT_EQ(second.message(),
            "get quota exceeded for c at " + server.address());
  EXPECT_NE(t->Call("other", server.address(), "v.get", "").status().code(),
            Code::kOverloaded);
  EXPECT_EQ(server.quota_rejects(), 1);
}

TEST_P(TransportParityTest, RouterAdmissionRejectIsOverloadedOnBothBackends) {
  auto t = Make();
  zk::ZooKeeper zookeeper;
  espresso::SchemaRegistry registry;
  helix::HelixController helix("h", &zookeeper);
  espresso::RouterOptions options;
  options.max_inflight = 1;
  espresso::Router router("r", &registry, &helix, t.get(), options);
  // Occupy the single admission slot from the outside: the next request is
  // rejected before the URI is even parsed (no storage tier exists here at
  // all, and the error is still the typed admission reject).
  ASSERT_TRUE(router.inflight_limiter()->TryEnter());
  const Status rejected = router.GetRecord("/db/t/r").status();
  EXPECT_EQ(rejected.code(), Code::kOverloaded);
  EXPECT_EQ(rejected.message(), "get rejected: router r at in-flight limit");
  EXPECT_EQ(router.admission_rejects(), 1);
  router.inflight_limiter()->Exit();
  // Slot free again: the same request now fails on routing, not admission.
  EXPECT_NE(router.GetRecord("/db/t/r").status().code(), Code::kOverloaded);
}

TEST_P(TransportParityTest, MidMigrationPairWriteContractOnBothBackends) {
  // The mid-migration error contract (ISSUE 10 satellite): while a
  // partition migrates away, a write to the old owner either succeeds
  // proxy-forwarded (applied at BOTH owners) or fails with the stable,
  // server-generated Unavailable message — never the backend's own
  // transport failure text. Espresso's router and the rebalance executor
  // both branch on this exact error, so sim and TCP must agree byte for
  // byte.
  auto t = Make();
  std::vector<voldemort::Node> nodes{
      {0, net::MakeAddress(net::Tier::kVoldemort, 0), 0},
      {1, net::MakeAddress(net::Tier::kVoldemort, 1), 0}};
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 4));
  voldemort::VoldemortServerOptions options;
  options.replication_factor = 1;
  voldemort::VoldemortServer source(0, metadata, t.get(), options);
  ASSERT_OK(source.AddStore("st"));

  // Pick a key node 0 masters, then start migrating its partition to node
  // 1 — which has NO transport endpoint yet, so the pair write cannot be
  // delivered.
  const voldemort::Cluster cluster = metadata->SnapshotCluster();
  auto routing = voldemort::NewConsistentRoutingStrategy(&cluster, 1);
  std::string key;
  int partition = -1;
  for (int i = 0; i < 256 && partition < 0; ++i) {
    const std::string candidate = "parity-key-" + std::to_string(i);
    const int p = routing->MasterPartition(candidate);
    if (cluster.OwnerOfPartition(p) == 0) {
      key = candidate;
      partition = p;
    }
  }
  ASSERT_GE(partition, 0);
  metadata->StartMigration(partition, /*to_node=*/1);

  const auto put_request = [&key](int counter) {
    voldemort::VectorClock clock;
    for (int i = 0; i < counter; ++i) clock.Increment(0);
    std::string request;
    voldemort::EncodePutRequest(
        "st", key, voldemort::Versioned{clock, "during-migration"},
        voldemort::Transform{}, &request);
    return request;
  };

  const std::string expected =
      "handoff pair write to " + net::MakeAddress(net::Tier::kVoldemort, 1) +
      " failed for partition " + std::to_string(partition);
  const Status via_string =
      t->Call("c", source.address(), "v.put", put_request(1)).status();
  EXPECT_EQ(via_string.code(), Code::kUnavailable);
  EXPECT_EQ(via_string.message(), expected);
  const Status via_payload =
      t->CallPayload("c", source.address(), "v.put", put_request(2)).status();
  EXPECT_EQ(via_payload.code(), via_string.code());
  EXPECT_EQ(via_payload.message(), via_string.message());

  // Destination comes up: the same write now succeeds, proxy-forwarded —
  // readable at BOTH owners before cutover (the pair-routing half of the
  // contract).
  voldemort::VoldemortServer destination(1, metadata, t.get(), options);
  ASSERT_OK(destination.AddStore("st"));
  ASSERT_OK(t->Call("c", source.address(), "v.put", put_request(3)).status());
  std::string get_request;
  voldemort::EncodeGetRequest("st", key, &get_request);
  for (const auto& owner : {source.address(), destination.address()}) {
    auto read = t->Call("c", owner, "v.get-noredirect", get_request);
    ASSERT_OK(read.status());
    auto versions = voldemort::DecodeVersionedList(read.value());
    ASSERT_OK(versions.status());
    ASSERT_FALSE(versions.value().empty());
    EXPECT_EQ(versions.value().back().value, "during-migration")
        << "missing pair-written value at " << owner;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportParityTest,
                         ::testing::Values("sim", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace lidi
