// Property sweep for the deterministic simulation harness: N seeded random
// 50-event chaos schedules (partitions, crashes, power loss, clock skew,
// delay and io-fault bursts, elastic add-node/start-rebalance growth —
// interleaved with whole-stack workloads), each run on a fresh cluster and
// held to the standard invariant catalogue.
//
// Replay workflow (README "Simulation testing"):
//   LIDI_SIM_SEEDS=500 ctest -R property_sim_test   # widen the sweep
//   LIDI_SIM_SEED=1234 ctest -R property_sim_test   # replay one failure
//   LIDI_SIM_EVENTS=80 ...                          # longer schedules
//
// A failing seed does not just fail: the test ddmin-shrinks the schedule to
// a minimal reproducer and prints it alongside the run trace, so the bug
// report is `--seed=N` plus a handful of events instead of fifty.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/invariants.h"
#include "sim/schedule.h"
#include "sim/sim_cluster.h"

namespace lidi::sim {
namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return fallback;
}

std::vector<uint64_t> SweepSeeds() {
  if (const char* env = std::getenv("LIDI_SIM_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  const int count = EnvInt("LIDI_SIM_SEEDS", 100);
  std::vector<uint64_t> seeds;
  for (int i = 1; i <= count; ++i) seeds.push_back(static_cast<uint64_t>(i));
  return seeds;
}

std::string Describe(uint64_t seed,
                     const std::vector<InvariantViolation>& violations,
                     const Schedule& shrunk, const std::string& trace) {
  std::string out = "seed " + std::to_string(seed) +
                    " violated invariants (replay: LIDI_SIM_SEED=" +
                    std::to_string(seed) + "):\n";
  for (const auto& v : violations) {
    out += "  " + v.invariant + ": " + v.detail + "\n";
  }
  out += "minimal reproducer (ddmin):\n" + FormatSchedule(shrunk);
  out += "--- trace of the full run ---\n" + trace;
  return out;
}

TEST(SimProperty, RandomSchedulesUpholdInvariants) {
  const int num_events = EnvInt("LIDI_SIM_EVENTS", 50);
  for (uint64_t seed : SweepSeeds()) {
    const Schedule schedule = GenerateSchedule(seed, num_events);
    SimOptions options;
    options.seed = seed;
    std::string trace;
    auto violations = RunScheduleOnFreshCluster(options, schedule, &trace);
    if (violations.empty()) continue;
    // Shrink before reporting: re-run candidate subsequences on fresh
    // clusters until the schedule is 1-minimal (within the probe budget).
    const auto fails = [&options](const Schedule& candidate) {
      return !RunScheduleOnFreshCluster(options, candidate).empty();
    };
    const Schedule shrunk = ShrinkSchedule(schedule, fails, /*max_probes=*/48);
    ADD_FAILURE() << Describe(seed, violations, shrunk, trace);
  }
}

// The sweep must actually exercise elasticity: the generator's roll table
// includes kAddNode and kStartRebalance, so ddmin shrinking covers live
// partition-movement schedules too. Pin that — a generator change that
// silently dropped the elastic kinds would hollow out the whole sweep.
TEST(SimProperty, SweepSchedulesIncludeElasticityEvents) {
  const int num_events = EnvInt("LIDI_SIM_EVENTS", 50);
  int add_node = 0;
  int start_rebalance = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    for (const SimEvent& event : GenerateSchedule(seed, num_events).events) {
      if (event.kind == EventKind::kAddNode) ++add_node;
      if (event.kind == EventKind::kStartRebalance) ++start_rebalance;
    }
  }
  EXPECT_GT(add_node, 0);
  EXPECT_GT(start_rebalance, 0);
}

// Acceptance gate for the harness itself: same seed => byte-identical trace,
// across every tier's randomness (network faults, io faults, workload keys,
// producer partitioning). Checked on a sample of the sweep range.
TEST(SimProperty, SweepIsDeterministic) {
  const int num_events = EnvInt("LIDI_SIM_EVENTS", 50);
  for (uint64_t seed : {1ull, 17ull, 33ull, 49ull, 65ull}) {
    const Schedule schedule = GenerateSchedule(seed, num_events);
    SimOptions options;
    options.seed = seed;
    std::string trace_a;
    std::string trace_b;
    RunScheduleOnFreshCluster(options, schedule, &trace_a);
    RunScheduleOnFreshCluster(options, schedule, &trace_b);
    ASSERT_FALSE(trace_a.empty());
    EXPECT_EQ(trace_a, trace_b) << "nondeterministic trace at seed " << seed;
  }
}

}  // namespace
}  // namespace lidi::sim
