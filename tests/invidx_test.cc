#include <gtest/gtest.h>

#include "invidx/inverted_index.h"

namespace lidi::invidx {
namespace {

TEST(TokenizeTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Lucy in the Sky, with Diamonds!"),
            (std::vector<std::string>{"lucy", "in", "the", "sky", "with",
                                      "diamonds"}));
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ...  ").empty());
  EXPECT_EQ(Tokenize("abc123"), (std::vector<std::string>{"abc123"}));
}

TEST(QueryParseTest, SingleTerm) {
  auto q = Query::Parse("artist:Akon");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().clauses.size(), 1u);
  EXPECT_EQ(q.value().clauses[0].field, "artist");
  EXPECT_EQ(q.value().clauses[0].text, "Akon");
  EXPECT_FALSE(q.value().clauses[0].phrase);
}

TEST(QueryParseTest, PhraseAndConjunction) {
  auto q = Query::Parse("lyrics:\"Lucy in the sky\" year:1967");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().clauses.size(), 2u);
  EXPECT_TRUE(q.value().clauses[0].phrase);
  EXPECT_EQ(q.value().clauses[0].text, "Lucy in the sky");
  EXPECT_EQ(q.value().clauses[1].field, "year");
}

TEST(QueryParseTest, Malformed) {
  EXPECT_FALSE(Query::Parse("").ok());
  EXPECT_FALSE(Query::Parse("noseparator").ok());
  EXPECT_FALSE(Query::Parse("field:\"unterminated").ok());
  EXPECT_FALSE(Query::Parse("field:").ok());
}

class IndexTest : public ::testing::Test {
 protected:
  void IndexSongs() {
    index_.IndexDocument(
        "Sgt._Pepper/Lucy_in_the_Sky",
        {{"title", "Lucy in the Sky with Diamonds"},
         {"lyrics", "Picture yourself in a boat on a river, Lucy in the sky"},
         {"year", "1967"}},
        {"lyrics"});
    index_.IndexDocument(
        "Magical_Mystery_Tour/I_am_the_Walrus",
        {{"title", "I am the Walrus"},
         {"lyrics", "I am he as you are he, Lucy in the sky is not here"},
         {"year", "1967"}},
        {"lyrics"});
    index_.IndexDocument("Abbey_Road/Come_Together",
                         {{"title", "Come Together"},
                          {"lyrics", "Here come old flat top"},
                          {"year", "1969"}},
                         {"lyrics"});
  }

  InvertedIndex index_;
};

TEST_F(IndexTest, PhraseQueryMatchesConsecutiveTokens) {
  IndexSongs();
  auto q = Query::Parse("lyrics:\"Lucy in the sky\"");
  ASSERT_TRUE(q.ok());
  auto result = index_.Search(q.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);  // the paper's example: two matches
}

TEST_F(IndexTest, PhraseOrderMatters) {
  IndexSongs();
  auto q = Query::Parse("lyrics:\"sky the in Lucy\"");
  ASSERT_TRUE(q.ok());
  auto result = index_.Search(q.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(IndexTest, KeywordFieldExactMatch) {
  IndexSongs();
  auto result = index_.Search(Query::Parse("year:1967").value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
  result = index_.Search(Query::Parse("year:1969").value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0], "Abbey_Road/Come_Together");
}

TEST_F(IndexTest, KeywordMatchIsCaseInsensitive) {
  IndexSongs();
  auto result = index_.Search(Query::Parse("title:\"i am the walrus\"").value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST_F(IndexTest, ConjunctionIntersects) {
  IndexSongs();
  auto result =
      index_.Search(Query::Parse("lyrics:lucy year:1967").value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
  result = index_.Search(Query::Parse("lyrics:lucy year:1969").value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(IndexTest, SingleTokenTextQuery) {
  IndexSongs();
  auto result = index_.Search(Query::Parse("lyrics:walrus").value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());  // "walrus" is only in the title
  result = index_.Search(Query::Parse("lyrics:river").value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST_F(IndexTest, RemoveDocument) {
  IndexSongs();
  EXPECT_EQ(index_.document_count(), 3);
  index_.RemoveDocument("Abbey_Road/Come_Together");
  EXPECT_EQ(index_.document_count(), 2);
  auto result = index_.Search(Query::Parse("year:1969").value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(IndexTest, ReindexReplacesPostings) {
  IndexSongs();
  index_.IndexDocument("Abbey_Road/Come_Together",
                       {{"title", "Come Together"}, {"year", "1970"}}, {});
  EXPECT_TRUE(index_.Search(Query::Parse("year:1969").value())
                  .value()
                  .empty());
  EXPECT_EQ(index_.Search(Query::Parse("year:1970").value()).value().size(),
            1u);
  EXPECT_EQ(index_.document_count(), 3);
}

TEST_F(IndexTest, MissingTermReturnsEmptyNotError) {
  IndexSongs();
  auto result = index_.Search(Query::Parse("lyrics:zzzzz").value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
  result = index_.Search(Query::Parse("nosuchfield:x").value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(IndexTest, RepeatedPhraseInOneDocument) {
  index_.IndexDocument("d", {{"t", "at last at last my love has come along"}},
                       {"t"});
  auto result = index_.Search(Query::Parse("t:\"at last\"").value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

}  // namespace
}  // namespace lidi::invidx
