// Edge-case coverage sweep across the smaller public APIs.

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "databus/event.h"
#include "espresso/document.h"
#include "espresso/replication.h"
#include "espresso/uri.h"
#include "voldemort/readonly_store.h"
#include "voldemort/wire.h"

#include "status_test_util.h"

namespace lidi {
namespace {

TEST(UriEdgeTest, DecodingAndQueryVariants) {
  // %XX decoding and '+' handling.
  auto p = espresso::ParseUri("/db/t/r?query=a%3Ab+c%22d%22");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().query, "a:b c\"d\"");
  // Multiple parameters: only query= is extracted.
  auto q = espresso::ParseUri("/db/t/r?foo=1&query=x:y&bar=2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().query, "x:y");
  // No resource id: db/table-level URI parses with empty resource.
  auto r = espresso::ParseUri("/db/t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().resource_id.empty());
  // Repeated slashes collapse (empty segments skipped).
  auto s = espresso::ParseUri("/db//t///res");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().resource_id, "res");
  // Truncated %-escape passes through un-decoded rather than crashing.
  auto t = espresso::ParseUri("/db/t/r?query=x%2");
  ASSERT_TRUE(t.ok());
}

TEST(TransformEdgeTest, SublistBounds) {
  std::string list;
  voldemort::EncodeStringList({"a", "b", "c"}, &list);
  voldemort::Transform t;
  t.type = voldemort::Transform::Type::kSublist;

  // Offset past the end: empty result.
  t.offset = 10;
  t.count = 5;
  auto past = voldemort::ApplyTransform(t, list);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(voldemort::DecodeStringList(past.value()).value().empty());

  // Negative offset: clamped (negative indices skipped).
  t.offset = -2;
  t.count = 3;
  auto negative = voldemort::ApplyTransform(t, list);
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(voldemort::DecodeStringList(negative.value()).value(),
            std::vector<std::string>{"a"});

  // Count beyond the end: truncated.
  t.offset = 1;
  t.count = 100;
  auto long_count = voldemort::ApplyTransform(t, list);
  ASSERT_TRUE(long_count.ok());
  EXPECT_EQ(voldemort::DecodeStringList(long_count.value()).value(),
            (std::vector<std::string>{"b", "c"}));

  // Append to an empty (absent) value starts a fresh list.
  voldemort::Transform append;
  append.type = voldemort::Transform::Type::kAppend;
  append.item = "first";
  auto fresh = voldemort::ApplyTransform(append, Slice());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(voldemort::DecodeStringList(fresh.value()).value(),
            std::vector<std::string>{"first"});
}

TEST(ReadOnlyStoreEdgeTest, LifecycleErrors) {
  voldemort::ReadOnlyStore store;
  // Reads before any swap are Unavailable, not a crash.
  EXPECT_TRUE(store.Get("k").status().IsUnavailable());
  // Rollback with no history fails cleanly.
  EXPECT_FALSE(store.Rollback().ok());
  // Duplicate version rejected.
  ASSERT_TRUE(store.AddVersion(1, {}).ok());
  EXPECT_TRUE(store.AddVersion(1, {}).code() == Code::kAlreadyExists);
  // RetainVersions never drops the current or previous version.
  ASSERT_OK(store.AddVersion(2, {}));
  ASSERT_OK(store.AddVersion(3, {}));
  ASSERT_OK(store.Swap(2));
  ASSERT_OK(store.Swap(3));  // current=3, previous=2
  store.RetainVersions(0);
  auto versions = store.versions();
  EXPECT_NE(std::find(versions.begin(), versions.end(), 3), versions.end());
  EXPECT_NE(std::find(versions.begin(), versions.end(), 2), versions.end());
}

TEST(EspressoRelayEdgeTest, ReadsOnUnknownPartitions) {
  espresso::EspressoRelay relay;
  auto empty = relay.Read("db", 7, 0, 100);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_EQ(relay.MaxScn("db", 7), 0);
  EXPECT_EQ(relay.TotalEvents(), 0);
  // Appending an empty transaction is a no-op, not an error.
  EXPECT_TRUE(relay.Append("db", 7, {}).ok());
}

TEST(DatabusFilterEdgeTest, NegativePartitionsAndEmptyResidues) {
  databus::Event e;
  e.partition = -1;  // un-partitioned source
  databus::Filter f;
  f.mod_base = 4;
  f.mod_residues = {0};
  EXPECT_TRUE(f.Matches(e));  // residue of "no partition" defaults to 0
  f.mod_residues = {1};
  EXPECT_FALSE(f.Matches(e));
  // mod_base without residues matches nothing partitioned.
  databus::Filter none;
  none.mod_base = 2;
  databus::Event p0;
  p0.partition = 0;
  EXPECT_FALSE(none.Matches(p0));
}

TEST(DocumentRecordEdgeTest, MalformedRowsRejected) {
  sqlstore::Row missing{{"val", "x"}};  // lacks schema_version/etag/timestamp
  EXPECT_FALSE(espresso::DocumentRecord::FromRow(missing).ok());
  espresso::DocumentRecord record;
  record.payload = "p";
  record.schema_version = 3;
  record.etag = "e1";
  record.timestamp_millis = 99;
  auto round = espresso::DocumentRecord::FromRow(record.ToRow());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().schema_version, 3);
  EXPECT_EQ(round.value().etag, "e1");
  EXPECT_EQ(round.value().timestamp_millis, 99);
}

TEST(HistogramEdgeTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Average(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
  EXPECT_FALSE(h.Summary().empty());
}

}  // namespace
}  // namespace lidi
