// Regression tests for the latent races and deadlocks surfaced by the
// annotated-sync migration. Each test is named for the bug it pins down;
// the lock-order registry (on in debug/test builds) turns the old
// behaviour — a reentrant acquisition or a lock held across an RPC that
// re-enters — into an immediate abort, so these tests fail loudly if the
// fix regresses rather than hanging.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "databus/multitenant.h"
#include "helix/helix.h"
#include "kafka/audit.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/address.h"
#include "net/network.h"
#include "sqlstore/database.h"
#include "storage/engine.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi {
namespace {

// ---------------------------------------------------------------------------
// Visitor reentrancy: ForEach/Scan must not hold the container lock across
// the user callback (the callback may call back into the container).
// ---------------------------------------------------------------------------

TEST(SyncRegressionTest, MemTableForEachAllowsReentrantVisitor) {
  auto engine = storage::NewMemTableEngine();
  ASSERT_TRUE(engine->Put("a", "1").ok());
  ASSERT_TRUE(engine->Put("b", "2").ok());
  int visited = 0;
  engine->ForEach([&](Slice /*key*/, Slice /*value*/) {
    // Re-enters the engine's mutex; self-deadlocked before the
    // snapshot-then-visit fix (and now aborts as "reentrant" if regressed).
    std::string value;
    EXPECT_TRUE(engine->Get("a", &value).ok());
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 2);
}

TEST(SyncRegressionTest, DatabaseScanAllowsReentrantVisitor) {
  sqlstore::Database db("reentrant_db");
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.Put("t", "k1", sqlstore::Row{{"v", "1"}}).ok());
  ASSERT_TRUE(db.Put("t", "k2", sqlstore::Row{{"v", "2"}}).ok());
  int visited = 0;
  auto status = db.Scan(
      "t", [&](const std::string& /*pk*/, const sqlstore::Row& /*row*/) {
        EXPECT_TRUE(db.Get("t", "k1").ok());  // re-enters db.mu_
        ++visited;
        return true;
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(visited, 2);
}

// ---------------------------------------------------------------------------
// Kafka cluster-backed regressions
// ---------------------------------------------------------------------------

class KafkaSyncRegressionTest : public ::testing::Test {
 protected:
  void StartCluster() {
    kafka::BrokerOptions options;
    options.log.flush_interval_messages = 1;
    for (int i = 0; i < 2; ++i) {
      brokers_.push_back(std::make_unique<kafka::Broker>(i, &zk_, &network_,
                                                         &clock_, options));
      ASSERT_OK(brokers_.back()->CreateTopic("activity", 2));
    }
  }

  ManualClock clock_;
  zk::ZooKeeper zk_;
  net::Network network_;
  std::vector<std::unique_ptr<kafka::Broker>> brokers_;
};

// ProducerAudit::Emit drains windows under its lock but sends outside it;
// counts of failed sends must be merged back, not lost.
TEST_F(KafkaSyncRegressionTest, AuditEmitRemergesFailedWindows) {
  StartCluster();
  for (auto& broker : brokers_) ASSERT_OK(broker->CreateTopic(kafka::kAuditTopic, 1));
  kafka::Producer producer("p-audit", &zk_, &network_);
  kafka::ProducerAudit audit("p-audit", &producer, &clock_,
                             /*window_ms=*/1000);
  for (int i = 0; i < 3; ++i) audit.RecordProduced("activity");
  clock_.AdvanceMillis(1500);  // close the first window

  // Both brokers down: every audit publish fails, the drained window must
  // be re-merged into pending_ instead of silently dropped.
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, 0));
  network_.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, 1));
  EXPECT_EQ(audit.MaybeEmit(), 0);

  // The window keeps accumulating after the failed emit (+= merge).
  audit.RecordProduced("activity");

  network_.SetNodeUp(net::MakeAddress(net::Tier::kKafkaBroker, 0));
  network_.SetNodeUp(net::MakeAddress(net::Tier::kKafkaBroker, 1));
  EXPECT_EQ(audit.ForceEmit(), 2);  // the re-merged window + the current one

  kafka::AuditValidator validator;
  kafka::Consumer consumer("c-audit", "g-audit", &zk_, &network_);
  ASSERT_TRUE(consumer.Subscribe(kafka::kAuditTopic).ok());
  auto messages = consumer.PollUntilData(kafka::kAuditTopic);
  ASSERT_TRUE(messages.ok());
  ASSERT_TRUE(validator.IngestAuditMessages(messages.value()).ok());
  EXPECT_EQ(validator.ProducedCount("activity"), 4);  // nothing lost
}

// Producer::Send buffers under mu_ but dispatches the broker RPC outside
// it; concurrent senders must neither deadlock (a held lock across the
// broker call would now abort via the registry) nor misplace stats.
TEST_F(KafkaSyncRegressionTest, ProducerStatsExactUnderConcurrentSend) {
  StartCluster();
  kafka::Producer producer("p-conc", &zk_, &network_);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!producer
                 .Send("activity",
                       "m" + std::to_string(t) + "-" + std::to_string(i))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
      ASSERT_OK(producer.Flush());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(producer.messages_sent(), kThreads * kPerThread);
  EXPECT_GT(producer.bytes_on_wire(), 0);
}

// Consumer::Rebalance used to hold mu_ across its Zookeeper round-trips;
// concurrent Poll + Rebalance + stats reads would deadlock or race. After
// the snapshot/act/merge fix they interleave freely and no message is lost.
TEST_F(KafkaSyncRegressionTest, ConsumerRebalanceConcurrentWithPoll) {
  StartCluster();
  kafka::Producer producer("p-reb", &zk_, &network_);
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(producer.Send("activity", "m" + std::to_string(i)).ok());
  }
  kafka::Consumer consumer("c-reb", "g-reb", &zk_, &network_);
  ASSERT_TRUE(consumer.Subscribe("activity").ok());

  std::atomic<int64_t> polled{0};
  std::thread poller([&] {
    for (int round = 0; round < 40; ++round) {
      auto batch = consumer.Poll("activity");
      if (batch.ok()) polled.fetch_add(batch.value().size());
    }
  });
  std::thread rebalancer([&] {
    for (int i = 0; i < 10; ++i) ASSERT_OK(consumer.Rebalance("activity"));
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(consumer.rebalance_count(), 0);
    EXPECT_GE(consumer.messages_consumed(), 0);
  }
  poller.join();
  rebalancer.join();

  // Drain whatever the concurrent phase left behind: offsets survived the
  // interleaving, so exactly the remainder is still fetchable.
  for (int round = 0; round < 60 && polled.load() < kMessages; ++round) {
    auto batch = consumer.Poll("activity");
    ASSERT_TRUE(batch.ok());
    polled.fetch_add(batch.value().size());
  }
  EXPECT_EQ(polled.load(), kMessages);
}

// Consumer::Close races the destructor with external callers; the atomic
// exchange must make it idempotent (one session close, no double-release).
TEST_F(KafkaSyncRegressionTest, ConsumerCloseIsIdempotentUnderRace) {
  StartCluster();
  auto consumer = std::make_unique<kafka::Consumer>("c-close", "g-close",
                                                    &zk_, &network_);
  ASSERT_TRUE(consumer->Subscribe("activity").ok());
  std::vector<std::thread> closers;
  for (int t = 0; t < 4; ++t) {
    closers.emplace_back([&] { consumer->Close(); });
  }
  for (auto& t : closers) t.join();
  consumer.reset();  // destructor must also tolerate the prior Close
}

// ---------------------------------------------------------------------------
// Databus multi-tenancy: PollAllOnce polls with the registry lock released
// (a poll is an upstream RPC), so RemoveTenant must not free a relay that a
// concurrent poll still holds.
// ---------------------------------------------------------------------------

TEST(SyncRegressionTest, MultiTenantPollSurvivesConcurrentTenantRemoval) {
  net::Network network;
  sqlstore::Database db_a("tenant_a");
  sqlstore::Database db_b("tenant_b");
  ASSERT_TRUE(db_a.CreateTable("t").ok());
  ASSERT_TRUE(db_b.CreateTable("t").ok());
  databus::MultiTenantRelay relay("mt", &network);
  ASSERT_TRUE(relay.AddTenant("a", &db_a).ok());
  ASSERT_TRUE(relay.AddTenant("b", &db_b).ok());

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      ASSERT_OK(relay.PollAllOnce());  // must never touch a freed relay
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db_a.Put("t", "k" + std::to_string(i), sqlstore::Row{{"v", "x"}})
            .ok());
    ASSERT_OK(relay.RemoveTenant("b"));
    ASSERT_TRUE(relay.AddTenant("b", &db_b).ok());
  }
  stop.store(true);
  poller.join();
  // Deterministic final poll (the poller thread's schedule is arbitrary):
  // tenant a's stream survived the churn and serves its events.
  auto polled = relay.PollAllOnce();
  ASSERT_TRUE(polled.ok());
  EXPECT_GT(relay.BufferedEvents("a"), 0);
}

// ---------------------------------------------------------------------------
// Helix: ComputeIdealState/ComputeBestPossibleState used to hold mu_ across
// the Zookeeper instance-list fetch; concurrent rebalancing and routing
// lookups must interleave without deadlock.
// ---------------------------------------------------------------------------

TEST(SyncRegressionTest, HelixRoutingReadsConcurrentWithRebalance) {
  zk::ZooKeeper zk;
  helix::HelixController controller("espresso", &zk);
  ASSERT_TRUE(controller.AddResource(helix::ResourceConfig{"db", 6, 2}).ok());
  for (int i = 0; i < 3; ++i) {
    auto session = controller.ConnectParticipant(
        "node-" + std::to_string(i),
        [](const helix::Transition&) { return Status::OK(); });
    ASSERT_TRUE(session.ok());
  }

  std::atomic<bool> stop{false};
  std::thread rebalancer([&] {
    while (!stop.load()) controller.RebalanceOnce();
  });
  for (int i = 0; i < 200; ++i) {
    controller.ComputeIdealState("db");
    controller.ComputeBestPossibleState("db");
    controller.MasterOf("db", i % 6);
  }
  stop.store(true);
  rebalancer.join();

  controller.RebalanceToConvergence();
  for (int p = 0; p < 6; ++p) {
    EXPECT_FALSE(controller.MasterOf("db", p).empty());
  }
}

}  // namespace
}  // namespace lidi
