#include <gtest/gtest.h>

#include <memory>

#include "avro/codec.h"
#include "common/clock.h"
#include "espresso/document.h"
#include "espresso/replication.h"
#include "espresso/router.h"
#include "espresso/schema.h"
#include "espresso/storage_node.h"
#include "espresso/uri.h"
#include "helix/helix.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "status_test_util.h"

namespace lidi::espresso {
namespace {

// ---------------------------------------------------------------------------
// URIs
// ---------------------------------------------------------------------------

TEST(UriTest, SingletonResource) {
  auto p = ParseUri("/Music/Artist/Rolling_Stones");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().database, "Music");
  EXPECT_EQ(p.value().table, "Artist");
  EXPECT_EQ(p.value().resource_id, "Rolling_Stones");
  EXPECT_TRUE(p.value().subresources.empty());
  EXPECT_EQ(p.value().DocumentKey(), "Rolling_Stones");
}

TEST(UriTest, CollectionResource) {
  auto p = ParseUri("/Music/Song/Etta_James/Gold/At_Last");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().resource_id, "Etta_James");
  ASSERT_EQ(p.value().subresources.size(), 2u);
  EXPECT_EQ(p.value().DocumentKey(), "Etta_James/Gold/At_Last");
  EXPECT_EQ(p.value().Path(), "/Music/Song/Etta_James/Gold/At_Last");
}

TEST(UriTest, QueryParameter) {
  auto p = ParseUri("/Music/Song/The_Beatles?query=lyrics:%22Lucy+in+the+sky%22");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().query, "lyrics:\"Lucy in the sky\"");
}

TEST(UriTest, Malformed) {
  EXPECT_FALSE(ParseUri("").ok());
  EXPECT_FALSE(ParseUri("nope").ok());
  EXPECT_FALSE(ParseUri("/only-db").ok());
}

// ---------------------------------------------------------------------------
// Schema registry
// ---------------------------------------------------------------------------

constexpr char kSongSchemaV1[] = R"({
  "type":"record","name":"Song","fields":[
    {"name":"title","type":"string","indexed":true},
    {"name":"lyrics","type":"string","indexed":true,"index_type":"text"},
    {"name":"year","type":"int","indexed":true}
  ]})";

constexpr char kSongSchemaV2[] = R"({
  "type":"record","name":"Song","fields":[
    {"name":"title","type":"string","indexed":true},
    {"name":"lyrics","type":"string","indexed":true,"index_type":"text"},
    {"name":"year","type":"int","indexed":true},
    {"name":"genre","type":"string","default":"unknown"}
  ]})";

constexpr char kSongSchemaBad[] = R"({
  "type":"record","name":"Song","fields":[
    {"name":"title","type":"string"},
    {"name":"mandatory_new","type":"string"}
  ]})";

TEST(SchemaRegistryTest, DatabaseAndTableLifecycle) {
  SchemaRegistry registry;
  ASSERT_TRUE(
      registry.CreateDatabase(DatabaseSchema{"Music", {}, 8, 2}).ok());
  EXPECT_TRUE(registry.CreateDatabase(DatabaseSchema{"Music"}).code() ==
              Code::kAlreadyExists);
  ASSERT_TRUE(registry.CreateTable("Music", TableSchema{"Song", 2}).ok());
  EXPECT_FALSE(registry.CreateTable("NoDb", TableSchema{"X", 0}).ok());
  auto table = registry.GetTable("Music", "Song");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().subresource_levels, 2);
}

TEST(SchemaRegistryTest, SchemaEvolutionVersions) {
  SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase(DatabaseSchema{"Music"}));
  ASSERT_OK(registry.CreateTable("Music", TableSchema{"Song", 2}));
  auto v1 = registry.PostDocumentSchema("Music", "Song", kSongSchemaV1);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1.value(), 1);
  auto v2 = registry.PostDocumentSchema("Music", "Song", kSongSchemaV2);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2.value(), 2);
  auto latest = registry.LatestDocumentSchema("Music", "Song");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().first, 2);
}

TEST(SchemaRegistryTest, IncompatibleEvolutionRejected) {
  SchemaRegistry registry;
  ASSERT_OK(registry.CreateDatabase(DatabaseSchema{"Music"}));
  ASSERT_OK(registry.CreateTable("Music", TableSchema{"Song", 2}));
  ASSERT_TRUE(registry.PostDocumentSchema("Music", "Song", kSongSchemaV1).ok());
  // A new required field without default breaks old documents.
  EXPECT_FALSE(
      registry.PostDocumentSchema("Music", "Song", kSongSchemaBad).ok());
}

TEST(SchemaCompatTest, PromotionAndUnionRules) {
  auto writer = avro::ParseSchema("\"int\"").value();
  auto reader = avro::ParseSchema("\"long\"").value();
  EXPECT_TRUE(CheckCompatible(*writer, *reader).ok());
  EXPECT_FALSE(CheckCompatible(*reader, *writer).ok());
  auto u = avro::ParseSchema(R"(["null","string"])").value();
  auto s = avro::ParseSchema("\"string\"").value();
  EXPECT_TRUE(CheckCompatible(*s, *u).ok());
}

TEST(PartitioningTest, HashAndUnpartitioned) {
  DatabaseSchema hashed{"db", DatabaseSchema::Partitioning::kHash, 16, 2};
  EXPECT_GE(PartitionOf(hashed, "Akon"), 0);
  EXPECT_LT(PartitionOf(hashed, "Akon"), 16);
  EXPECT_EQ(PartitionOf(hashed, "Akon"), PartitionOf(hashed, "Akon"));

  DatabaseSchema unpartitioned{
      "db", DatabaseSchema::Partitioning::kUnpartitioned, 16, 2};
  EXPECT_EQ(PartitionOf(unpartitioned, "anything"), 0);
}

// ---------------------------------------------------------------------------
// Espresso relay
// ---------------------------------------------------------------------------

databus::Event MakeEvent(int64_t scn, const std::string& key) {
  databus::Event e;
  e.scn = scn;
  e.source = "T";
  e.key = key;
  e.end_of_txn = true;
  return e;
}

TEST(EspressoRelayTest, PerPartitionTimelines) {
  EspressoRelay relay;
  ASSERT_TRUE(relay.Append("db", 0, {MakeEvent(1, "a")}).ok());
  ASSERT_TRUE(relay.Append("db", 1, {MakeEvent(1, "b")}).ok());
  ASSERT_TRUE(relay.Append("db", 0, {MakeEvent(2, "c")}).ok());
  EXPECT_EQ(relay.MaxScn("db", 0), 2);
  EXPECT_EQ(relay.MaxScn("db", 1), 1);
  auto events = relay.Read("db", 0, 0, 100);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events.value().size(), 2u);
}

TEST(EspressoRelayTest, RejectsTimelineGapsAndStaleMasters) {
  EspressoRelay relay;
  ASSERT_TRUE(relay.Append("db", 0, {MakeEvent(1, "a")}).ok());
  // Gap.
  EXPECT_TRUE(relay.Append("db", 0, {MakeEvent(3, "b")}).IsObsoleteVersion());
  // Stale (split-brain fencing).
  EXPECT_TRUE(relay.Append("db", 0, {MakeEvent(1, "b")}).IsObsoleteVersion());
}

// ---------------------------------------------------------------------------
// Full Espresso cluster
// ---------------------------------------------------------------------------

class EspressoClusterTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 3;

  void SetUp() override {
    ASSERT_OK(registry_.CreateDatabase(
        DatabaseSchema{"Music", DatabaseSchema::Partitioning::kHash, 8, 2}));
    ASSERT_OK(registry_.CreateTable("Music", TableSchema{"Artist", 0}));
    ASSERT_OK(registry_.CreateTable("Music", TableSchema{"Album", 1}));
    ASSERT_OK(registry_.CreateTable("Music", TableSchema{"Song", 2}));
    ASSERT_TRUE(
        registry_.PostDocumentSchema("Music", "Song", kSongSchemaV1).ok());
    ASSERT_TRUE(registry_
                    .PostDocumentSchema("Music", "Album", R"({
      "type":"record","name":"Album","fields":[
        {"name":"artist","type":"string","indexed":true},
        {"name":"year","type":"int","indexed":true}
      ]})")
                    .ok());
    ASSERT_TRUE(registry_
                    .PostDocumentSchema("Music", "Artist", R"({
      "type":"record","name":"Artist","fields":[
        {"name":"name","type":"string"}
      ]})")
                    .ok());

    controller_ = std::make_unique<helix::HelixController>("espresso", &zk_);
    ASSERT_TRUE(
        controller_->AddResource(helix::ResourceConfig{"Music", 8, 2}).ok());
    for (int i = 0; i < kNodes; ++i) {
      auto node = std::make_unique<StorageNode>("esn-" + std::to_string(i),
                                                &registry_, &relay_, &network_,
                                                &clock_);
      node->SetMasterLookup([this](const std::string& db, int partition) {
        return controller_->MasterOf(db, partition);
      });
      StorageNode* raw = node.get();
      auto session = controller_->ConnectParticipant(
          raw->name(),
          [raw](const helix::Transition& t) { return raw->HandleTransition(t); });
      ASSERT_TRUE(session.ok());
      sessions_[raw->name()] = session.value();
      nodes_.push_back(std::move(node));
    }
    controller_->RebalanceToConvergence();
    router_ = std::make_unique<Router>("router", &registry_, controller_.get(),
                                       &network_);
  }

  avro::DatumPtr Song(const std::string& title, const std::string& lyrics,
                      int year) {
    auto d = avro::Datum::Record("Song");
    d->SetField("title", avro::Datum::String(title));
    d->SetField("lyrics", avro::Datum::String(lyrics));
    d->SetField("year", avro::Datum::Int(year));
    return d;
  }

  StorageNode* NodeByName(const std::string& name) {
    for (auto& node : nodes_) {
      if (node->name() == name) return node.get();
    }
    return nullptr;
  }

  void CatchUpAllSlaves() {
    for (auto& node : nodes_) node->CatchUpAll();
  }

  net::Network network_;
  ManualClock clock_;
  zk::ZooKeeper zk_;
  SchemaRegistry registry_;
  EspressoRelay relay_;
  std::unique_ptr<helix::HelixController> controller_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::map<std::string, zk::SessionId> sessions_;
  std::unique_ptr<Router> router_;
};

TEST_F(EspressoClusterTest, PutGetDocumentRoundTrip) {
  auto song = Song("At Last", "at last my love has come along", 1960);
  auto etag = router_->PutDocument("/Music/Song/Etta_James/Gold/At_Last", *song);
  ASSERT_TRUE(etag.ok()) << etag.status().ToString();
  EXPECT_FALSE(etag.value().empty());

  auto fetched = router_->GetDocument("/Music/Song/Etta_James/Gold/At_Last");
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_TRUE(fetched.value()->Equals(*song));
}

TEST_F(EspressoClusterTest, GetMissingIsNotFound) {
  EXPECT_TRUE(
      router_->GetDocument("/Music/Song/Nobody/None/None").status().IsNotFound());
}

TEST_F(EspressoClusterTest, ConditionalPutWithEtag) {
  auto song = Song("s", "l", 2000);
  auto etag1 = router_->PutDocument("/Music/Song/A/B/C", *song);
  ASSERT_TRUE(etag1.ok());
  auto song2 = Song("s", "l", 2001);
  // Correct etag: accepted.
  auto etag2 =
      router_->PutDocument("/Music/Song/A/B/C", *song2, etag1.value());
  ASSERT_TRUE(etag2.ok()) << etag2.status().ToString();
  // Stale etag: rejected.
  auto song3 = Song("s", "l", 2002);
  EXPECT_TRUE(router_->PutDocument("/Music/Song/A/B/C", *song3, etag1.value())
                  .status()
                  .IsObsoleteVersion());
}

TEST_F(EspressoClusterTest, DeleteDocument) {
  auto song = Song("s", "l", 2000);
  ASSERT_TRUE(router_->PutDocument("/Music/Song/A/B/C", *song).ok());
  ASSERT_TRUE(router_->DeleteDocument("/Music/Song/A/B/C").ok());
  EXPECT_TRUE(router_->GetDocument("/Music/Song/A/B/C").status().IsNotFound());
}

TEST_F(EspressoClusterTest, SecondaryIndexQuery) {
  // The paper's example: free-text query over lyrics.
  ASSERT_TRUE(router_
                  ->PutDocument("/Music/Song/The_Beatles/Sgt._Pepper/"
                                "Lucy_in_the_Sky_with_Diamonds",
                                *Song("Lucy in the Sky with Diamonds",
                                      "Picture yourself... Lucy in the sky",
                                      1967))
                  .ok());
  ASSERT_TRUE(router_
                  ->PutDocument(
                      "/Music/Song/The_Beatles/Magical_Mystery_Tour/"
                      "I_am_the_Walrus",
                      *Song("I am the Walrus",
                            "Lucy in the sky, see how they run", 1967))
                  .ok());
  ASSERT_TRUE(router_
                  ->PutDocument("/Music/Song/The_Beatles/Abbey_Road/"
                                "Come_Together",
                                *Song("Come Together", "over me", 1969))
                  .ok());

  auto results = router_->Query(
      "/Music/Song/The_Beatles?query=lyrics:%22Lucy+in+the+sky%22");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results.value().size(), 2u);
}

TEST_F(EspressoClusterTest, QueryScopedToResourceId) {
  ASSERT_TRUE(
      router_->PutDocument("/Music/Song/ArtistA/Al/S1", *Song("t", "hello", 1))
          .ok());
  // Different artist, may or may not share a partition; query must scope.
  ASSERT_TRUE(
      router_->PutDocument("/Music/Song/ArtistA/Al/S2", *Song("t", "world", 1))
          .ok());
  auto results = router_->Query("/Music/Song/ArtistA?query=lyrics:hello");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_EQ(results.value()[0].first, "ArtistA/Al/S1");
}

TEST_F(EspressoClusterTest, MultiTableTransaction) {
  // Post a new album and its songs in one transaction (paper IV.A).
  auto album = avro::Datum::Record("Album");
  album->SetField("artist", avro::Datum::String("Elton John"));
  album->SetField("year", avro::Datum::Int(1974));
  auto song = Song("Greatest Hit", "la la", 1974);

  std::vector<Router::TxnUpdate> updates;
  updates.push_back({"Album", "Elton_John/Greatest_Hits", album.get()});
  updates.push_back(
      {"Song", "Elton_John/Greatest_Hits/Candle", song.get()});
  ASSERT_TRUE(router_->PostTransaction("Music", "Elton_John", updates).ok());

  EXPECT_TRUE(router_->GetDocument("/Music/Album/Elton_John/Greatest_Hits").ok());
  EXPECT_TRUE(
      router_->GetDocument("/Music/Song/Elton_John/Greatest_Hits/Candle").ok());
}

TEST_F(EspressoClusterTest, TransactionRejectsForeignResourceId) {
  auto song = Song("t", "l", 1);
  std::vector<Router::TxnUpdate> updates;
  updates.push_back({"Song", "OtherArtist/A/B", song.get()});
  EXPECT_FALSE(router_->PostTransaction("Music", "Elton_John", updates).ok());
}

TEST_F(EspressoClusterTest, ReplicationReachesSlaves) {
  const std::string uri = "/Music/Song/Akon/Trouble/Locked_Up";
  ASSERT_TRUE(router_->PutDocument(uri, *Song("Locked Up", "...", 2004)).ok());
  CatchUpAllSlaves();

  auto parsed = ParseUri(uri);
  const auto db_schema = registry_.GetDatabase("Music").value();
  const int partition = PartitionOf(db_schema, "Akon");
  int replicas_holding = 0;
  for (auto& node : nodes_) {
    if (node->LocalGet("Music", "Song", "Akon/Trouble/Locked_Up").ok()) {
      ++replicas_holding;
      EXPECT_TRUE(node->IsMasterOf("Music", partition) ||
                  node->IsSlaveOf("Music", partition));
    }
  }
  EXPECT_EQ(replicas_holding, 2);  // replication factor 2
}

TEST_F(EspressoClusterTest, TimelineConsistencyOnSlave) {
  // Apply many updates; the slave must see them in commit order.
  const std::string uri = "/Music/Artist/Akon";
  for (int i = 0; i < 10; ++i) {
    auto artist = avro::Datum::Record("Artist");
    artist->SetField("name", avro::Datum::String("v" + std::to_string(i)));
    ASSERT_TRUE(router_->PutDocument(uri, *artist).ok());
  }
  CatchUpAllSlaves();
  const auto db_schema = registry_.GetDatabase("Music").value();
  const int partition = PartitionOf(db_schema, "Akon");
  for (auto& node : nodes_) {
    if (node->IsSlaveOf("Music", partition)) {
      EXPECT_EQ(node->AppliedScn("Music", partition),
                relay_.MaxScn("Music", partition));
      auto record = node->LocalGet("Music", "Artist", "Akon");
      ASSERT_TRUE(record.ok());
      auto schema = registry_.LatestDocumentSchema("Music", "Artist").value();
      Slice payload(record.value().payload);
      auto datum = avro::Decode(*schema.second, &payload);
      ASSERT_TRUE(datum.ok());
      EXPECT_EQ(datum.value()->GetField("name")->string_value(), "v9");
    }
  }
}

TEST_F(EspressoClusterTest, FailoverPromotesSlaveWithoutDataLoss) {
  // Write documents, then kill a master; the slave drains the relay and
  // masters the partition; all acknowledged writes remain readable.
  std::vector<std::string> uris;
  for (int i = 0; i < 40; ++i) {
    const std::string artist = "Artist" + std::to_string(i);
    const std::string uri = "/Music/Artist/" + artist;
    auto doc = avro::Datum::Record("Artist");
    doc->SetField("name", avro::Datum::String(artist));
    ASSERT_TRUE(router_->PutDocument(uri, *doc).ok());
    uris.push_back(uri);
  }
  // Kill node 0 (without letting slaves catch up first: the relay holds the
  // outstanding changes — that is the durability argument of IV.B).
  const std::string victim = "esn-0";
  network_.SetNodeDown(victim);
  zk_.CloseSession(sessions_[victim]);
  controller_->RebalanceToConvergence();

  for (const std::string& uri : uris) {
    auto fetched = router_->GetDocument(uri);
    EXPECT_TRUE(fetched.ok()) << uri << ": " << fetched.status().ToString();
  }
  // And writes keep working.
  auto doc = avro::Datum::Record("Artist");
  doc->SetField("name", avro::Datum::String("after-failover"));
  EXPECT_TRUE(router_->PutDocument("/Music/Artist/Post_Failover", *doc).ok());
}

TEST_F(EspressoClusterTest, StaleMasterIsFenced) {
  const auto db_schema = registry_.GetDatabase("Music").value();
  const int partition = PartitionOf(db_schema, "Akon");
  const std::string master_name = controller_->MasterOf("Music", partition);
  StorageNode* old_master = NodeByName(master_name);
  ASSERT_NE(old_master, nullptr);

  // Fail the master over (but leave the process running: a "zombie").
  zk_.CloseSession(sessions_[master_name]);
  controller_->RebalanceToConvergence();
  const std::string new_master_name = controller_->MasterOf("Music", partition);
  ASSERT_NE(new_master_name, master_name);

  // New master takes a write.
  auto doc = avro::Datum::Record("Artist");
  doc->SetField("name", avro::Datum::String("x"));
  ASSERT_TRUE(router_->PutDocument("/Music/Artist/Akon", *doc).ok());

  // The zombie still thinks it masters the partition; its next write must be
  // rejected by the relay timeline check.
  EXPECT_TRUE(old_master->IsMasterOf("Music", partition));
  std::string request;
  DocumentRecord record;
  record.payload = "zombie";
  EncodePutRequest("Music", "Artist", "Akon", record, "", &request);
  auto response =
      network_.Call("test", master_name, "espresso.put", request);
  EXPECT_FALSE(response.ok());
}

TEST_F(EspressoClusterTest, SchemaEvolutionPromotesOldDocuments) {
  const std::string uri = "/Music/Song/Old_Artist/Old_Album/Old_Song";
  ASSERT_TRUE(router_->PutDocument(uri, *Song("Old", "old lyrics", 1950)).ok());
  // Evolve the schema: add `genre` with a default.
  ASSERT_TRUE(registry_.PostDocumentSchema("Music", "Song", kSongSchemaV2).ok());
  auto fetched = router_->GetDocument(uri);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  auto genre = fetched.value()->GetField("genre");
  ASSERT_NE(genre, nullptr);
  EXPECT_EQ(genre->string_value(), "unknown");
}

TEST_F(EspressoClusterTest, NewNodeBootstrapsFromSnapshotAndRelay) {
  for (int i = 0; i < 30; ++i) {
    auto doc = avro::Datum::Record("Artist");
    doc->SetField("name", avro::Datum::String("a" + std::to_string(i)));
    ASSERT_TRUE(
        router_->PutDocument("/Music/Artist/A" + std::to_string(i), *doc).ok());
  }
  // Add a fourth node; Helix redistributes; the node bootstraps partitions
  // from snapshots plus relay catch-up.
  auto node = std::make_unique<StorageNode>("esn-3", &registry_, &relay_,
                                            &network_, &clock_);
  node->SetMasterLookup([this](const std::string& db, int partition) {
    return controller_->MasterOf(db, partition);
  });
  StorageNode* raw = node.get();
  auto session = controller_->ConnectParticipant(
      raw->name(),
      [raw](const helix::Transition& t) { return raw->HandleTransition(t); });
  ASSERT_TRUE(session.ok());
  nodes_.push_back(std::move(node));
  controller_->RebalanceToConvergence();

  // All documents remain reachable through the router.
  for (int i = 0; i < 30; ++i) {
    auto fetched = router_->GetDocument("/Music/Artist/A" + std::to_string(i));
    EXPECT_TRUE(fetched.ok()) << i << ": " << fetched.status().ToString();
  }
  // The new node holds some partitions.
  int held = 0;
  for (int p = 0; p < 8; ++p) {
    if (raw->IsMasterOf("Music", p) || raw->IsSlaveOf("Music", p)) ++held;
  }
  EXPECT_GT(held, 0);
}

TEST_F(EspressoClusterTest, WritesToNonMasterRejected) {
  const auto db_schema = registry_.GetDatabase("Music").value();
  const int partition = PartitionOf(db_schema, "Akon");
  const std::string master = controller_->MasterOf("Music", partition);
  // Find a non-master node and hit it directly.
  for (auto& node : nodes_) {
    if (node->name() == master) continue;
    DocumentRecord record;
    record.payload = "x";
    std::string request;
    EncodePutRequest("Music", "Artist", "Akon", record, "", &request);
    auto response = network_.Call("test", node->name(), "espresso.put", request);
    EXPECT_FALSE(response.ok());
    break;
  }
}

}  // namespace
}  // namespace lidi::espresso
