#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

namespace lidi {
namespace {

using net::DecodeFrame;
using net::DecodeStatus;
using net::EncodeFrameToString;
using net::Frame;
using net::kDefaultMaxFrameBytes;
using net::kFrameFixedHeader;
using net::StatusFromWire;

std::string RandomString(std::mt19937_64* rng, size_t max_len) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out(len_dist(*rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(*rng));
  return out;
}

Frame RandomFrame(std::mt19937_64* rng) {
  Frame f;
  f.type = ((*rng)() & 1) != 0 ? Frame::kRequest : Frame::kResponse;
  f.correlation_id = (*rng)();
  f.trace_id = (*rng)();
  f.span_id = (*rng)();
  f.deadline_micros = static_cast<int64_t>((*rng)() >> 1);
  f.status_code = static_cast<Code>((*rng)() % 13);
  if (f.type == Frame::kRequest) {
    f.from = RandomString(rng, 64);
    f.to = RandomString(rng, 64);
    f.method = RandomString(rng, 64);
  }
  f.payload = RandomString(rng, 4096);
  return f;
}

/// Seeded round-trip property: encode/decode preserves every field, for
/// arbitrary (including non-UTF8, embedded-NUL) strings and payloads.
/// Replay a failure with LIDI_FRAME_SEED=<seed>.
TEST(FrameTest, RoundTripProperty) {
  uint64_t seed = 0x1d11f4a3e;
  if (const char* env = std::getenv("LIDI_FRAME_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 500; ++i) {
    const Frame f = RandomFrame(&rng);
    const std::string wire = EncodeFrameToString(f, Slice(f.payload));

    Frame d;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(DecodeFrame(Slice(wire), kDefaultMaxFrameBytes, &d, &consumed,
                          &error),
              DecodeStatus::kOk)
        << "seed=" << seed << " iteration=" << i << " error=" << error;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(d.type, f.type);
    EXPECT_EQ(d.correlation_id, f.correlation_id);
    EXPECT_EQ(d.trace_id, f.trace_id);
    EXPECT_EQ(d.span_id, f.span_id);
    EXPECT_EQ(d.deadline_micros, f.deadline_micros);
    EXPECT_EQ(d.status_code, f.status_code);
    EXPECT_EQ(d.from, f.from);
    EXPECT_EQ(d.to, f.to);
    EXPECT_EQ(d.method, f.method);
    EXPECT_EQ(d.payload, f.payload);
  }
}

TEST(FrameTest, DecodesBackToBackFramesFromOneBuffer) {
  Frame a;
  a.from = "client";
  a.to = "server";
  a.method = "echo";
  a.payload = "first";
  Frame b = a;
  b.payload = "second";
  const std::string wire_a = EncodeFrameToString(a, Slice(a.payload));
  const std::string wire = wire_a + EncodeFrameToString(b, Slice(b.payload));

  Frame d;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(Slice(wire), kDefaultMaxFrameBytes, &d, &consumed,
                        &error),
            DecodeStatus::kOk);
  EXPECT_EQ(d.payload, "first");
  EXPECT_EQ(consumed, wire_a.size());
  ASSERT_EQ(DecodeFrame(Slice(wire.data() + consumed, wire.size() - consumed),
                        kDefaultMaxFrameBytes, &d, &consumed, &error),
            DecodeStatus::kOk);
  EXPECT_EQ(d.payload, "second");
}

/// A torn frame — any strict prefix of a valid wire image — asks for more
/// bytes rather than erroring or consuming anything.
TEST(FrameTest, EveryPrefixIsNeedMore) {
  Frame f;
  f.from = "a";
  f.to = "b";
  f.method = "m";
  f.payload = "torn-frame-payload";
  const std::string wire = EncodeFrameToString(f, Slice(f.payload));
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame d;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(Slice(wire.data(), len), kDefaultMaxFrameBytes, &d,
                          &consumed, &error),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

/// Any single corrupted byte past the length prefix fails the CRC (or an
/// earlier structural check) — never decodes to a different frame.
TEST(FrameTest, SingleByteCorruptionIsRejected) {
  Frame f;
  f.from = "client";
  f.to = "server";
  f.method = "echo";
  f.payload = "payload-under-test";
  const std::string wire = EncodeFrameToString(f, Slice(f.payload));
  for (size_t i = 4; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    Frame d;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(Slice(bad), kDefaultMaxFrameBytes, &d, &consumed,
                          &error),
              DecodeStatus::kError)
        << "flipped byte " << i;
    EXPECT_FALSE(error.empty());
  }
}

TEST(FrameTest, OversizedFrameIsRejectedWithoutAllocating) {
  Frame f;
  f.payload = "x";
  std::string wire = EncodeFrameToString(f, Slice(f.payload));
  // Claim a body far beyond the cap; only the 4-byte length should be read.
  const uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    wire[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  Frame d;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(Slice(wire), /*max_frame_bytes=*/1 << 20, &d,
                        &consumed, &error),
            DecodeStatus::kError);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos) << error;
}

TEST(FrameTest, UndersizedLengthIsRejected) {
  std::string wire(4 + kFrameFixedHeader + 4, '\0');
  wire[0] = 3;  // body shorter than the fixed header
  Frame d;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(Slice(wire), kDefaultMaxFrameBytes, &d, &consumed,
                        &error),
            DecodeStatus::kError);
}

TEST(FrameTest, StringLengthsBeyondBodyAreRejected) {
  Frame f;
  f.from = "from";
  f.to = "to";
  f.method = "m";
  f.payload = "p";
  std::string wire = EncodeFrameToString(f, Slice(f.payload));
  // Inflate from_len (offset 4 [len] + 44 into the body) beyond the body.
  const size_t from_len_off = 4 + 44;
  wire[from_len_off] = static_cast<char>(0xff);
  wire[from_len_off + 1] = static_cast<char>(0xff);
  Frame d;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(Slice(wire), kDefaultMaxFrameBytes, &d, &consumed,
                        &error),
            DecodeStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(FrameTest, StatusRoundTripsThroughWireCode) {
  const Code codes[] = {
      Code::kOk,          Code::kNotFound,       Code::kAlreadyExists,
      Code::kInvalidArgument, Code::kCorruption, Code::kIOError,
      Code::kTimeout,     Code::kUnavailable,    Code::kObsoleteVersion,
      Code::kInsufficientNodes, Code::kNotSupported, Code::kAborted,
      Code::kInternal,
  };
  for (Code code : codes) {
    const Status s = StatusFromWire(code, "msg");
    EXPECT_EQ(s.code(), code);
    if (code != Code::kOk) EXPECT_EQ(s.message(), "msg");
  }
  // Out-of-range codes (newer peer) degrade to Internal, not UB.
  EXPECT_EQ(StatusFromWire(static_cast<Code>(250), "x").code(),
            Code::kInternal);
}

}  // namespace
}  // namespace lidi
