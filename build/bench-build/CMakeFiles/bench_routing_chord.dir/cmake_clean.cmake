file(REMOVE_RECURSE
  "../bench/bench_routing_chord"
  "../bench/bench_routing_chord.pdb"
  "CMakeFiles/bench_routing_chord.dir/bench_routing_chord.cc.o"
  "CMakeFiles/bench_routing_chord.dir/bench_routing_chord.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
