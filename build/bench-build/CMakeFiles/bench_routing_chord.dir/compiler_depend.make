# Empty compiler generated dependencies file for bench_routing_chord.
# This may be replaced when dependencies are built.
