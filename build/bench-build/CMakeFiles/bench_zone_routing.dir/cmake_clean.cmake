file(REMOVE_RECURSE
  "../bench/bench_zone_routing"
  "../bench/bench_zone_routing.pdb"
  "CMakeFiles/bench_zone_routing.dir/bench_zone_routing.cc.o"
  "CMakeFiles/bench_zone_routing.dir/bench_zone_routing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zone_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
