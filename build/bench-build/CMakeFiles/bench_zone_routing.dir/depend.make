# Empty dependencies file for bench_zone_routing.
# This may be replaced when dependencies are built.
