file(REMOVE_RECURSE
  "../bench/bench_kafka_throughput"
  "../bench/bench_kafka_throughput.pdb"
  "CMakeFiles/bench_kafka_throughput.dir/bench_kafka_throughput.cc.o"
  "CMakeFiles/bench_kafka_throughput.dir/bench_kafka_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
