# Empty compiler generated dependencies file for bench_kafka_pipeline.
# This may be replaced when dependencies are built.
