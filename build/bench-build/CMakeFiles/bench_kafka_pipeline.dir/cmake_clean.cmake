file(REMOVE_RECURSE
  "../bench/bench_kafka_pipeline"
  "../bench/bench_kafka_pipeline.pdb"
  "CMakeFiles/bench_kafka_pipeline.dir/bench_kafka_pipeline.cc.o"
  "CMakeFiles/bench_kafka_pipeline.dir/bench_kafka_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
