file(REMOVE_RECURSE
  "../bench/bench_kafka_rebalance"
  "../bench/bench_kafka_rebalance.pdb"
  "CMakeFiles/bench_kafka_rebalance.dir/bench_kafka_rebalance.cc.o"
  "CMakeFiles/bench_kafka_rebalance.dir/bench_kafka_rebalance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
