# Empty dependencies file for bench_kafka_rebalance.
# This may be replaced when dependencies are built.
