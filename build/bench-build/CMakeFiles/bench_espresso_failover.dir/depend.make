# Empty dependencies file for bench_espresso_failover.
# This may be replaced when dependencies are built.
