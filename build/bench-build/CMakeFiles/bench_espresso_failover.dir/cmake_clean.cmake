file(REMOVE_RECURSE
  "../bench/bench_espresso_failover"
  "../bench/bench_espresso_failover.pdb"
  "CMakeFiles/bench_espresso_failover.dir/bench_espresso_failover.cc.o"
  "CMakeFiles/bench_espresso_failover.dir/bench_espresso_failover.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_espresso_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
