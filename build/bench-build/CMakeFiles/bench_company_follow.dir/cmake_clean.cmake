file(REMOVE_RECURSE
  "../bench/bench_company_follow"
  "../bench/bench_company_follow.pdb"
  "CMakeFiles/bench_company_follow.dir/bench_company_follow.cc.o"
  "CMakeFiles/bench_company_follow.dir/bench_company_follow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_company_follow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
