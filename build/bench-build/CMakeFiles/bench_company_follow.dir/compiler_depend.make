# Empty compiler generated dependencies file for bench_company_follow.
# This may be replaced when dependencies are built.
