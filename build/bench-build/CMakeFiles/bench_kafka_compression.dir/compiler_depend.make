# Empty compiler generated dependencies file for bench_kafka_compression.
# This may be replaced when dependencies are built.
