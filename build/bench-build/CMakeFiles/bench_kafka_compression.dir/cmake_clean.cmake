file(REMOVE_RECURSE
  "../bench/bench_kafka_compression"
  "../bench/bench_kafka_compression.pdb"
  "CMakeFiles/bench_kafka_compression.dir/bench_kafka_compression.cc.o"
  "CMakeFiles/bench_kafka_compression.dir/bench_kafka_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
