file(REMOVE_RECURSE
  "../bench/bench_repair_mechanisms"
  "../bench/bench_repair_mechanisms.pdb"
  "CMakeFiles/bench_repair_mechanisms.dir/bench_repair_mechanisms.cc.o"
  "CMakeFiles/bench_repair_mechanisms.dir/bench_repair_mechanisms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
