# Empty dependencies file for bench_repair_mechanisms.
# This may be replaced when dependencies are built.
