file(REMOVE_RECURSE
  "../bench/bench_voldemort_ro"
  "../bench/bench_voldemort_ro.pdb"
  "CMakeFiles/bench_voldemort_ro.dir/bench_voldemort_ro.cc.o"
  "CMakeFiles/bench_voldemort_ro.dir/bench_voldemort_ro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voldemort_ro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
