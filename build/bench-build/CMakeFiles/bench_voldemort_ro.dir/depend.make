# Empty dependencies file for bench_voldemort_ro.
# This may be replaced when dependencies are built.
