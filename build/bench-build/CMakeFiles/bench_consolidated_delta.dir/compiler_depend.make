# Empty compiler generated dependencies file for bench_consolidated_delta.
# This may be replaced when dependencies are built.
