file(REMOVE_RECURSE
  "../bench/bench_consolidated_delta"
  "../bench/bench_consolidated_delta.pdb"
  "CMakeFiles/bench_consolidated_delta.dir/bench_consolidated_delta.cc.o"
  "CMakeFiles/bench_consolidated_delta.dir/bench_consolidated_delta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consolidated_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
