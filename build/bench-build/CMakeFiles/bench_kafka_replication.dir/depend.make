# Empty dependencies file for bench_kafka_replication.
# This may be replaced when dependencies are built.
