file(REMOVE_RECURSE
  "../bench/bench_kafka_replication"
  "../bench/bench_kafka_replication.pdb"
  "CMakeFiles/bench_kafka_replication.dir/bench_kafka_replication.cc.o"
  "CMakeFiles/bench_kafka_replication.dir/bench_kafka_replication.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
