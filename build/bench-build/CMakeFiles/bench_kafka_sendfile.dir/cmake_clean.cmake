file(REMOVE_RECURSE
  "../bench/bench_kafka_sendfile"
  "../bench/bench_kafka_sendfile.pdb"
  "CMakeFiles/bench_kafka_sendfile.dir/bench_kafka_sendfile.cc.o"
  "CMakeFiles/bench_kafka_sendfile.dir/bench_kafka_sendfile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_sendfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
