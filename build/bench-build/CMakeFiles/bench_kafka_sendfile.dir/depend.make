# Empty dependencies file for bench_kafka_sendfile.
# This may be replaced when dependencies are built.
