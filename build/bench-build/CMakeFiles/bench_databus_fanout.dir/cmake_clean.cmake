file(REMOVE_RECURSE
  "../bench/bench_databus_fanout"
  "../bench/bench_databus_fanout.pdb"
  "CMakeFiles/bench_databus_fanout.dir/bench_databus_fanout.cc.o"
  "CMakeFiles/bench_databus_fanout.dir/bench_databus_fanout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_databus_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
