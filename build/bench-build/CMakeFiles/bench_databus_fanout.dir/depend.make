# Empty dependencies file for bench_databus_fanout.
# This may be replaced when dependencies are built.
