# Empty compiler generated dependencies file for bench_bootstrap_snapshot.
# This may be replaced when dependencies are built.
