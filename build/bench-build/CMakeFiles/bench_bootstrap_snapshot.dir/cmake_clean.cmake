file(REMOVE_RECURSE
  "../bench/bench_bootstrap_snapshot"
  "../bench/bench_bootstrap_snapshot.pdb"
  "CMakeFiles/bench_bootstrap_snapshot.dir/bench_bootstrap_snapshot.cc.o"
  "CMakeFiles/bench_bootstrap_snapshot.dir/bench_bootstrap_snapshot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bootstrap_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
