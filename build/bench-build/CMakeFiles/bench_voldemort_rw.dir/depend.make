# Empty dependencies file for bench_voldemort_rw.
# This may be replaced when dependencies are built.
