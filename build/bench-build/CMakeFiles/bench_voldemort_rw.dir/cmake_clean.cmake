file(REMOVE_RECURSE
  "../bench/bench_voldemort_rw"
  "../bench/bench_voldemort_rw.pdb"
  "CMakeFiles/bench_voldemort_rw.dir/bench_voldemort_rw.cc.o"
  "CMakeFiles/bench_voldemort_rw.dir/bench_voldemort_rw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voldemort_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
