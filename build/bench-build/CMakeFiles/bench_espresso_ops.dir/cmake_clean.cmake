file(REMOVE_RECURSE
  "../bench/bench_espresso_ops"
  "../bench/bench_espresso_ops.pdb"
  "CMakeFiles/bench_espresso_ops.dir/bench_espresso_ops.cc.o"
  "CMakeFiles/bench_espresso_ops.dir/bench_espresso_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_espresso_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
