# Empty compiler generated dependencies file for bench_espresso_ops.
# This may be replaced when dependencies are built.
