file(REMOVE_RECURSE
  "../bench/bench_kafka_retention"
  "../bench/bench_kafka_retention.pdb"
  "CMakeFiles/bench_kafka_retention.dir/bench_kafka_retention.cc.o"
  "CMakeFiles/bench_kafka_retention.dir/bench_kafka_retention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
