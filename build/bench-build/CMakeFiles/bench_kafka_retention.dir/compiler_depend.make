# Empty compiler generated dependencies file for bench_kafka_retention.
# This may be replaced when dependencies are built.
