file(REMOVE_RECURSE
  "../bench/bench_kafka_audit"
  "../bench/bench_kafka_audit.pdb"
  "CMakeFiles/bench_kafka_audit.dir/bench_kafka_audit.cc.o"
  "CMakeFiles/bench_kafka_audit.dir/bench_kafka_audit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kafka_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
