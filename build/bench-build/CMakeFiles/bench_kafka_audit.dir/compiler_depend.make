# Empty compiler generated dependencies file for bench_kafka_audit.
# This may be replaced when dependencies are built.
