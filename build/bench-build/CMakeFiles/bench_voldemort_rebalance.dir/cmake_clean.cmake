file(REMOVE_RECURSE
  "../bench/bench_voldemort_rebalance"
  "../bench/bench_voldemort_rebalance.pdb"
  "CMakeFiles/bench_voldemort_rebalance.dir/bench_voldemort_rebalance.cc.o"
  "CMakeFiles/bench_voldemort_rebalance.dir/bench_voldemort_rebalance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voldemort_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
