# Empty dependencies file for bench_voldemort_rebalance.
# This may be replaced when dependencies are built.
