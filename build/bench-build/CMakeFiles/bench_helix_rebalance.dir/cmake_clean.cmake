file(REMOVE_RECURSE
  "../bench/bench_helix_rebalance"
  "../bench/bench_helix_rebalance.pdb"
  "CMakeFiles/bench_helix_rebalance.dir/bench_helix_rebalance.cc.o"
  "CMakeFiles/bench_helix_rebalance.dir/bench_helix_rebalance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_helix_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
