file(REMOVE_RECURSE
  "../bench/bench_databus_relay"
  "../bench/bench_databus_relay.pdb"
  "CMakeFiles/bench_databus_relay.dir/bench_databus_relay.cc.o"
  "CMakeFiles/bench_databus_relay.dir/bench_databus_relay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_databus_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
