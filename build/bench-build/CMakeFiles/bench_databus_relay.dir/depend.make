# Empty dependencies file for bench_databus_relay.
# This may be replaced when dependencies are built.
