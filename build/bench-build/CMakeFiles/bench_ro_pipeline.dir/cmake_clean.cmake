file(REMOVE_RECURSE
  "../bench/bench_ro_pipeline"
  "../bench/bench_ro_pipeline.pdb"
  "CMakeFiles/bench_ro_pipeline.dir/bench_ro_pipeline.cc.o"
  "CMakeFiles/bench_ro_pipeline.dir/bench_ro_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ro_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
