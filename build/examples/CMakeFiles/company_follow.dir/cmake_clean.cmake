file(REMOVE_RECURSE
  "CMakeFiles/company_follow.dir/company_follow.cpp.o"
  "CMakeFiles/company_follow.dir/company_follow.cpp.o.d"
  "company_follow"
  "company_follow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_follow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
