# Empty dependencies file for company_follow.
# This may be replaced when dependencies are built.
