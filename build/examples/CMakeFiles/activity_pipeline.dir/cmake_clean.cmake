file(REMOVE_RECURSE
  "CMakeFiles/activity_pipeline.dir/activity_pipeline.cpp.o"
  "CMakeFiles/activity_pipeline.dir/activity_pipeline.cpp.o.d"
  "activity_pipeline"
  "activity_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
