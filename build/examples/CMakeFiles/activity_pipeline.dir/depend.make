# Empty dependencies file for activity_pipeline.
# This may be replaced when dependencies are built.
