file(REMOVE_RECURSE
  "CMakeFiles/pymk_readonly.dir/pymk_readonly.cpp.o"
  "CMakeFiles/pymk_readonly.dir/pymk_readonly.cpp.o.d"
  "pymk_readonly"
  "pymk_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pymk_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
