# Empty dependencies file for pymk_readonly.
# This may be replaced when dependencies are built.
