file(REMOVE_RECURSE
  "CMakeFiles/property_vclock_test.dir/property_vclock_test.cc.o"
  "CMakeFiles/property_vclock_test.dir/property_vclock_test.cc.o.d"
  "property_vclock_test"
  "property_vclock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_vclock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
