# Empty compiler generated dependencies file for property_vclock_test.
# This may be replaced when dependencies are built.
