file(REMOVE_RECURSE
  "CMakeFiles/property_kafka_test.dir/property_kafka_test.cc.o"
  "CMakeFiles/property_kafka_test.dir/property_kafka_test.cc.o.d"
  "property_kafka_test"
  "property_kafka_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_kafka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
