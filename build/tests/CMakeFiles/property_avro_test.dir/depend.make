# Empty dependencies file for property_avro_test.
# This may be replaced when dependencies are built.
