file(REMOVE_RECURSE
  "CMakeFiles/property_avro_test.dir/property_avro_test.cc.o"
  "CMakeFiles/property_avro_test.dir/property_avro_test.cc.o.d"
  "property_avro_test"
  "property_avro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_avro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
