# Empty dependencies file for voldemort_test.
# This may be replaced when dependencies are built.
