file(REMOVE_RECURSE
  "CMakeFiles/voldemort_test.dir/voldemort_test.cc.o"
  "CMakeFiles/voldemort_test.dir/voldemort_test.cc.o.d"
  "voldemort_test"
  "voldemort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voldemort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
