file(REMOVE_RECURSE
  "CMakeFiles/property_storage_test.dir/property_storage_test.cc.o"
  "CMakeFiles/property_storage_test.dir/property_storage_test.cc.o.d"
  "property_storage_test"
  "property_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
