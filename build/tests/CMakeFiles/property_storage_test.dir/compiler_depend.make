# Empty compiler generated dependencies file for property_storage_test.
# This may be replaced when dependencies are built.
