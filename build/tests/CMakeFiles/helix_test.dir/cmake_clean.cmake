file(REMOVE_RECURSE
  "CMakeFiles/helix_test.dir/helix_test.cc.o"
  "CMakeFiles/helix_test.dir/helix_test.cc.o.d"
  "helix_test"
  "helix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
