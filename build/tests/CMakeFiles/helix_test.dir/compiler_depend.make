# Empty compiler generated dependencies file for helix_test.
# This may be replaced when dependencies are built.
