file(REMOVE_RECURSE
  "CMakeFiles/net_zk_test.dir/net_zk_test.cc.o"
  "CMakeFiles/net_zk_test.dir/net_zk_test.cc.o.d"
  "net_zk_test"
  "net_zk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_zk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
