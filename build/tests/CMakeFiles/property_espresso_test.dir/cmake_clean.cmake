file(REMOVE_RECURSE
  "CMakeFiles/property_espresso_test.dir/property_espresso_test.cc.o"
  "CMakeFiles/property_espresso_test.dir/property_espresso_test.cc.o.d"
  "property_espresso_test"
  "property_espresso_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_espresso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
