# Empty dependencies file for property_espresso_test.
# This may be replaced when dependencies are built.
