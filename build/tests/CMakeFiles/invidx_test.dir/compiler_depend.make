# Empty compiler generated dependencies file for invidx_test.
# This may be replaced when dependencies are built.
