file(REMOVE_RECURSE
  "CMakeFiles/invidx_test.dir/invidx_test.cc.o"
  "CMakeFiles/invidx_test.dir/invidx_test.cc.o.d"
  "invidx_test"
  "invidx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invidx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
