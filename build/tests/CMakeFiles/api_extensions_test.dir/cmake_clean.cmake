file(REMOVE_RECURSE
  "CMakeFiles/api_extensions_test.dir/api_extensions_test.cc.o"
  "CMakeFiles/api_extensions_test.dir/api_extensions_test.cc.o.d"
  "api_extensions_test"
  "api_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
