file(REMOVE_RECURSE
  "CMakeFiles/property_routing_test.dir/property_routing_test.cc.o"
  "CMakeFiles/property_routing_test.dir/property_routing_test.cc.o.d"
  "property_routing_test"
  "property_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
