file(REMOVE_RECURSE
  "CMakeFiles/sqlstore_test.dir/sqlstore_test.cc.o"
  "CMakeFiles/sqlstore_test.dir/sqlstore_test.cc.o.d"
  "sqlstore_test"
  "sqlstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
