# Empty compiler generated dependencies file for sqlstore_test.
# This may be replaced when dependencies are built.
