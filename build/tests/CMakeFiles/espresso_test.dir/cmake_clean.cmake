file(REMOVE_RECURSE
  "CMakeFiles/espresso_test.dir/espresso_test.cc.o"
  "CMakeFiles/espresso_test.dir/espresso_test.cc.o.d"
  "espresso_test"
  "espresso_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espresso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
