# Empty dependencies file for property_databus_test.
# This may be replaced when dependencies are built.
