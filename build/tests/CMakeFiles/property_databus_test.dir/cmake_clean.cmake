file(REMOVE_RECURSE
  "CMakeFiles/property_databus_test.dir/property_databus_test.cc.o"
  "CMakeFiles/property_databus_test.dir/property_databus_test.cc.o.d"
  "property_databus_test"
  "property_databus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_databus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
