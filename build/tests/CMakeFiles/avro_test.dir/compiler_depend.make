# Empty compiler generated dependencies file for avro_test.
# This may be replaced when dependencies are built.
