file(REMOVE_RECURSE
  "CMakeFiles/avro_test.dir/avro_test.cc.o"
  "CMakeFiles/avro_test.dir/avro_test.cc.o.d"
  "avro_test"
  "avro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
