file(REMOVE_RECURSE
  "CMakeFiles/property_invidx_test.dir/property_invidx_test.cc.o"
  "CMakeFiles/property_invidx_test.dir/property_invidx_test.cc.o.d"
  "property_invidx_test"
  "property_invidx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_invidx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
