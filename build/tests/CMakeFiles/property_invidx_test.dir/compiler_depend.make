# Empty compiler generated dependencies file for property_invidx_test.
# This may be replaced when dependencies are built.
