file(REMOVE_RECURSE
  "CMakeFiles/databus_test.dir/databus_test.cc.o"
  "CMakeFiles/databus_test.dir/databus_test.cc.o.d"
  "databus_test"
  "databus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/databus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
