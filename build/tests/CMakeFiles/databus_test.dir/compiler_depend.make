# Empty compiler generated dependencies file for databus_test.
# This may be replaced when dependencies are built.
