file(REMOVE_RECURSE
  "liblidi.a"
)
