# Empty compiler generated dependencies file for lidi.
# This may be replaced when dependencies are built.
