
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avro/codec.cc" "src/CMakeFiles/lidi.dir/avro/codec.cc.o" "gcc" "src/CMakeFiles/lidi.dir/avro/codec.cc.o.d"
  "/root/repo/src/avro/datum.cc" "src/CMakeFiles/lidi.dir/avro/datum.cc.o" "gcc" "src/CMakeFiles/lidi.dir/avro/datum.cc.o.d"
  "/root/repo/src/avro/json.cc" "src/CMakeFiles/lidi.dir/avro/json.cc.o" "gcc" "src/CMakeFiles/lidi.dir/avro/json.cc.o.d"
  "/root/repo/src/avro/schema.cc" "src/CMakeFiles/lidi.dir/avro/schema.cc.o" "gcc" "src/CMakeFiles/lidi.dir/avro/schema.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/lidi.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/clock.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/lidi.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/coding.cc.o.d"
  "/root/repo/src/common/compression.cc" "src/CMakeFiles/lidi.dir/common/compression.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/compression.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/lidi.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/hash.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/lidi.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/lidi.dir/common/random.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/lidi.dir/common/status.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/lidi.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/lidi.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/databus/bootstrap.cc" "src/CMakeFiles/lidi.dir/databus/bootstrap.cc.o" "gcc" "src/CMakeFiles/lidi.dir/databus/bootstrap.cc.o.d"
  "/root/repo/src/databus/client.cc" "src/CMakeFiles/lidi.dir/databus/client.cc.o" "gcc" "src/CMakeFiles/lidi.dir/databus/client.cc.o.d"
  "/root/repo/src/databus/event.cc" "src/CMakeFiles/lidi.dir/databus/event.cc.o" "gcc" "src/CMakeFiles/lidi.dir/databus/event.cc.o.d"
  "/root/repo/src/databus/multitenant.cc" "src/CMakeFiles/lidi.dir/databus/multitenant.cc.o" "gcc" "src/CMakeFiles/lidi.dir/databus/multitenant.cc.o.d"
  "/root/repo/src/databus/relay.cc" "src/CMakeFiles/lidi.dir/databus/relay.cc.o" "gcc" "src/CMakeFiles/lidi.dir/databus/relay.cc.o.d"
  "/root/repo/src/databus/transformation.cc" "src/CMakeFiles/lidi.dir/databus/transformation.cc.o" "gcc" "src/CMakeFiles/lidi.dir/databus/transformation.cc.o.d"
  "/root/repo/src/espresso/document.cc" "src/CMakeFiles/lidi.dir/espresso/document.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/document.cc.o.d"
  "/root/repo/src/espresso/global_index.cc" "src/CMakeFiles/lidi.dir/espresso/global_index.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/global_index.cc.o.d"
  "/root/repo/src/espresso/replication.cc" "src/CMakeFiles/lidi.dir/espresso/replication.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/replication.cc.o.d"
  "/root/repo/src/espresso/router.cc" "src/CMakeFiles/lidi.dir/espresso/router.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/router.cc.o.d"
  "/root/repo/src/espresso/schema.cc" "src/CMakeFiles/lidi.dir/espresso/schema.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/schema.cc.o.d"
  "/root/repo/src/espresso/storage_node.cc" "src/CMakeFiles/lidi.dir/espresso/storage_node.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/storage_node.cc.o.d"
  "/root/repo/src/espresso/uri.cc" "src/CMakeFiles/lidi.dir/espresso/uri.cc.o" "gcc" "src/CMakeFiles/lidi.dir/espresso/uri.cc.o.d"
  "/root/repo/src/helix/helix.cc" "src/CMakeFiles/lidi.dir/helix/helix.cc.o" "gcc" "src/CMakeFiles/lidi.dir/helix/helix.cc.o.d"
  "/root/repo/src/invidx/inverted_index.cc" "src/CMakeFiles/lidi.dir/invidx/inverted_index.cc.o" "gcc" "src/CMakeFiles/lidi.dir/invidx/inverted_index.cc.o.d"
  "/root/repo/src/kafka/audit.cc" "src/CMakeFiles/lidi.dir/kafka/audit.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/audit.cc.o.d"
  "/root/repo/src/kafka/broker.cc" "src/CMakeFiles/lidi.dir/kafka/broker.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/broker.cc.o.d"
  "/root/repo/src/kafka/consumer.cc" "src/CMakeFiles/lidi.dir/kafka/consumer.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/consumer.cc.o.d"
  "/root/repo/src/kafka/log.cc" "src/CMakeFiles/lidi.dir/kafka/log.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/log.cc.o.d"
  "/root/repo/src/kafka/message.cc" "src/CMakeFiles/lidi.dir/kafka/message.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/message.cc.o.d"
  "/root/repo/src/kafka/mirror.cc" "src/CMakeFiles/lidi.dir/kafka/mirror.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/mirror.cc.o.d"
  "/root/repo/src/kafka/producer.cc" "src/CMakeFiles/lidi.dir/kafka/producer.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/producer.cc.o.d"
  "/root/repo/src/kafka/replication.cc" "src/CMakeFiles/lidi.dir/kafka/replication.cc.o" "gcc" "src/CMakeFiles/lidi.dir/kafka/replication.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/lidi.dir/net/network.cc.o" "gcc" "src/CMakeFiles/lidi.dir/net/network.cc.o.d"
  "/root/repo/src/sqlstore/database.cc" "src/CMakeFiles/lidi.dir/sqlstore/database.cc.o" "gcc" "src/CMakeFiles/lidi.dir/sqlstore/database.cc.o.d"
  "/root/repo/src/storage/log_engine.cc" "src/CMakeFiles/lidi.dir/storage/log_engine.cc.o" "gcc" "src/CMakeFiles/lidi.dir/storage/log_engine.cc.o.d"
  "/root/repo/src/storage/memtable_engine.cc" "src/CMakeFiles/lidi.dir/storage/memtable_engine.cc.o" "gcc" "src/CMakeFiles/lidi.dir/storage/memtable_engine.cc.o.d"
  "/root/repo/src/voldemort/admin.cc" "src/CMakeFiles/lidi.dir/voldemort/admin.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/admin.cc.o.d"
  "/root/repo/src/voldemort/bulk_build.cc" "src/CMakeFiles/lidi.dir/voldemort/bulk_build.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/bulk_build.cc.o.d"
  "/root/repo/src/voldemort/client.cc" "src/CMakeFiles/lidi.dir/voldemort/client.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/client.cc.o.d"
  "/root/repo/src/voldemort/cluster.cc" "src/CMakeFiles/lidi.dir/voldemort/cluster.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/cluster.cc.o.d"
  "/root/repo/src/voldemort/failure_detector.cc" "src/CMakeFiles/lidi.dir/voldemort/failure_detector.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/failure_detector.cc.o.d"
  "/root/repo/src/voldemort/readonly_store.cc" "src/CMakeFiles/lidi.dir/voldemort/readonly_store.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/readonly_store.cc.o.d"
  "/root/repo/src/voldemort/routing.cc" "src/CMakeFiles/lidi.dir/voldemort/routing.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/routing.cc.o.d"
  "/root/repo/src/voldemort/server.cc" "src/CMakeFiles/lidi.dir/voldemort/server.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/server.cc.o.d"
  "/root/repo/src/voldemort/vector_clock.cc" "src/CMakeFiles/lidi.dir/voldemort/vector_clock.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/vector_clock.cc.o.d"
  "/root/repo/src/voldemort/wire.cc" "src/CMakeFiles/lidi.dir/voldemort/wire.cc.o" "gcc" "src/CMakeFiles/lidi.dir/voldemort/wire.cc.o.d"
  "/root/repo/src/zk/zookeeper.cc" "src/CMakeFiles/lidi.dir/zk/zookeeper.cc.o" "gcc" "src/CMakeFiles/lidi.dir/zk/zookeeper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
