#!/usr/bin/env bash
# Repo lint driver — run as `cmake --build build --target lint` or directly:
#   scripts/lint.sh [build-dir]
#
# Three layers:
#   0. lidi-check (scripts/lidi_check.py): the AST-level static analysis
#      suite — must-check (no discarded Status/Result), reactor-blocking,
#      sim-determinism, tsa-coverage. Gates whenever python3 is present.
#      Grep gates that the analyzer supersedes (currently 2d,
#      sim-determinism) run only as a fallback when lidi-check is not
#      functional here.
#   1. clang-tidy (when installed) over every file in src/, using the
#      compile_commands.json exported by CMake and the checks in .clang-tidy.
#      Skipped with a notice when no clang-tidy binary exists (the GCC-only
#      CI image); layers 0 and 2 still run and still gate.
#   2. Repo-local invariants, enforced by grep — these encode the sync-layer
#      contract and fail the build on violation:
#        - no raw std::mutex / lock primitives outside src/common/sync.{h,cc}
#          (everything must go through the annotated lidi wrappers so Clang
#          Thread Safety Analysis and the lock-order registry see it);
#        - no std::fstream/ofstream/ifstream writes outside src/io (all
#          durable I/O must go through the checked io::Fs layer);
#        - every LIDI_NO_THREAD_SAFETY_ANALYSIS carries a justification
#          comment on the same or preceding line, and there are at most 5.
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
FAILED=0

note() { printf 'lint: %s\n' "$*"; }
fail() { printf 'lint: FAIL: %s\n' "$*"; FAILED=1; }

# ---- layer 0: lidi-check (AST-level static analysis) -----------------------
# When functional, the analyzer owns the checks it supersedes and the
# corresponding grep gate below (2d sim-determinism) is demoted to
# fallback-only. The other grep gates (2a/2b/2c/2e/2f) cover invariants the
# analyzer does not, and always run.
PY="$(command -v python3 || true)"
LIDI_CHECK_LIVE=0
if [ -n "$PY" ] && "$PY" scripts/lidi_check.py --probe --quiet 2>/dev/null; then
  LIDI_CHECK_LIVE=1
  note "running lidi-check (scripts/lidi_check.py)"
  if ! "$PY" scripts/lidi_check.py; then
    fail "lidi-check reported violations (see diagnostics above)"
  fi
else
  note "lidi-check not functional here (no python3?); grep fallbacks gate"
fi

# ---- layer 1: clang-tidy ---------------------------------------------------
TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  for cand in /usr/lib/llvm-*/bin/clang-tidy /opt/llvm*/bin/clang-tidy; do
    [ -x "$cand" ] && TIDY="$cand" && break
  done
fi

if [ -n "$TIDY" ]; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    fail "no $BUILD_DIR/compile_commands.json (configure with CMake first)"
  else
    note "running $TIDY over src/"
    # shellcheck disable=SC2046
    if ! "$TIDY" -p "$BUILD_DIR" --quiet $(find src -name '*.cc' | sort); then
      fail "clang-tidy reported errors"
    fi
  fi
else
  note "clang-tidy not installed; skipping tidy layer (grep gates still run)"
fi

# ---- layer 2: repo-local invariants ---------------------------------------

# 2a. Raw lock primitives outside the sync wrappers. The wrappers exist so
# that every lock in the tree carries thread-safety annotations and
# participates in lock-order checking; a raw std::mutex is invisible to both.
RAW_LOCK_RE='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)[^a-zA-Z_]'
hits=$(grep -RnE "$RAW_LOCK_RE" src tests bench examples 2>/dev/null \
       | grep -v '^src/common/sync\.\(h\|cc\):' || true)
if [ -n "$hits" ]; then
  fail "raw std lock primitives outside src/common/sync.{h,cc} — use lidi::Mutex / MutexLock / CondVar:"
  printf '%s\n' "$hits"
fi

# 2b. Stream-based file I/O outside src/io. Durable writes must go through
# io::Fs / io::WritableFile so short writes, sync policy, and fault
# injection are honest (see the durable-I/O layer PR).
hits=$(grep -RnE 'std::(o|i)?fstream' src 2>/dev/null \
       | grep -v '^src/io/' || true)
if [ -n "$hits" ]; then
  fail "std::fstream outside src/io — use the io::Fs layer:"
  printf '%s\n' "$hits"
fi

# 2c. Thread-safety-analysis escapes must be justified and rare. A bare
# LIDI_NO_THREAD_SAFETY_ANALYSIS silences the analyzer; each use needs a
# same-line or preceding-line comment saying why, and the total is capped.
escape_sites=$(grep -RnE 'LIDI_NO_THREAD_SAFETY_ANALYSIS' src tests bench 2>/dev/null \
               | grep -v '^src/common/sync\.h:' || true)
escape_count=0
if [ -n "$escape_sites" ]; then
  escape_count=$(printf '%s\n' "$escape_sites" | wc -l)
  while IFS= read -r site; do
    file="${site%%:*}"
    rest="${site#*:}"
    line="${rest%%:*}"
    prev=$((line - 1))
    if ! sed -n "${prev}p;${line}p" "$file" | grep -q '//'; then
      fail "unjustified LIDI_NO_THREAD_SAFETY_ANALYSIS at $file:$line (add a comment explaining why)"
    fi
  done <<EOF
$escape_sites
EOF
fi
if [ "$escape_count" -gt 5 ]; then
  fail "$escape_count LIDI_NO_THREAD_SAFETY_ANALYSIS escapes (max 5) — annotate instead of suppressing"
fi

# 2e. Direct fdatasync calls are choke points. Under group commit the only
# sync on an acknowledged path is the group leader's covering one; a
# stray file->Sync() sprinkled elsewhere silently reopens the
# one-fsync-per-append cliff (and dodges the committer's failure/epoch
# protocol). Every Sync() call outside src/io must carry a
# `sync-choke-point` justification within the three lines above it, and
# the total is capped so new ones are a deliberate decision.
sync_sites=$(grep -rnE '(->|\.)Sync\(\)' src --include='*.cc' --include='*.h' 2>/dev/null \
             | grep -v '^src/io/' || true)
sync_count=0
if [ -n "$sync_sites" ]; then
  sync_count=$(printf '%s\n' "$sync_sites" | wc -l)
  while IFS= read -r site; do
    file="${site%%:*}"
    rest="${site#*:}"
    line="${rest%%:*}"
    start=$((line - 3)); [ "$start" -lt 1 ] && start=1
    if ! sed -n "${start},${line}p" "$file" | grep -q 'sync-choke-point'; then
      fail "direct Sync() at $file:$line without a sync-choke-point justification — route durability through the group committer or the policy path in src/io"
    fi
  done <<EOF
$sync_sites
EOF
fi
if [ "$sync_count" -gt 6 ]; then
  fail "$sync_count direct Sync() sites outside src/io (max 6) — new fsync choke points need a deliberate design decision"
fi

# 2f. Raw sockets are a transport concern. Every RPC must flow through the
# net::Transport interface so it works on both backends (sim and TCP),
# carries trace/deadline metadata, and stays fault-injectable; a stray
# socket(2)/epoll call elsewhere in src/ bypasses all three. (Tests may use
# raw sockets deliberately — tcp_transport_test speaks the wire protocol
# adversarially.)
SOCKET_RE='[^a-zA-Z_](socket|connect|accept4?|listen|bind|epoll_create1?|epoll_ctl|epoll_wait|eventfd)[[:space:]]*\('
hits=$(grep -RnE "$SOCKET_RE" src --include='*.cc' --include='*.h' 2>/dev/null \
       | grep -v '^src/net/' || true)
if [ -n "$hits" ]; then
  fail "raw socket/epoll use outside src/net — go through net::Transport:"
  printf '%s\n' "$hits"
fi

# 2d. Determinism gate for the simulation harness — FALLBACK ONLY. The
# sim-determinism check in lidi-check (layer 0) supersedes this grep: it
# strips comments and strings first, so a prose mention of std::chrono no
# longer trips the gate. This raw grep runs only when lidi-check is not
# functional (no python3), to keep the invariant enforced everywhere.
# Everything under src/sim must be a pure function of (SimOptions,
# Schedule): wall-clock reads or unseeded randomness would silently break
# the same-seed => byte-identical-trace replay contract (DESIGN.md
# "Simulation testing") — use the virtual ManualClock and seeded
# lidi::Random instead.
if [ "$LIDI_CHECK_LIVE" -eq 0 ]; then
  NONDET_RE='std::chrono|SystemClock::Default|std::random_device|std::mt19937|std::default_random_engine|[^a-zA-Z_](rand|srand|time|gettimeofday|clock_gettime)[[:space:]]*\('
  hits=$(grep -RnE "$NONDET_RE" src/sim tests/sim_test.cc tests/property_sim_test.cc 2>/dev/null || true)
  if [ -n "$hits" ]; then
    fail "wall clock / unseeded randomness in simulation paths — use ManualClock + seeded lidi::Random:"
    printf '%s\n' "$hits"
  fi
fi

if [ "$FAILED" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
