#!/usr/bin/env python3
"""lidi-check: AST-level static analysis for the lidi codebase.

Run as `cmake --build build --target lidi-check`, from scripts/lint.sh and
scripts/check.sh, or directly:

    python3 scripts/lidi_check.py [--root DIR] [--checks a,b,...]

Four checks, each encoding a repo contract that grep alone enforces only
approximately (comments and string literals are stripped before any pattern
runs, and the reactor check walks a call graph no grep can express):

  must-check        Every discarded lidi::Status / lidi::Result must be a
                    deliberate decision. The compiler enforces the baseline
                    (LIDI_NODISCARD on both types -> -Wunused-result under
                    GCC/Clang); this check enforces the waiver discipline on
                    top: a `(void)` / `static_cast<void>` discard of a call
                    result in src/ must carry a `discard-ok:` justification
                    comment within the three preceding lines, and the total
                    number of waivers in src/ is capped so each new one is a
                    reviewed decision, not drift. Also verifies status.h
                    still carries LIDI_NODISCARD on both types, so the
                    compiler gate cannot silently rot.

  reactor-blocking  No path from an epoll reactor loop may reach a blocking
                    primitive. Roots are discovered, not hard-coded: any
                    function in src/net whose body calls epoll_wait() is a
                    reactor loop. The check builds a call graph over src/net
                    and walks it from every root; reaching CondVar::Wait /
                    WaitFor / WaitUntil, sleep_for, WritableFile::Sync, or a
                    synchronous Transport::Call fails the build with the
                    offending path. A deliberate exception carries a
                    `reactor-ok:` comment within the three preceding lines.

  sim-determinism   Everything under src/sim (and the sim test drivers) must
                    be a pure function of (SimOptions, Schedule): wall-clock
                    reads and unseeded randomness break the same-seed =>
                    byte-identical-trace replay contract (DESIGN.md,
                    "Simulation testing"). Banned outright -- no waivers --
                    but unlike the legacy grep gate, a mention in a comment
                    or string literal does not trip it.

  tsa-coverage      A class that owns a lidi::Mutex / SharedMutex must say,
                    member by member, what that lock protects: every mutable
                    data member is either LIDI_GUARDED_BY / LIDI_PT_GUARDED_BY
                    annotated or waived with a `tsa-ok:` comment within the
                    three preceding lines (e.g. "written once before threads
                    exist", "owned by the reactor thread"). const members,
                    atomics, and the sync primitives themselves are exempt.
                    Waivers are capped.

Waiver policy (shared by all checks that accept waivers): the justification
comment must appear on the flagged line or within the three lines above it,
must start with the check's token (`discard-ok:` / `reactor-ok:` /
`tsa-ok:`), and must state a reason. Waivers are counted and capped
repo-wide; raising a cap is a code-review decision, not an edit the analyzer
will make for you.

Backends: with python clang bindings installed (clang.cindex + libclang),
checks run on the real AST; otherwise a token-level backend (comment/string
stripping + brace-matched function extraction) runs the same checks with the
same diagnostics. `--backend auto` (default) picks the best available.
`--probe` exits 0 when the analyzer is functional in this environment, which
lets scripts/lint.sh demote its legacy grep gates to fallback-only.

Exit codes: 0 clean, 1 violations reported, 2 usage/internal error.
Diagnostics are `path:line: [check] message`, paths relative to --root.
"""

import argparse
import os
import re
import sys
from collections import deque

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

ALL_CHECKS = ("must-check", "reactor-blocking", "sim-determinism",
              "tsa-coverage")

# Caps: a new waiver past the cap fails the build even when justified, so
# growth of the waiver population is itself a reviewed decision.
MAX_DISCARD_WAIVERS = 40
MAX_TSA_WAIVERS = 60

# How many lines above a flagged site a waiver comment may sit (inclusive of
# the flagged line itself). Mirrors lint.sh's sync-choke-point window.
WAIVER_WINDOW = 3

SOURCE_EXTS = (".h", ".cc")

# Blocking leaf calls for the reactor walk: method names that park the
# calling thread. `Call` is the synchronous RPC entry point (both backends);
# `Sync` is fdatasync via io::WritableFile.
BLOCKING_METHODS = {"Wait", "WaitFor", "WaitUntil", "Sync", "Call"}
BLOCKING_FREE_FNS = {"sleep_for", "usleep", "nanosleep"}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "defined", "assert",
}

NONDET_PATTERNS = [
    (re.compile(r"std::chrono\b"), "std::chrono"),
    (re.compile(r"SystemClock::Default\b"), "SystemClock::Default"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"std::mt19937\b"), "std::mt19937"),
    (re.compile(r"std::default_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"(?<![A-Za-z_:])(rand|srand|time|gettimeofday|clock_gettime)\s*\("),
     "wall clock / unseeded randomness"),
]


class Diagnostics:
    def __init__(self, root):
        self.root = root
        self.items = []

    def add(self, path, line, check, message):
        rel = os.path.relpath(path, self.root)
        self.items.append((rel, line, check, message))

    def emit(self, out=sys.stdout):
        for rel, line, check, message in sorted(self.items):
            print(f"{rel}:{line}: [{check}] {message}", file=out)

    def __len__(self):
        return len(self.items)


# ---------------------------------------------------------------------------
# Lexing: comment/string stripping (shared by the token backend)
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Replaces comment bodies and string/char literal contents with spaces.

    Output has identical length and line structure, so offsets and line
    numbers computed on the stripped text are valid in the original.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            # Raw strings: R"delim(...)delim" -- handled as a plain scan for
            # the closing sequence.
            if quote == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'"([^\s()\\]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i + m.end())
                    end = (end + len(closer)) if end != -1 else n
                    for j in range(i, min(end, n)):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset, _cache={}):
    key = id(text)
    starts = _cache.get(key)
    if starts is None or _cache.get("text_" + str(key)) is not text:
        starts = [0]
        for m in re.finditer(r"\n", text):
            starts.append(m.end())
        _cache[key] = starts
        _cache["text_" + str(key)] = text
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def has_waiver(orig_lines, line, token):
    """True when `token` appears on `line` or the WAIVER_WINDOW lines above
    it (1-indexed), in the ORIGINAL text (comments included). Matches the
    window lint.sh grants sync-choke-point justifications."""
    lo = max(1, line - WAIVER_WINDOW)
    for ln in range(lo, line + 1):
        if token in orig_lines[ln - 1]:
            return True
    return False


# ---------------------------------------------------------------------------
# File discovery
# ---------------------------------------------------------------------------

def collect_files(root, subdirs):
    files = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if os.path.isfile(base):
            files.append(base)
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


class SourceFile:
    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.lines = self.text.split("\n")
        self.stripped = strip_comments_and_strings(self.text)


def load(files):
    return [SourceFile(p) for p in files]


# ---------------------------------------------------------------------------
# Check: must-check (discard waiver discipline + nodiscard presence)
# ---------------------------------------------------------------------------

DISCARD_RE = re.compile(
    r"(?:\(\s*void\s*\)|static_cast\s*<\s*void\s*>\s*\()\s*"
    r"[A-Za-z_][\w:]*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*|\s*\(\s*\))*\s*\(")


def check_must_check(root, diags, max_waivers):
    status_h = os.path.join(root, "src", "common", "status.h")
    if os.path.isfile(status_h):
        sf = SourceFile(status_h)
        for cls in ("Status", "Result"):
            pat = re.compile(r"class\s+LIDI_NODISCARD\s+" + cls + r"\b")
            if not pat.search(sf.stripped):
                m = re.search(r"class\s+(?:\w+\s+)?" + cls + r"\b", sf.stripped)
                line = line_of(sf.stripped, m.start()) if m else 1
                diags.add(status_h, line, "must-check",
                          f"lidi::{cls} has lost its LIDI_NODISCARD "
                          "attribute -- the compiler-side discard gate is "
                          "off; restore `class LIDI_NODISCARD " + cls + "`")

    waivers = 0
    for sf in load(collect_files(root, ["src"])):
        for m in DISCARD_RE.finditer(sf.stripped):
            line = line_of(sf.stripped, m.start())
            if has_waiver(sf.lines, line, "discard-ok:"):
                waivers += 1
            else:
                diags.add(sf.path, line, "must-check",
                          "discarded call result cast to void without a "
                          "`discard-ok:` justification within the "
                          f"{WAIVER_WINDOW} preceding lines")
    if waivers > max_waivers:
        diags.add(os.path.join(root, "src"), 1, "must-check",
                  f"{waivers} discard-ok waivers in src/ "
                  f"(max {max_waivers}) -- fix discards instead of waiving, "
                  "or raise the cap in a reviewed change")


# ---------------------------------------------------------------------------
# Check: reactor-blocking (call-graph walk over src/net)
# ---------------------------------------------------------------------------

class Function:
    def __init__(self, name, qualname, path, start_line, body, body_offset):
        self.name = name
        self.qualname = qualname
        self.path = path
        self.start_line = start_line
        self.body = body              # stripped text of the body
        self.body_offset = body_offset


def _identifier_before(text, pos):
    """Reads the identifier (possibly Qual::ified) ending at `pos`
    (exclusive), skipping trailing whitespace. Returns (name, qualname)."""
    i = pos - 1
    while i >= 0 and text[i].isspace():
        i -= 1
    end = i + 1
    while i >= 0 and (text[i].isalnum() or text[i] in "_:~"):
        i -= 1
    token = text[i + 1:end]
    if not token or not re.match(r"^[A-Za-z_~]", token):
        return None, None
    name = token.split("::")[-1]
    return name, token


def extract_functions(sf):
    """Brace-matched function-definition extraction from stripped text."""
    text = sf.stripped
    functions = []
    for m in re.finditer(r"\{", text):
        brace = m.start()
        # Look backward: `) [const|noexcept|override]* {` marks a function
        # (or lambda; lambdas are skipped and stay inside their enclosing
        # definition's body, which is the attribution we want).
        i = brace - 1
        while i >= 0 and text[i].isspace():
            i -= 1
        # Skip trailing qualifiers between the parameter list and the brace.
        while True:
            qm = re.search(r"(const|noexcept|override|final|mutable)\s*$",
                           text[max(0, i - 12):i + 1])
            if not qm:
                break
            i -= len(qm.group(1))
            while i >= 0 and text[i].isspace():
                i -= 1
        if i < 0 or text[i] != ")":
            continue
        # Match the parameter list backward.
        depth = 0
        j = i
        while j >= 0:
            if text[j] == ")":
                depth += 1
            elif text[j] == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j < 0:
            continue
        name, qualname = _identifier_before(text, j)
        if not name or name in CONTROL_KEYWORDS:
            continue
        # Find the matching close brace of the body.
        depth = 0
        k = brace
        n = len(text)
        while k < n:
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        if k >= n:
            continue
        body = text[brace:k + 1]
        functions.append(Function(name, qualname, sf.path,
                                  line_of(text, brace), body, brace))
    return functions


CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")


def check_reactor_blocking(root, diags):
    corpus = load(collect_files(root, [os.path.join("src", "net")]))
    functions = []
    by_file = {}
    for sf in corpus:
        by_file[sf.path] = sf
        functions.extend(extract_functions(sf))

    by_name = {}
    for fn in functions:
        by_name.setdefault(fn.name, []).append(fn)

    # Per function: outgoing edges (names defined in the corpus) and direct
    # blocking sites (offset within file for diagnostics).
    edges = {}
    blocking_sites = {}
    for fn in functions:
        callees = set()
        sites = []
        for m in CALL_RE.finditer(fn.body):
            name = m.group(1)
            if name in CONTROL_KEYWORDS:
                continue
            pre = fn.body[:m.start()].rstrip()
            is_method = pre.endswith(".") or pre.endswith("->")
            if (name in BLOCKING_METHODS and is_method) or \
               name in BLOCKING_FREE_FNS:
                sites.append((name, fn.body_offset + m.start()))
                continue
            if name in by_name and name != fn.name:
                callees.add(name)
        key = (fn.path, fn.start_line)
        edges[key] = (fn, callees)
        blocking_sites[key] = sites

    # Roots: any function whose body performs the epoll wait.
    roots = [key for key, (fn, _) in edges.items()
             if re.search(r"\bepoll_wait\s*\(", fn.body)]

    # BFS, remembering one path per visited function for the diagnostic.
    for root_key in roots:
        visited = {root_key: [edges[root_key][0].name]}
        queue = deque([root_key])
        while queue:
            key = queue.popleft()
            fn, callees = edges[key]
            sf = by_file[fn.path]
            for bname, offset in blocking_sites[key]:
                line = line_of(sf.stripped, offset)
                if has_waiver(sf.lines, line, "reactor-ok:"):
                    continue
                path = " -> ".join(visited[key] + [bname + "()"])
                diags.add(fn.path, line, "reactor-blocking",
                          f"blocking call reachable from reactor loop "
                          f"{edges[root_key][0].qualname}: {path} -- the "
                          "reactor thread must never park; hand the work to "
                          "a worker or add a `reactor-ok:` justification")
            for callee in sorted(callees):
                for target in by_name.get(callee, []):
                    tkey = (target.path, target.start_line)
                    if tkey in visited:
                        continue
                    visited[tkey] = visited[key] + [target.name]
                    queue.append(tkey)


# ---------------------------------------------------------------------------
# Check: sim-determinism
# ---------------------------------------------------------------------------

SIM_SUBDIRS = [os.path.join("src", "sim"),
               os.path.join("tests", "sim_test.cc"),
               os.path.join("tests", "property_sim_test.cc")]


def check_sim_determinism(root, diags):
    for sf in load(collect_files(root, SIM_SUBDIRS)):
        for pat, what in NONDET_PATTERNS:
            for m in pat.finditer(sf.stripped):
                line = line_of(sf.stripped, m.start())
                diags.add(sf.path, line, "sim-determinism",
                          f"{what} in simulation-reachable code -- breaks "
                          "same-seed replay; use the virtual ManualClock "
                          "and seeded lidi::Random (no waivers)")


# ---------------------------------------------------------------------------
# Check: tsa-coverage
# ---------------------------------------------------------------------------

MUTEX_DECL_RE = re.compile(
    r"(?:^|\s)(?:lidi::)?(?:Mutex|SharedMutex)\s+\w+_?\s*(?:\{|;|=)")
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:[\w:]+(?:\s*<[^;{}]*>)?[\s*&]+)+(\w+_)\s*(?:\{[^;]*\})?\s*"
    r"(?:=[^;]*)?;")
# Exempt member shapes:
#  - const / static / std::atomic members and the sync primitives
#    themselves (Mutex / SharedMutex / CondVar);
#  - already-annotated members (LIDI_GUARDED_BY / LIDI_PT_GUARDED_BY);
#  - registry instruments (obs::Counter / Gauge / *Histogram /
#    MetricsRegistry): the registry owns them, their hot paths are relaxed
#    atomics, and the pointers are set during construction;
#  - the overload-control primitives (PerClientQuota / TokenBucket /
#    InflightLimiter, common/overload.h): documented thread-safe with their
#    own leaf locks.
MEMBER_EXEMPT_RE = re.compile(
    r"\bconst\b|\bstatic\b|std::atomic|"
    r"\b(?:lidi::)?(?:Mutex|SharedMutex|CondVar)\b|"
    r"\b(?:obs::)?(?:Counter|Gauge|Histogram|LatencyHistogram|"
    r"MetricsRegistry)\b|"
    r"\b(?:lidi::)?(?:PerClientQuota|TokenBucket|InflightLimiter)\b|"
    r"LIDI_GUARDED_BY|LIDI_PT_GUARDED_BY")


def _class_regions(stripped):
    """Yields (body_start, body_end) offsets of class/struct bodies."""
    for m in re.finditer(r"\b(?:class|struct)\s+(?:LIDI_\w+\s+)?\w+"
                         r"(?:\s+final)?(?:\s*:\s*[^;{]+)?\s*\{", stripped):
        start = m.end() - 1
        depth = 0
        i = start
        n = len(stripped)
        while i < n:
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i < n:
            yield start, i


def _depth1_statements(stripped, start, end):
    """Yields (stmt_text, stmt_start_offset) for depth-1 statements of the
    class body at [start, end]. Nested brace regions (inline method bodies,
    nested classes, brace initializers) are blanked to spaces — the braces
    themselves survive — so a brace-initialized member like
    `Mutex mu_{"name"};` still reads as one declaration statement while a
    nested class's members never leak into the enclosing scope. A `}` that
    is NOT followed by `;` (an inline method body) also terminates the
    statement, so the declaration after a method is never glued to it."""
    depth = 0
    buf = []
    stmt_start = start + 1
    i = start
    while i <= end:
        c = stripped[i]
        if c == "{":
            depth += 1
            if depth >= 2:
                buf.append("{")
            i += 1
            continue
        if c == "}":
            depth -= 1
            if depth >= 1:
                buf.append("}")
                if depth == 1:
                    # Peek: `};` continues the statement (brace init /
                    # nested type); anything else ends it (method body).
                    j = i + 1
                    while j <= end and stripped[j].isspace():
                        j += 1
                    if j > end or stripped[j] != ";":
                        yield "".join(buf), stmt_start
                        buf = []
                        stmt_start = i + 1
            i += 1
            continue
        if depth >= 2:
            buf.append(" " if c != "\n" else "\n")
            i += 1
            continue
        buf.append(c)
        if c == ";" and depth == 1:
            yield "".join(buf), stmt_start
            buf = []
            stmt_start = i + 1
        i += 1


def check_tsa_coverage(root, diags, max_waivers):
    waivers = 0
    for sf in load(collect_files(root, ["src"])):
        for start, end in _class_regions(sf.stripped):
            statements = list(_depth1_statements(sf.stripped, start, end))
            owns_mutex = any(MUTEX_DECL_RE.search(stmt)
                             for stmt, _ in statements)
            if not owns_mutex:
                continue
            for stmt, offset in statements:
                flat = " ".join(stmt.split())
                m = MEMBER_DECL_RE.match(flat)
                if not m:
                    continue
                if MEMBER_EXEMPT_RE.search(flat):
                    continue
                # Function pointers / using decls / friend lines never match
                # MEMBER_DECL_RE's shape; what's left is a mutable member.
                line = line_of(sf.stripped, offset + len(stmt) -
                               len(stmt.lstrip()))
                if has_waiver(sf.lines, line, "tsa-ok:"):
                    waivers += 1
                    continue
                diags.add(sf.path, line, "tsa-coverage",
                          f"mutable member `{m.group(1)}` of a class that "
                          "owns a lidi::Mutex has no LIDI_GUARDED_BY "
                          "annotation -- say what the lock protects, or "
                          "waive with a `tsa-ok:` comment stating why it "
                          "needs no lock")
    if waivers > max_waivers:
        diags.add(os.path.join(root, "src"), 1, "tsa-coverage",
                  f"{waivers} tsa-ok waivers in src/ (max {max_waivers}) -- "
                  "annotate instead of waiving, or raise the cap in a "
                  "reviewed change")


# ---------------------------------------------------------------------------
# AST backend (clang.cindex). The container images this repo targets are
# GCC-only, so this backend is exercised where libclang exists; everywhere
# else the token backend above is the enforced one. Both emit the same
# diagnostic format.
# ---------------------------------------------------------------------------

def ast_backend_available():
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def run_ast_backend(root, checks, diags, args):
    """AST versions of the checks. must-check gains precision here: a
    discarded call is flagged by the *type* of the unused result, not by the
    (void)-cast idiom, so a bare `DoThing();` whose result is a
    lidi::Status is caught even if a compiler flag regression silenced
    -Wunused-result."""
    import clang.cindex as ci

    index = ci.Index.create()
    compile_args = ["-std=c++17", "-I" + os.path.join(root, "src")]

    def is_status_type(t):
        s = t.spelling
        return s.startswith("lidi::Status") or s.startswith("lidi::Result")

    if "must-check" in checks:
        waivers = 0
        for path in collect_files(root, ["src"]):
            if not path.endswith(".cc"):
                continue
            tu = index.parse(path, args=compile_args)
            sf = SourceFile(path)
            for cur in tu.cursor.walk_preorder():
                if cur.kind != ci.CursorKind.COMPOUND_STMT:
                    continue
                for child in cur.get_children():
                    expr = child
                    waived = False
                    if expr.kind == ci.CursorKind.CSTYLE_CAST_EXPR and \
                       expr.type.spelling == "void":
                        inner = list(expr.get_children())
                        expr = inner[-1] if inner else expr
                        waived = True
                    if expr.kind != ci.CursorKind.CALL_EXPR:
                        continue
                    if not is_status_type(expr.type):
                        continue
                    line = child.location.line
                    if has_waiver(sf.lines, line, "discard-ok:"):
                        waivers += 1
                        continue
                    if waived:
                        diags.add(path, line, "must-check",
                                  "discarded call result cast to void "
                                  "without a `discard-ok:` justification "
                                  f"within the {WAIVER_WINDOW} preceding "
                                  "lines")
                    else:
                        diags.add(path, line, "must-check",
                                  "discarded lidi::Status/Result -- handle "
                                  "it, or discard visibly with (void) and a "
                                  "`discard-ok:` reason")
        if waivers > args.max_discard_waivers:
            diags.add(os.path.join(root, "src"), 1, "must-check",
                      f"{waivers} discard-ok waivers in src/ "
                      f"(max {args.max_discard_waivers})")

    # The remaining checks share their logic with the token backend; the
    # stripping they rely on is already comment/string exact, and keeping a
    # single implementation keeps the two backends' diagnostics identical.
    if "reactor-blocking" in checks:
        check_reactor_blocking(root, diags)
    if "sim-determinism" in checks:
        check_sim_determinism(root, diags)
    if "tsa-coverage" in checks:
        check_tsa_coverage(root, diags, args.max_tsa_waivers)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(
        prog="lidi_check.py",
        description="AST-level static analysis for the lidi codebase.")
    parser.add_argument("--root", default=None,
                        help="tree to analyze (default: the repo root)")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of: " +
                             ", ".join(ALL_CHECKS))
    parser.add_argument("--backend", choices=("auto", "ast", "token"),
                        default="auto")
    parser.add_argument("--probe", action="store_true",
                        help="exit 0 if the analyzer is functional here "
                             "(used by lint.sh to demote its grep gates)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--max-discard-waivers", type=int,
                        default=MAX_DISCARD_WAIVERS)
    parser.add_argument("--max-tsa-waivers", type=int,
                        default=MAX_TSA_WAIVERS)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.list_checks:
        for c in ALL_CHECKS:
            print(c)
        return 0

    if args.probe:
        backend = "ast" if ast_backend_available() else "token"
        if not args.quiet:
            print(f"lidi-check: functional ({backend} backend)")
        return 0

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"lidi-check: no such root: {root}", file=sys.stderr)
        return 2

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    for c in checks:
        if c not in ALL_CHECKS:
            print(f"lidi-check: unknown check: {c}", file=sys.stderr)
            return 2

    diags = Diagnostics(root)
    backend = args.backend
    if backend == "auto":
        backend = "ast" if ast_backend_available() else "token"
    if backend == "ast" and not ast_backend_available():
        print("lidi-check: ast backend requested but clang.cindex is not "
              "importable", file=sys.stderr)
        return 2

    if backend == "ast":
        run_ast_backend(root, checks, diags, args)
    else:
        if "must-check" in checks:
            check_must_check(root, diags, args.max_discard_waivers)
        if "reactor-blocking" in checks:
            check_reactor_blocking(root, diags)
        if "sim-determinism" in checks:
            check_sim_determinism(root, diags)
        if "tsa-coverage" in checks:
            check_tsa_coverage(root, diags, args.max_tsa_waivers)

    if len(diags):
        diags.emit()
        if not args.quiet:
            print(f"lidi-check: FAILED ({len(diags)} finding"
                  f"{'s' if len(diags) != 1 else ''}, {backend} backend)")
        return 1
    if not args.quiet:
        print(f"lidi-check: OK ({', '.join(checks)}; {backend} backend)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
