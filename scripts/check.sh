#!/usr/bin/env bash
# CI gate: the one command that must pass before merging.
#   scripts/check.sh [jobs]
#
# Stages:
#   0. lidi-check (scripts/lidi_check.py): AST-level static analysis —
#      must-check, reactor-blocking, sim-determinism, tsa-coverage. Runs
#      before any compilation because it needs no build tree and catches
#      discarded Status / blocked reactors / unannotated shared state in
#      seconds. Waiver policy: a deliberate discard is `(void)expr` plus a
#      `discard-ok: <reason>` comment within the three preceding lines (or
#      trailing on the same line); TSA exemptions use `tsa-ok: <reason>`;
#      reactor-path blocking uses `reactor-ok: <reason>`. Waivers are
#      counted and capped repo-wide (see scripts/lidi_check.py --help);
#      raising a cap is a code-review decision.
#   1. Configure + build with -DLIDI_THREAD_SAFETY=ON. Under Clang this
#      promotes -Wthread-safety to an error across the tree; under GCC the
#      attributes are no-ops and CMake prints a warning but the build (and
#      the runtime lock-order registry, LIDI_LOCK_ORDER=ON by default)
#      still gates.
#   2. Lint (scripts/lint.sh): clang-tidy when available + the repo-local
#      grep invariants (no raw std::mutex outside src/common/sync.{h,cc},
#      no std::fstream outside src/io, justified+capped TSA escapes,
#      justified+capped direct Sync() choke points outside src/io).
#   3. Full ctest suite — includes the >=200-seed group-commit crash sweeps
#      in faultfs_test (GroupCommitNeverLosesAnAcknowledgedAppend and the
#      Binlog equivalent) and the `workload` label (open-loop driver, sim
#      overload schedule).
#   3b. Open-loop overload smoke: bench_open_loop --smoke asserts the
#      graceful-degradation shape (zero sheds at trivial load, nonzero at
#      saturation) on the deterministic sim backend.
#   4. ThreadSanitizer pass over the concurrency-sensitive suites (faultfs
#      + every *concurrency*/sync test — which picks up
#      group_commit_concurrency_test: many appenders, one group-commit
#      leader, crash armed mid-batch) in a separate build tree, when the
#      toolchain supports -fsanitize=thread.
#   5. AddressSanitizer pass over the simulation suites (ctest -L sim) in a
#      separate build tree, when the toolchain supports -fsanitize=address —
#      the chaos schedules crash/restart every tier, so this is where
#      use-after-free on teardown paths would surface.
#
# Nightly-style deep sweep (not part of the merge gate; run it before
# release branches or after touching crash/recovery paths):
#   scripts/check.sh sweep        # 500-seed x 50-event simulation sweep
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

say() { printf '\n==== check: %s ====\n' "$*"; }

# Deep simulation sweep: 500 seeded random chaos schedules against the full
# invariant catalogue. Failures print a ddmin-shrunk reproducer; replay with
# LIDI_SIM_SEED=<seed>.
if [ "${1:-}" = "sweep" ]; then
  JOBS="$(nproc 2>/dev/null || echo 4)"
  say "simulation sweep (LIDI_SIM_SEEDS=${LIDI_SIM_SEEDS:-500})"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j"$JOBS"
  LIDI_SIM_SEEDS="${LIDI_SIM_SEEDS:-500}" \
    ctest --test-dir build --output-on-failure -L sim
  say "sweep OK"
  exit 0
fi

say "lidi-check (static analysis, pre-build)"
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/lidi_check.py
else
  echo "check: no python3; lidi-check deferred to lint.sh grep fallbacks"
fi

say "build (LIDI_THREAD_SAFETY=ON, LIDI_LOCK_ORDER=ON)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DLIDI_THREAD_SAFETY=ON -DLIDI_LOCK_ORDER=ON
cmake --build build -j"$JOBS"

say "lint"
scripts/lint.sh build

say "tests"
ctest --test-dir build --output-on-failure -j"$JOBS"

say "open-loop overload smoke (bench_open_loop --smoke)"
# Graceful-degradation gate on the deterministic sim backend: a trivial
# arrival rate must shed nothing, a saturating one must shed (typed
# Overloaded rejections, EXPERIMENTS.md open-loop methodology). The binary
# exits nonzero when the shed shape is wrong.
build/bench/bench_open_loop --smoke

say "thread-sanitizer (faultfs + concurrency + sync suites)"
if printf 'int main(){return 0;}' | \
   ${CXX:-c++} -fsanitize=thread -x c++ - -o /tmp/lidi_tsan_probe 2>/dev/null; then
  rm -f /tmp/lidi_tsan_probe
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLIDI_SANITIZE=thread
  cmake --build build-tsan -j"$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j"$JOBS" \
        -R 'faultfs|concurrency|sync'
  say "thread-sanitizer (transport suites, ctest -L net)"
  # The TCP backend is the one component with real cross-thread socket
  # hand-off (callers <-> reactors <-> workers); it must stay TSan-clean.
  ctest --test-dir build-tsan --output-on-failure -j"$JOBS" -L net
  say "thread-sanitizer (elasticity suite, ctest -L rebalance)"
  # Live partition movement exercises the metadata reader/writer locks and
  # the epoch-gated router retry under every cutover interleaving.
  ctest --test-dir build-tsan --output-on-failure -j"$JOBS" -L rebalance
else
  echo "check: toolchain lacks -fsanitize=thread; skipping TSan stage"
fi

say "address-sanitizer (simulation suites, ctest -L sim)"
if printf 'int main(){return 0;}' | \
   ${CXX:-c++} -fsanitize=address -x c++ - -o /tmp/lidi_asan_probe 2>/dev/null; then
  rm -f /tmp/lidi_asan_probe
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLIDI_SANITIZE=address
  cmake --build build-asan -j"$JOBS"
  ctest --test-dir build-asan --output-on-failure -j"$JOBS" -L sim
  say "address-sanitizer (transport suites, ctest -L net)"
  # Connection/listener teardown paths (reap, DropConnections, destructor)
  # are where a transport use-after-free would surface.
  ctest --test-dir build-asan --output-on-failure -j"$JOBS" -L net
  say "address-sanitizer (elasticity suite, ctest -L rebalance)"
  # Rebalance schedules add/crash/restart nodes of every tier mid-flight —
  # the dangling-server/broker pointers an elastic topology could leak
  # surface here.
  ctest --test-dir build-asan --output-on-failure -j"$JOBS" -L rebalance
else
  echo "check: toolchain lacks -fsanitize=address; skipping ASan stage"
fi

say "OK"
