#ifndef LIDI_ESPRESSO_URI_H_
#define LIDI_ESPRESSO_URI_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace lidi::espresso {

/// A parsed Espresso document URI (paper Section IV.A):
///   /<database>/<table>/<resource_id>[/<subresource_id>...][?query=...]
struct ParsedUri {
  std::string database;
  std::string table;
  std::string resource_id;
  std::vector<std::string> subresources;
  std::string query;  // the value of the ?query= parameter, if any

  /// Storage key for the document: resource_id and subresources joined with
  /// '/', e.g. "Etta_James/Gold/At_Last".
  std::string DocumentKey() const;

  /// Reassembles the canonical path (no query string).
  std::string Path() const;
};

/// Parses a URI path. The path must have at least /db/table/resource_id;
/// additional segments become subresource ids. A trailing "?query=..." is
/// URL-decoded into `query` (only %XX and '+' decoding; enough for the
/// bench/test corpus).
Result<ParsedUri> ParseUri(const std::string& uri);

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_URI_H_
