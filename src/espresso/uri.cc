#include "espresso/uri.h"

#include <cstdlib>

namespace lidi::espresso {

namespace {

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out += ' ';
    } else if (in[i] == '%' && i + 2 < in.size()) {
      const char hex[3] = {in[i + 1], in[i + 2], 0};
      out += static_cast<char>(std::strtoul(hex, nullptr, 16));
      i += 2;
    } else {
      out += in[i];
    }
  }
  return out;
}

}  // namespace

std::string ParsedUri::DocumentKey() const {
  std::string key = resource_id;
  for (const std::string& sub : subresources) {
    key += '/';
    key += sub;
  }
  return key;
}

std::string ParsedUri::Path() const {
  return "/" + database + "/" + table + "/" + DocumentKey();
}

Result<ParsedUri> ParseUri(const std::string& uri) {
  if (uri.empty() || uri[0] != '/') {
    return Status::InvalidArgument("URI must start with '/'");
  }
  std::string path = uri;
  ParsedUri parsed;
  const size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    const std::string query_string = path.substr(qmark + 1);
    path = path.substr(0, qmark);
    // Extract the query= parameter.
    size_t pos = 0;
    while (pos < query_string.size()) {
      size_t amp = query_string.find('&', pos);
      if (amp == std::string::npos) amp = query_string.size();
      const std::string param = query_string.substr(pos, amp - pos);
      if (param.rfind("query=", 0) == 0) {
        parsed.query = UrlDecode(param.substr(6));
      }
      pos = amp + 1;
    }
  }

  std::vector<std::string> segments;
  size_t start = 1;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) segments.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  if (segments.size() < 2) {
    return Status::InvalidArgument("URI needs at least /database/table");
  }
  parsed.database = segments[0];
  parsed.table = segments[1];
  if (segments.size() >= 3) {
    parsed.resource_id = segments[2];
    parsed.subresources.assign(segments.begin() + 3, segments.end());
  }
  return parsed;
}

}  // namespace lidi::espresso
