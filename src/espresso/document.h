#ifndef LIDI_ESPRESSO_DOCUMENT_H_
#define LIDI_ESPRESSO_DOCUMENT_H_

#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "sqlstore/database.h"

namespace lidi::espresso {

/// A stored document: the binary serialized document plus the metadata
/// columns of the underlying MySQL row (paper Table IV.1: timestamp, etag,
/// val, schema_version — the key columns are the document key).
struct DocumentRecord {
  std::string payload;    // Avro-binary document (the `val` column)
  int schema_version = 0;
  std::string etag;
  int64_t timestamp_millis = 0;

  /// Row codec: documents are stored as sqlstore rows with these columns.
  sqlstore::Row ToRow() const;
  static Result<DocumentRecord> FromRow(const sqlstore::Row& row);
};

/// Computes the conditional-request etag for a payload.
std::string ComputeEtag(Slice payload);

/// One document write inside a transactional POST (paper IV.A: "One could
/// post a new album ... and each of the album's songs ... in a single
/// transaction" — all tables sharing the resource_id partition).
struct DocumentUpdate {
  std::string table;
  std::string key;  // full document key (resource_id[/sub...])
  bool is_delete = false;
  std::string payload;
  int schema_version = 0;
};

// --- wire encodings for the storage-node RPC surface ---

void EncodeGetRequest(Slice database, Slice table, Slice key,
                      std::string* out);
Status DecodeGetRequest(Slice input, std::string* database, std::string* table,
                        std::string* key);

void EncodePutRequest(Slice database, Slice table, Slice key,
                      const DocumentRecord& record, Slice expected_etag,
                      std::string* out);
Status DecodePutRequest(Slice input, std::string* database, std::string* table,
                        std::string* key, DocumentRecord* record,
                        std::string* expected_etag);

void EncodeQueryRequest(Slice database, Slice table, Slice resource_id,
                        Slice query, std::string* out);
Status DecodeQueryRequest(Slice input, std::string* database,
                          std::string* table, std::string* resource_id,
                          std::string* query);

void EncodeTxnRequest(Slice database, Slice resource_id,
                      const std::vector<DocumentUpdate>& updates,
                      std::string* out);
Status DecodeTxnRequest(Slice input, std::string* database,
                        std::string* resource_id,
                        std::vector<DocumentUpdate>* updates);

void EncodeDocumentRecord(const DocumentRecord& record, std::string* out);
Status DecodeDocumentRecord(Slice* input, DocumentRecord* record);

/// Query response: list of (document key, record).
void EncodeQueryResponse(
    const std::vector<std::pair<std::string, DocumentRecord>>& results,
    std::string* out);
Status DecodeQueryResponse(
    Slice input,
    std::vector<std::pair<std::string, DocumentRecord>>* results);

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_DOCUMENT_H_
