#include "espresso/router.h"

#include "common/coding.h"

namespace lidi::espresso {

obs::ScopedSpan Router::StartOp(const char* op) {
  metrics_->GetCounter("espresso.router.requests", {{"op", op}})->Increment();
  return obs::ScopedSpan(metrics_, std::string("espresso.router.") + op);
}

Status Router::RejectOverloaded(const char* op) {
  admission_rejects_->Increment();
  return Status::Overloaded(std::string(op) + " rejected: router " + name_ +
                            " at in-flight limit");
}

Result<std::string> Router::RouteTo(const std::string& database,
                                    const std::string& resource_id) {
  auto db_schema = registry_->GetDatabase(database);
  if (!db_schema.ok()) return db_schema.status();
  const int partition = PartitionOf(db_schema.value(), resource_id);
  const std::string master = helix_->MasterOf(database, partition);
  if (master.empty()) {
    return Status::Unavailable("no master for " + database + "/p" +
                               std::to_string(partition));
  }
  return master;
}

Result<DocumentRecord> Router::GetRecord(const std::string& uri) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("get");
  obs::ScopedSpan span = StartOp("get");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  auto master = RouteTo(parsed.value().database, parsed.value().resource_id);
  if (!master.ok()) return span.set_outcome(master.status()), master.status();
  span.set_peer(master.value());
  std::string request;
  EncodeGetRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), &request);
  auto response = network_->Call(name_, master.value(), "espresso.get", request,
                                 net::CallOptions{&span.context()});
  if (!response.ok()) {
    span.set_outcome(response.status());
    return response.status();
  }
  Slice input(response.value());
  DocumentRecord record;
  Status s = DecodeDocumentRecord(&input, &record);
  if (!s.ok()) return span.set_outcome(s), s;
  return record;
}

Result<std::optional<DocumentRecord>> Router::GetRecordIfModified(
    const std::string& uri, const std::string& etag) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("get-cond");
  obs::ScopedSpan span = StartOp("get-cond");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  auto master = RouteTo(parsed.value().database, parsed.value().resource_id);
  if (!master.ok()) return span.set_outcome(master.status()), master.status();
  span.set_peer(master.value());
  std::string request;
  EncodeGetRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), &request);
  PutLengthPrefixed(&request, etag);
  auto response = network_->Call(name_, master.value(), "espresso.get-cond",
                                 request, net::CallOptions{&span.context()});
  if (!response.ok()) {
    span.set_outcome(response.status());
    return response.status();
  }
  Slice input(response.value());
  if (input.empty()) return Status::Corruption("empty conditional response");
  const bool modified = input[0] != 0;
  input.RemovePrefix(1);
  if (!modified) return std::optional<DocumentRecord>(std::nullopt);
  DocumentRecord record;
  Status s = DecodeDocumentRecord(&input, &record);
  if (!s.ok()) return s;
  return std::optional<DocumentRecord>(std::move(record));
}

Result<avro::DatumPtr> Router::GetDocument(const std::string& uri) {
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return parsed.status();
  auto record = GetRecord(uri);
  if (!record.ok()) return record.status();
  auto writer = registry_->GetDocumentSchema(parsed.value().database,
                                             parsed.value().table,
                                             record.value().schema_version);
  if (!writer.ok()) return writer.status();
  auto latest = registry_->LatestDocumentSchema(parsed.value().database,
                                                parsed.value().table);
  if (!latest.ok()) return latest.status();
  Slice payload(record.value().payload);
  return avro::DecodeResolved(*writer.value(), *latest.value().second,
                              &payload);
}

Result<std::string> Router::EncodeDatum(const std::string& database,
                                        const std::string& table,
                                        const avro::Datum& document,
                                        int* schema_version) {
  auto latest = registry_->LatestDocumentSchema(database, table);
  if (!latest.ok()) return latest.status();
  std::string payload;
  Status s = avro::Encode(*latest.value().second, document, &payload);
  if (!s.ok()) return s;
  *schema_version = latest.value().first;
  return payload;
}

Result<std::string> Router::PutDocument(const std::string& uri,
                                        const avro::Datum& document,
                                        const std::string& expected_etag) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("put");
  obs::ScopedSpan span = StartOp("put");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  auto master = RouteTo(parsed.value().database, parsed.value().resource_id);
  if (!master.ok()) return span.set_outcome(master.status()), master.status();
  span.set_peer(master.value());

  DocumentRecord record;
  auto payload = EncodeDatum(parsed.value().database, parsed.value().table,
                             document, &record.schema_version);
  if (!payload.ok()) return span.set_outcome(payload.status()), payload.status();
  record.payload = std::move(payload.value());

  std::string request;
  EncodePutRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), record, expected_etag,
                   &request);
  auto response = network_->Call(name_, master.value(), "espresso.put", request,
                                 net::CallOptions{&span.context()});
  span.set_outcome(response.status());
  return response;
}

Status Router::DeleteDocument(const std::string& uri) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("delete");
  obs::ScopedSpan span = StartOp("delete");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  auto master = RouteTo(parsed.value().database, parsed.value().resource_id);
  if (!master.ok()) return span.set_outcome(master.status()), master.status();
  span.set_peer(master.value());
  std::string request;
  EncodeGetRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), &request);
  Status s = network_
                 ->Call(name_, master.value(), "espresso.delete", request,
                        net::CallOptions{&span.context()})
                 .status();
  span.set_outcome(s);
  return s;
}

Result<std::vector<std::pair<std::string, avro::DatumPtr>>> Router::Query(
    const std::string& uri) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("query");
  obs::ScopedSpan span = StartOp("query");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  if (parsed.value().query.empty()) {
    span.set_outcome(Code::kInvalidArgument);
    return Status::InvalidArgument("missing ?query= parameter");
  }
  auto master = RouteTo(parsed.value().database, parsed.value().resource_id);
  if (!master.ok()) return span.set_outcome(master.status()), master.status();
  span.set_peer(master.value());
  std::string request;
  EncodeQueryRequest(parsed.value().database, parsed.value().table,
                     parsed.value().resource_id, parsed.value().query,
                     &request);
  auto response = network_->Call(name_, master.value(), "espresso.query",
                                 request, net::CallOptions{&span.context()});
  if (!response.ok()) {
    span.set_outcome(response.status());
    return response.status();
  }
  std::vector<std::pair<std::string, DocumentRecord>> records;
  Status s = DecodeQueryResponse(response.value(), &records);
  if (!s.ok()) return span.set_outcome(s), s;

  auto latest = registry_->LatestDocumentSchema(parsed.value().database,
                                                parsed.value().table);
  if (!latest.ok()) return latest.status();
  std::vector<std::pair<std::string, avro::DatumPtr>> out;
  for (const auto& [key, record] : records) {
    auto writer = registry_->GetDocumentSchema(
        parsed.value().database, parsed.value().table, record.schema_version);
    if (!writer.ok()) continue;
    Slice payload(record.payload);
    auto datum = avro::DecodeResolved(*writer.value(), *latest.value().second,
                                      &payload);
    if (datum.ok()) out.emplace_back(key, std::move(datum.value()));
  }
  return out;
}

Status Router::PostTransaction(const std::string& database,
                               const std::string& resource_id,
                               const std::vector<TxnUpdate>& updates) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("txn");
  obs::ScopedSpan span = StartOp("txn");
  auto master = RouteTo(database, resource_id);
  if (!master.ok()) return span.set_outcome(master.status()), master.status();
  span.set_peer(master.value());
  std::vector<DocumentUpdate> encoded;
  for (const TxnUpdate& update : updates) {
    DocumentUpdate u;
    u.table = update.table;
    u.key = update.key;
    if (update.document == nullptr) {
      u.is_delete = true;
    } else {
      auto payload =
          EncodeDatum(database, update.table, *update.document,
                      &u.schema_version);
      if (!payload.ok()) {
        span.set_outcome(payload.status());
        return payload.status();
      }
      u.payload = std::move(payload.value());
    }
    encoded.push_back(std::move(u));
  }
  std::string request;
  EncodeTxnRequest(database, resource_id, encoded, &request);
  Status s = network_
                 ->Call(name_, master.value(), "espresso.txn", request,
                        net::CallOptions{&span.context()})
                 .status();
  span.set_outcome(s);
  return s;
}

}  // namespace lidi::espresso
