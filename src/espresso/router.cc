#include "espresso/router.h"

#include "common/coding.h"

namespace lidi::espresso {

obs::ScopedSpan Router::StartOp(const char* op) {
  metrics_->GetCounter("espresso.router.requests", {{"op", op}})->Increment();
  return obs::ScopedSpan(metrics_, std::string("espresso.router.") + op);
}

Status Router::RejectOverloaded(const char* op) {
  admission_rejects_->Increment();
  return Status::Overloaded(std::string(op) + " rejected: router " + name_ +
                            " at in-flight limit");
}

Result<std::string> Router::RouteTo(const std::string& database,
                                    const std::string& resource_id) {
  auto db_schema = registry_->GetDatabase(database);
  if (!db_schema.ok()) return db_schema.status();
  const int partition = PartitionOf(db_schema.value(), resource_id);
  const std::string master = helix_->MasterOf(database, partition);
  if (master.empty()) {
    return Status::Unavailable("no master for " + database + "/p" +
                               std::to_string(partition));
  }
  return master;
}

Result<std::string> Router::CallMaster(const std::string& database,
                                       const std::string& resource_id,
                                       const char* method,
                                       const std::string& request,
                                       obs::ScopedSpan* span) {
  const int64_t epoch = helix_->RoutingEpoch();
  Result<std::string> outcome = Status::OK();
  auto master = RouteTo(database, resource_id);
  if (master.ok()) {
    span->set_peer(master.value());
    outcome = network_->Call(name_, master.value(), method, request,
                             net::CallOptions{&span->context()});
    if (outcome.ok() || !outcome.status().IsUnavailable()) return outcome;
  } else {
    if (!master.status().IsUnavailable()) return master.status();
    outcome = master.status();
  }
  // Unavailable can mean two very different things: the tier is down, or a
  // partition migration cut over underneath this request (a routing hole
  // mid-transition, or the old master's fencing reject). The routing epoch
  // disambiguates — retry once only if mastership actually moved.
  if (helix_->RoutingEpoch() == epoch) return outcome;
  auto retried = RouteTo(database, resource_id);
  if (!retried.ok()) return retried.status();
  span->set_peer(retried.value());
  return network_->Call(name_, retried.value(), method, request,
                        net::CallOptions{&span->context()});
}

Result<DocumentRecord> Router::GetRecord(const std::string& uri) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("get");
  obs::ScopedSpan span = StartOp("get");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  std::string request;
  EncodeGetRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), &request);
  auto response = CallMaster(parsed.value().database,
                             parsed.value().resource_id, "espresso.get",
                             request, &span);
  if (!response.ok()) {
    span.set_outcome(response.status());
    return response.status();
  }
  Slice input(response.value());
  DocumentRecord record;
  Status s = DecodeDocumentRecord(&input, &record);
  if (!s.ok()) return span.set_outcome(s), s;
  return record;
}

Result<std::optional<DocumentRecord>> Router::GetRecordIfModified(
    const std::string& uri, const std::string& etag) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("get-cond");
  obs::ScopedSpan span = StartOp("get-cond");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  std::string request;
  EncodeGetRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), &request);
  PutLengthPrefixed(&request, etag);
  auto response = CallMaster(parsed.value().database,
                             parsed.value().resource_id, "espresso.get-cond",
                             request, &span);
  if (!response.ok()) {
    span.set_outcome(response.status());
    return response.status();
  }
  Slice input(response.value());
  if (input.empty()) return Status::Corruption("empty conditional response");
  const bool modified = input[0] != 0;
  input.RemovePrefix(1);
  if (!modified) return std::optional<DocumentRecord>(std::nullopt);
  DocumentRecord record;
  Status s = DecodeDocumentRecord(&input, &record);
  if (!s.ok()) return s;
  return std::optional<DocumentRecord>(std::move(record));
}

Result<avro::DatumPtr> Router::GetDocument(const std::string& uri) {
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return parsed.status();
  auto record = GetRecord(uri);
  if (!record.ok()) return record.status();
  auto writer = registry_->GetDocumentSchema(parsed.value().database,
                                             parsed.value().table,
                                             record.value().schema_version);
  if (!writer.ok()) return writer.status();
  auto latest = registry_->LatestDocumentSchema(parsed.value().database,
                                                parsed.value().table);
  if (!latest.ok()) return latest.status();
  Slice payload(record.value().payload);
  return avro::DecodeResolved(*writer.value(), *latest.value().second,
                              &payload);
}

Result<std::string> Router::EncodeDatum(const std::string& database,
                                        const std::string& table,
                                        const avro::Datum& document,
                                        int* schema_version) {
  auto latest = registry_->LatestDocumentSchema(database, table);
  if (!latest.ok()) return latest.status();
  std::string payload;
  Status s = avro::Encode(*latest.value().second, document, &payload);
  if (!s.ok()) return s;
  *schema_version = latest.value().first;
  return payload;
}

Result<std::string> Router::PutDocument(const std::string& uri,
                                        const avro::Datum& document,
                                        const std::string& expected_etag) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("put");
  obs::ScopedSpan span = StartOp("put");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();

  DocumentRecord record;
  auto payload = EncodeDatum(parsed.value().database, parsed.value().table,
                             document, &record.schema_version);
  if (!payload.ok()) return span.set_outcome(payload.status()), payload.status();
  record.payload = std::move(payload.value());

  std::string request;
  EncodePutRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), record, expected_etag,
                   &request);
  auto response = CallMaster(parsed.value().database,
                             parsed.value().resource_id, "espresso.put",
                             request, &span);
  span.set_outcome(response.status());
  return response;
}

Status Router::DeleteDocument(const std::string& uri) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("delete");
  obs::ScopedSpan span = StartOp("delete");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  std::string request;
  EncodeGetRequest(parsed.value().database, parsed.value().table,
                   parsed.value().DocumentKey(), &request);
  Status s = CallMaster(parsed.value().database, parsed.value().resource_id,
                        "espresso.delete", request, &span)
                 .status();
  span.set_outcome(s);
  return s;
}

Result<std::vector<std::pair<std::string, avro::DatumPtr>>> Router::Query(
    const std::string& uri) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("query");
  obs::ScopedSpan span = StartOp("query");
  auto parsed = ParseUri(uri);
  if (!parsed.ok()) return span.set_outcome(parsed.status()), parsed.status();
  if (parsed.value().query.empty()) {
    span.set_outcome(Code::kInvalidArgument);
    return Status::InvalidArgument("missing ?query= parameter");
  }
  std::string request;
  EncodeQueryRequest(parsed.value().database, parsed.value().table,
                     parsed.value().resource_id, parsed.value().query,
                     &request);
  auto response = CallMaster(parsed.value().database,
                             parsed.value().resource_id, "espresso.query",
                             request, &span);
  if (!response.ok()) {
    span.set_outcome(response.status());
    return response.status();
  }
  std::vector<std::pair<std::string, DocumentRecord>> records;
  Status s = DecodeQueryResponse(response.value(), &records);
  if (!s.ok()) return span.set_outcome(s), s;

  auto latest = registry_->LatestDocumentSchema(parsed.value().database,
                                                parsed.value().table);
  if (!latest.ok()) return latest.status();
  std::vector<std::pair<std::string, avro::DatumPtr>> out;
  for (const auto& [key, record] : records) {
    auto writer = registry_->GetDocumentSchema(
        parsed.value().database, parsed.value().table, record.schema_version);
    if (!writer.ok()) continue;
    Slice payload(record.payload);
    auto datum = avro::DecodeResolved(*writer.value(), *latest.value().second,
                                      &payload);
    if (datum.ok()) out.emplace_back(key, std::move(datum.value()));
  }
  return out;
}

Status Router::PostTransaction(const std::string& database,
                               const std::string& resource_id,
                               const std::vector<TxnUpdate>& updates) {
  InflightGuard guard(&inflight_);
  if (!guard.admitted()) return RejectOverloaded("txn");
  obs::ScopedSpan span = StartOp("txn");
  std::vector<DocumentUpdate> encoded;
  for (const TxnUpdate& update : updates) {
    DocumentUpdate u;
    u.table = update.table;
    u.key = update.key;
    if (update.document == nullptr) {
      u.is_delete = true;
    } else {
      auto payload =
          EncodeDatum(database, update.table, *update.document,
                      &u.schema_version);
      if (!payload.ok()) {
        span.set_outcome(payload.status());
        return payload.status();
      }
      u.payload = std::move(payload.value());
    }
    encoded.push_back(std::move(u));
  }
  std::string request;
  EncodeTxnRequest(database, resource_id, encoded, &request);
  Status s =
      CallMaster(database, resource_id, "espresso.txn", request, &span)
          .status();
  span.set_outcome(s);
  return s;
}

}  // namespace lidi::espresso
