#include "espresso/document.h"

#include <cstdio>

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::espresso {

sqlstore::Row DocumentRecord::ToRow() const {
  sqlstore::Row row;
  row["val"] = payload;
  row["schema_version"] = std::to_string(schema_version);
  row["etag"] = etag;
  row["timestamp"] = std::to_string(timestamp_millis);
  return row;
}

Result<DocumentRecord> DocumentRecord::FromRow(const sqlstore::Row& row) {
  DocumentRecord record;
  auto val = row.find("val");
  auto version = row.find("schema_version");
  auto etag = row.find("etag");
  auto ts = row.find("timestamp");
  if (val == row.end() || version == row.end() || etag == row.end() ||
      ts == row.end()) {
    return Status::Corruption("document row missing columns");
  }
  record.payload = val->second;
  record.schema_version = std::atoi(version->second.c_str());
  record.etag = etag->second;
  record.timestamp_millis = std::atoll(ts->second.c_str());
  return record;
}

std::string ComputeEtag(Slice payload) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "e%08x", Crc32(payload));
  return buf;
}

void EncodeDocumentRecord(const DocumentRecord& record, std::string* out) {
  PutLengthPrefixed(out, record.payload);
  PutVarint64(out, static_cast<uint64_t>(record.schema_version));
  PutLengthPrefixed(out, record.etag);
  PutVarint64(out, static_cast<uint64_t>(record.timestamp_millis));
}

Status DecodeDocumentRecord(Slice* input, DocumentRecord* record) {
  Slice payload, etag;
  uint64_t version, timestamp;
  if (!GetLengthPrefixed(input, &payload) || !GetVarint64(input, &version) ||
      !GetLengthPrefixed(input, &etag) || !GetVarint64(input, &timestamp)) {
    return Status::Corruption("truncated document record");
  }
  record->payload = payload.ToString();
  record->schema_version = static_cast<int>(version);
  record->etag = etag.ToString();
  record->timestamp_millis = static_cast<int64_t>(timestamp);
  return Status::OK();
}

void EncodeGetRequest(Slice database, Slice table, Slice key,
                      std::string* out) {
  PutLengthPrefixed(out, database);
  PutLengthPrefixed(out, table);
  PutLengthPrefixed(out, key);
}

Status DecodeGetRequest(Slice input, std::string* database, std::string* table,
                        std::string* key) {
  Slice d, t, k;
  if (!GetLengthPrefixed(&input, &d) || !GetLengthPrefixed(&input, &t) ||
      !GetLengthPrefixed(&input, &k)) {
    return Status::Corruption("truncated get request");
  }
  *database = d.ToString();
  *table = t.ToString();
  *key = k.ToString();
  return Status::OK();
}

void EncodePutRequest(Slice database, Slice table, Slice key,
                      const DocumentRecord& record, Slice expected_etag,
                      std::string* out) {
  PutLengthPrefixed(out, database);
  PutLengthPrefixed(out, table);
  PutLengthPrefixed(out, key);
  EncodeDocumentRecord(record, out);
  PutLengthPrefixed(out, expected_etag);
}

Status DecodePutRequest(Slice input, std::string* database, std::string* table,
                        std::string* key, DocumentRecord* record,
                        std::string* expected_etag) {
  Slice d, t, k, e;
  if (!GetLengthPrefixed(&input, &d) || !GetLengthPrefixed(&input, &t) ||
      !GetLengthPrefixed(&input, &k)) {
    return Status::Corruption("truncated put request");
  }
  Status s = DecodeDocumentRecord(&input, record);
  if (!s.ok()) return s;
  if (!GetLengthPrefixed(&input, &e)) {
    return Status::Corruption("truncated expected etag");
  }
  *database = d.ToString();
  *table = t.ToString();
  *key = k.ToString();
  *expected_etag = e.ToString();
  return Status::OK();
}

void EncodeQueryRequest(Slice database, Slice table, Slice resource_id,
                        Slice query, std::string* out) {
  PutLengthPrefixed(out, database);
  PutLengthPrefixed(out, table);
  PutLengthPrefixed(out, resource_id);
  PutLengthPrefixed(out, query);
}

Status DecodeQueryRequest(Slice input, std::string* database,
                          std::string* table, std::string* resource_id,
                          std::string* query) {
  Slice d, t, r, q;
  if (!GetLengthPrefixed(&input, &d) || !GetLengthPrefixed(&input, &t) ||
      !GetLengthPrefixed(&input, &r) || !GetLengthPrefixed(&input, &q)) {
    return Status::Corruption("truncated query request");
  }
  *database = d.ToString();
  *table = t.ToString();
  *resource_id = r.ToString();
  *query = q.ToString();
  return Status::OK();
}

void EncodeTxnRequest(Slice database, Slice resource_id,
                      const std::vector<DocumentUpdate>& updates,
                      std::string* out) {
  PutLengthPrefixed(out, database);
  PutLengthPrefixed(out, resource_id);
  PutVarint64(out, updates.size());
  for (const DocumentUpdate& u : updates) {
    PutLengthPrefixed(out, u.table);
    PutLengthPrefixed(out, u.key);
    out->push_back(u.is_delete ? 1 : 0);
    PutLengthPrefixed(out, u.payload);
    PutVarint64(out, static_cast<uint64_t>(u.schema_version));
  }
}

Status DecodeTxnRequest(Slice input, std::string* database,
                        std::string* resource_id,
                        std::vector<DocumentUpdate>* updates) {
  Slice d, r;
  uint64_t count;
  if (!GetLengthPrefixed(&input, &d) || !GetLengthPrefixed(&input, &r) ||
      !GetVarint64(&input, &count)) {
    return Status::Corruption("truncated txn request");
  }
  *database = d.ToString();
  *resource_id = r.ToString();
  for (uint64_t i = 0; i < count; ++i) {
    DocumentUpdate u;
    Slice table, key, payload;
    uint64_t version;
    if (!GetLengthPrefixed(&input, &table) ||
        !GetLengthPrefixed(&input, &key)) {
      return Status::Corruption("truncated txn update");
    }
    if (input.empty()) return Status::Corruption("truncated txn op");
    u.is_delete = input[0] != 0;
    input.RemovePrefix(1);
    if (!GetLengthPrefixed(&input, &payload) ||
        !GetVarint64(&input, &version)) {
      return Status::Corruption("truncated txn payload");
    }
    u.table = table.ToString();
    u.key = key.ToString();
    u.payload = payload.ToString();
    u.schema_version = static_cast<int>(version);
    updates->push_back(std::move(u));
  }
  return Status::OK();
}

void EncodeQueryResponse(
    const std::vector<std::pair<std::string, DocumentRecord>>& results,
    std::string* out) {
  PutVarint64(out, results.size());
  for (const auto& [key, record] : results) {
    PutLengthPrefixed(out, key);
    EncodeDocumentRecord(record, out);
  }
}

Status DecodeQueryResponse(
    Slice input,
    std::vector<std::pair<std::string, DocumentRecord>>* results) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("truncated query response");
  }
  for (uint64_t i = 0; i < count; ++i) {
    Slice key;
    DocumentRecord record;
    if (!GetLengthPrefixed(&input, &key)) {
      return Status::Corruption("truncated query result key");
    }
    Status s = DecodeDocumentRecord(&input, &record);
    if (!s.ok()) return s;
    results->emplace_back(key.ToString(), std::move(record));
  }
  return Status::OK();
}

}  // namespace lidi::espresso
