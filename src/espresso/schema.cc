#include "espresso/schema.h"

#include <algorithm>

#include "common/hash.h"

namespace lidi::espresso {

int PartitionOf(const DatabaseSchema& schema, const std::string& resource_id) {
  switch (schema.partitioning) {
    case DatabaseSchema::Partitioning::kUnpartitioned:
      return 0;
    case DatabaseSchema::Partitioning::kRange: {
      const auto it = std::upper_bound(schema.range_boundaries.begin(),
                                       schema.range_boundaries.end(),
                                       resource_id);
      return static_cast<int>(it - schema.range_boundaries.begin());
    }
    case DatabaseSchema::Partitioning::kHash:
      break;
  }
  return static_cast<int>(Fnv1a64(resource_id) %
                          static_cast<uint64_t>(schema.num_partitions));
}

namespace {

bool NumericPromotable(avro::Type from, avro::Type to) {
  auto rank = [](avro::Type t) {
    switch (t) {
      case avro::Type::kInt: return 0;
      case avro::Type::kLong: return 1;
      case avro::Type::kFloat: return 2;
      case avro::Type::kDouble: return 3;
      default: return -1;
    }
  };
  const int rf = rank(from), rt = rank(to);
  return rf >= 0 && rt >= 0 && rf <= rt;
}

}  // namespace

Status CheckCompatible(const avro::Schema& writer, const avro::Schema& reader) {
  using avro::Type;
  if (writer.type() == Type::kUnion || reader.type() == Type::kUnion) {
    // Every writer branch must be readable by some reader branch (or by the
    // scalar reader).
    const std::vector<avro::SchemaPtr> writer_branches =
        writer.type() == Type::kUnion
            ? writer.branches()
            : std::vector<avro::SchemaPtr>{};
    if (writer.type() == Type::kUnion) {
      for (const auto& wb : writer_branches) {
        bool matched = false;
        if (reader.type() == Type::kUnion) {
          for (const auto& rb : reader.branches()) {
            if (CheckCompatible(*wb, *rb).ok()) {
              matched = true;
              break;
            }
          }
        } else {
          matched = CheckCompatible(*wb, reader).ok();
        }
        if (!matched) {
          return Status::InvalidArgument("union branch incompatible");
        }
      }
      return Status::OK();
    }
    // Scalar writer, union reader.
    for (const auto& rb : reader.branches()) {
      if (CheckCompatible(writer, *rb).ok()) return Status::OK();
    }
    return Status::InvalidArgument("no reader union branch fits writer");
  }

  if (writer.type() != reader.type()) {
    if (NumericPromotable(writer.type(), reader.type())) return Status::OK();
    return Status::InvalidArgument("type mismatch");
  }
  switch (writer.type()) {
    case Type::kArray:
      return CheckCompatible(*writer.item_schema(), *reader.item_schema());
    case Type::kMap:
      return CheckCompatible(*writer.value_schema(), *reader.value_schema());
    case Type::kEnum:
      for (const std::string& sym : writer.symbols()) {
        if (reader.SymbolIndex(sym) < 0) {
          return Status::InvalidArgument("enum symbol " + sym +
                                         " missing in reader");
        }
      }
      return Status::OK();
    case Type::kRecord: {
      for (const avro::Field& rf : reader.fields()) {
        const avro::Field* wf = writer.FindField(rf.name);
        if (wf == nullptr) {
          if (rf.default_json.empty()) {
            return Status::InvalidArgument(
                "new field " + rf.name +
                " lacks a default; old documents would be unreadable");
          }
          continue;
        }
        Status s = CheckCompatible(*wf->schema, *rf.schema);
        if (!s.ok()) {
          return Status::InvalidArgument("field " + rf.name + ": " +
                                         s.message());
        }
      }
      return Status::OK();
    }
    default:
      return Status::OK();  // same primitive type
  }
}

Status SchemaRegistry::CreateDatabase(DatabaseSchema schema) {
  if (schema.partitioning == DatabaseSchema::Partitioning::kRange) {
    if (static_cast<int>(schema.range_boundaries.size()) !=
        schema.num_partitions - 1) {
      return Status::InvalidArgument(
          "range partitioning needs num_partitions - 1 boundaries");
    }
    if (!std::is_sorted(schema.range_boundaries.begin(),
                        schema.range_boundaries.end())) {
      return Status::InvalidArgument("range boundaries must be sorted");
    }
  }
  MutexLock lock(&mu_);
  if (databases_.count(schema.name) > 0) {
    return Status::AlreadyExists(schema.name);
  }
  databases_[schema.name] = std::move(schema);
  return Status::OK();
}

Result<DatabaseSchema> SchemaRegistry::GetDatabase(
    const std::string& database) const {
  MutexLock lock(&mu_);
  auto it = databases_.find(database);
  if (it == databases_.end()) return Status::NotFound(database);
  return it->second;
}

Status SchemaRegistry::CreateTable(const std::string& database,
                                   TableSchema table) {
  MutexLock lock(&mu_);
  if (databases_.count(database) == 0) return Status::NotFound(database);
  const auto key = std::make_pair(database, table.name);
  if (tables_.count(key) > 0) return Status::AlreadyExists(table.name);
  tables_[key] = std::move(table);
  return Status::OK();
}

Result<TableSchema> SchemaRegistry::GetTable(const std::string& database,
                                             const std::string& table) const {
  MutexLock lock(&mu_);
  auto it = tables_.find({database, table});
  if (it == tables_.end()) return Status::NotFound(database + "/" + table);
  return it->second;
}

std::vector<std::string> SchemaRegistry::Tables(
    const std::string& database) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [key, schema] : tables_) {
    if (key.first == database) out.push_back(key.second);
  }
  return out;
}

Result<int> SchemaRegistry::PostDocumentSchema(const std::string& database,
                                               const std::string& table,
                                               const std::string& schema_json) {
  auto parsed = avro::ParseSchema(schema_json);
  if (!parsed.ok()) return parsed.status();
  MutexLock lock(&mu_);
  if (tables_.count({database, table}) == 0) {
    return Status::NotFound(database + "/" + table);
  }
  auto& versions = document_schemas_[{database, table}];
  // Every older version's documents must be readable under the new schema.
  for (const avro::SchemaPtr& old : versions) {
    Status s = CheckCompatible(*old, *parsed.value());
    if (!s.ok()) {
      return Status::InvalidArgument("incompatible schema evolution: " +
                                     s.message());
    }
  }
  versions.push_back(std::move(parsed.value()));
  return static_cast<int>(versions.size());
}

Result<avro::SchemaPtr> SchemaRegistry::GetDocumentSchema(
    const std::string& database, const std::string& table, int version) const {
  MutexLock lock(&mu_);
  auto it = document_schemas_.find({database, table});
  if (it == document_schemas_.end() || version < 1 ||
      version > static_cast<int>(it->second.size())) {
    return Status::NotFound("schema version " + std::to_string(version));
  }
  return it->second[version - 1];
}

Result<std::pair<int, avro::SchemaPtr>> SchemaRegistry::LatestDocumentSchema(
    const std::string& database, const std::string& table) const {
  MutexLock lock(&mu_);
  auto it = document_schemas_.find({database, table});
  if (it == document_schemas_.end() || it->second.empty()) {
    return Status::NotFound("no document schema for " + database + "/" + table);
  }
  return std::make_pair(static_cast<int>(it->second.size()),
                        it->second.back());
}

}  // namespace lidi::espresso
