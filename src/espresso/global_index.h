#ifndef LIDI_ESPRESSO_GLOBAL_INDEX_H_
#define LIDI_ESPRESSO_GLOBAL_INDEX_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"
#include "espresso/replication.h"
#include "espresso/schema.h"
#include "invidx/inverted_index.h"

namespace lidi::espresso {

/// A global secondary index over an Espresso database — the future
/// enhancement the paper names in Section IV.A: "Future enhancements will
/// implement global secondary indexes maintained via a listener to the
/// update stream."
///
/// The indexer is exactly such a listener: it tails every partition's
/// update stream from the Espresso relay (the same stream slave replicas
/// consume) and maintains one cluster-wide inverted index per table. Unlike
/// the local per-partition index, queries here are *not* limited to a single
/// collection resource — they span the whole database, at the cost of index
/// freshness being bounded by the listener's lag.
class GlobalIndexer {
 public:
  GlobalIndexer(std::string database, SchemaRegistry* registry,
                const EspressoRelay* relay)
      : database_(std::move(database)), registry_(registry), relay_(relay) {}

  /// Consumes outstanding update-stream events from every partition.
  /// Returns the number of events applied.
  int64_t CatchUp();

  /// Cluster-wide query over a table's indexed fields. Results are
  /// "<table>" -> matching document keys across all partitions.
  Result<std::vector<std::string>> Query(const std::string& table,
                                         const std::string& query_text) const;

  /// Lag diagnostics: applied SCN per partition.
  int64_t AppliedScn(int partition) const;
  int64_t documents_indexed() const { return documents_indexed_.load(); }

 private:
  void ApplyEvent(const databus::Event& event);

  const std::string database_;
  SchemaRegistry* const registry_;
  const EspressoRelay* const relay_;

  /// Never held across the relay read (CatchUp snapshots the cursor,
  /// fetches unlocked, applies, then advances it).
  mutable Mutex mu_{"espresso.global_index"};
  std::map<int, int64_t> applied_scn_ LIDI_GUARDED_BY(mu_);
  std::map<std::string, invidx::InvertedIndex> indexes_
      LIDI_GUARDED_BY(mu_);  // per table
  /// Atomic, not guarded: the accessor is a stats read on paths that do not
  /// hold mu_.
  std::atomic<int64_t> documents_indexed_{0};
};

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_GLOBAL_INDEX_H_
