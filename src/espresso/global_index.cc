#include "espresso/global_index.h"

#include "avro/codec.h"
#include "espresso/document.h"

namespace lidi::espresso {

int64_t GlobalIndexer::CatchUp() {
  auto db_schema = registry_->GetDatabase(database_);
  if (!db_schema.ok()) return 0;
  int64_t applied = 0;
  for (int p = 0; p < db_schema.value().num_partitions; ++p) {
    for (;;) {
      int64_t since;
      {
        MutexLock lock(&mu_);
        since = applied_scn_[p];
      }
      auto events = relay_->Read(database_, p, since, 4096);
      if (!events.ok() || events.value().empty()) break;
      for (const databus::Event& event : events.value()) {
        ApplyEvent(event);
        MutexLock lock(&mu_);
        applied_scn_[p] = std::max(applied_scn_[p], event.scn);
        ++applied;
      }
    }
  }
  return applied;
}

void GlobalIndexer::ApplyEvent(const databus::Event& event) {
  const std::string& table = event.source;
  if (event.op == databus::Event::Op::kDelete) {
    MutexLock lock(&mu_);
    indexes_[table].RemoveDocument(event.key);
    return;
  }
  auto row = sqlstore::DecodeRow(event.payload);
  if (!row.ok()) return;
  auto record = DocumentRecord::FromRow(row.value());
  if (!record.ok()) return;
  auto schema =
      registry_->GetDocumentSchema(database_, table, record.value().schema_version);
  if (!schema.ok()) return;

  std::map<std::string, std::string> fields;
  std::set<std::string> text_fields;
  bool any_indexed = false;
  for (const avro::Field& field : schema.value()->fields()) {
    if (field.indexed) {
      any_indexed = true;
      if (field.text_indexed) text_fields.insert(field.name);
    }
  }
  if (!any_indexed) return;

  Slice payload(record.value().payload);
  auto datum = avro::Decode(*schema.value(), &payload);
  if (!datum.ok()) return;
  for (const avro::Field& field : schema.value()->fields()) {
    if (!field.indexed) continue;
    avro::DatumPtr value = datum.value()->GetField(field.name);
    if (value == nullptr) continue;
    switch (value->type()) {
      case avro::Type::kString:
        fields[field.name] = value->string_value();
        break;
      case avro::Type::kInt:
      case avro::Type::kLong:
        fields[field.name] = std::to_string(value->long_value());
        break;
      default:
        fields[field.name] = value->ToString();
    }
  }
  MutexLock lock(&mu_);
  indexes_[table].IndexDocument(event.key, fields, text_fields);
  documents_indexed_.fetch_add(1);
}

Result<std::vector<std::string>> GlobalIndexer::Query(
    const std::string& table, const std::string& query_text) const {
  auto query = invidx::Query::Parse(query_text);
  if (!query.ok()) return query.status();
  MutexLock lock(&mu_);
  auto it = indexes_.find(table);
  if (it == indexes_.end()) return std::vector<std::string>{};
  return it->second.Search(query.value());
}

int64_t GlobalIndexer::AppliedScn(int partition) const {
  MutexLock lock(&mu_);
  auto it = applied_scn_.find(partition);
  return it == applied_scn_.end() ? 0 : it->second;
}

}  // namespace lidi::espresso
