#ifndef LIDI_ESPRESSO_ROUTER_H_
#define LIDI_ESPRESSO_ROUTER_H_

#include <optional>
#include <string>
#include <vector>

#include "avro/codec.h"
#include "common/overload.h"
#include "espresso/document.h"
#include "espresso/schema.h"
#include "espresso/uri.h"
#include "helix/helix.h"
#include "net/transport.h"

namespace lidi::espresso {

struct RouterOptions {
  /// Admission control: maximum requests concurrently inside the router
  /// (paper IV.B's router tier fronts every storage node — if it melts, the
  /// whole site is down). When the budget is exhausted a new request is
  /// rejected with Status::Overloaded before the URI is even parsed
  /// (reject-before-work, DESIGN.md §11) and counted in
  /// "espresso.router.admission_rejects". <= 0 disables.
  int64_t max_inflight = 0;
};

/// The Espresso router (paper Section IV.B): accepts requests addressed by
/// URI, retrieves the routing function from the database schema, applies it
/// to the resource_id to compute the partition, consults the routing table
/// maintained by the cluster manager (Helix) for the partition master, and
/// forwards the request there.
///
/// This class is both the router tier and the client library: applications
/// call it with URIs and Datums.
///
/// Observability: every request runs under a root span
/// ("espresso.router.<op>") in the network's registry, so the router→storage
/// hop shows up as a child span on the same trace; request volume is counted
/// in "espresso.router.requests{op=...}".
class Router {
 public:
  Router(std::string name, SchemaRegistry* registry,
         helix::HelixController* helix, net::Transport* network,
         RouterOptions options = {})
      : name_(std::move(name)),
        registry_(registry),
        helix_(helix),
        network_(network),
        metrics_(network->metrics()),
        inflight_(options.max_inflight),
        admission_rejects_(
            metrics_->GetCounter("espresso.router.admission_rejects",
                                 {{"router", name_}})) {}

  /// GET /db/table/resource_id[/sub...]: the raw stored record.
  Result<DocumentRecord> GetRecord(const std::string& uri);

  /// Conditional GET (If-None-Match): when `etag` still matches the stored
  /// document, returns std::nullopt without shipping the payload; otherwise
  /// the fresh record. Paper Table IV.1: etag/timestamp exist exactly for
  /// conditional HTTP requests.
  Result<std::optional<DocumentRecord>> GetRecordIfModified(
      const std::string& uri, const std::string& etag);

  /// GET returning the document decoded against the latest schema version
  /// (schema resolution promotes old documents transparently).
  Result<avro::DatumPtr> GetDocument(const std::string& uri);

  /// PUT a document (encoded against the latest schema). `expected_etag`
  /// non-empty makes the request conditional. Returns the new etag.
  Result<std::string> PutDocument(const std::string& uri,
                                  const avro::Datum& document,
                                  const std::string& expected_etag = "");

  Status DeleteDocument(const std::string& uri);

  /// GET /db/table/resource_id?query=field:"..." — secondary-index query
  /// over a collection resource. Returns (document key, decoded document).
  Result<std::vector<std::pair<std::string, avro::DatumPtr>>> Query(
      const std::string& uri);

  /// POST a transaction: all updates share `resource_id` (possibly across
  /// tables in the database) and commit atomically. Documents are encoded
  /// against each table's latest schema.
  struct TxnUpdate {
    std::string table;
    std::string key;  // full document key under the shared resource_id
    const avro::Datum* document = nullptr;  // null = delete
  };
  Status PostTransaction(const std::string& database,
                         const std::string& resource_id,
                         const std::vector<TxnUpdate>& updates);

  /// The storage node currently mastering a document's partition.
  Result<std::string> RouteTo(const std::string& database,
                              const std::string& resource_id);

  int64_t admission_rejects() const { return admission_rejects_->Value(); }

  /// The admission budget (observability/tests: occupying a slot from the
  /// outside is how single-threaded tests exercise the reject path).
  InflightLimiter* inflight_limiter() { return &inflight_; }

 private:
  /// The Overloaded rejection every public op returns when its InflightGuard
  /// was refused (also counts the reject).
  Status RejectOverloaded(const char* op);
  Result<std::string> EncodeDatum(const std::string& database,
                                  const std::string& table,
                                  const avro::Datum& document,
                                  int* schema_version);

  /// Counts the request and opens the root span for operation `op`.
  obs::ScopedSpan StartOp(const char* op);

  /// Resolves the partition master and issues the storage call, applying
  /// the cutover-epoch retry rule (DESIGN.md §13): the Helix routing epoch
  /// is snapshotted before resolution, and an Unavailable outcome — a
  /// routing hole mid-transition, or an old master's fencing reject — is
  /// retried ONCE against a fresh resolution iff the epoch advanced in the
  /// meantime. A request that raced a partition migration thus lands on the
  /// new master instead of surfacing a transient error; a genuinely down
  /// tier (epoch unchanged) still fails fast.
  Result<std::string> CallMaster(const std::string& database,
                                 const std::string& resource_id,
                                 const char* method,
                                 const std::string& request,
                                 obs::ScopedSpan* span);

  const std::string name_;
  SchemaRegistry* const registry_;
  helix::HelixController* const helix_;
  net::Transport* const network_;
  obs::MetricsRegistry* const metrics_;
  InflightLimiter inflight_;
  obs::Counter* const admission_rejects_;
};

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_ROUTER_H_
