#ifndef LIDI_ESPRESSO_STORAGE_NODE_H_
#define LIDI_ESPRESSO_STORAGE_NODE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/clock.h"
#include "espresso/document.h"
#include "espresso/replication.h"
#include "espresso/schema.h"
#include "helix/helix.h"
#include "invidx/inverted_index.h"
#include "net/transport.h"
#include "sqlstore/database.h"

namespace lidi::espresso {

/// An Espresso storage node (paper Section IV.B): masters some partitions
/// and slaves others; maintains a consistent view of each document in a
/// local data store (sqlstore, the MySQL stand-in) and a local secondary
/// index (invidx, the Lucene stand-in) built from the index constraints in
/// the document schema.
///
/// Writes to master partitions are committed semi-synchronously: the change
/// is appended to the Espresso relay (one event buffer per partition) before
/// the commit is acknowledged, then applied to the local store and index.
/// Slave partitions consume their relay buffer in SCN order (timeline
/// consistency) via CatchUp.
///
/// RPC surface: espresso.get, espresso.put, espresso.delete, espresso.query,
/// espresso.txn, espresso.fetch-partition.
class StorageNode {
 public:
  StorageNode(std::string name, SchemaRegistry* registry, EspressoRelay* relay,
              net::Transport* network, const Clock* clock);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  const std::string& name() const { return name_; }

  /// Helix transition handler; wire into ConnectParticipant. SLAVE->MASTER
  /// first drains the partition's relay backlog ("consumes all outstanding
  /// changes ... then becomes master"); OFFLINE->SLAVE bootstraps a brand-new
  /// replica from the current master's snapshot plus relay catch-up.
  Status HandleTransition(const helix::Transition& transition);

  /// Lets the node look up partition masters for bootstrap (set after the
  /// Helix controller exists; breaking the construction cycle).
  void SetMasterLookup(
      std::function<std::string(const std::string& database, int partition)>
          lookup);

  bool IsMasterOf(const std::string& database, int partition) const;
  bool IsSlaveOf(const std::string& database, int partition) const;
  int64_t AppliedScn(const std::string& database, int partition) const;

  /// Slave applier: pulls and applies outstanding relay events for one
  /// partition / all slave partitions. Returns events applied.
  int64_t CatchUp(const std::string& database, int partition);
  int64_t CatchUpAll();

  /// Local read used by tests to inspect replicas directly.
  Result<DocumentRecord> LocalGet(const std::string& database,
                                  const std::string& table,
                                  const std::string& key) const;

  int64_t DocumentCount(const std::string& database,
                        const std::string& table) const;

 private:
  Result<std::string> HandleGet(Slice request) const;
  Result<std::string> HandleConditionalGet(Slice request) const;
  Result<std::string> HandlePut(Slice request);
  Result<std::string> HandleDelete(Slice request);
  Result<std::string> HandleQuery(Slice request) const;
  Result<std::string> HandleTxn(Slice request);
  Result<std::string> HandleFetchPartition(Slice request) const;

  /// Commits updates to a master partition: assigns the next SCN, appends
  /// to the relay (semi-sync), then applies locally.
  Status MasterCommit(const std::string& database, int partition,
                      const std::vector<DocumentUpdate>& updates);

  /// Applies one transaction's events to the local store + index.
  Status ApplyEvents(const std::string& database, int partition,
                     const std::vector<databus::Event>& events);

  void IndexDocument(const std::string& database, const std::string& table,
                     const std::string& key, const DocumentRecord& record);
  void UnindexDocument(const std::string& database, const std::string& table,
                       const std::string& key);

  std::string StoreTable(const std::string& database,
                         const std::string& table) const {
    return database + "/" + table;
  }
  void EnsureTable(const std::string& database, const std::string& table);

  static std::string ResourceIdOf(const std::string& key);

  const std::string name_;
  SchemaRegistry* const registry_;
  EspressoRelay* const relay_;
  net::Transport* const network_;
  const Clock* const clock_;

  // tsa-ok: sqlstore::Database is internally synchronized (its own
  // commit/table lock hierarchy); mu_ guards the replica-role state only.
  sqlstore::Database store_;

  /// Guards replica-role state and the index map. Never held across the
  /// relay, the network, or the local store (commits run on the sqlstore
  /// locks); index entries are created under it but searched via a stable
  /// pointer after release (entries are never erased).
  mutable Mutex mu_{"espresso.storage_node"};
  std::set<std::pair<std::string, int>> master_of_ LIDI_GUARDED_BY(mu_);
  std::set<std::pair<std::string, int>> slave_of_ LIDI_GUARDED_BY(mu_);
  std::map<std::pair<std::string, int>, int64_t> applied_scn_
      LIDI_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<invidx::InvertedIndex>>
      indexes_ LIDI_GUARDED_BY(mu_);
  std::function<std::string(const std::string&, int)> master_lookup_
      LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_STORAGE_NODE_H_
