#include "espresso/replication.h"

#include <algorithm>

namespace lidi::espresso {

Status EspressoRelay::Append(const std::string& database, int partition,
                             std::vector<databus::Event> events) {
  if (events.empty()) return Status::OK();
  MutexLock lock(&mu_);
  const BufferKey key{database, partition};
  int64_t& max_scn = max_scn_[key];
  const int64_t scn = events.front().scn;
  if (scn != max_scn + 1) {
    return Status::ObsoleteVersion(
        "partition " + std::to_string(partition) + " timeline at scn " +
        std::to_string(max_scn) + ", rejecting txn scn " +
        std::to_string(scn));
  }
  auto& buffer = buffers_[key];
  for (databus::Event& event : events) {
    buffer.push_back(std::move(event));
  }
  max_scn = scn;
  return Status::OK();
}

Result<std::vector<databus::Event>> EspressoRelay::Read(
    const std::string& database, int partition, int64_t since_scn,
    int64_t max_events) const {
  MutexLock lock(&mu_);
  auto it = buffers_.find({database, partition});
  std::vector<databus::Event> out;
  if (it == buffers_.end()) return out;
  auto begin = std::lower_bound(
      it->second.begin(), it->second.end(), since_scn + 1,
      [](const databus::Event& e, int64_t scn) { return e.scn < scn; });
  for (; begin != it->second.end() &&
         static_cast<int64_t>(out.size()) < max_events;
       ++begin) {
    out.push_back(*begin);
  }
  return out;
}

int64_t EspressoRelay::MaxScn(const std::string& database,
                              int partition) const {
  MutexLock lock(&mu_);
  auto it = max_scn_.find({database, partition});
  return it == max_scn_.end() ? 0 : it->second;
}

int64_t EspressoRelay::TotalEvents() const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [key, buffer] : buffers_) {
    total += static_cast<int64_t>(buffer.size());
  }
  return total;
}

}  // namespace lidi::espresso
