#include "espresso/storage_node.h"

#include <algorithm>

#include "avro/codec.h"
#include "common/coding.h"

namespace lidi::espresso {

StorageNode::StorageNode(std::string name, SchemaRegistry* registry,
                         EspressoRelay* relay, net::Transport* network,
                         const Clock* clock)
    : name_(std::move(name)),
      registry_(registry),
      relay_(relay),
      network_(network),
      clock_(clock),
      store_(name_ + "-mysql") {
  network_->Register(name_, "espresso.get",
                     [this](Slice req) { return HandleGet(req); });
  network_->Register(name_, "espresso.get-cond", [this](Slice req) {
    return HandleConditionalGet(req);
  });
  network_->Register(name_, "espresso.put",
                     [this](Slice req) { return HandlePut(req); });
  network_->Register(name_, "espresso.delete",
                     [this](Slice req) { return HandleDelete(req); });
  network_->Register(name_, "espresso.query",
                     [this](Slice req) { return HandleQuery(req); });
  network_->Register(name_, "espresso.txn",
                     [this](Slice req) { return HandleTxn(req); });
  network_->Register(name_, "espresso.fetch-partition", [this](Slice req) {
    return HandleFetchPartition(req);
  });
}

StorageNode::~StorageNode() { network_->Unregister(name_); }

void StorageNode::SetMasterLookup(
    std::function<std::string(const std::string&, int)> lookup) {
  MutexLock lock(&mu_);
  master_lookup_ = std::move(lookup);
}

std::string StorageNode::ResourceIdOf(const std::string& key) {
  const size_t slash = key.find('/');
  return slash == std::string::npos ? key : key.substr(0, slash);
}

void StorageNode::EnsureTable(const std::string& database,
                              const std::string& table) {
  // discard-ok: AlreadyExists is the steady state here, and CreateTable on
  // the in-process store has no other failure mode.
  (void)store_.CreateTable(StoreTable(database, table));
}

bool StorageNode::IsMasterOf(const std::string& database,
                             int partition) const {
  MutexLock lock(&mu_);
  return master_of_.count({database, partition}) > 0;
}

bool StorageNode::IsSlaveOf(const std::string& database, int partition) const {
  MutexLock lock(&mu_);
  return slave_of_.count({database, partition}) > 0;
}

int64_t StorageNode::AppliedScn(const std::string& database,
                                int partition) const {
  MutexLock lock(&mu_);
  auto it = applied_scn_.find({database, partition});
  return it == applied_scn_.end() ? 0 : it->second;
}

Status StorageNode::HandleTransition(const helix::Transition& transition) {
  const std::string& database = transition.resource;
  const int partition = transition.partition;
  using helix::ReplicaState;

  if (transition.from == ReplicaState::kOffline &&
      transition.to == ReplicaState::kSlave) {
    // A brand-new replica bootstraps from a snapshot of the current master,
    // then catches up from the relay (paper IV.B, cluster expansion).
    std::function<std::string(const std::string&, int)> lookup;
    {
      MutexLock lock(&mu_);
      lookup = master_lookup_;
    }
    if (lookup && AppliedScn(database, partition) == 0) {
      const std::string master = lookup(database, partition);
      if (!master.empty() && master != name_) {
        std::string request;
        PutLengthPrefixed(&request, database);
        PutVarint64(&request, static_cast<uint64_t>(partition));
        auto snapshot =
            network_->Call(name_, master, "espresso.fetch-partition", request);
        if (!snapshot.ok()) return snapshot.status();
        // Response: snapshot scn, count, then (table, key, record) triples.
        Slice input(snapshot.value());
        uint64_t snapshot_scn, count;
        if (!GetVarint64(&input, &snapshot_scn) ||
            !GetVarint64(&input, &count)) {
          return Status::Corruption("bad fetch-partition response");
        }
        for (uint64_t i = 0; i < count; ++i) {
          Slice table, key;
          DocumentRecord record;
          if (!GetLengthPrefixed(&input, &table) ||
              !GetLengthPrefixed(&input, &key)) {
            return Status::Corruption("truncated snapshot row");
          }
          Status s = DecodeDocumentRecord(&input, &record);
          if (!s.ok()) return s;
          EnsureTable(database, table.ToString());
          auto put = store_.Put(StoreTable(database, table.ToString()),
                                key.ToString(), record.ToRow());
          if (!put.ok()) {
            // applied_scn_ advances after this loop; a dropped row with an
            // advanced SCN is a permanently invisible document (catch-up
            // starts past it).
            return put.status();
          }
          IndexDocument(database, table.ToString(), key.ToString(), record);
        }
        MutexLock lock(&mu_);
        applied_scn_[{database, partition}] =
            static_cast<int64_t>(snapshot_scn);
      }
    }
    {
      MutexLock lock(&mu_);
      slave_of_.insert({database, partition});
    }
    CatchUp(database, partition);
    return Status::OK();
  }
  if (transition.from == ReplicaState::kSlave &&
      transition.to == ReplicaState::kMaster) {
    // Drain all outstanding changes before accepting writes.
    CatchUp(database, partition);
    MutexLock lock(&mu_);
    slave_of_.erase({database, partition});
    master_of_.insert({database, partition});
    return Status::OK();
  }
  if (transition.from == ReplicaState::kMaster &&
      transition.to == ReplicaState::kSlave) {
    MutexLock lock(&mu_);
    master_of_.erase({database, partition});
    slave_of_.insert({database, partition});
    return Status::OK();
  }
  if (transition.to == ReplicaState::kOffline) {
    MutexLock lock(&mu_);
    master_of_.erase({database, partition});
    slave_of_.erase({database, partition});
    return Status::OK();
  }
  return Status::OK();
}

int64_t StorageNode::CatchUp(const std::string& database, int partition) {
  int64_t total = 0;
  for (;;) {
    const int64_t since = AppliedScn(database, partition);
    auto events = relay_->Read(database, partition, since, 4096);
    if (!events.ok() || events.value().empty()) break;
    // Group by scn (transaction) and apply atomically.
    std::vector<databus::Event> txn;
    for (databus::Event& event : events.value()) {
      txn.push_back(std::move(event));
      if (txn.back().end_of_txn) {
        if (!ApplyEvents(database, partition, txn).ok()) return total;
        total += static_cast<int64_t>(txn.size());
        txn.clear();
      }
    }
    if (!txn.empty()) {
      // Partial transaction at the buffer head; wait for the rest.
      break;
    }
  }
  return total;
}

int64_t StorageNode::CatchUpAll() {
  std::vector<std::pair<std::string, int>> slaves;
  {
    MutexLock lock(&mu_);
    slaves.assign(slave_of_.begin(), slave_of_.end());
  }
  int64_t total = 0;
  for (const auto& [database, partition] : slaves) {
    total += CatchUp(database, partition);
  }
  return total;
}

Status StorageNode::ApplyEvents(const std::string& database, int partition,
                                const std::vector<databus::Event>& events) {
  if (events.empty()) return Status::OK();
  auto txn = store_.Begin();
  for (const databus::Event& event : events) {
    EnsureTable(database, event.source);
    const std::string table = StoreTable(database, event.source);
    if (event.op == databus::Event::Op::kDelete) {
      txn.Delete(table, event.key);
    } else {
      auto row = sqlstore::DecodeRow(event.payload);
      if (!row.ok()) return row.status();
      txn.Put(table, event.key, std::move(row.value()));
    }
  }
  auto committed = txn.Commit();
  if (!committed.ok()) return committed.status();

  // Maintain the local secondary index and the partition timeline mark.
  for (const databus::Event& event : events) {
    if (event.op == databus::Event::Op::kDelete) {
      UnindexDocument(database, event.source, event.key);
    } else {
      auto row = sqlstore::DecodeRow(event.payload);
      auto record = DocumentRecord::FromRow(row.value());
      if (record.ok()) {
        IndexDocument(database, event.source, event.key, record.value());
      }
    }
  }
  MutexLock lock(&mu_);
  applied_scn_[{database, partition}] =
      std::max(applied_scn_[{database, partition}], events.back().scn);
  return Status::OK();
}

Status StorageNode::MasterCommit(const std::string& database, int partition,
                                 const std::vector<DocumentUpdate>& updates) {
  if (!IsMasterOf(database, partition)) {
    return Status::Unavailable(name_ + " is not master of " + database + "/p" +
                               std::to_string(partition));
  }
  const int64_t scn = AppliedScn(database, partition) + 1;
  std::vector<databus::Event> events;
  for (size_t i = 0; i < updates.size(); ++i) {
    const DocumentUpdate& update = updates[i];
    databus::Event event;
    event.scn = scn;
    event.source = update.table;
    event.key = update.key;
    event.partition = partition;
    event.end_of_txn = i + 1 == updates.size();
    if (update.is_delete) {
      event.op = databus::Event::Op::kDelete;
    } else {
      DocumentRecord record;
      record.payload = update.payload;
      record.schema_version = update.schema_version;
      record.etag = ComputeEtag(update.payload);
      record.timestamp_millis = clock_->NowMillis();
      sqlstore::EncodeRow(record.ToRow(), &event.payload);
    }
    events.push_back(std::move(event));
  }
  // Semi-synchronous commit: the change must reach the relay (the second
  // durable location) before it is applied and acknowledged.
  Status s = relay_->Append(database, partition, events);
  if (!s.ok()) {
    if (s.IsObsoleteVersion()) {
      // Another node owns this partition's timeline: we are a stale master.
      return Status::Unavailable("fenced: partition timeline advanced past us");
    }
    return s;
  }
  return ApplyEvents(database, partition, events);
}

Result<std::string> StorageNode::HandleGet(Slice request) const {
  std::string database, table, key;
  Status s = DecodeGetRequest(request, &database, &table, &key);
  if (!s.ok()) return s;
  auto record = LocalGet(database, table, key);
  if (!record.ok()) return record.status();
  std::string out;
  EncodeDocumentRecord(record.value(), &out);
  return out;
}

Result<std::string> StorageNode::HandleConditionalGet(Slice request) const {
  // Conditional HTTP request (paper Table IV.1: "The timestamp and etag
  // fields are used to implement conditional HTTP requests"): behaves like
  // If-None-Match — when the caller's etag still matches, only a 1-byte
  // not-modified marker travels back instead of the document.
  Slice input = request;
  Slice database, table, key, etag;
  if (!GetLengthPrefixed(&input, &database) ||
      !GetLengthPrefixed(&input, &table) || !GetLengthPrefixed(&input, &key) ||
      !GetLengthPrefixed(&input, &etag)) {
    return Status::Corruption("bad conditional get request");
  }
  auto record = LocalGet(database.ToString(), table.ToString(), key.ToString());
  if (!record.ok()) return record.status();
  std::string out;
  if (!etag.empty() && record.value().etag == etag.ToString()) {
    out.push_back(0);  // not modified
    return out;
  }
  out.push_back(1);
  EncodeDocumentRecord(record.value(), &out);
  return out;
}

Result<DocumentRecord> StorageNode::LocalGet(const std::string& database,
                                             const std::string& table,
                                             const std::string& key) const {
  auto row = store_.Get(StoreTable(database, table), key);
  if (!row.ok()) return row.status();
  return DocumentRecord::FromRow(row.value());
}

Result<std::string> StorageNode::HandlePut(Slice request) {
  std::string database, table, key, expected_etag;
  DocumentRecord record;
  Status s = DecodePutRequest(request, &database, &table, &key, &record,
                              &expected_etag);
  if (!s.ok()) return s;
  auto db_schema = registry_->GetDatabase(database);
  if (!db_schema.ok()) return db_schema.status();
  const int partition = PartitionOf(db_schema.value(), ResourceIdOf(key));

  if (!expected_etag.empty()) {
    auto current = LocalGet(database, table, key);
    if (!current.ok() && !current.status().IsNotFound()) {
      return current.status();
    }
    const std::string current_etag =
        current.ok() ? current.value().etag : "";
    if (current_etag != expected_etag) {
      return Status::ObsoleteVersion("etag mismatch: have " + current_etag);
    }
  }

  DocumentUpdate update;
  update.table = table;
  update.key = key;
  update.payload = record.payload;
  update.schema_version = record.schema_version;
  s = MasterCommit(database, partition, {update});
  if (!s.ok()) return s;
  return ComputeEtag(record.payload);
}

Result<std::string> StorageNode::HandleDelete(Slice request) {
  std::string database, table, key;
  Status s = DecodeGetRequest(request, &database, &table, &key);
  if (!s.ok()) return s;
  auto db_schema = registry_->GetDatabase(database);
  if (!db_schema.ok()) return db_schema.status();
  const int partition = PartitionOf(db_schema.value(), ResourceIdOf(key));
  DocumentUpdate update;
  update.table = table;
  update.key = key;
  update.is_delete = true;
  s = MasterCommit(database, partition, {update});
  if (!s.ok()) return s;
  return std::string("ok");
}

Result<std::string> StorageNode::HandleTxn(Slice request) {
  std::string database, resource_id;
  std::vector<DocumentUpdate> updates;
  Status s = DecodeTxnRequest(request, &database, &resource_id, &updates);
  if (!s.ok()) return s;
  auto db_schema = registry_->GetDatabase(database);
  if (!db_schema.ok()) return db_schema.status();
  // All tables sharing the resource_id partition identically is what makes
  // the multi-table transaction local to one master (paper IV.A).
  for (const DocumentUpdate& update : updates) {
    if (ResourceIdOf(update.key) != resource_id) {
      return Status::InvalidArgument(
          "transactional updates must share the resource_id " + resource_id);
    }
  }
  const int partition = PartitionOf(db_schema.value(), resource_id);
  s = MasterCommit(database, partition, updates);
  if (!s.ok()) return s;
  return std::string("ok");
}

Result<std::string> StorageNode::HandleQuery(Slice request) const {
  std::string database, table, resource_id, query_text;
  Status s = DecodeQueryRequest(request, &database, &table, &resource_id,
                                &query_text);
  if (!s.ok()) return s;
  auto query = invidx::Query::Parse(query_text);
  if (!query.ok()) return query.status();

  const invidx::InvertedIndex* index = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = indexes_.find({database, table});
    if (it != indexes_.end()) index = it->second.get();
  }
  std::vector<std::pair<std::string, DocumentRecord>> results;
  if (index != nullptr) {
    auto matches = index->Search(query.value());
    if (!matches.ok()) return matches.status();
    for (const std::string& key : matches.value()) {
      // Indexed access is limited to collection resources under a common
      // resource_id (paper IV.A).
      if (!resource_id.empty() && ResourceIdOf(key) != resource_id) continue;
      auto record = LocalGet(database, table, key);
      if (record.ok()) results.emplace_back(key, std::move(record.value()));
    }
  }
  std::string out;
  EncodeQueryResponse(results, &out);
  return out;
}

Result<std::string> StorageNode::HandleFetchPartition(Slice request) const {
  Slice input = request;
  Slice database_slice;
  uint64_t partition;
  if (!GetLengthPrefixed(&input, &database_slice) ||
      !GetVarint64(&input, &partition)) {
    return Status::Corruption("bad fetch-partition request");
  }
  const std::string database = database_slice.ToString();
  auto db_schema = registry_->GetDatabase(database);
  if (!db_schema.ok()) return db_schema.status();

  std::string body;
  int64_t count = 0;
  for (const std::string& table : registry_->Tables(database)) {
    Status scan =
        store_.Scan(StoreTable(database, table),
                    [&](const std::string& key, const sqlstore::Row& row) {
                      if (PartitionOf(db_schema.value(), ResourceIdOf(key)) ==
                          static_cast<int>(partition)) {
                        PutLengthPrefixed(&body, table);
                        PutLengthPrefixed(&body, key);
                        auto record = DocumentRecord::FromRow(row);
                        if (record.ok()) {
                          EncodeDocumentRecord(record.value(), &body);
                          ++count;
                        }
                      }
                      return true;
                    });
    if (!scan.ok() && !scan.IsNotFound()) {
      // A registered-but-never-written table is legitimately absent
      // (NotFound == empty); any other failure must not masquerade as an
      // empty partition — the bootstrap consumer would trust the snapshot's
      // SCN and skip catch-up for rows it never received.
      return scan;
    }
  }
  std::string out;
  PutVarint64(&out, static_cast<uint64_t>(
                        AppliedScn(database, static_cast<int>(partition))));
  PutVarint64(&out, static_cast<uint64_t>(count));
  out += body;
  return out;
}

void StorageNode::IndexDocument(const std::string& database,
                                const std::string& table,
                                const std::string& key,
                                const DocumentRecord& record) {
  auto schema =
      registry_->GetDocumentSchema(database, table, record.schema_version);
  if (!schema.ok()) return;
  // Collect indexed fields from the schema annotations.
  std::map<std::string, std::string> fields;
  std::set<std::string> text_fields;
  bool any_indexed = false;
  for (const avro::Field& field : schema.value()->fields()) {
    if (field.indexed) {
      any_indexed = true;
      if (field.text_indexed) text_fields.insert(field.name);
    }
  }
  if (!any_indexed) return;

  Slice payload(record.payload);
  auto datum = avro::Decode(*schema.value(), &payload);
  if (!datum.ok()) return;
  for (const avro::Field& field : schema.value()->fields()) {
    if (!field.indexed) continue;
    avro::DatumPtr value = datum.value()->GetField(field.name);
    if (value == nullptr) continue;
    std::string text;
    switch (value->type()) {
      case avro::Type::kString: text = value->string_value(); break;
      case avro::Type::kInt:
      case avro::Type::kLong: text = std::to_string(value->long_value()); break;
      default: text = value->ToString(); break;
    }
    fields[field.name] = std::move(text);
  }

  MutexLock lock(&mu_);
  auto& index = indexes_[{database, table}];
  if (index == nullptr) index = std::make_unique<invidx::InvertedIndex>();
  index->IndexDocument(key, fields, text_fields);
}

void StorageNode::UnindexDocument(const std::string& database,
                                  const std::string& table,
                                  const std::string& key) {
  MutexLock lock(&mu_);
  auto it = indexes_.find({database, table});
  if (it != indexes_.end()) it->second->RemoveDocument(key);
}

int64_t StorageNode::DocumentCount(const std::string& database,
                                   const std::string& table) const {
  return store_.RowCount(StoreTable(database, table));
}

}  // namespace lidi::espresso
