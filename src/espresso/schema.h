#ifndef LIDI_ESPRESSO_SCHEMA_H_
#define LIDI_ESPRESSO_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "avro/schema.h"
#include "common/status.h"

namespace lidi::espresso {

/// A database schema (paper Section IV.A): names the database, and defines
/// how it is partitioned. The paper ships hash-based partitioning and
/// un-partitioned (all documents on all nodes) and anticipates "adding range
/// based partitioning in the future" — kRange implements that future-work
/// strategy: resource ids are assigned to partitions by lexicographic range
/// boundaries, which keeps collections with adjacent ids co-located (useful
/// for time- or alphabet-ordered keys).
struct DatabaseSchema {
  std::string name;
  enum class Partitioning { kHash, kUnpartitioned, kRange } partitioning =
      Partitioning::kHash;
  int num_partitions = 8;
  int replication_factor = 2;
  /// For kRange: sorted upper-exclusive boundaries; resource_id r belongs to
  /// the first partition p with r < range_boundaries[p], and to the last
  /// partition when r >= every boundary. Must hold exactly
  /// num_partitions - 1 entries.
  std::vector<std::string> range_boundaries;
};

/// A table schema: how documents within the table are referenced. The
/// resource_id may designate a single document (singleton resource) or a
/// collection keyed by further subresource path elements, e.g. the Album
/// table's documents live at /Music/Album/<artist>/<album>.
struct TableSchema {
  std::string name;
  /// Number of subresource path elements after the resource_id. 0 =
  /// singleton resources (e.g. Artist), 1 = one level (Album), 2 = two
  /// (Song: artist/album/song).
  int subresource_levels = 0;
};

/// Computes the partition of a resource id under a database schema.
int PartitionOf(const DatabaseSchema& schema, const std::string& resource_id);

/// Checks Avro schema-resolution compatibility: data written with `writer`
/// must be readable with `reader` (new document schemas must be compatible
/// so existing documents can be promoted, Section IV.A).
Status CheckCompatible(const avro::Schema& writer, const avro::Schema& reader);

/// Versioned document-schema registry for one Espresso cluster. Document
/// schemas are freely evolvable: posting a new version succeeds only if
/// every existing version's data remains readable under it.
class SchemaRegistry {
 public:
  Status CreateDatabase(DatabaseSchema schema);
  Result<DatabaseSchema> GetDatabase(const std::string& database) const;

  Status CreateTable(const std::string& database, TableSchema table);
  Result<TableSchema> GetTable(const std::string& database,
                               const std::string& table) const;
  std::vector<std::string> Tables(const std::string& database) const;

  /// Posts a document schema version for (database, table). The first post
  /// establishes version 1; later posts must be backward compatible and get
  /// increasing versions. Returns the assigned version.
  Result<int> PostDocumentSchema(const std::string& database,
                                 const std::string& table,
                                 const std::string& schema_json);

  /// A specific schema version (writer schema of stored documents).
  Result<avro::SchemaPtr> GetDocumentSchema(const std::string& database,
                                            const std::string& table,
                                            int version) const;
  /// The latest version (reader schema for serving).
  Result<std::pair<int, avro::SchemaPtr>> LatestDocumentSchema(
      const std::string& database, const std::string& table) const;

 private:
  mutable Mutex mu_{"espresso.schema"};
  std::map<std::string, DatabaseSchema> databases_ LIDI_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, TableSchema> tables_
      LIDI_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, std::vector<avro::SchemaPtr>>
      document_schemas_ LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_SCHEMA_H_
