#ifndef LIDI_ESPRESSO_REPLICATION_H_
#define LIDI_ESPRESSO_REPLICATION_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/status.h"
#include "databus/event.h"

namespace lidi::espresso {

/// The Databus relay tier specialized for Espresso's internal replication
/// (paper Section IV.B): the master's binlog is shipped to the relay, where
/// it is "sharded into separate event buffers, one per partition"; each
/// slave partition consumes from its buffer.
///
/// SCNs here are per-partition timelines: each partition has exactly one
/// master at a time, which assigns dense increasing SCNs. The relay outlives
/// storage-node failures — that is the durability story: a change committed
/// semi-synchronously exists in the relay even if the master dies
/// immediately after.
class EspressoRelay {
 public:
  /// Appends the events of one committed transaction (all same partition,
  /// same scn). Rejects SCNs that do not directly extend the partition's
  /// timeline (guards against split-brain double-masters).
  Status Append(const std::string& database, int partition,
                std::vector<databus::Event> events);

  /// Events for a partition with scn > since_scn.
  Result<std::vector<databus::Event>> Read(const std::string& database,
                                           int partition, int64_t since_scn,
                                           int64_t max_events) const;

  /// Highest SCN buffered for a partition (0 if none).
  int64_t MaxScn(const std::string& database, int partition) const;

  int64_t TotalEvents() const;

 private:
  using BufferKey = std::pair<std::string, int>;
  mutable Mutex mu_{"espresso.relay"};
  std::map<BufferKey, std::deque<databus::Event>> buffers_
      LIDI_GUARDED_BY(mu_);
  std::map<BufferKey, int64_t> max_scn_ LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::espresso

#endif  // LIDI_ESPRESSO_REPLICATION_H_
