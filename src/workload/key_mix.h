#ifndef LIDI_WORKLOAD_KEY_MIX_H_
#define LIDI_WORKLOAD_KEY_MIX_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace lidi::workload {

/// The seeded Zipfian key chooser every bench used to hand-roll (a
/// ZipfGenerator plus a "k" + std::to_string(rank) format expression,
/// duplicated across bench_voldemort_rw, bench_company_follow, ...). One
/// KeyMix = one key population with a popularity skew; rank 0 is the hottest
/// key. O(1) memory regardless of num_keys, so billion-key populations are
/// free to model (ZipfGenerator is rejection-inversion, not a CDF table).
struct KeyMixOptions {
  uint64_t num_keys = 1000;
  /// Zipf skew: 0.9 matches the read-write store benches, 0.99 the YCSB
  /// default used for company-follow popularity.
  double theta = 0.9;
  uint64_t seed = 17;
  /// Keys are prefix + decimal rank ("k123", "company:7", ...).
  std::string prefix = "k";
};

class KeyMix {
 public:
  explicit KeyMix(const KeyMixOptions& options)
      : options_(options),
        zipf_(options.num_keys, options.theta, options.seed) {}

  /// A Zipfian rank in [0, num_keys).
  uint64_t NextRank() { return zipf_.Next(); }

  /// The formatted key for a rank.
  std::string KeyAt(uint64_t rank) const {
    return options_.prefix + std::to_string(rank);
  }

  std::string NextKey() { return KeyAt(NextRank()); }

  uint64_t num_keys() const { return options_.num_keys; }
  const KeyMixOptions& options() const { return options_; }

 private:
  const KeyMixOptions options_;
  ZipfGenerator zipf_;
};

/// Models the traffic the paper's tiers actually face: millions of distinct
/// users, each arriving through a front-end, issuing a session of a few
/// operations against their own small working set. Users are drawn Zipfian
/// (a celebrity profile is read far more than the tail); session lengths are
/// geometric; each op is a read with probability read_fraction.
///
/// The client identity (the quota key at the Kafka broker / Voldemort
/// server) is the front-end shard the user hashes to, mirroring production
/// where a per-client quota throttles a service's pool of frontends, not an
/// end user.
struct SessionMixOptions {
  uint64_t num_users = 1'000'000;
  /// Popularity skew across users.
  double theta = 0.99;
  /// Distinct keys in one user's working set ("u<user>:k<slot>").
  uint64_t keys_per_user = 4;
  /// Mean ops per session (geometric; >= 1).
  double mean_session_ops = 8;
  double read_fraction = 0.6;
  /// Front-end shards user traffic fans in through; the per-op client
  /// identity is "client-<user % shards>".
  uint64_t client_shards = 4;
  uint64_t seed = 42;
};

class SessionMix {
 public:
  struct Op {
    uint64_t user = 0;
    /// 0-based position within the user's current session.
    uint64_t session_op = 0;
    bool is_read = true;
    std::string key;     // "u<user>:k<slot>"
    std::string client;  // "client-<shard>"
  };

  explicit SessionMix(const SessionMixOptions& options);

  /// The next operation of the interleaved session stream.
  Op Next();

  const SessionMixOptions& options() const { return options_; }

 private:
  const SessionMixOptions options_;
  ZipfGenerator users_;
  Random rng_;
  uint64_t current_user_ = 0;
  uint64_t session_pos_ = 0;
  bool in_session_ = false;
};

}  // namespace lidi::workload

#endif  // LIDI_WORKLOAD_KEY_MIX_H_
