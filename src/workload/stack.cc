#include "workload/stack.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "kafka/message.h"
#include "net/address.h"

namespace lidi::workload {

namespace {
/// Harness construction is all-or-nothing: a four-tier stack with a missing
/// topic, store, or schema would silently measure garbage. Abort loudly.
void MustOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FourTierStack setup: %s: %s\n", what,
                 s.ToString().c_str());
    std::abort();
  }
}
}  // namespace

FourTierStack::FourTierStack(net::Transport* transport, const Clock* clock,
                             StackOptions options)
    : transport_(transport), clock_(clock), options_(options) {
  // --- Voldemort: N nodes, uniform partition layout, quota'd servers. ---
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < options_.voldemort_nodes; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  metadata_ = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, options_.voldemort_partitions));
  voldemort::VoldemortServerOptions vopts;
  vopts.quota_requests_per_sec = options_.voldemort_quota_per_sec;
  vopts.quota_burst = options_.quota_burst;
  vopts.replication_factor = options_.replication;
  for (int i = 0; i < options_.voldemort_nodes; ++i) {
    voldemort_.push_back(std::make_unique<voldemort::VoldemortServer>(
        i, metadata_, transport_, vopts));
    MustOk(voldemort_.back()->AddStore("wl"), "voldemort AddStore");
  }
  voldemort::StoreDefinition def{"wl", options_.replication,
                                 options_.required_reads,
                                 options_.required_writes};
  for (uint64_t s = 0; s < std::max<uint64_t>(1, options_.client_shards); ++s) {
    // One StoreClient per front-end shard: the client name is the caller
    // identity the Voldemort quota keys on.
    stores_.push_back(std::make_unique<voldemort::StoreClient>(
        "client-" + std::to_string(s), def, metadata_, transport_, clock_));
  }

  // --- Kafka: one broker, the activity topic. ---
  kafka::BrokerOptions bopts;
  bopts.quota_produce_per_sec = options_.kafka_produce_quota_per_sec;
  bopts.quota_burst = options_.quota_burst;
  broker_ = std::make_unique<kafka::Broker>(0, &zookeeper_, transport_, clock_,
                                            bopts);
  MustOk(broker_->CreateTopic("activity", options_.kafka_partitions),
         "kafka CreateTopic");

  // --- Espresso: schema, Helix-managed nodes, admission-controlled router.
  MustOk(registry_.CreateDatabase(
             {"db", espresso::DatabaseSchema::Partitioning::kHash,
              options_.espresso_partitions, options_.espresso_replicas}),
         "espresso CreateDatabase");
  MustOk(registry_.CreateTable("db", {"docs", 1}), "espresso CreateTable");
  MustOk(registry_
             .PostDocumentSchema("db", "docs", R"({
    "type":"record","name":"Doc","fields":[
      {"name":"title","type":"string","indexed":true},
      {"name":"body","type":"string"},
      {"name":"rank","type":"int","indexed":true}]})")
             .status(),
         "espresso PostDocumentSchema");
  controller_ = std::make_unique<helix::HelixController>("espresso",
                                                         &zookeeper_);
  MustOk(controller_->AddResource({"db", options_.espresso_partitions,
                                   options_.espresso_replicas}),
         "helix AddResource");
  for (int i = 0; i < options_.espresso_nodes; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry_, &espresso_relay_, transport_,
        clock_);
    auto* raw = node.get();
    raw->SetMasterLookup([this](const std::string& db, int p) {
      return controller_->MasterOf(db, p);
    });
    MustOk(controller_
               ->ConnectParticipant(raw->name(),
                                    [raw](const helix::Transition& t) {
                                      return raw->HandleTransition(t);
                                    })
               .status(),
           "helix ConnectParticipant");
    espresso_nodes_.push_back(std::move(node));
  }
  controller_->RebalanceToConvergence();
  espresso::RouterOptions ropts;
  ropts.max_inflight = options_.router_max_inflight;
  router_ = std::make_unique<espresso::Router>("wl-router", &registry_,
                                               controller_.get(), transport_,
                                               ropts);

  // --- Databus: source-of-truth database -> relay -> consumer. ---
  MustOk(source_.CreateTable("profiles"), "databus source CreateTable");
  relay_ = std::make_unique<databus::Relay>("wl-relay", &source_, transport_);
  consumer_ = std::make_unique<databus::CallbackConsumer>(
      [this](const databus::Event&) {
        ++databus_delivered_;
        return Status::OK();
      });
  databus_client_ = std::make_unique<databus::DatabusClient>(
      "wl-dbus", "wl-relay", "", transport_, consumer_.get());
}

FourTierStack::~FourTierStack() = default;

Status FourTierStack::Step(const SessionMix::Op& op) {
  ++steps_;
  switch (op.user % 4) {
    case 0: return VoldemortStep(op);
    case 1: return KafkaStep(op);
    case 2: return EspressoStep(op);
    default: return DatabusStep(op);
  }
}

Status FourTierStack::VoldemortStep(const SessionMix::Op& op) {
  voldemort::StoreClient* client = store(op.user);
  if (op.is_read) {
    auto r = client->Get(op.key);
    if (!r.ok() && r.status().IsNotFound()) return Status::OK();
    return r.status();
  }
  return client->PutValue(op.key, value_rng_.Bytes(128));
}

Status FourTierStack::KafkaStep(const SessionMix::Op& op) {
  // Produce over RPC (not the in-process path) so the broker's per-client
  // quota sees the front-end shard as the caller.
  kafka::MessageSetBuilder builder;
  builder.Add(op.key + "=" + std::to_string(steps_));
  std::string request;
  kafka::EncodeProduceRequest(
      "activity", static_cast<int>(op.user % options_.kafka_partitions),
      builder.Build(), &request);
  return transport_
      ->Call(op.client, broker_->address(), "kafka.produce", request)
      .status();
}

Status FourTierStack::EspressoStep(const SessionMix::Op& op) {
  const std::string uri = "/db/docs/u" + std::to_string(op.user);
  if (op.is_read) {
    auto r = router_->GetRecord(uri);
    if (!r.ok() && r.status().IsNotFound()) return Status::OK();
    return r.status();
  }
  auto doc = avro::Datum::Record("Doc");
  doc->SetField("title", avro::Datum::String(op.key));
  doc->SetField("body", avro::Datum::String(value_rng_.Bytes(64)));
  doc->SetField("rank", avro::Datum::Int(static_cast<int32_t>(op.session_op)));
  return router_->PutDocument(uri, *doc).status();
}

Status FourTierStack::DatabusStep(const SessionMix::Op& op) {
  if (!op.is_read) {
    auto scn = source_.Put("profiles", op.key, {{"val", op.client}});
    if (!scn.ok()) return scn.status();
  }
  // Drive the change pipeline on a cadence: relay ingests the binlog, the
  // client delivers to the consumer. (Production runs these on poller
  // threads; the workload steps them inline to stay deterministic in sim.)
  if (steps_ % std::max<int64_t>(1, options_.databus_poll_every) == 0) {
    auto ingested = relay_->PollOnce();
    if (!ingested.ok()) return ingested.status();
    auto delivered = databus_client_->PollOnce();
    if (!delivered.ok()) return delivered.status();
  }
  return Status::OK();
}

int64_t FourTierStack::TotalOverloadRejects() const {
  int64_t total = broker_->quota_rejects();
  for (const auto& server : voldemort_) total += server->quota_rejects();
  total += router_->admission_rejects();
  return total;
}

void FourTierStack::SetQuotaEnforcing(bool enforcing) {
  broker_->SetQuotaEnforcing(enforcing);
  for (auto& server : voldemort_) server->SetQuotaEnforcing(enforcing);
}

int FourTierStack::AddVoldemortNode() {
  const int id = static_cast<int>(voldemort_.size());
  // Same staging as the sim's elastic expansion: the node joins owning zero
  // partitions, so routing is unchanged until a rebalance moves ownership
  // through the copy + pair-write + cutover protocol.
  metadata_->AddNode({id, net::MakeAddress(net::Tier::kVoldemort, id), 0});
  voldemort::VoldemortServerOptions vopts;
  vopts.quota_requests_per_sec = options_.voldemort_quota_per_sec;
  vopts.quota_burst = options_.quota_burst;
  vopts.replication_factor = options_.replication;
  voldemort_.push_back(std::make_unique<voldemort::VoldemortServer>(
      id, metadata_, transport_, vopts));
  MustOk(voldemort_.back()->AddStore("wl"), "voldemort AddStore (elastic)");
  return id;
}

}  // namespace lidi::workload
