#ifndef LIDI_WORKLOAD_STACK_H_
#define LIDI_WORKLOAD_STACK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "kafka/broker.h"
#include "net/transport.h"
#include "sqlstore/database.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "workload/key_mix.h"
#include "zk/zookeeper.h"

namespace lidi::workload {

/// Knobs for the four-tier stack the open-loop driver loads. Quotas and
/// budgets default OFF so the stack behaves exactly like the pre-overload-
/// control fixtures unless a bench opts in.
struct StackOptions {
  // Voldemort: an N-node read-write cluster, one StoreClient per front-end
  // shard (the per-client quota key at the server is the shard identity).
  int voldemort_nodes = 3;
  int voldemort_partitions = 16;
  int replication = 2;
  int required_reads = 1;
  int required_writes = 1;
  double voldemort_quota_per_sec = 0;  // per client shard, 0 = off

  // Kafka: one broker, one activity topic, produced to over RPC (so the
  // broker-side per-client quota applies).
  int kafka_partitions = 4;
  double kafka_produce_quota_per_sec = 0;  // per client shard, 0 = off

  // Espresso: Helix-managed storage nodes behind a router.
  int espresso_nodes = 2;
  int espresso_partitions = 4;
  int espresso_replicas = 1;
  int64_t router_max_inflight = 0;  // 0 = off

  double quota_burst = 16;

  /// Front-end shards; must match the SessionMix client_shards for the
  /// quota identities to line up.
  uint64_t client_shards = 4;

  /// Step() polls the Databus pipeline (relay ingest + client delivery)
  /// every this many operations.
  int64_t databus_poll_every = 64;
};

/// All four paper tiers wired over ONE transport (sim Network or
/// TcpTransport — the fixture never names a backend) plus the Databus
/// source-of-truth database. Step() dispatches a SessionMix operation to a
/// tier by user hash, so a single open-loop arrival schedule loads
/// Voldemort, Kafka, Espresso, and Databus at once.
class FourTierStack {
 public:
  FourTierStack(net::Transport* transport, const Clock* clock,
                StackOptions options = {});
  ~FourTierStack();

  FourTierStack(const FourTierStack&) = delete;
  FourTierStack& operator=(const FourTierStack&) = delete;

  /// Executes one workload operation. NotFound on a cold key is success (the
  /// mix reads keys it has not written yet); Overloaded passes through so
  /// the driver counts shed load.
  Status Step(const SessionMix::Op& op);

  /// Sum of quota rejections and dispatch sheds across every tier.
  int64_t TotalOverloadRejects() const;

  /// Events the Databus consumer has seen (pipeline liveness check).
  int64_t databus_delivered() const { return databus_delivered_; }

  /// Quota kill switch across all tiers (sim Settle support).
  void SetQuotaEnforcing(bool enforcing);

  /// Elastic ring expansion (the live-rebalance bench axis): adds one
  /// Voldemort node, owning zero partitions until a RebalanceExecutor moves
  /// some. Returns the new node id.
  int AddVoldemortNode();

  /// Ring metadata handle (shared with the stack's servers and clients) so
  /// a bench can drive a RebalanceExecutor against the live stack.
  const std::shared_ptr<voldemort::ClusterMetadata>& metadata() const {
    return metadata_;
  }

  net::Transport* transport() { return transport_; }
  voldemort::StoreClient* store(uint64_t shard) {
    return stores_[shard % stores_.size()].get();
  }
  kafka::Broker* broker() { return broker_.get(); }
  espresso::Router* router() { return router_.get(); }
  databus::DatabusClient* databus() { return databus_client_.get(); }

 private:
  Status VoldemortStep(const SessionMix::Op& op);
  Status KafkaStep(const SessionMix::Op& op);
  Status EspressoStep(const SessionMix::Op& op);
  Status DatabusStep(const SessionMix::Op& op);

  net::Transport* const transport_;
  const Clock* const clock_;
  const StackOptions options_;
  Random value_rng_{991};
  int64_t steps_ = 0;

  // Voldemort.
  std::shared_ptr<voldemort::ClusterMetadata> metadata_;
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> voldemort_;
  std::vector<std::unique_ptr<voldemort::StoreClient>> stores_;

  // Kafka.
  zk::ZooKeeper zookeeper_;
  std::unique_ptr<kafka::Broker> broker_;

  // Espresso.
  espresso::SchemaRegistry registry_;
  espresso::EspressoRelay espresso_relay_;
  std::unique_ptr<helix::HelixController> controller_;
  std::vector<std::unique_ptr<espresso::StorageNode>> espresso_nodes_;
  std::unique_ptr<espresso::Router> router_;

  // Databus: the source-of-truth database the relay tails.
  sqlstore::Database source_{"source"};
  std::unique_ptr<databus::Relay> relay_;
  std::unique_ptr<databus::CallbackConsumer> consumer_;
  std::unique_ptr<databus::DatabusClient> databus_client_;
  int64_t databus_delivered_ = 0;
};

}  // namespace lidi::workload

#endif  // LIDI_WORKLOAD_STACK_H_
