#ifndef LIDI_WORKLOAD_OPEN_LOOP_H_
#define LIDI_WORKLOAD_OPEN_LOOP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace lidi::workload {

/// Open-loop load driver (DESIGN.md §11). A closed loop issues the next
/// request when the previous one returns, so a slow server conveniently slows
/// its own load source and the latency report hides queueing collapse —
/// coordinated omission. This driver instead fixes the ARRIVAL schedule:
/// request i is due at t0 + i/rate whether or not the server has kept up,
/// and its latency is measured from that intended start, so time spent
/// queued behind a backlog is charged to every request it delays.
struct OpenLoopOptions {
  /// Arrival rate (requests/second of driver-clock time). Must be > 0.
  double arrival_per_sec = 1000;
  /// Total arrivals to issue.
  int64_t operations = 1000;
  /// Instrument sink (required): percentiles are read back from the
  /// "workload.intended_latency{driver=name}" histogram in this registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Non-null = virtual time: the driver owns this clock and advances it to
  /// each intended start (deterministic; pairs with the sim transport).
  /// Null = real time: the driver sleeps until each intended start.
  ManualClock* virtual_clock = nullptr;
  /// Virtual time only: additionally advance the clock by each operation's
  /// measured wall-clock service time, so intended latency captures backlog
  /// in sim too. Costs determinism of the latency/quota numbers (they now
  /// depend on real execution speed); leave false where the sim run must
  /// replay exactly.
  bool charge_wall_time = false;
  /// Labels this driver's instruments.
  std::string name = "open_loop";
};

struct OpenLoopReport {
  int64_t issued = 0;
  int64_t ok = 0;
  int64_t overloaded = 0;  // Status::IsOverloaded: shed/quota rejections
  int64_t errors = 0;      // every other non-OK status
  double intended_per_sec = 0;  // the arrival rate the schedule aimed for
  double achieved_per_sec = 0;  // completions / elapsed driver-clock time
  double elapsed_seconds = 0;   // driver-clock time, first to last arrival
  // Intended-start latency percentiles (micros), from the obs histogram.
  double p50_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;
  double max_micros = 0;
};

class OpenLoopDriver {
 public:
  /// The operation under load: invoked once per arrival with the arrival
  /// index. Status::Overloaded counts as shed, other errors as failures;
  /// neither stops the run (graceful degradation is the thing measured).
  using Operation = std::function<Status(int64_t index)>;

  explicit OpenLoopDriver(OpenLoopOptions options);

  /// Issues the full arrival schedule synchronously and reports. Resets this
  /// driver's instruments first, so back-to-back runs (a rate sweep) don't
  /// bleed into each other.
  OpenLoopReport Run(const Operation& op);

 private:
  const OpenLoopOptions options_;
  const Clock* clock_;  // the driver clock: virtual_clock or system
  obs::LatencyHistogram* intended_latency_;
  obs::Counter* ok_;
  obs::Counter* overloaded_;
  obs::Counter* errors_;
};

}  // namespace lidi::workload

#endif  // LIDI_WORKLOAD_OPEN_LOOP_H_
