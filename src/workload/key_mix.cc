#include "workload/key_mix.h"

#include <algorithm>

namespace lidi::workload {

SessionMix::SessionMix(const SessionMixOptions& options)
    : options_(options),
      users_(std::max<uint64_t>(1, options.num_users), options.theta,
             options.seed),
      rng_(options.seed ^ 0x5e551011u) {}

SessionMix::Op SessionMix::Next() {
  if (!in_session_) {
    current_user_ = users_.Next();
    session_pos_ = 0;
    in_session_ = true;
  }
  Op op;
  op.user = current_user_;
  op.session_op = session_pos_++;
  op.is_read = rng_.NextDouble() < options_.read_fraction;
  const uint64_t slot =
      rng_.Uniform(std::max<uint64_t>(1, options_.keys_per_user));
  op.key = "u" + std::to_string(op.user) + ":k" + std::to_string(slot);
  op.client = "client-" + std::to_string(
                  op.user % std::max<uint64_t>(1, options_.client_shards));
  // Geometric session end: mean_session_ops is the expected run length.
  const double end_p = 1.0 / std::max(1.0, options_.mean_session_ops);
  if (rng_.NextDouble() < end_p) in_session_ = false;
  return op;
}

}  // namespace lidi::workload
