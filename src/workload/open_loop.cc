#include "workload/open_loop.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lidi::workload {

OpenLoopDriver::OpenLoopDriver(OpenLoopOptions options)
    : options_(std::move(options)),
      clock_(options_.virtual_clock != nullptr
                 ? static_cast<const Clock*>(options_.virtual_clock)
                 : SystemClock::Default()) {
  const obs::Labels labels{{"driver", options_.name}};
  intended_latency_ =
      options_.metrics->GetHistogram("workload.intended_latency", labels);
  ok_ = options_.metrics->GetCounter("workload.ops.ok", labels);
  overloaded_ = options_.metrics->GetCounter("workload.ops.overloaded", labels);
  errors_ = options_.metrics->GetCounter("workload.ops.error", labels);
}

OpenLoopReport OpenLoopDriver::Run(const Operation& op) {
  intended_latency_->Reset();
  ok_->Reset();
  overloaded_->Reset();
  errors_->Reset();

  OpenLoopReport report;
  report.intended_per_sec = options_.arrival_per_sec;
  const double period_micros = 1e6 / options_.arrival_per_sec;
  const int64_t t0 = clock_->NowMicros();

  for (int64_t i = 0; i < options_.operations; ++i) {
    const int64_t intended = t0 + static_cast<int64_t>(i * period_micros);
    if (options_.virtual_clock != nullptr) {
      // Virtual time: arrivals ARE the clock. Never move backward — a
      // backlog (charge_wall_time) leaves now past the next intended start,
      // which is exactly the queueing delay the latency must include.
      if (clock_->NowMicros() < intended) {
        options_.virtual_clock->SetMicros(intended);
      }
    } else {
      // Real time: sleep to the intended start; if the previous operation
      // overran it, issue immediately — the overrun is charged below.
      const int64_t now = clock_->NowMicros();
      if (now < intended) {
        std::this_thread::sleep_for(std::chrono::microseconds(intended - now));
      }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const Status status = op(i);
    ++report.issued;
    if (options_.virtual_clock != nullptr && options_.charge_wall_time) {
      const int64_t service_micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wall_start)
              .count();
      options_.virtual_clock->AdvanceMicros(std::max<int64_t>(0, service_micros));
    }
    const int64_t completed = clock_->NowMicros();
    // The coordinated-omission-correct number: completion minus the time the
    // request was DUE, not the time the driver got around to issuing it.
    intended_latency_->Record(std::max<int64_t>(0, completed - intended));

    if (status.ok()) {
      ++report.ok;
      ok_->Increment();
    } else if (status.IsOverloaded()) {
      ++report.overloaded;
      overloaded_->Increment();
    } else {
      ++report.errors;
      errors_->Increment();
    }
  }

  const int64_t elapsed = clock_->NowMicros() - t0;
  report.elapsed_seconds = static_cast<double>(elapsed) / 1e6;
  report.achieved_per_sec =
      elapsed > 0 ? static_cast<double>(report.ok) / report.elapsed_seconds : 0;

  const obs::HistogramSnapshot snapshot = intended_latency_->Snapshot();
  report.p50_micros = snapshot.Percentile(50);
  report.p99_micros = snapshot.Percentile(99);
  report.p999_micros = snapshot.Percentile(99.9);
  report.max_micros = static_cast<double>(snapshot.max);
  return report;
}

}  // namespace lidi::workload
