#include "sim/schedule.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"

namespace lidi::sim {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPartition: return "partition";
    case EventKind::kHeal: return "heal";
    case EventKind::kCrashNode: return "crash";
    case EventKind::kRestartNode: return "restart";
    case EventKind::kClockSkew: return "clock-skew";
    case EventKind::kDelayBurst: return "delay-burst";
    case EventKind::kDelayCalm: return "delay-calm";
    case EventKind::kIoFaultBurst: return "io-fault-burst";
    case EventKind::kIoFaultCalm: return "io-fault-calm";
    case EventKind::kWorkload: return "workload";
    case EventKind::kAddNode: return "add-node";
    case EventKind::kStartRebalance: return "start-rebalance";
  }
  return "?";
}

std::string FormatEvent(const SimEvent& event) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s(t=%d,m=%lld)", EventKindName(event.kind),
                event.target, static_cast<long long>(event.magnitude));
  return buf;
}

std::string FormatSchedule(const Schedule& schedule) {
  char header[64];
  std::snprintf(header, sizeof(header), "schedule seed=%llu n=%zu\n",
                static_cast<unsigned long long>(schedule.seed),
                schedule.events.size());
  std::string out = header;
  for (size_t i = 0; i < schedule.events.size(); ++i) {
    char line[112];
    std::snprintf(line, sizeof(line), "  [%zu] %s\n", i,
                  FormatEvent(schedule.events[i]).c_str());
    out += line;
  }
  return out;
}

Schedule GenerateSchedule(uint64_t seed, int num_events) {
  Schedule schedule;
  schedule.seed = seed;
  // Derived stream so schedule generation never shares state with the run
  // itself (the cluster seeds its own Random from `seed`).
  Random rng(seed ^ 0x5ced5c4ed5eedULL);
  schedule.events.reserve(static_cast<size_t>(num_events));
  for (int i = 0; i < num_events; ++i) {
    SimEvent e;
    e.target = static_cast<int>(rng.Uniform(64));
    const uint64_t roll = rng.Uniform(100);
    // ~55% workload so invariants always have traffic to check, the rest
    // spread over the fault families — including the elasticity events
    // (add-node, start-rebalance), so the seed sweep and ddmin shrinking
    // cover live rebalance schedules like any other fault.
    if (roll < 55) {
      e.kind = EventKind::kWorkload;
      e.magnitude = rng.UniformRange(1, 8);
    } else if (roll < 61) {
      e.kind = EventKind::kPartition;
      e.magnitude = rng.UniformRange(1, 3);  // nodes on the minority side
    } else if (roll < 68) {
      e.kind = EventKind::kHeal;
    } else if (roll < 75) {
      e.kind = EventKind::kCrashNode;
    } else if (roll < 82) {
      e.kind = EventKind::kRestartNode;
    } else if (roll < 86) {
      e.kind = EventKind::kClockSkew;
      e.magnitude = rng.UniformRange(1000, 20'000'000);  // 1ms .. 20s
    } else if (roll < 89) {
      e.kind = EventKind::kDelayBurst;
      e.magnitude = rng.UniformRange(100, 50'000);  // up to 50ms per hop
    } else if (roll < 91) {
      e.kind = EventKind::kDelayCalm;
    } else if (roll < 93) {
      e.kind = EventKind::kIoFaultBurst;
      e.magnitude = rng.UniformRange(10, 200);  // fault per-mille
    } else if (roll < 95) {
      e.kind = EventKind::kIoFaultCalm;
    } else if (roll < 97) {
      e.kind = EventKind::kAddNode;
    } else {
      e.kind = EventKind::kStartRebalance;
      e.magnitude = rng.UniformRange(1, 3);  // rebalance actions to step
    }
    schedule.events.push_back(e);
  }
  return schedule;
}

namespace {

Schedule WithoutRange(const Schedule& schedule, size_t begin, size_t end) {
  Schedule out;
  out.seed = schedule.seed;
  out.events.reserve(schedule.events.size() - (end - begin));
  for (size_t i = 0; i < schedule.events.size(); ++i) {
    if (i >= begin && i < end) continue;
    out.events.push_back(schedule.events[i]);
  }
  return out;
}

}  // namespace

Schedule ShrinkSchedule(const Schedule& failing, const ScheduleFails& fails,
                        int max_probes) {
  Schedule current = failing;
  int probes = 0;
  size_t chunk = current.events.size() / 2;
  while (chunk >= 1 && probes < max_probes) {
    bool removed_any = false;
    for (size_t begin = 0;
         begin < current.events.size() && probes < max_probes;) {
      const size_t end = std::min(begin + chunk, current.events.size());
      Schedule candidate = WithoutRange(current, begin, end);
      ++probes;
      if (fails(candidate)) {
        current = std::move(candidate);
        removed_any = true;
        // Do not advance `begin`: the events that slid into this window are
        // untested.
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (!removed_any || chunk > current.events.size()) chunk /= 2;
    if (chunk > current.events.size()) chunk = current.events.size();
    if (chunk == 0) chunk = current.events.empty() ? 0 : 1;
    if (current.events.empty()) break;
  }
  return current;
}

}  // namespace lidi::sim
