#ifndef LIDI_SIM_INVARIANTS_H_
#define LIDI_SIM_INVARIANTS_H_

#include <memory>
#include <string>
#include <vector>

namespace lidi::sim {

class SimCluster;

/// One invariant failure found after a schedule ran and the cluster settled.
/// `invariant` is the checker's name; `detail` says which key/partition/
/// offset broke and how.
struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

/// A pluggable whole-cluster safety/liveness property, checked after
/// Settle() (chaos over: partitions healed, crashed nodes restarted, async
/// tiers drained). Checkers may drive the cluster (reads, pings, probe
/// writes) but must be deterministic — no wall clock, no unseeded
/// randomness.
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  virtual const char* name() const = 0;
  virtual void Check(SimCluster& cluster,
                     std::vector<InvariantViolation>* out) = 0;
};

/// The standard catalogue (DESIGN.md §9):
///  - no-acked-write-lost: every acknowledged Voldemort put, primary-DB
///    commit and Espresso document write is still readable with an allowed
///    value; unacknowledged attempts may or may not have landed.
///  - timeline-consistency: Databus and Espresso relay SCN streams are dense
///    and strictly ordered per partition, and every replica has applied up
///    to its relay head.
///  - kafka-offsets: committed consumer offsets never regressed, and the
///    final drained consumption equals the acked produce set exactly once.
///  - vector-clock-convergence: after heal + read repair, replica version
///    sets hold only allowed values and repeated quorum reads are stable.
///  - liveness-resumed: every tier answers again (pings, masters elected,
///    brokers registered) and a fresh end-to-end write succeeds per tier.
std::vector<std::unique_ptr<InvariantChecker>> StandardInvariants();

}  // namespace lidi::sim

#endif  // LIDI_SIM_INVARIANTS_H_
