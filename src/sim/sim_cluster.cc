#include "net/address.h"
#include "sim/sim_cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "avro/datum.h"
#include "kafka/message.h"
#include "voldemort/cluster.h"
#include "voldemort/routing.h"
#include "voldemort/wire.h"

namespace lidi::sim {

namespace {

std::string EspressoUri(const std::string& key) {
  return std::string("/") + SimCluster::kEspressoDb + "/" +
         SimCluster::kEspressoTable + "/" + key;
}

/// Cluster construction is all-or-nothing: a sim with a missing store,
/// topic, or schema would "pass" every invariant vacuously. Abort loudly —
/// construction runs before any fault is injected, so failure here is a
/// bug, not a schedule outcome.
void MustOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "SimCluster setup: %s: %s\n", what,
                 s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

SimCluster::SimCluster(SimOptions options)
    : options_(options),
      clock_(/*start_micros=*/1'000'000),
      rng_(options.seed),
      metrics_(&clock_),
      network_(options.seed, &metrics_, &clock_) {
  // Time is a pure function of the message sequence: every dispatched call
  // advances the virtual clock a little, so retention windows, ban
  // intervals and deadlines move deterministically with traffic.
  network_.EnableVirtualTimeStepping(&clock_, /*base_step_micros=*/50);

  base_fs_ = io::NewMemFs();
  io::FaultFsOptions primary_fs_options;
  primary_fs_options.seed = options_.seed ^ 0xd15cULL;
  primary_disk_ =
      std::make_unique<io::FaultFs>(base_fs_.get(), primary_fs_options);
  for (int i = 0; i < options_.kafka_brokers; ++i) {
    io::FaultFsOptions broker_fs_options;
    broker_fs_options.seed = options_.seed ^ (0xb40cULL +
                                              static_cast<uint64_t>(i));
    broker_disks_.push_back(
        std::make_unique<io::FaultFs>(base_fs_.get(), broker_fs_options));
  }

  // Voldemort ring.
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < options_.voldemort_nodes; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  metadata_ = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 12));
  for (int i = 0; i < options_.voldemort_nodes; ++i) {
    vservers_.push_back(std::make_unique<voldemort::VoldemortServer>(
        i, metadata_, &network_, VoldemortOptionsFor()));
    MustOk(vservers_.back()->AddStore(kVoldemortStore), "voldemort AddStore");
  }
  rebalancer_ = std::make_unique<voldemort::RebalanceExecutor>(
      kVoldemortStore, metadata_, &network_);
  rebalancer_->SetCutoverHook(
      [this](const voldemort::RebalanceMove& move) {
        OnVoldemortCutover(move);
      });
  voldemort::StoreDefinition def;
  def.name = kVoldemortStore;
  def.replication_factor = std::min(3, options_.voldemort_nodes);
  def.required_reads = def.replication_factor >= 2 ? 2 : 1;
  def.required_writes = def.replication_factor >= 2 ? 2 : 1;
  vclient_ = std::make_unique<voldemort::StoreClient>(
      "sim-client", def, metadata_, &network_, &clock_);
  // The probe-on-heal path: a heal immediately re-probes banned replicas
  // instead of letting them sit out the rest of the ban interval.
  network_.AddHealListener(
      [this] { vclient_->failure_detector()->ProbeBannedNow(); });

  // Kafka brokers + producer + consumer group.
  for (int i = 0; i < options_.kafka_brokers; ++i) {
    brokers_.push_back(std::make_unique<kafka::Broker>(
        i, &zookeeper_, &network_, &clock_, BrokerOptionsFor(i)));
    MustOk(brokers_.back()->CreateTopic(kTopic, /*partitions=*/1),
           "kafka CreateTopic");
  }
  replicated_ = std::make_unique<kafka::ReplicatedTopicManager>(&zookeeper_,
                                                                &network_);
  replicated_->set_allow_unsafe_transfer(options_.disable_handoff_safety);
  std::vector<kafka::Broker*> replica_brokers;
  for (auto& broker : brokers_) replica_brokers.push_back(broker.get());
  MustOk(replicated_->CreateReplicatedTopic(kReplicatedTopic, /*partitions=*/1,
                                            replica_brokers),
         "kafka CreateReplicatedTopic");
  kafka::ProducerOptions producer_options;
  producer_options.seed = options_.seed ^ 0x9a0dULL;
  producer_ = std::make_unique<kafka::Producer>("producer", &zookeeper_,
                                                &network_, producer_options);
  consumer_ = std::make_unique<kafka::Consumer>("consumer-0", "sim-group",
                                                &zookeeper_, &network_);
  MustOk(consumer_->Subscribe(kTopic), "kafka consumer Subscribe");

  // Primary DB -> Databus pipeline.
  primary_ =
      std::make_unique<sqlstore::Database>("primary", PrimaryBinlogOptions());
  MustOk(primary_->CreateTable(kPrimaryTable), "primary CreateTable");
  RecreateRelay();
  bootstrap_ = std::make_unique<databus::BootstrapServer>("bootstrap", "relay",
                                                          &network_);
  follower_consumer_ = std::make_unique<databus::CallbackConsumer>(
      [this](const databus::Event& event) {
        if (event.op == databus::Event::Op::kDelete) {
          follower_rows_.erase(event.key);
        } else {
          follower_rows_[event.key] = event.payload;
        }
        return Status::OK();
      });
  databus::ClientOptions client_options;
  client_options.max_event_retries = 10;
  dbclient_ = std::make_unique<databus::DatabusClient>(
      "follower", "relay", "bootstrap", &network_, follower_consumer_.get(),
      client_options);

  // Espresso cluster.
  MustOk(registry_.CreateDatabase(
             {kEspressoDb, espresso::DatabaseSchema::Partitioning::kHash,
              options_.espresso_partitions, 2}),
         "espresso CreateDatabase");
  MustOk(registry_.CreateTable(kEspressoDb, {kEspressoTable, 1}),
         "espresso CreateTable");
  MustOk(registry_
             .PostDocumentSchema(kEspressoDb, kEspressoTable, R"({
    "type":"record","name":"Doc","fields":[{"name":"title","type":"string"}]})")
             .status(),
         "espresso PostDocumentSchema");
  helix_ = std::make_unique<helix::HelixController>("espresso", &zookeeper_);
  MustOk(helix_->AddResource({kEspressoDb, options_.espresso_partitions, 2}),
         "helix AddResource");
  esp_nodes_.resize(static_cast<size_t>(options_.espresso_nodes));
  esp_sessions_.resize(static_cast<size_t>(options_.espresso_nodes), 0);
  for (int i = 0; i < options_.espresso_nodes; ++i) StartEspressoNode(i);
  helix_->RebalanceToConvergence();
  router_ = std::make_unique<espresso::Router>("router", &registry_,
                                               helix_.get(), &network_);
}

SimCluster::~SimCluster() {
  // The heal listener captures `this`; make sure nothing can fire it while
  // members are being torn down.
  network_.ClearHealListeners();
}

voldemort::VoldemortServerOptions SimCluster::VoldemortOptionsFor() const {
  voldemort::VoldemortServerOptions options;
  options.quota_requests_per_sec = options_.overload_quota_per_sec;
  options.quota_burst = options_.overload_quota_burst;
  options.disable_handoff_pairing = options_.disable_handoff_safety;
  // Must match the client StoreDefinition built in the constructor: the
  // server walks the N-wide preference list for partition fetches, handoff
  // pairing, and slop re-resolution.
  options.replication_factor = std::min(3, options_.voldemort_nodes);
  return options;
}

kafka::BrokerOptions SimCluster::BrokerOptionsFor(int i) const {
  kafka::BrokerOptions options;
  options.log.data_dir = "/broker" + std::to_string(i);
  options.log.fs = broker_disks_[static_cast<size_t>(i)].get();
  // Durable acks: every produce is flushed and fdatasync'd before the
  // response, so an acknowledged message survives a broker power loss —
  // the contract the no-acked-message-lost invariant checks.
  options.log.sync = io::SyncPolicy::kAlways;
  options.log.flush_interval_messages = 1;
  // Group commit on the produce path: single-threaded under the simulated
  // clock every producer leads its own batch, so the semantics match the
  // inline sync — but the schedules drive the same staged-write/covering-
  // sync/crash interleavings production multi-producer brokers hit.
  options.log.group_commit = true;
  options.quota_produce_per_sec = options_.overload_quota_per_sec;
  options.quota_burst = options_.overload_quota_burst;
  return options;
}

sqlstore::BinlogOptions SimCluster::PrimaryBinlogOptions() const {
  sqlstore::BinlogOptions options;
  options.data_dir = "/primary";
  options.fs = primary_disk_.get();
  options.sync = io::SyncPolicy::kAlways;
  options.legacy_advance_on_failed_write = options_.legacy_binlog_bug;
  // Group-commit the binlog too (a no-op when the legacy-bug knob re-enables
  // the historical inline path — legacy wins; see BinlogOptions).
  options.group_commit = true;
  return options;
}

void SimCluster::StartEspressoNode(int i) {
  const std::string name = "esn-" + std::to_string(i);
  auto node = std::make_unique<espresso::StorageNode>(
      name, &registry_, &esp_relay_, &network_, &clock_);
  espresso::StorageNode* raw = node.get();
  raw->SetMasterLookup([this](const std::string& database, int partition) {
    return helix_->MasterOf(database, partition);
  });
  auto session = helix_->ConnectParticipant(
      name,
      [raw](const helix::Transition& t) { return raw->HandleTransition(t); });
  esp_sessions_[static_cast<size_t>(i)] = session.ok() ? session.value() : 0;
  esp_nodes_[static_cast<size_t>(i)] = std::move(node);
}

void SimCluster::RecreateRelay() {
  relay_ = std::make_unique<databus::Relay>("relay", primary_.get(),
                                            &network_);
}

// ---------------------------------------------------------------------------
// Crash / restart entry points per tier.
// ---------------------------------------------------------------------------

int SimCluster::CrashableEntities() const {
  // Live population sizes, not options_: kAddNode events grow the tiers and
  // the new nodes must be crashable (and restartable) like any other.
  return voldemort_node_count() + kafka_broker_count() +
         espresso_node_count() + 3;  // primary, relay, bootstrap
}

std::string SimCluster::EntityName(int entity) const {
  if (entity < voldemort_node_count()) {
    return net::MakeAddress(net::Tier::kVoldemort, entity);
  }
  entity -= voldemort_node_count();
  if (entity < kafka_broker_count()) {
    return "broker-" + std::to_string(entity);
  }
  entity -= kafka_broker_count();
  if (entity < espresso_node_count()) {
    return "esn-" + std::to_string(entity);
  }
  entity -= espresso_node_count();
  return entity == 0 ? "primary" : entity == 1 ? "relay" : "bootstrap";
}

std::string SimCluster::CrashEntity(int entity) {
  const std::string name = EntityName(entity);
  int index = entity;
  if (index < voldemort_node_count()) {
    if (!network_.IsNodeUp(net::MakeAddress(net::Tier::kVoldemort, index))) {
      return "noop (" + name + " already down)";
    }
    CrashVoldemort(index);
    return "crash " + name;
  }
  index -= voldemort_node_count();
  if (index < kafka_broker_count()) {
    if (brokers_[static_cast<size_t>(index)] == nullptr) {
      return "noop (" + name + " already down)";
    }
    CrashBroker(index);
    return "crash " + name;
  }
  index -= kafka_broker_count();
  if (index < espresso_node_count()) {
    if (esp_nodes_[static_cast<size_t>(index)] == nullptr) {
      return "noop (" + name + " already down)";
    }
    CrashEspresso(index);
    return "crash " + name;
  }
  index -= espresso_node_count();
  if (index == 0) {
    if (primary_crashed_) return "noop (primary already down)";
    CrashPrimary();
    return "crash primary";
  }
  if (index == 1) {
    if (relay_ == nullptr) return "noop (relay already down)";
    relay_.reset();
    return "crash relay";
  }
  if (bootstrap_ == nullptr) return "noop (bootstrap already down)";
  bootstrap_.reset();
  return "crash bootstrap";
}

std::string SimCluster::RestartEntity(int entity) {
  const std::string name = EntityName(entity);
  int index = entity;
  if (index < voldemort_node_count()) {
    if (network_.IsNodeUp(net::MakeAddress(net::Tier::kVoldemort, index))) {
      return "noop (" + name + " already up)";
    }
    RestartVoldemort(index);
    return "restart " + name;
  }
  index -= voldemort_node_count();
  if (index < kafka_broker_count()) {
    if (brokers_[static_cast<size_t>(index)] != nullptr) {
      return "noop (" + name + " already up)";
    }
    RestartBroker(index);
    return "restart " + name;
  }
  index -= kafka_broker_count();
  if (index < espresso_node_count()) {
    if (esp_nodes_[static_cast<size_t>(index)] != nullptr) {
      return "noop (" + name + " already up)";
    }
    RestartEspresso(index);
    return "restart " + name;
  }
  index -= espresso_node_count();
  if (index == 0) {
    if (!primary_crashed_) return "noop (primary already up)";
    RestartPrimary();
    return "restart primary";
  }
  if (index == 1) {
    if (relay_ != nullptr) return "noop (relay already up)";
    RecreateRelay();
    return "restart relay";
  }
  if (bootstrap_ != nullptr) return "noop (bootstrap already up)";
  bootstrap_ = std::make_unique<databus::BootstrapServer>("bootstrap", "relay",
                                                          &network_);
  return "restart bootstrap";
}

void SimCluster::CrashVoldemort(int i) {
  // Omission crash: the node object (and its in-memory engine) survives, the
  // network just stops delivering — quorum masks the outage and slops /
  // read repair reconverge it after SetNodeUp.
  network_.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, i));
}

void SimCluster::RestartVoldemort(int i) {
  network_.SetNodeUp(net::MakeAddress(net::Tier::kVoldemort, i));
  // Restart is heal-like for the failure detector: re-admit the node now
  // instead of waiting out the remainder of its ban interval.
  vclient_->failure_detector()->ProbeBannedNow();
}

void SimCluster::CrashBroker(int i) {
  // Process death first (handlers unregistered, zk ephemerals dropped), then
  // power loss on its disk. Restart recovers the partition logs from the
  // durable prefix.
  brokers_[static_cast<size_t>(i)].reset();
  broker_disks_[static_cast<size_t>(i)]->CrashNow();
}

void SimCluster::RestartBroker(int i) {
  // discard-ok: mid-schedule restart; a failed disk restart leaves FaultFs
  // crashed and the broker's recovery/produce path reports it from there.
  (void)broker_disks_[static_cast<size_t>(i)]->Restart();
  brokers_[static_cast<size_t>(i)] = std::make_unique<kafka::Broker>(
      i, &zookeeper_, &network_, &clock_, BrokerOptionsFor(i));
  // discard-ok: re-advertisement after restart; on failure produces to the
  // topic fail visibly and those messages are simply never acked.
  (void)brokers_[static_cast<size_t>(i)]->CreateTopic(kTopic,
                                                      /*partitions=*/1);
  // Re-open the replicated-topic logs too so the durable prefix recovers:
  // a restarted replica must resume from its flushed bytes, or the
  // reassignment catch-up gate would compare against an empty log.
  // discard-ok: same visibility argument as the re-advertisement above.
  (void)brokers_[static_cast<size_t>(i)]->CreateTopic(kReplicatedTopic,
                                                      /*partitions=*/1);
}

void SimCluster::CrashEspresso(int i) {
  const std::string name = "esn-" + std::to_string(i);
  // Drop the transition handler before the object dies, then let the
  // controller fail the partitions over to the surviving replicas.
  helix_->DisconnectParticipant(name, esp_sessions_[static_cast<size_t>(i)]);
  esp_nodes_[static_cast<size_t>(i)].reset();
  helix_->RebalanceToConvergence();
}

void SimCluster::RestartEspresso(int i) {
  StartEspressoNode(i);
  // OFFLINE->SLAVE bootstraps from the current master's snapshot (when one
  // is reachable), then catches up from the per-partition relay timelines.
  helix_->RebalanceToConvergence();
  if (esp_nodes_[static_cast<size_t>(i)] != nullptr) {
    esp_nodes_[static_cast<size_t>(i)]->CatchUpAll();
  }
}

void SimCluster::CrashPrimary() {
  // Power loss on the primary's disk: the Database object survives but every
  // commit fails from here on (nothing is acknowledged on a dead disk).
  primary_crashed_ = true;
  primary_disk_->CrashNow();
}

void SimCluster::RestartPrimary() {
  if (!primary_crashed_) return;
  // The relay holds a pointer into the old Database; tear it down first. A
  // relay is stateless (paper III.D) — the recreated one re-pulls from SCN 0.
  relay_.reset();
  primary_.reset();
  // discard-ok: mid-schedule restart; a failed disk restart keeps commits
  // failing, which the acked-row invariants already account for.
  (void)primary_disk_->Restart();
  primary_ =
      std::make_unique<sqlstore::Database>("primary", PrimaryBinlogOptions());
  // discard-ok: re-creating the table after a crash; AlreadyExists is the
  // normal case and a real failure shows up as failed Puts immediately.
  (void)primary_->CreateTable(kPrimaryTable);
  primary_->ReplayBinlog();
  RecreateRelay();
  primary_crashed_ = false;
}

// ---------------------------------------------------------------------------
// Elasticity: kAddNode / kStartRebalance event legs.
// ---------------------------------------------------------------------------

std::string SimCluster::AddNodeEvent(int target) {
  switch (target % 3) {
    case 0: return AddVoldemortNode();
    case 1: return AddKafkaBroker();
    default: return AddEspressoNode();
  }
}

std::string SimCluster::StartRebalanceEvent(int target, int64_t magnitude) {
  switch (target % 3) {
    case 0: return StepVoldemortRebalance(magnitude);
    case 1: return StepKafkaReassignment(magnitude);
    default: return StepEspressoRebalance(magnitude);
  }
}

std::string SimCluster::AddVoldemortNode() {
  const int id = voldemort_node_count();
  if (id >= 2 * options_.voldemort_nodes) {
    return "noop (voldemort at growth cap)";
  }
  // The node joins the ring owning zero partitions; ownership moves only
  // through the rebalance executor's copy + pair-write + cutover protocol.
  metadata_->AddNode({id, net::MakeAddress(net::Tier::kVoldemort, id), 0});
  vservers_.push_back(std::make_unique<voldemort::VoldemortServer>(
      id, metadata_, &network_, VoldemortOptionsFor()));
  MustOk(vservers_.back()->AddStore(kVoldemortStore),
         "voldemort AddStore (elastic)");
  return "add voldemort node " + std::to_string(id);
}

std::string SimCluster::AddKafkaBroker() {
  const int id = kafka_broker_count();
  if (id >= 2 * options_.kafka_brokers) {
    return "noop (kafka at growth cap)";
  }
  io::FaultFsOptions broker_fs_options;
  broker_fs_options.seed =
      options_.seed ^ (0xb40cULL + static_cast<uint64_t>(id));
  broker_disks_.push_back(
      std::make_unique<io::FaultFs>(base_fs_.get(), broker_fs_options));
  brokers_.push_back(std::make_unique<kafka::Broker>(
      id, &zookeeper_, &network_, &clock_, BrokerOptionsFor(id)));
  // Advertising kTopic adds a partition to the shared topic: the consumer's
  // topic watch fires and its next Poll rebalances onto the new broker.
  // discard-ok: a failed advertisement means produces never route here and
  // nothing is acked against the new broker.
  (void)brokers_.back()->CreateTopic(kTopic, /*partitions=*/1);
  return "add kafka broker " + std::to_string(id);
}

std::string SimCluster::AddEspressoNode() {
  const int id = espresso_node_count();
  if (id >= 2 * options_.espresso_nodes) {
    return "noop (espresso at growth cap)";
  }
  esp_nodes_.resize(static_cast<size_t>(id) + 1);
  esp_sessions_.resize(static_cast<size_t>(id) + 1, 0);
  // Deliberately staged: the participant connects here, but mastership only
  // moves when kStartRebalance (or Settle) steps the Helix pipeline — so
  // chaos schedules can interleave traffic with every transition.
  StartEspressoNode(id);
  return "add espresso node esn-" + std::to_string(id);
}

std::string SimCluster::StepVoldemortRebalance(int64_t magnitude) {
  int steps = 0;
  for (int64_t i = 0; i < magnitude; ++i) {
    if (!rebalancer_->Step()) break;
    ++steps;
  }
  return "voldemort rebalance steps=" + std::to_string(steps) +
         " completed=" + std::to_string(rebalancer_->moves_completed()) +
         " aborted=" + std::to_string(rebalancer_->moves_aborted());
}

std::string SimCluster::StepKafkaReassignment(int64_t magnitude) {
  int actions = 0;
  std::string note = "idle";
  for (int64_t i = 0; i < magnitude; ++i) {
    auto pending = replicated_->ReassignmentTargetOf(kReplicatedTopic, 0);
    if (!pending.ok()) {
      auto leader = replicated_->LeaderOf(kReplicatedTopic, 0);
      if (!leader.ok()) break;
      // Deterministic target pick: the highest-id live broker that does not
      // already lead — i.e. the most recently added one.
      kafka::Broker* chosen = nullptr;
      for (int b = kafka_broker_count() - 1; b >= 0; --b) {
        if (b == leader.value() || brokers_[static_cast<size_t>(b)] == nullptr) {
          continue;
        }
        chosen = brokers_[static_cast<size_t>(b)].get();
        break;
      }
      if (chosen == nullptr) {
        note = "no live reassignment target";
        break;
      }
      Status begun =
          replicated_->BeginReassignment(kReplicatedTopic, 0, chosen);
      if (!begun.ok()) {
        note = "begin failed";
        break;
      }
      ++actions;
      note = "begin ->broker-" + std::to_string(chosen->id());
    } else {
      SyncReplicatedFollowers();
      auto done = replicated_->TryCompleteReassignment(kReplicatedTopic, 0);
      ++actions;
      if (done.ok() && done.value()) {
        note = "leader ->broker-" + std::to_string(pending.value());
        CheckReplicatedLeaderComplete("kafka leadership transfer");
      } else {
        note = "catch-up ->broker-" + std::to_string(pending.value());
      }
    }
  }
  return "kafka reassignment actions=" + std::to_string(actions) + " " + note;
}

std::string SimCluster::StepEspressoRebalance(int64_t magnitude) {
  const int executed = helix_->RebalanceOnce(static_cast<int>(magnitude));
  for (auto& node : esp_nodes_) {
    if (node != nullptr) node->CatchUpAll();
  }
  return "espresso rebalance transitions=" + std::to_string(executed) +
         " epoch=" + std::to_string(helix_->RoutingEpoch());
}

void SimCluster::OnVoldemortCutover(const voldemort::RebalanceMove& move) {
  // The online half of the rebalance-ownership invariant: the instant
  // ownership flips, every clean-acked key of the moved partition must
  // already be readable at the NEW owner — checked before slop pushes,
  // read repair or Settle() can heal a pair-write hole (a post-settle-only
  // check would pass even with pairing disabled).
  const voldemort::RoutingView view = metadata_->Snapshot();
  if (view.cluster.num_partitions() == 0) return;
  auto routing = voldemort::NewConsistentRoutingStrategy(&view.cluster, 1);
  for (const auto& [key, h] : voldemort_history_) {
    if (!h.has_ack || h.attempted_after_ack) continue;
    if (routing->MasterPartition(key) != move.partition) continue;
    std::string request;
    voldemort::EncodeGetRequest(kVoldemortStore, key, &request);
    auto response = network_.Call(
        "sim-rebalance-check",
        net::MakeAddress(net::Tier::kVoldemort, move.to_node),
        "v.get-noredirect", request);
    // An unreachable new owner is a liveness outcome the settle-time
    // checkers judge; only a successful read that lacks the acked value is
    // a handoff hole.
    if (!response.ok()) continue;
    auto versions = voldemort::DecodeVersionedList(response.value());
    if (!versions.ok()) continue;
    bool found = false;
    for (const auto& versioned : versions.value()) {
      if (versioned.value == h.last_acked) {
        found = true;
        break;
      }
    }
    if (found) continue;
    // A quorum write acked while the master was down leaves the acked value
    // on replicas/slops only; the copy faithfully moved everything the
    // source had, and anti-entropy heals the rest (settle-time checkers
    // judge that). Only a value the SOURCE holds but the destination lacks
    // is a copy/pair-write hole — which is precisely what disabling the
    // handoff pair produces.
    auto source_response = network_.Call(
        "sim-rebalance-check",
        net::MakeAddress(net::Tier::kVoldemort, move.from_node),
        "v.get-noredirect", request);
    if (!source_response.ok()) continue;
    auto source_versions = voldemort::DecodeVersionedList(source_response.value());
    if (!source_versions.ok()) continue;
    bool source_has_it = false;
    for (const auto& versioned : source_versions.value()) {
      if (versioned.value == h.last_acked) {
        source_has_it = true;
        break;
      }
    }
    if (source_has_it) {
      online_violations_.push_back(
          {"rebalance-ownership",
           "voldemort key " + key + " acked '" + h.last_acked +
               "' missing at new owner node " + std::to_string(move.to_node) +
               " at partition " + std::to_string(move.partition) +
               " cutover"});
    }
  }
}

void SimCluster::SyncReplicatedFollowers() {
  for (auto& broker : brokers_) {
    if (broker == nullptr) continue;
    kafka::ReplicaFetcher fetcher(broker.get(), replicated_.get(), &network_);
    // discard-ok: a follower that cannot reach the leader simply stays
    // behind; the catch-up gate keeps leadership where the data is.
    (void)fetcher.SyncOnce(kReplicatedTopic, /*partitions=*/1);
  }
}

void SimCluster::CheckReplicatedLeaderComplete(const std::string& context) {
  std::set<std::string> present;
  int64_t offset = 0;
  for (;;) {
    auto data = replicated_->FetchFromLeader("sim-rebalance-check",
                                             kReplicatedTopic, 0, offset,
                                             1 << 20);
    if (!data.ok()) return;  // leader unreachable: cannot assess, skip
    if (data.value().empty()) break;
    kafka::MessageSetIterator it(data.value(), offset);
    kafka::Message message;
    while (it.Next(&message)) present.insert(message.payload);
    if (it.next_fetch_offset() <= offset) break;
    offset = it.next_fetch_offset();
  }
  for (const std::string& payload : replicated_acked_) {
    if (present.count(payload) == 0) {
      online_violations_.push_back(
          {"rebalance-ownership",
           "replicated-topic message '" + payload +
               "' missing from the current leader's log at " + context});
    }
  }
}

// ---------------------------------------------------------------------------
// Event application.
// ---------------------------------------------------------------------------

void SimCluster::ApplyEvent(const SimEvent& event) {
  std::string effect;
  switch (event.kind) {
    case EventKind::kPartition: {
      std::vector<net::Address> candidates;
      for (int i = 0; i < voldemort_node_count(); ++i) {
        candidates.push_back(net::MakeAddress(net::Tier::kVoldemort, i));
      }
      for (int i = 0; i < kafka_broker_count(); ++i) {
        candidates.push_back(net::MakeAddress(net::Tier::kKafkaBroker, i));
      }
      for (int i = 0; i < espresso_node_count(); ++i) {
        candidates.push_back("esn-" + std::to_string(i));
      }
      candidates.push_back("relay");
      candidates.push_back("bootstrap");
      const size_t n = candidates.size();
      const size_t side = std::clamp<size_t>(
          static_cast<size_t>(std::max<int64_t>(event.magnitude, 1)), 1,
          n - 1);
      const size_t start = static_cast<size_t>(event.target) % n;
      std::set<net::Address> side_a;
      for (size_t k = 0; k < side; ++k) {
        side_a.insert(candidates[(start + k) % n]);
      }
      network_.PartitionOff(side_a);
      effect = "cut {";
      for (const net::Address& a : side_a) {
        if (effect.size() > 5) effect += ",";
        effect += a;
      }
      effect += "}";
      break;
    }
    case EventKind::kHeal:
      network_.Heal();
      effect = "heal";
      break;
    case EventKind::kCrashNode:
      effect = CrashEntity(event.target % CrashableEntities());
      break;
    case EventKind::kRestartNode:
      effect = RestartEntity(event.target % CrashableEntities());
      break;
    case EventKind::kClockSkew:
      clock_.AdvanceMicros(event.magnitude);
      effect = "advance clock " + std::to_string(event.magnitude) + "us";
      break;
    case EventKind::kDelayBurst:
      network_.SetDelayBurst(event.magnitude);
      effect = "delay burst <=" + std::to_string(event.magnitude) + "us";
      break;
    case EventKind::kDelayCalm:
      network_.SetDelayBurst(0);
      effect = "delay calm";
      break;
    case EventKind::kIoFaultBurst: {
      const double p =
          static_cast<double>(std::clamp<int64_t>(event.magnitude, 0, 1000)) /
          1000.0;
      primary_disk_->SetFaultProbabilities(p * 0.5, p * 0.3, p * 0.2);
      effect = "io faults " + std::to_string(event.magnitude) + "permille";
      break;
    }
    case EventKind::kIoFaultCalm:
      primary_disk_->SetFaultProbabilities(0, 0, 0);
      effect = "io calm";
      break;
    case EventKind::kWorkload: {
      const int family = event.target % 4;
      const int64_t ops = std::max<int64_t>(event.magnitude, 1);
      const int64_t acked = RunWorkload(family, ops);
      static constexpr const char* kFamilies[] = {"voldemort", "kafka",
                                                  "espresso", "primary"};
      effect = std::string(kFamilies[family]) + " ops=" +
               std::to_string(ops) + " acked=" + std::to_string(acked);
      break;
    }
    case EventKind::kAddNode:
      effect = AddNodeEvent(event.target);
      break;
    case EventKind::kStartRebalance:
      effect = StartRebalanceEvent(event.target,
                                   std::max<int64_t>(event.magnitude, 1));
      break;
  }
  TraceLine(event, effect);
  Pump();
}

void SimCluster::RunSchedule(const Schedule& schedule) {
  for (const SimEvent& event : schedule.events) ApplyEvent(event);
}

void SimCluster::TraceLine(const SimEvent& event, const std::string& effect) {
  trace_ += "[" + std::to_string(event_index_++) + "] " + FormatEvent(event) +
            " -> " + effect + "\n";
}

void SimCluster::Pump() {
  // One best-effort turn of the change pipeline between fault events.
  // Failures here are schedule outcomes (partitions, crashed relays) that
  // Settle() later drains; the lag invariants judge the end state, not
  // each pump.
  if (relay_ != nullptr) (void)relay_->PollOnce();  // discard-ok: see above
  if (bootstrap_ != nullptr) {
    (void)bootstrap_->PollRelayOnce();  // discard-ok: see above
    bootstrap_->ApplyLogOnce();
  }
  if (dbclient_ != nullptr && relay_ != nullptr) {
    (void)dbclient_->PollOnce();  // discard-ok: see above
  }
  for (auto& node : esp_nodes_) {
    if (node != nullptr) node->CatchUpAll();
  }
}

// ---------------------------------------------------------------------------
// Workload generators.
// ---------------------------------------------------------------------------

void SimCluster::RecordAttempt(std::map<std::string, KeyHistory>* history,
                               const std::string& key,
                               const std::string& value) {
  KeyHistory& h = (*history)[key];
  h.allowed.insert(value);
  if (h.has_ack) h.attempted_after_ack = true;
}

void SimCluster::RecordAck(std::map<std::string, KeyHistory>* history,
                           const std::string& key, const std::string& value) {
  KeyHistory& h = (*history)[key];
  h.last_acked = value;
  h.has_ack = true;
  h.attempted_after_ack = false;
  h.deleted = false;
}

int64_t SimCluster::RunWorkload(int family, int64_t ops) {
  switch (family) {
    case 0: return WorkloadVoldemort(ops);
    case 1: return WorkloadKafka(ops);
    case 2: return WorkloadEspresso(ops);
    default: return WorkloadPrimary(ops);
  }
}

int64_t SimCluster::WorkloadVoldemort(int64_t ops) {
  int64_t acked = 0;
  for (int64_t i = 0; i < ops; ++i) {
    const std::string key = "vk" + std::to_string(rng_.Uniform(16));
    const std::string value = "v" + std::to_string(value_seq_++);
    RecordAttempt(&voldemort_history_, key, value);
    if (vclient_->PutValue(key, value).ok()) {
      RecordAck(&voldemort_history_, key, value);
      ++acked;
    }
    // Interleave reads: they drive read repair and feed the failure
    // detector's success ratio.
    // discard-ok: the read is traffic, not an assertion; a failure under
    // faults is an expected outcome the convergence checker absorbs.
    (void)vclient_->Get("vk" + std::to_string(rng_.Uniform(16))).status();
  }
  return acked;
}

int64_t SimCluster::WorkloadKafka(int64_t ops) {
  int64_t acked = 0;
  for (int64_t i = 0; i < ops; ++i) {
    const std::string payload = "k" + std::to_string(kafka_seq_++);
    // A failed Send means the message never reached a broker (faults are
    // injected before the handler runs), so acked == appended exactly.
    if (producer_->Send(kTopic, payload).ok()) {
      kafka_acked_.insert(payload);
      ++acked;
    }
    // Replicated-topic leg: one message per op through the leader, so a
    // reassignment always races live produce traffic. Acked means the
    // leader flushed it; leadership may only move to a caught-up follower.
    const std::string rpayload = "rk" + std::to_string(kafka_seq_++);
    kafka::MessageSetBuilder builder;
    builder.Add(rpayload);
    if (replicated_
            ->ProduceToLeader("producer", kReplicatedTopic, 0, builder.Build())
            .ok()) {
      replicated_acked_.insert(rpayload);
    }
  }
  for (int round = 0; round < 2; ++round) {
    auto messages = consumer_->Poll(kTopic);
    if (messages.ok()) ConsumePolledMessages(messages.value());
  }
  CommitAndCheckOffsets();
  return acked;
}

void SimCluster::ConsumePolledMessages(
    const std::vector<kafka::Message>& messages) {
  for (const kafka::Message& message : messages) {
    kafka_consumed_.push_back(message.payload);
  }
}

void SimCluster::CommitAndCheckOffsets() {
  // discard-ok: a failed commit leaves the previously committed offsets in
  // place, which is exactly what the monotonicity check below verifies.
  (void)consumer_->CommitOffsets();
  const std::string dir = "/kafka/consumers/sim-group/offsets/" +
                          std::string(kTopic);
  auto children = zookeeper_.GetChildren(dir);
  if (!children.ok()) return;
  for (const std::string& child : children.value()) {
    const std::string path = dir + "/" + child;
    auto value = zookeeper_.Get(path);
    if (!value.ok()) continue;
    const int64_t offset = std::atoll(value.value().c_str());
    auto it = committed_offsets_.find(path);
    if (it != committed_offsets_.end() && offset < it->second) {
      online_violations_.push_back(
          {"kafka-offsets",
           "committed offset regressed at " + path + ": " +
               std::to_string(it->second) + " -> " + std::to_string(offset)});
    }
    committed_offsets_[path] = offset;
  }
}

int64_t SimCluster::WorkloadEspresso(int64_t ops) {
  int64_t acked = 0;
  for (int64_t i = 0; i < ops; ++i) {
    const uint64_t j = rng_.Uniform(8);
    const std::string key =
        "r" + std::to_string(j) + "/d" + std::to_string(j);
    const std::string uri = EspressoUri(key);
    KeyHistory& h = espresso_history_[key];
    if (rng_.Uniform(6) == 0 && h.has_ack && !h.deleted) {
      // Delete leg of the CRUD mix. An acked delete must read back NotFound;
      // a failed one leaves the document in an indeterminate state.
      h.allowed.insert("");
      if (h.has_ack) h.attempted_after_ack = true;
      if (router_->DeleteDocument(uri).ok()) {
        h.last_acked = "";
        h.has_ack = true;
        h.attempted_after_ack = false;
        h.deleted = true;
        ++acked;
      }
      continue;
    }
    const std::string title = "t" + std::to_string(value_seq_++);
    auto doc = avro::Datum::Record("Doc");
    doc->SetField("title", avro::Datum::String(title));
    RecordAttempt(&espresso_history_, key, title);
    if (router_->PutDocument(uri, *doc).ok()) {
      RecordAck(&espresso_history_, key, title);
      ++acked;
    }
    if (rng_.Uniform(3) == 0) {
      // discard-ok: background read traffic exercising the router under
      // faults; NotFound and routing errors are expected outcomes.
      (void)router_->GetDocument(EspressoUri(
          "r" + std::to_string(rng_.Uniform(8)) + "/d" + std::to_string(j)));
    }
  }
  return acked;
}

int64_t SimCluster::WorkloadPrimary(int64_t ops) {
  int64_t acked = 0;
  for (int64_t i = 0; i < ops; ++i) {
    const std::string key = "p" + std::to_string(rng_.Uniform(12));
    const std::string value = "v" + std::to_string(value_seq_++);
    RecordAttempt(&primary_history_, key, value);
    if (primary_->Put(kPrimaryTable, key, {{"v", value}}).ok()) {
      RecordAck(&primary_history_, key, value);
      ++acked;
    }
  }
  return acked;
}

// ---------------------------------------------------------------------------
// Settle + invariants.
// ---------------------------------------------------------------------------

void SimCluster::Settle() {
  network_.Heal();
  network_.SetDelayBurst(0);
  primary_disk_->SetFaultProbabilities(0, 0, 0);
  for (int entity = 0; entity < CrashableEntities(); ++entity) {
    RestartEntity(entity);
  }
  // Quotas off from here: shedding during the schedule was the experiment;
  // convergence (slop pushes, read repair, kafka drain) must not be
  // throttled. After the restart loop so recreated brokers are covered.
  for (auto& server : vservers_) server->SetQuotaEnforcing(false);
  for (auto& broker : brokers_) {
    if (broker != nullptr) broker->SetQuotaEnforcing(false);
  }
  // Drain in-flight elastic work now that everything is reachable: the
  // voldemort executor finishes (or aborts) pending migrations, and any
  // pending kafka reassignment completes once the target catches up.
  // discard-ok: a rebalance that still cannot converge leaves migrations
  // pending, which the rebalance-ownership checker reports explicitly.
  (void)rebalancer_->DriveToCompletion();
  for (int round = 0; round < 8; ++round) {
    auto pending = replicated_->ReassignmentTargetOf(kReplicatedTopic, 0);
    if (!pending.ok()) break;  // nothing pending
    SyncReplicatedFollowers();
    auto done = replicated_->TryCompleteReassignment(kReplicatedTopic, 0);
    if (done.ok() && done.value()) {
      CheckReplicatedLeaderComplete("settle-time reassignment completion");
      break;
    }
  }
  SyncReplicatedFollowers();
  for (int round = 0; round < 6; ++round) {
    // Repeated convergence rounds after the heal; a transiently failing
    // poll is retried next round, and the databus-lag invariant catches a
    // pipeline that never converges.
    if (relay_ != nullptr) (void)relay_->PollOnce();  // discard-ok: retried
    if (bootstrap_ != nullptr) {
      (void)bootstrap_->PollRelayOnce();  // discard-ok: retried next round
      bootstrap_->ApplyLogOnce();
    }
    if (dbclient_ != nullptr) {
      (void)dbclient_->DrainToHead();  // discard-ok: retried next round
    }
    helix_->RebalanceToConvergence();
    for (auto& node : esp_nodes_) {
      if (node != nullptr) node->CatchUpAll();
    }
    for (auto& server : vservers_) server->PushSlops();
  }
  // Final kafka drain: everything acked must now be consumable.
  int empty_rounds = 0;
  for (int round = 0; round < 400 && empty_rounds < 5; ++round) {
    auto messages = consumer_->Poll(kTopic);
    if (messages.ok() && !messages.value().empty()) {
      ConsumePolledMessages(messages.value());
      empty_rounds = 0;
    } else {
      ++empty_rounds;
    }
  }
  CommitAndCheckOffsets();
  // Read-repair pass: quorum reads propagate the dominant versions so the
  // convergence checker sees the fixed point.
  for (const auto& [key, history] : voldemort_history_) {
    // discard-ok: the quorum reads are run for their read-repair side
    // effect; the convergence checker then re-reads and judges the result.
    (void)vclient_->Get(key).status();
    (void)vclient_->Get(key).status();
  }
}

void SimCluster::AddInvariant(std::unique_ptr<InvariantChecker> checker) {
  extra_invariants_.push_back(std::move(checker));
}

std::vector<InvariantViolation> SimCluster::CheckInvariants() {
  std::vector<InvariantViolation> out;
  for (auto& checker : StandardInvariants()) checker->Check(*this, &out);
  for (auto& checker : extra_invariants_) checker->Check(*this, &out);
  return out;
}

std::vector<InvariantViolation> SimCluster::RunToCompletion(
    const Schedule& schedule) {
  RunSchedule(schedule);
  Settle();
  return CheckInvariants();
}

std::vector<InvariantViolation> RunScheduleOnFreshCluster(
    const SimOptions& options, const Schedule& schedule, std::string* trace) {
  SimCluster cluster(options);
  auto violations = cluster.RunToCompletion(schedule);
  if (trace != nullptr) *trace = cluster.trace();
  return violations;
}

}  // namespace lidi::sim
