#ifndef LIDI_SIM_SIM_CLUSTER_H_
#define LIDI_SIM_SIM_CLUSTER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "databus/bootstrap.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "espresso/replication.h"
#include "espresso/router.h"
#include "espresso/schema.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "io/fault_fs.h"
#include "io/file.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "kafka/replication.h"
#include "net/network.h"
#include "sim/invariants.h"
#include "sim/schedule.h"
#include "sqlstore/database.h"
#include "voldemort/client.h"
#include "voldemort/rebalance.h"
#include "voldemort/server.h"
#include "zk/zookeeper.h"

namespace lidi::sim {

/// Deployment shape of the simulated cluster. Everything else about a run —
/// key choices, fault points, message delays — derives from `seed` and the
/// schedule, never from the wall clock or unseeded randomness.
struct SimOptions {
  uint64_t seed = 1;
  int voldemort_nodes = 3;
  int kafka_brokers = 2;
  int espresso_nodes = 2;
  int espresso_partitions = 4;
  /// TEST-ONLY: re-introduces the historical sqlstore binlog bug (see
  /// BinlogOptions::legacy_advance_on_failed_write) so the harness can
  /// demonstrate its no-acked-write-lost invariant re-finding a real,
  /// previously shipped defect.
  bool legacy_binlog_bug = false;
  /// When > 0, Voldemort servers and Kafka brokers apply a per-client
  /// token-bucket quota (requests/sec) so overload schedules can prove
  /// graceful degradation: shed operations are attempted-but-unacked, which
  /// the invariant contract already tolerates, while every acked write must
  /// still survive. Settle() switches enforcement off so end-of-chaos
  /// convergence is never throttled.
  double overload_quota_per_sec = 0;
  double overload_quota_burst = 4;
  /// TEST-ONLY kill switch for the rebalance safety mechanisms (ISSUE 10):
  /// disables Voldemort proxy-pair double-routing during partition handoff
  /// AND lets Kafka leadership transfers skip the follower catch-up gate.
  /// The rebalance acceptance tests run the same elastic schedule with this
  /// on and assert that invariants now FAIL, proving the safety paths are
  /// load-bearing and the tests have teeth. Never set outside tests.
  bool disable_handoff_safety = false;
};

/// Per-key write history the workload generators maintain and the invariant
/// checkers read. The contract under chaos: an acknowledged write must
/// survive; an unacknowledged attempt is indeterminate (it may have landed
/// on some replicas), so its value joins `allowed` and, when it came after
/// the last ack, relaxes the exact-match check to set membership.
struct KeyHistory {
  std::set<std::string> allowed;  // every value ever attempted for the key
  std::string last_acked;
  bool has_ack = false;
  bool attempted_after_ack = false;
  bool deleted = false;  // the last acked operation was a delete
};

/// A whole lidi deployment on one seeded Network, one virtual clock and
/// per-node fault filesystems: a Voldemort ring, Kafka brokers + a consumer
/// group, a primary sqlstore feeding Databus (relay + bootstrap + follower),
/// and an Espresso cluster (Helix + storage nodes + router), plus the
/// workload bookkeeping the invariant checkers verify.
///
/// Determinism contract: with the same SimOptions and Schedule, every run
/// produces a byte-identical trace(). All randomness flows from seeded
/// lidi::Random instances; time advances only via network virtual-time
/// stepping and kClockSkew events. Single-threaded by design — handlers run
/// synchronously in the caller's thread, so the event sequence IS the
/// global order.
class SimCluster {
 public:
  explicit SimCluster(SimOptions options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Applies one schedule event (total function: healing with nothing
  /// partitioned, restarting a running node etc. are no-ops, which is what
  /// lets the shrinker delete arbitrary subsequences). Appends one trace
  /// line and pumps the async tiers once.
  void ApplyEvent(const SimEvent& event);

  /// Applies every event in order.
  void RunSchedule(const Schedule& schedule);

  /// Ends the chaos: heals partitions, calms delay/IO faults, restarts
  /// everything crashed, then drives every async tier to convergence
  /// (relay/bootstrap/follower drains, espresso catch-up + rebalance,
  /// slop delivery, read-repair pass, kafka final drain). Invariants are
  /// checked against this settled state.
  void Settle();

  /// Runs the standard invariant catalogue (see invariants.h) plus any
  /// checkers added with AddInvariant. Call after Settle().
  std::vector<InvariantViolation> CheckInvariants();

  void AddInvariant(std::unique_ptr<InvariantChecker> checker);

  /// RunSchedule + Settle + CheckInvariants on this (fresh) cluster.
  std::vector<InvariantViolation> RunToCompletion(const Schedule& schedule);

  /// Byte-stable log of every applied event and its observed effect — the
  /// determinism anchor (same options + schedule => identical trace).
  const std::string& trace() const { return trace_; }
  const SimOptions& options() const { return options_; }

  // --- live population sizes (elastic: kAddNode events grow the tiers, so
  // checkers must use these, never the *initial* counts in options()) ---

  int voldemort_node_count() const { return static_cast<int>(vservers_.size()); }
  int kafka_broker_count() const { return static_cast<int>(brokers_.size()); }
  int espresso_node_count() const { return static_cast<int>(esp_nodes_.size()); }

  // --- component access (invariant checkers and tests) ---

  net::Network& network() { return network_; }
  ManualClock& clock() { return clock_; }
  zk::ZooKeeper& zookeeper() { return zookeeper_; }
  sqlstore::Database* primary() { return primary_.get(); }
  databus::Relay* databus_relay() { return relay_.get(); }
  databus::BootstrapServer* databus_bootstrap() { return bootstrap_.get(); }
  databus::DatabusClient* follower() { return dbclient_.get(); }
  voldemort::StoreClient* voldemort_client() { return vclient_.get(); }
  voldemort::VoldemortServer* voldemort_server(int i) {
    return vservers_[static_cast<size_t>(i)].get();
  }
  kafka::Broker* broker(int i) {
    return brokers_[static_cast<size_t>(i)].get();
  }
  kafka::Consumer* consumer() { return consumer_.get(); }
  kafka::Producer* producer() { return producer_.get(); }
  espresso::Router* router() { return router_.get(); }
  espresso::EspressoRelay& espresso_relay() { return esp_relay_; }
  espresso::StorageNode* espresso_node(int i) {
    return esp_nodes_[static_cast<size_t>(i)].get();
  }
  helix::HelixController& helix() { return *helix_; }
  io::FaultFs* primary_disk() { return primary_disk_.get(); }
  voldemort::ClusterMetadata* voldemort_metadata() { return metadata_.get(); }
  voldemort::RebalanceExecutor* rebalancer() { return rebalancer_.get(); }
  kafka::ReplicatedTopicManager* replicated_topics() {
    return replicated_.get();
  }

  // --- workload bookkeeping (read by checkers) ---

  const std::map<std::string, KeyHistory>& voldemort_history() const {
    return voldemort_history_;
  }
  const std::map<std::string, KeyHistory>& primary_history() const {
    return primary_history_;
  }
  const std::map<std::string, KeyHistory>& espresso_history() const {
    return espresso_history_;
  }
  const std::set<std::string>& kafka_acked() const { return kafka_acked_; }
  const std::vector<std::string>& kafka_consumed() const {
    return kafka_consumed_;
  }
  /// Payloads acked on the replicated topic — the rebalance-ownership
  /// checker requires every one of them in the CURRENT leader's log.
  const std::set<std::string>& replicated_acked() const {
    return replicated_acked_;
  }
  /// The follower's materialized table (key -> encoded row), built from the
  /// Databus event stream.
  const std::map<std::string, std::string>& follower_rows() const {
    return follower_rows_;
  }
  /// Violations detected while the schedule ran (e.g. a committed kafka
  /// offset regressing) — folded into the checker output.
  const std::vector<InvariantViolation>& online_violations() const {
    return online_violations_;
  }

  static constexpr const char* kTopic = "events";
  /// Single-partition replicated topic exercised by the Kafka reassignment
  /// path (leadership only moves after follower catch-up).
  static constexpr const char* kReplicatedTopic = "revents";
  static constexpr const char* kVoldemortStore = "store";
  static constexpr const char* kPrimaryTable = "profiles";
  static constexpr const char* kEspressoDb = "db";
  static constexpr const char* kEspressoTable = "docs";

 private:
  // Crash/restart entity indexing: [0, V) voldemort nodes, [V, V+B) kafka
  // brokers, [V+B, V+B+E) espresso nodes, then primary, relay, bootstrap.
  int CrashableEntities() const;
  std::string EntityName(int entity) const;
  /// Returns a short effect description for the trace.
  std::string CrashEntity(int entity);
  std::string RestartEntity(int entity);

  void CrashVoldemort(int i);
  void RestartVoldemort(int i);
  void CrashBroker(int i);
  void RestartBroker(int i);
  void CrashEspresso(int i);
  void RestartEspresso(int i);
  void CrashPrimary();
  void RestartPrimary();

  // --- elasticity (kAddNode / kStartRebalance event legs) ---

  /// Grows the tier `target % 3` selects by one node; no-op with a trace
  /// note once that tier hit its growth cap (2x the initial deployment, so
  /// schedules stay bounded and shrinkable).
  std::string AddNodeEvent(int target);
  /// Steps the tier `target % 3` selects through up to `magnitude` live
  /// partition-movement actions (Voldemort copy/cutover steps, Kafka
  /// reassignment begin/sync/complete, Helix MASTER/SLAVE transitions).
  std::string StartRebalanceEvent(int target, int64_t magnitude);
  std::string AddVoldemortNode();
  std::string AddKafkaBroker();
  std::string AddEspressoNode();
  std::string StepVoldemortRebalance(int64_t magnitude);
  std::string StepKafkaReassignment(int64_t magnitude);
  std::string StepEspressoRebalance(int64_t magnitude);
  /// Fired by the RebalanceExecutor the moment ownership flips: reads every
  /// clean-acked key of the moved partition back from its NEW owner before
  /// any later repair could mask a hole (the online half of the
  /// rebalance-ownership invariant).
  void OnVoldemortCutover(const voldemort::RebalanceMove& move);
  /// One follower pull pass for the replicated topic on every live broker.
  void SyncReplicatedFollowers();
  /// Verifies the current replicated-topic leader's log still contains
  /// every acked payload; records an online violation otherwise.
  void CheckReplicatedLeaderComplete(const std::string& context);

  voldemort::VoldemortServerOptions VoldemortOptionsFor() const;
  kafka::BrokerOptions BrokerOptionsFor(int i) const;
  sqlstore::BinlogOptions PrimaryBinlogOptions() const;
  void StartEspressoNode(int i);
  void RecreateRelay();

  /// One async pump: relay/bootstrap/follower poll, espresso catch-up.
  void Pump();

  /// Runs `ops` operations of workload family `family` (0 = voldemort
  /// put/get, 1 = kafka produce/consume, 2 = espresso document CRUD,
  /// 3 = primary-DB commits). Returns acked-op count for the trace.
  int64_t RunWorkload(int family, int64_t ops);
  int64_t WorkloadVoldemort(int64_t ops);
  int64_t WorkloadKafka(int64_t ops);
  int64_t WorkloadEspresso(int64_t ops);
  int64_t WorkloadPrimary(int64_t ops);

  void RecordAck(std::map<std::string, KeyHistory>* history,
                 const std::string& key, const std::string& value);
  void RecordAttempt(std::map<std::string, KeyHistory>* history,
                     const std::string& key, const std::string& value);

  /// Commits consumer offsets and verifies none regressed in Zookeeper.
  void CommitAndCheckOffsets();
  void ConsumePolledMessages(const std::vector<kafka::Message>& messages);

  void TraceLine(const SimEvent& event, const std::string& effect);

  const SimOptions options_;
  ManualClock clock_;
  Random rng_;
  obs::MetricsRegistry metrics_;
  net::Network network_;
  zk::ZooKeeper zookeeper_;

  std::unique_ptr<io::Fs> base_fs_;
  std::unique_ptr<io::FaultFs> primary_disk_;
  std::vector<std::unique_ptr<io::FaultFs>> broker_disks_;

  // Voldemort tier.
  std::shared_ptr<voldemort::ClusterMetadata> metadata_;
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> vservers_;
  std::unique_ptr<voldemort::StoreClient> vclient_;
  std::unique_ptr<voldemort::RebalanceExecutor> rebalancer_;

  // Kafka tier.
  std::vector<std::unique_ptr<kafka::Broker>> brokers_;
  std::unique_ptr<kafka::Producer> producer_;
  std::unique_ptr<kafka::Consumer> consumer_;
  std::unique_ptr<kafka::ReplicatedTopicManager> replicated_;

  // Primary DB + Databus tier.
  std::unique_ptr<sqlstore::Database> primary_;
  std::unique_ptr<databus::Relay> relay_;
  std::unique_ptr<databus::BootstrapServer> bootstrap_;
  std::unique_ptr<databus::Consumer> follower_consumer_;
  std::unique_ptr<databus::DatabusClient> dbclient_;
  bool primary_crashed_ = false;

  // Espresso tier.
  espresso::SchemaRegistry registry_;
  espresso::EspressoRelay esp_relay_;
  std::unique_ptr<helix::HelixController> helix_;
  std::vector<std::unique_ptr<espresso::StorageNode>> esp_nodes_;
  std::vector<zk::SessionId> esp_sessions_;
  std::unique_ptr<espresso::Router> router_;

  // Workload bookkeeping.
  std::map<std::string, KeyHistory> voldemort_history_;
  std::map<std::string, KeyHistory> primary_history_;
  std::map<std::string, KeyHistory> espresso_history_;
  std::set<std::string> kafka_acked_;
  std::set<std::string> replicated_acked_;
  std::vector<std::string> kafka_consumed_;
  std::map<std::string, int64_t> committed_offsets_;  // zk path -> offset
  std::map<std::string, std::string> follower_rows_;
  std::vector<InvariantViolation> online_violations_;
  int64_t kafka_seq_ = 0;
  int64_t value_seq_ = 0;
  int event_index_ = 0;
  std::string trace_;

  std::vector<std::unique_ptr<InvariantChecker>> extra_invariants_;
};

/// Convenience for the property tests and the shrinker predicate: fresh
/// cluster with `options`, run the schedule to completion, return the
/// violations (and the trace via *trace when non-null).
std::vector<InvariantViolation> RunScheduleOnFreshCluster(
    const SimOptions& options, const Schedule& schedule,
    std::string* trace = nullptr);

}  // namespace lidi::sim

#endif  // LIDI_SIM_SIM_CLUSTER_H_
