#ifndef LIDI_SIM_SCHEDULE_H_
#define LIDI_SIM_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lidi::sim {

/// One injected fault or workload step in a cluster-wide chaos schedule.
/// Events are closed under arbitrary reordering and deletion: every kind is
/// a no-op when its precondition does not hold (healing with no partition,
/// restarting a running node), which is what lets the shrinker delete any
/// subsequence and still have a meaningful schedule.
enum class EventKind : uint8_t {
  kPartition = 0,     // cut a seeded subset of nodes off from the rest
  kHeal = 1,          // remove the partition (fires probe-on-heal listeners)
  kCrashNode = 2,     // process/power loss of the node `target` selects
  kRestartNode = 3,   // restart-with-recovery of that node
  kClockSkew = 4,     // jump the virtual clock forward `magnitude` micros
  kDelayBurst = 5,    // per-message delay in [0, magnitude] micros until calm
  kDelayCalm = 6,
  kIoFaultBurst = 7,  // write/short-write/sync faults on `target`'s disk
  kIoFaultCalm = 8,
  kWorkload = 9,      // run `magnitude` ops of workload family `target`
  kAddNode = 10,      // grow the tier `target` selects by one node (elastic
                      // expansion; no-op once the growth cap is reached)
  kStartRebalance = 11,  // step the tier `target` selects through
                         // `magnitude` live partition-movement actions
};

const char* EventKindName(EventKind kind);

struct SimEvent {
  EventKind kind = EventKind::kWorkload;
  /// Node / workload / disk selector. Interpreted modulo the relevant
  /// population by the cluster, so any value is valid for any deployment.
  int target = 0;
  /// Micros (skew, delay), ops (workload), fault intensity in per-mille
  /// (io bursts).
  int64_t magnitude = 0;
};

/// A replayable chaos schedule. Everything about a run is a function of
/// (deployment options, schedule), and the schedule is a function of
/// (seed, length) — so `--seed=N --schedule-events=M` reproduces a failure
/// exactly.
struct Schedule {
  uint64_t seed = 0;
  std::vector<SimEvent> events;
};

/// Stable single-line rendering of one event ("partition(t=3,m=1)").
std::string FormatEvent(const SimEvent& event);

/// Stable multi-line rendering of the schedule — the byte-identical-trace
/// determinism contract anchors on this.
std::string FormatSchedule(const Schedule& schedule);

/// Generates a seeded random schedule of `num_events` events: mostly
/// workload steps with fault events (partitions, crashes, skew, delay and
/// I/O bursts) interleaved. Same (seed, num_events) => identical schedule.
Schedule GenerateSchedule(uint64_t seed, int num_events);

/// Predicate driving the shrinker: true if the candidate schedule still
/// reproduces the failure (typically: fresh SimCluster, run, invariants
/// violated).
using ScheduleFails = std::function<bool(const Schedule&)>;

/// Delta-debugging minimizer: repeatedly deletes event chunks (halves down
/// to single events) while `fails` keeps returning true, bounded by
/// `max_probes` predicate evaluations. The result is 1-minimal up to the
/// probe budget: removing any single remaining event makes the failure
/// disappear (or the budget ran out first).
Schedule ShrinkSchedule(const Schedule& failing, const ScheduleFails& fails,
                        int max_probes = 512);

}  // namespace lidi::sim

#endif  // LIDI_SIM_SCHEDULE_H_
