#include "net/address.h"
#include "sim/invariants.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "avro/datum.h"
#include "databus/event.h"
#include "kafka/message.h"
#include "sim/sim_cluster.h"
#include "sqlstore/database.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"
#include "voldemort/vector_clock.h"
#include "voldemort/wire.h"

namespace lidi::sim {

namespace {

constexpr const char* kChecker = "sim-checker";

std::string EspressoUri(const std::string& key) {
  return std::string("/") + SimCluster::kEspressoDb + "/" +
         SimCluster::kEspressoTable + "/" + key;
}

std::string TitleOf(const avro::DatumPtr& doc) {
  if (doc == nullptr) return "";
  auto field = doc->GetField("title");
  return field == nullptr ? "" : field->string_value();
}

/// Every acknowledged write is still readable with an allowed value after
/// the cluster settles. Unacknowledged attempts are indeterminate: their
/// values are allowed but not required, and an unacked attempt after the
/// last ack relaxes exact-match to set membership.
class NoAckedWriteLost : public InvariantChecker {
 public:
  const char* name() const override { return "no-acked-write-lost"; }

  void Check(SimCluster& cluster,
             std::vector<InvariantViolation>* out) override {
    CheckVoldemort(cluster, out);
    CheckPrimaryAndFollower(cluster, out);
    CheckEspresso(cluster, out);
  }

 private:
  void CheckVoldemort(SimCluster& cluster,
                      std::vector<InvariantViolation>* out) {
    for (const auto& [key, h] : cluster.voldemort_history()) {
      auto versions = cluster.voldemort_client()->Get(key);
      if (!versions.ok()) {
        if (h.has_ack) {
          out->push_back({name(), "voldemort key " + key +
                                      " unreadable after settle: " +
                                      versions.status().ToString()});
        }
        continue;
      }
      bool saw_last_acked = false;
      for (const auto& versioned : versions.value()) {
        if (h.allowed.count(versioned.value) == 0) {
          out->push_back({name(), "voldemort key " + key +
                                      " holds never-written value '" +
                                      versioned.value + "'"});
        }
        if (versioned.value == h.last_acked) saw_last_acked = true;
      }
      if (h.has_ack && !h.attempted_after_ack && !saw_last_acked) {
        out->push_back({name(), "voldemort key " + key +
                                    " lost acked value '" + h.last_acked +
                                    "'"});
      }
    }
  }

  void CheckPrimaryAndFollower(SimCluster& cluster,
                               std::vector<InvariantViolation>* out) {
    const auto& follower_rows = cluster.follower_rows();
    for (const auto& [key, h] : cluster.primary_history()) {
      auto row = cluster.primary()->Get(SimCluster::kPrimaryTable, key);
      if (!row.ok()) {
        if (h.has_ack) {
          out->push_back({name(), "primary row " + key +
                                      " unreadable after settle: " +
                                      row.status().ToString()});
        }
      } else {
        auto it = row.value().find("v");
        const std::string value = it == row.value().end() ? "" : it->second;
        if (h.allowed.count(value) == 0) {
          out->push_back({name(), "primary row " + key +
                                      " holds never-written value '" + value +
                                      "'"});
        } else if (h.has_ack && !h.attempted_after_ack &&
                   value != h.last_acked) {
          out->push_back({name(), "primary row " + key + " lost acked '" +
                                      h.last_acked + "', holds '" + value +
                                      "'"});
        }
      }
      // The Databus follower must have materialized every clean acked commit.
      if (h.has_ack && !h.attempted_after_ack) {
        auto fit = follower_rows.find(key);
        if (fit == follower_rows.end()) {
          out->push_back(
              {name(), "databus follower missing acked row " + key});
          continue;
        }
        auto decoded = sqlstore::DecodeRow(fit->second);
        std::string follower_value;
        if (decoded.ok()) {
          auto vit = decoded.value().find("v");
          if (vit != decoded.value().end()) follower_value = vit->second;
        }
        if (follower_value != h.last_acked) {
          out->push_back({name(), "databus follower row " + key + " holds '" +
                                      follower_value + "', acked '" +
                                      h.last_acked + "'"});
        }
      }
    }
  }

  void CheckEspresso(SimCluster& cluster,
                     std::vector<InvariantViolation>* out) {
    for (const auto& [key, h] : cluster.espresso_history()) {
      auto doc = cluster.router()->GetDocument(EspressoUri(key));
      if (!doc.ok()) {
        const bool not_found = doc.status().IsNotFound();
        if (h.has_ack && !h.attempted_after_ack && !h.deleted) {
          out->push_back({name(), "espresso doc " + key +
                                      " unreadable after settle: " +
                                      doc.status().ToString()});
        } else if (not_found && h.has_ack && h.attempted_after_ack &&
                   h.allowed.count("") == 0) {
          out->push_back({name(), "espresso doc " + key +
                                      " vanished with no delete attempted"});
        }
        continue;
      }
      const std::string title = TitleOf(doc.value());
      if (h.has_ack && !h.attempted_after_ack) {
        if (h.deleted) {
          out->push_back({name(), "espresso doc " + key +
                                      " readable after acked delete"});
        } else if (title != h.last_acked) {
          out->push_back({name(), "espresso doc " + key + " holds '" + title +
                                      "', acked '" + h.last_acked + "'"});
        }
      } else if (h.allowed.count(title) == 0) {
        out->push_back({name(), "espresso doc " + key +
                                    " holds never-written title '" + title +
                                    "'"});
      }
    }
  }
};

/// SCN streams are dense and strictly ordered per timeline, every replica
/// has applied to its relay head, and the follower checkpoint never runs
/// ahead of the source (a checkpoint past the recovered binlog head is
/// exactly the footprint of the legacy persisted-bytes bug).
class TimelineConsistency : public InvariantChecker {
 public:
  const char* name() const override { return "timeline-consistency"; }

  void Check(SimCluster& cluster,
             std::vector<InvariantViolation>* out) override {
    CheckDatabus(cluster, out);
    CheckEspresso(cluster, out);
  }

 private:
  void CheckDatabus(SimCluster& cluster,
                    std::vector<InvariantViolation>* out) {
    const int64_t source_head = cluster.primary()->binlog().LastScn();
    auto events = cluster.databus_relay()->ReadEvents(
        0, std::numeric_limits<int64_t>::max(), databus::Filter{});
    if (!events.ok()) {
      out->push_back({name(), "databus relay unreadable: " +
                                  events.status().ToString()});
      return;
    }
    int64_t prev_scn = 0;
    for (const auto& event : events.value()) {
      if (event.scn < prev_scn) {
        out->push_back({name(), "databus relay SCNs out of order: " +
                                    std::to_string(event.scn) + " after " +
                                    std::to_string(prev_scn)});
      } else if (event.scn > prev_scn) {
        if (prev_scn != 0 && event.scn != prev_scn + 1) {
          out->push_back({name(), "databus relay SCN gap: " +
                                      std::to_string(prev_scn) + " -> " +
                                      std::to_string(event.scn)});
        }
        prev_scn = event.scn;
      }
    }
    if (prev_scn != source_head) {
      out->push_back({name(), "databus relay head " +
                                  std::to_string(prev_scn) +
                                  " != source binlog head " +
                                  std::to_string(source_head)});
    }
    const int64_t checkpoint = cluster.follower()->checkpoint_scn();
    if (checkpoint > source_head) {
      out->push_back({name(), "follower checkpoint " +
                                  std::to_string(checkpoint) +
                                  " ahead of source head " +
                                  std::to_string(source_head) +
                                  " (acked commits lost at recovery)"});
    }
  }

  void CheckEspresso(SimCluster& cluster,
                     std::vector<InvariantViolation>* out) {
    const int partitions = cluster.options().espresso_partitions;
    for (int p = 0; p < partitions; ++p) {
      auto events = cluster.espresso_relay().Read(
          SimCluster::kEspressoDb, p, 0, std::numeric_limits<int64_t>::max());
      const int64_t head =
          cluster.espresso_relay().MaxScn(SimCluster::kEspressoDb, p);
      int64_t prev_scn = 0;
      if (events.ok()) {
        for (const auto& event : events.value()) {
          if (event.scn != prev_scn && event.scn != prev_scn + 1) {
            out->push_back(
                {name(), "espresso partition " + std::to_string(p) +
                             " SCN gap: " + std::to_string(prev_scn) +
                             " -> " + std::to_string(event.scn)});
          }
          prev_scn = std::max(prev_scn, event.scn);
        }
      }
      for (int i = 0; i < cluster.espresso_node_count(); ++i) {
        auto* node = cluster.espresso_node(i);
        if (node == nullptr) continue;
        if (!node->IsMasterOf(SimCluster::kEspressoDb, p) &&
            !node->IsSlaveOf(SimCluster::kEspressoDb, p)) {
          continue;
        }
        const int64_t applied =
            node->AppliedScn(SimCluster::kEspressoDb, p);
        if (applied != head) {
          out->push_back({name(), node->name() + " partition " +
                                      std::to_string(p) + " applied scn " +
                                      std::to_string(applied) +
                                      " != relay head " +
                                      std::to_string(head)});
        }
      }
    }
  }
};

/// Committed consumer offsets never regressed while the schedule ran, and
/// after the final drain the consumed stream equals the acked produce set
/// exactly once — no acked message lost, none duplicated, nothing consumed
/// that was never acknowledged.
class KafkaOffsets : public InvariantChecker {
 public:
  const char* name() const override { return "kafka-offsets"; }

  void Check(SimCluster& cluster,
             std::vector<InvariantViolation>* out) override {
    for (const auto& violation : cluster.online_violations()) {
      out->push_back(violation);
    }
    std::map<std::string, int> counts;
    for (const std::string& payload : cluster.kafka_consumed()) {
      ++counts[payload];
    }
    for (const auto& [payload, count] : counts) {
      if (cluster.kafka_acked().count(payload) == 0) {
        out->push_back(
            {name(), "consumed message '" + payload + "' was never acked"});
      } else if (count > 1) {
        out->push_back({name(), "message '" + payload + "' consumed " +
                                    std::to_string(count) + " times"});
      }
    }
    for (const std::string& payload : cluster.kafka_acked()) {
      if (counts.count(payload) == 0) {
        out->push_back({name(), "acked message '" + payload +
                                    "' never consumed after settle"});
      }
    }
  }
};

/// After heal + slop delivery + read repair, replica version sets hold only
/// values that were actually written, and repeated quorum reads are stable
/// (the vector clocks have reached a fixed point).
class VectorClockConvergence : public InvariantChecker {
 public:
  const char* name() const override { return "vector-clock-convergence"; }

  void Check(SimCluster& cluster,
             std::vector<InvariantViolation>* out) override {
    for (const auto& [key, h] : cluster.voldemort_history()) {
      const auto first = ReadValues(cluster, key);
      const auto second = ReadValues(cluster, key);
      if (first != second) {
        out->push_back({name(), "quorum reads of key " + key +
                                    " not stable after settle"});
      }
      // Direct per-replica reads: no replica may hold a value nobody wrote.
      std::string request;
      voldemort::EncodeGetRequest(SimCluster::kVoldemortStore, key, &request);
      for (int i = 0; i < cluster.voldemort_node_count(); ++i) {
        auto response = cluster.network().Call(
            kChecker, net::MakeAddress(net::Tier::kVoldemort, i), "v.get", request);
        if (!response.ok()) continue;  // not a replica / empty store
        auto versions = voldemort::DecodeVersionedList(response.value());
        if (!versions.ok()) continue;
        for (const auto& versioned : versions.value()) {
          if (h.allowed.count(versioned.value) == 0) {
            out->push_back({name(), "node " + std::to_string(i) + " key " +
                                        key + " holds never-written value '" +
                                        versioned.value + "'"});
          }
        }
      }
    }
  }

 private:
  static std::vector<std::string> ReadValues(SimCluster& cluster,
                                             const std::string& key) {
    std::vector<std::string> values;
    auto versions = cluster.voldemort_client()->Get(key);
    if (versions.ok()) {
      for (const auto& versioned : versions.value()) {
        values.push_back(versioned.value);
      }
    }
    std::sort(values.begin(), values.end());
    return values;
  }
};

/// The rebalance-aware invariant (ISSUE 10): after an elastic schedule
/// settles, every acked write is readable at its CURRENT owner — the node
/// the (possibly rebalanced) routing metadata points at now, read directly
/// rather than through quorum masking — no migration or reassignment is
/// left dangling, and routing tables agree with participant state. The
/// online half (checks at the instant of each cutover / leadership
/// transfer, before repair traffic can heal a hole) is recorded by the
/// cluster into online_violations() as it runs.
class RebalanceOwnership : public InvariantChecker {
 public:
  const char* name() const override { return "rebalance-ownership"; }

  void Check(SimCluster& cluster,
             std::vector<InvariantViolation>* out) override {
    CheckVoldemort(cluster, out);
    CheckKafka(cluster, out);
    CheckEspresso(cluster, out);
  }

 private:
  void CheckVoldemort(SimCluster& cluster,
                      std::vector<InvariantViolation>* out) {
    const voldemort::RoutingView view =
        cluster.voldemort_metadata()->Snapshot();
    if (!view.migrations.empty()) {
      out->push_back({name(), std::to_string(view.migrations.size()) +
                                  " voldemort migrations still pending "
                                  "after settle"});
    }
    if (view.cluster.num_partitions() == 0) return;
    auto routing = voldemort::NewConsistentRoutingStrategy(&view.cluster, 1);
    for (const auto& [key, h] : cluster.voldemort_history()) {
      if (!h.has_ack || h.attempted_after_ack) continue;
      const int owner =
          view.cluster.OwnerOfPartition(routing->MasterPartition(key));
      std::string request;
      voldemort::EncodeGetRequest(SimCluster::kVoldemortStore, key, &request);
      auto response = cluster.network().Call(
          kChecker, net::MakeAddress(net::Tier::kVoldemort, owner),
          "v.get-noredirect", request);
      if (!response.ok()) {
        out->push_back({name(), "voldemort key " + key +
                                    " unreadable at current owner node " +
                                    std::to_string(owner) + ": " +
                                    response.status().ToString()});
        continue;
      }
      auto versions = voldemort::DecodeVersionedList(response.value());
      if (!versions.ok()) continue;
      bool found = false;
      for (const auto& versioned : versions.value()) {
        if (versioned.value == h.last_acked) {
          found = true;
          break;
        }
      }
      if (!found) {
        out->push_back({name(), "voldemort key " + key + " acked '" +
                                    h.last_acked +
                                    "' missing at current owner node " +
                                    std::to_string(owner)});
      }
    }
  }

  void CheckKafka(SimCluster& cluster,
                  std::vector<InvariantViolation>* out) {
    auto* manager = cluster.replicated_topics();
    if (manager
            ->ReassignmentTargetOf(SimCluster::kReplicatedTopic, 0)
            .ok()) {
      out->push_back(
          {name(), "kafka reassignment still pending after settle"});
    }
    auto leader = manager->LeaderOf(SimCluster::kReplicatedTopic, 0);
    if (!leader.ok()) {
      out->push_back(
          {name(), "replicated topic has no leader after settle"});
      return;
    }
    std::set<std::string> present;
    int64_t offset = 0;
    for (;;) {
      auto data = manager->FetchFromLeader(
          kChecker, SimCluster::kReplicatedTopic, 0, offset, 1 << 20);
      if (!data.ok()) {
        out->push_back({name(),
                        "replicated-topic leader unreadable after settle: " +
                            data.status().ToString()});
        return;
      }
      if (data.value().empty()) break;
      kafka::MessageSetIterator it(data.value(), offset);
      kafka::Message message;
      while (it.Next(&message)) present.insert(message.payload);
      if (it.next_fetch_offset() <= offset) break;
      offset = it.next_fetch_offset();
    }
    for (const std::string& payload : cluster.replicated_acked()) {
      if (present.count(payload) == 0) {
        out->push_back({name(), "replicated-topic acked message '" + payload +
                                    "' missing from leader broker " +
                                    std::to_string(leader.value()) +
                                    " after settle"});
      }
    }
  }

  void CheckEspresso(SimCluster& cluster,
                     std::vector<InvariantViolation>* out) {
    // Routing table vs participant agreement: the instance Helix routes a
    // partition's writes to must actually have acknowledged mastership.
    for (int p = 0; p < cluster.options().espresso_partitions; ++p) {
      const std::string master =
          cluster.helix().MasterOf(SimCluster::kEspressoDb, p);
      if (master.empty()) continue;  // liveness checker reports masterless
      bool found = false;
      for (int i = 0; i < cluster.espresso_node_count(); ++i) {
        auto* node = cluster.espresso_node(i);
        if (node == nullptr || node->name() != master) continue;
        found = true;
        if (!node->IsMasterOf(SimCluster::kEspressoDb, p)) {
          out->push_back({name(), master +
                                      " routed as master of espresso "
                                      "partition " +
                                      std::to_string(p) +
                                      " but never acknowledged mastership"});
        }
      }
      if (!found) {
        out->push_back({name(), "espresso partition " + std::to_string(p) +
                                    " routed to missing node " + master});
      }
    }
  }
};

/// Every tier answers again after the chaos: pings succeed, every Espresso
/// partition has a master, every broker re-registered, and a fresh
/// end-to-end write succeeds per tier. Runs LAST — its probe writes would
/// otherwise disturb the exactly-once kafka accounting.
class LivenessResumed : public InvariantChecker {
 public:
  const char* name() const override { return "liveness-resumed"; }

  void Check(SimCluster& cluster,
             std::vector<InvariantViolation>* out) override {
    for (int i = 0; i < cluster.voldemort_node_count(); ++i) {
      auto pong = cluster.network().Call(
          kChecker, net::MakeAddress(net::Tier::kVoldemort, i), "v.ping", "");
      if (!pong.ok()) {
        out->push_back({name(), "voldemort node " + std::to_string(i) +
                                    " not answering pings: " +
                                    pong.status().ToString()});
      }
    }
    auto masterless =
        cluster.helix().MasterlessPartitions(SimCluster::kEspressoDb);
    for (int p : masterless) {
      out->push_back({name(), "espresso partition " + std::to_string(p) +
                                  " has no master after settle"});
    }
    auto broker_ids = cluster.zookeeper().GetChildren("/kafka/brokers/ids");
    const int registered =
        broker_ids.ok() ? static_cast<int>(broker_ids.value().size()) : 0;
    if (registered != cluster.kafka_broker_count()) {
      out->push_back({name(), std::to_string(registered) + "/" +
                                  std::to_string(cluster.kafka_broker_count()) +
                                  " brokers registered after settle"});
    }
    // End-to-end probes with non-workload keys.
    if (!cluster.voldemort_client()->PutValue("liveness-probe", "alive")
             .ok()) {
      out->push_back({name(), "voldemort quorum write failed after settle"});
    }
    if (!cluster.primary()
             ->Put(SimCluster::kPrimaryTable, "liveness-probe",
                   {{"v", "alive"}})
             .ok()) {
      out->push_back({name(), "primary commit failed after settle"});
    }
    auto doc = avro::Datum::Record("Doc");
    doc->SetField("title", avro::Datum::String("alive"));
    if (!cluster.router()->PutDocument(EspressoUri("live/probe"), *doc).ok()) {
      out->push_back({name(), "espresso put failed after settle"});
    }
    if (!cluster.producer()->Send(SimCluster::kTopic, "live-probe").ok()) {
      out->push_back({name(), "kafka produce failed after settle"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<InvariantChecker>> StandardInvariants() {
  std::vector<std::unique_ptr<InvariantChecker>> checkers;
  checkers.push_back(std::make_unique<NoAckedWriteLost>());
  checkers.push_back(std::make_unique<TimelineConsistency>());
  checkers.push_back(std::make_unique<KafkaOffsets>());
  checkers.push_back(std::make_unique<VectorClockConvergence>());
  checkers.push_back(std::make_unique<RebalanceOwnership>());
  // Liveness last: its probe writes must not disturb the accounting the
  // safety checkers above rely on.
  checkers.push_back(std::make_unique<LivenessResumed>());
  return checkers;
}

}  // namespace lidi::sim
