#include "io/submission_queue.h"

namespace lidi::io {

bool SubmissionQueue::StageAppend(WritableFile* file, Slice data,
                                  uint64_t user_data) {
  if (sq_.size() >= depth_) return false;
  sq_.push_back(Sqe{user_data, SqOp::kAppend, file, data});
  return true;
}

bool SubmissionQueue::StageSync(WritableFile* file, uint64_t user_data) {
  if (sq_.size() >= depth_) return false;
  sq_.push_back(Sqe{user_data, SqOp::kSync, file, Slice()});
  return true;
}

size_t SubmissionQueue::Submit() {
  const size_t n = sq_.size();
  bool chain_broken = false;
  for (const Sqe& sqe : sq_) {
    Cqe cqe;
    cqe.user_data = sqe.user_data;
    cqe.op = sqe.op;
    if (chain_broken) {
      cqe.status = Status::Aborted("earlier link in the chain failed");
      ++aborted_links_;
    } else if (sqe.op == SqOp::kAppend) {
      cqe.status = sqe.file->Append(sqe.data, &cqe.accepted);
      // A short write breaks the chain too: accepted < asked means the file
      // ends mid-entry, and executing a later link would bury the hole.
      if (!cqe.status.ok() ||
          cqe.accepted < static_cast<int64_t>(sqe.data.size())) {
        chain_broken = true;
      }
    } else {
      cqe.status = sqe.file->Sync();
      if (!cqe.status.ok()) chain_broken = true;
    }
    cq_.push_back(std::move(cqe));
    ++completed_;
  }
  sq_.clear();
  submitted_ += static_cast<int64_t>(n);
  return n;
}

bool SubmissionQueue::Reap(Cqe* out) {
  if (cq_.empty()) return false;
  *out = std::move(cq_.front());
  cq_.pop_front();
  return true;
}

}  // namespace lidi::io
