#include "io/fault_fs.h"

#include <algorithm>

namespace lidi::io {

namespace {

Status CrashedError() { return Status::IOError("crashed (injected)"); }

}  // namespace

// Named (not anonymous-namespace) so the friend declaration in FaultFs
// resolves to this type.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultFs* fs, std::string path,
                    std::unique_ptr<WritableFile> base)
      : fs_(fs), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(Slice data, int64_t* accepted) override {
    return fs_->AppendWithFaults(path_, data, accepted);
  }
  Status Sync() override { return fs_->SyncWithFaults(path_); }
  Status Close() override { return base_->Close(); }

 private:
  FaultFs* const fs_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultFs::FaultFs(Fs* base, FaultFsOptions options)
    : base_(base), options_(options), rng_(options.seed) {}

FaultFs::FileState* FaultFs::Track(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    FileState state;
    auto size = base_->FileSize(path);
    // Pre-existing bytes were there before this "boot": fully durable.
    if (size.ok()) state.durable = state.written = size.value();
    it = files_.emplace(path, state).first;
  }
  return &it->second;
}

Result<std::unique_ptr<WritableFile>> FaultFs::OpenAppend(
    const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  auto base = base_->OpenAppend(path);
  if (!base.ok()) return base.status();
  Track(path);
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      this, path, std::move(base.value())));
}

Status FaultFs::AppendWithFaults(const std::string& path, Slice data,
                                 int64_t* accepted) {
  if (accepted != nullptr) *accepted = 0;
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  FileState* state = Track(path);

  int64_t take = static_cast<int64_t>(data.size());
  Status verdict;  // OK unless an injection fires
  bool crash_now = false;

  if (options_.crash_after_bytes >= 0 &&
      total_written_ + take > options_.crash_after_bytes) {
    take = std::max<int64_t>(0, options_.crash_after_bytes - total_written_);
    crash_now = true;
    verdict = CrashedError();
  } else if (options_.write_error_probability > 0 &&
             rng_.Bernoulli(options_.write_error_probability)) {
    take = 0;
    verdict = Status::IOError("injected write error (ENOSPC)");
  } else if (take > 0 && options_.short_write_probability > 0 &&
             rng_.Bernoulli(options_.short_write_probability)) {
    take = static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(take)));
    verdict = Status::IOError("injected short write");
  }

  if (take > 0) {
    // Append the accepted prefix through a one-shot base handle so the base
    // file and our bookkeeping agree byte-for-byte.
    auto base = base_->OpenAppend(path);
    if (!base.ok()) return base.status();
    int64_t base_accepted = 0;
    Status s = base.value()->Append(Slice(data.data(), static_cast<size_t>(take)),
                                    &base_accepted);
    Status close_status = base.value()->Close();
    if (s.ok()) s = close_status;
    state->written += base_accepted;
    total_written_ += base_accepted;
    if (accepted != nullptr) *accepted = base_accepted;
    if (!s.ok()) return s;  // a real base failure outranks the schedule
  }
  if (!verdict.ok()) ++injected_failures_;
  if (crash_now) crashed_ = true;
  return verdict;
}

Status FaultFs::SyncWithFaults(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  if (options_.sync_error_probability > 0 &&
      rng_.Bernoulli(options_.sync_error_probability)) {
    ++injected_failures_;
    return Status::IOError("injected sync error");
  }
  FileState* state = Track(path);
  state->durable = state->written;
  // No base Sync: FaultFs owns the durability model; the base Fs is only the
  // byte store, so schedules stay fast and deterministic on any substrate.
  return Status::OK();
}

Status FaultFs::ReadFile(const std::string& path, std::string* out) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError();
  }
  return base_->ReadFile(path, out);
}

Result<std::vector<std::string>> FaultFs::ListDir(const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError();
  }
  return base_->ListDir(path);
}

Status FaultFs::CreateDirs(const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError();
  }
  return base_->CreateDirs(path);
}

Status FaultFs::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  files_.erase(path);
  return base_->RemoveFile(path);
}

Status FaultFs::TruncateFile(const std::string& path, int64_t size) {
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  Status s = base_->TruncateFile(path, size);
  if (s.ok()) {
    // Metadata ops are modeled as durable (the interesting races live in
    // Append/Sync); a truncate rewrites the stable prefix.
    FileState* state = Track(path);
    state->written = size;
    state->durable = size;
  }
  return s;
}

Status FaultFs::RenameFile(const std::string& from, const std::string& to) {
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  Status s = base_->RenameFile(from, to);
  if (s.ok()) {
    auto it = files_.find(from);
    if (it != files_.end()) {
      files_[to] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

Status FaultFs::SyncDir(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return CrashedError();
  return base_->SyncDir(path);
}

Result<int64_t> FaultFs::FileSize(const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError();
  }
  return base_->FileSize(path);
}

bool FaultFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

bool FaultFs::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

void FaultFs::CrashNow() {
  MutexLock lock(&mu_);
  crashed_ = true;
}

Status FaultFs::Restart() {
  MutexLock lock(&mu_);
  for (auto& [path, state] : files_) {
    const int64_t unsynced = state.written - state.durable;
    if (unsynced > 0) {
      // A seeded amount of the page cache made it to disk before the power
      // cut; the rest is gone.
      const int64_t survive =
          static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(unsynced) + 1));
      const int64_t new_size = state.durable + survive;
      Status s = base_->TruncateFile(path, new_size);
      if (!s.ok()) return s;
      if (survive > 0 && options_.torn_garbage_probability > 0 &&
          rng_.Bernoulli(options_.torn_garbage_probability)) {
        // Scribble garbage over a seeded tail of the surviving unsynced
        // bytes — a torn sector. Read-modify-rewrite through the base Fs.
        std::string data;
        s = base_->ReadFile(path, &data);
        if (!s.ok()) return s;
        const int64_t torn = 1 + static_cast<int64_t>(rng_.Uniform(
                                     static_cast<uint64_t>(std::min<int64_t>(
                                         survive, 16))));
        for (int64_t i = new_size - torn; i < new_size; ++i) {
          data[static_cast<size_t>(i)] =
              static_cast<char>(rng_.Uniform(256));
        }
        s = base_->TruncateFile(path, 0);
        if (!s.ok()) return s;
        auto file = base_->OpenAppend(path);
        if (!file.ok()) return file.status();
        s = file.value()->Append(data, nullptr);
        if (!s.ok()) return s;
        s = file.value()->Close();
        if (!s.ok()) return s;
      }
    }
    state.written = state.durable =
        base_->FileSize(path).ok() ? base_->FileSize(path).value() : 0;
  }
  crashed_ = false;
  options_.crash_after_bytes = -1;  // the crash point fired; disarm it
  return Status::OK();
}

void FaultFs::SetFaultProbabilities(double write_error, double short_write,
                                    double sync_error) {
  MutexLock lock(&mu_);
  options_.write_error_probability = write_error;
  options_.short_write_probability = short_write;
  options_.sync_error_probability = sync_error;
}

void FaultFs::ArmCrashAfterBytes(int64_t more_bytes) {
  MutexLock lock(&mu_);
  options_.crash_after_bytes =
      more_bytes < 0 ? -1 : total_written_ + more_bytes;
}

int64_t FaultFs::injected_failures() const {
  MutexLock lock(&mu_);
  return injected_failures_;
}

int64_t FaultFs::total_bytes_written() const {
  MutexLock lock(&mu_);
  return total_written_;
}

}  // namespace lidi::io
