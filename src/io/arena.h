#ifndef LIDI_IO_ARENA_H_
#define LIDI_IO_ARENA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lidi::io {

/// Slab-backed scratch buffers for append-hot-path record staging.
///
/// Every append-with-durability encodes one record (length prefix + crc +
/// body) into a staging buffer, hands it to the fs, and drops it — at
/// group-commit batch depths that is thousands of allocate/free pairs per
/// second of buffers with identical lifetimes. The arena keeps a slab of
/// retired buffers and leases them out cleared-but-with-capacity, so after
/// warm-up the encode path performs zero heap allocations.
///
/// Not thread-safe: one arena per lock-guarded owner (it lives behind the
/// same writer mutex that serializes the appends using it).
class RecordArena {
 public:
  explicit RecordArena(size_t max_pooled = 64) : max_pooled_(max_pooled) {}

  RecordArena(const RecordArena&) = delete;
  RecordArena& operator=(const RecordArena&) = delete;

  /// Leases a cleared buffer (capacity retained from earlier leases).
  /// Prefer the RAII Scratch below.
  std::string* Acquire() {
    if (pool_.empty()) {
      ++created_;
      return new std::string();
    }
    ++reused_;
    std::string* s = pool_.back().release();
    pool_.pop_back();
    s->clear();
    return s;
  }

  /// Returns a leased buffer to the slab (or frees it past max_pooled —
  /// the cap bounds idle memory after a burst).
  void Release(std::string* s) {
    if (s == nullptr) return;
    if (pool_.size() >= max_pooled_) {
      delete s;
      return;
    }
    pool_.emplace_back(s);
  }

  /// RAII lease of one scratch buffer.
  class Scratch {
   public:
    explicit Scratch(RecordArena* arena)
        : arena_(arena), s_(arena->Acquire()) {}
    ~Scratch() { arena_->Release(s_); }

    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

    std::string& operator*() { return *s_; }
    std::string* operator->() { return s_; }
    std::string* get() { return s_; }

   private:
    RecordArena* const arena_;
    std::string* const s_;
  };

  /// Heap allocations performed (== leases that found the slab empty).
  int64_t created() const { return created_; }
  /// Leases served without touching the heap.
  int64_t reused() const { return reused_; }
  size_t pooled() const { return pool_.size(); }

 private:
  const size_t max_pooled_;
  std::vector<std::unique_ptr<std::string>> pool_;
  int64_t created_ = 0;
  int64_t reused_ = 0;
};

}  // namespace lidi::io

#endif  // LIDI_IO_ARENA_H_
