#include "io/file.h"

#include "common/sync.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>

namespace lidi::io {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

// ---------------------------------------------------------------------------
// PosixFs
// ---------------------------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(Slice data, int64_t* accepted) override {
    if (accepted != nullptr) *accepted = 0;
    if (fd_ < 0) return Status::IOError("append to closed file " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write " + path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
      if (accepted != nullptr) *accepted += n;
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync of closed file " + path_);
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close " + path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  const std::string path_;
};

class PosixFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    out->clear();
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
    char buf[64 << 10];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status s = Status::IOError(ErrnoMessage("read " + path));
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError("listdir " + path + ": " + ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return Status::IOError("mkdirs " + path + ": " + ec.message());
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("unlink " + path));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, int64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IOError(ErrnoMessage("truncate " + path));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("rename " + from + " -> " + to));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::IOError(ErrnoMessage("open dir " + path));
    Status s;
    if (::fsync(fd) != 0) s = Status::IOError(ErrnoMessage("fsync dir " + path));
    ::close(fd);
    return s;
  }

  Result<int64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IOError(ErrnoMessage("stat " + path));
    }
    return static_cast<int64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

// ---------------------------------------------------------------------------
// MemFs
// ---------------------------------------------------------------------------

std::string NormalizePath(const std::string& path) {
  std::string p = path;
  while (p.size() > 1 && p.back() == '/') p.pop_back();
  return p;
}

class MemFs;

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(MemFs* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(Slice data, int64_t* accepted) override;
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  MemFs* const fs_;
  const std::string path_;
};

class MemFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override {
    const std::string p = NormalizePath(path);
    MutexLock lock(&mu_);
    files_[p];  // create if absent
    return std::unique_ptr<WritableFile>(
        std::make_unique<MemWritableFile>(this, p));
  }

  Status AppendBytes(const std::string& path, Slice data) {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::IOError("no such file " + path);
    it->second.append(data.data(), data.size());
    return Status::OK();
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    MutexLock lock(&mu_);
    auto it = files_.find(NormalizePath(path));
    if (it == files_.end()) return Status::IOError("no such file " + path);
    *out = it->second;
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    const std::string dir = NormalizePath(path);
    MutexLock lock(&mu_);
    std::vector<std::string> names;
    const std::string prefix = dir + "/";
    for (const auto& [p, data] : files_) {
      if (p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0 &&
          p.find('/', prefix.size()) == std::string::npos) {
        names.push_back(p.substr(prefix.size()));
      }
    }
    return names;  // map iteration is already sorted
  }

  Status CreateDirs(const std::string& path) override {
    MutexLock lock(&mu_);
    dirs_.insert(NormalizePath(path));
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    MutexLock lock(&mu_);
    if (files_.erase(NormalizePath(path)) == 0) {
      return Status::IOError("no such file " + path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, int64_t size) override {
    MutexLock lock(&mu_);
    auto it = files_.find(NormalizePath(path));
    if (it == files_.end()) return Status::IOError("no such file " + path);
    it->second.resize(static_cast<size_t>(size));
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    MutexLock lock(&mu_);
    auto it = files_.find(NormalizePath(from));
    if (it == files_.end()) return Status::IOError("no such file " + from);
    files_[NormalizePath(to)] = std::move(it->second);
    files_.erase(it);
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override { return Status::OK(); }

  Result<int64_t> FileSize(const std::string& path) override {
    MutexLock lock(&mu_);
    auto it = files_.find(NormalizePath(path));
    if (it == files_.end()) return Status::IOError("no such file " + path);
    return static_cast<int64_t>(it->second.size());
  }

  bool FileExists(const std::string& path) override {
    MutexLock lock(&mu_);
    return files_.count(NormalizePath(path)) > 0;
  }

 private:
  mutable Mutex mu_{"io.memfs"};
  std::map<std::string, std::string> files_ LIDI_GUARDED_BY(mu_);
  std::set<std::string> dirs_ LIDI_GUARDED_BY(mu_);
};

Status MemWritableFile::Append(Slice data, int64_t* accepted) {
  if (accepted != nullptr) *accepted = 0;
  Status s = fs_->AppendBytes(path_, data);
  if (s.ok() && accepted != nullptr) {
    *accepted = static_cast<int64_t>(data.size());
  }
  return s;
}

}  // namespace

const char* SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNever:
      return "never";
    case SyncPolicy::kInterval:
      return "interval";
    case SyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Fs* DefaultFs() {
  static PosixFs* fs = new PosixFs();
  return fs;
}

std::unique_ptr<Fs> NewMemFs() { return std::make_unique<MemFs>(); }

}  // namespace lidi::io
