#ifndef LIDI_IO_GROUP_COMMIT_H_
#define LIDI_IO_GROUP_COMMIT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace lidi::io {

/// Knobs for one GroupCommitter (see DESIGN.md §7, group-commit protocol).
struct GroupCommitOptions {
  /// Once this many bytes are pending behind the frontier, a lingering
  /// leader syncs immediately instead of waiting out max_wait_ms.
  int64_t max_batch_bytes = 1 << 20;
  /// How long a freshly elected leader lingers (committer lock released via
  /// the condvar) for more appenders to join its batch before syncing.
  /// 0 = sync immediately: the batch is whatever arrived while the previous
  /// sync was in flight, which is latency-neutral and already amortizes
  /// under concurrency (the classic group-commit shape).
  int64_t max_wait_ms = 0;
  /// Registry for the batching instruments ("io.group_commit.leader_syncs",
  /// "io.group_commit.piggybacked", "io.sync.batch_msgs", labeled
  /// layer=<layer>). Null = not instrumented.
  obs::MetricsRegistry* metrics = nullptr;
  /// Label value for the instruments' {layer=...} label.
  std::string layer = "io";
};

/// Leader-based group commit: the first appender that needs a durability
/// acknowledgement becomes the sync leader and performs ONE covering sync;
/// every appender whose bytes were staged before that sync started parks on
/// a condvar and is acknowledged by the same fdatasync ("piggybacked").
/// This is how real MySQL/Kafka close the sync-per-commit throughput cliff:
/// N concurrent committers share one disk flush instead of paying N.
///
/// Coverage rule: targets and the frontier live on one monotone int64 axis
/// chosen by the owner (byte offset of the durable frontier). A SyncTo(t)
/// returns OK once frontier >= t *within the epoch the bytes were staged
/// in* — see below.
///
/// Failure semantics: when a covering sync fails, the owner may roll its
/// file back, after which previously staged byte positions can be REUSED by
/// later appends. A frontier comparison across such a rollback would
/// acknowledge the wrong bytes, so the committer tracks an epoch: every
/// failed sync attempt bumps it, and a waiter whose bytes were staged in an
/// older epoch gets the sync error instead of an ack. False errors are
/// possible (an appender races an unrelated failure) and safe — the write
/// is merely indeterminate, exactly like a client that crashed before its
/// ack; false acks are not possible. Owners that roll back must capture
/// epoch() BEFORE staging bytes and pass it to SyncTo, so any rollback
/// after the capture voids the ack.
///
/// Thread-safe. The internal mutex is never held across the sync callback,
/// so appenders keep staging while a leader's fdatasync is in flight.
class GroupCommitter {
 public:
  /// Performs one covering sync over everything the owner has staged and
  /// returns the new durable frontier (monotone within an epoch). Invoked by
  /// exactly one thread at a time, with no committer lock held — it may take
  /// the owner's writer lock.
  using SyncFn = std::function<Result<int64_t>()>;

  explicit GroupCommitter(SyncFn sync_fn, GroupCommitOptions options = {});

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Epoch to capture before staging bytes whose positions a failed sync
  /// could reclaim (rollback owners). Owners that never roll back may use
  /// the single-argument SyncTo instead.
  uint64_t epoch() const;

  /// Blocks until the durable frontier covers `target` (returns OK), or a
  /// sync attempt that could have covered it failed (returns that error —
  /// the append is NOT acknowledged). The calling thread leads the sync when
  /// no leader is active; otherwise it parks until the leader's result.
  Status SyncTo(int64_t target) { return SyncTo(target, epoch()); }
  Status SyncTo(int64_t target, uint64_t staged_epoch);

  int64_t frontier() const;

 private:
  const SyncFn sync_fn_;
  const GroupCommitOptions options_;
  obs::Counter* leader_syncs_ = nullptr;
  obs::Counter* piggybacked_ = nullptr;
  obs::LatencyHistogram* batch_msgs_ = nullptr;

  /// Leaf lock: held only around the state below, released across sync_fn_
  /// and while parked on cv_. Unranked — it nests inside nothing.
  mutable Mutex mu_{"io.group_commit"};
  CondVar cv_;
  int64_t frontier_ LIDI_GUARDED_BY(mu_) = 0;
  /// Highest target any appender has asked for (drives max_batch_bytes).
  int64_t max_requested_ LIDI_GUARDED_BY(mu_) = 0;
  bool leader_active_ LIDI_GUARDED_BY(mu_) = false;
  int waiting_ LIDI_GUARDED_BY(mu_) = 0;
  /// Bumped on every failed sync attempt; frontier comparisons are only
  /// meaningful within one epoch (see class comment).
  uint64_t epoch_ LIDI_GUARDED_BY(mu_) = 0;
  Status last_error_ LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::io

#endif  // LIDI_IO_GROUP_COMMIT_H_
