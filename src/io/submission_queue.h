#ifndef LIDI_IO_SUBMISSION_QUEUE_H_
#define LIDI_IO_SUBMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "io/file.h"

namespace lidi::io {

/// Operation kind of one submission entry.
enum class SqOp : uint8_t { kAppend = 0, kSync = 1 };

/// One staged operation (io_uring SQE shape). `data` references caller
/// memory and must stay alive until Submit() returns.
struct Sqe {
  uint64_t user_data = 0;
  SqOp op = SqOp::kAppend;
  WritableFile* file = nullptr;
  Slice data;
};

/// One completed operation (io_uring CQE shape). `accepted` is the honest
/// byte count the fs took for a kAppend — the caller advances its persisted
/// frontier by exactly this, never by what it asked for.
struct Cqe {
  uint64_t user_data = 0;
  SqOp op = SqOp::kAppend;
  Status status;
  int64_t accepted = 0;
};

/// io_uring-shaped submission/completion rings over WritableFile: appends
/// and syncs are staged without performing any I/O, then Submit() hands the
/// whole chain to the backend and completions are reaped from the CQ ring.
/// Staging is what lets an owner assemble a batch under its writer lock and
/// pay the disk (or hand the sync to a group-commit leader) outside it.
///
/// Backend: deterministic simulated execution — Submit() runs the staged
/// entries synchronously in submission order, preserving byte-for-byte the
/// semantics of direct WritableFile calls (honest short-write accounting,
/// fault injection via the underlying Fs). A real io_uring backend slots in
/// behind the same rings once the real-transport runtime lands (ROADMAP
/// item 1); callers are already written against the async shape.
///
/// Link semantics (io_uring IOSQE_IO_LINK): the staged entries form one
/// chain — the first failure (including a short write) completes the rest
/// as Aborted with 0 bytes accepted, never executing them. This is what
/// keeps a multi-chunk persist hole-free: a later chunk can never land in
/// the file after an earlier one fell short.
///
/// Not thread-safe: callers serialize behind their own writer lock, like
/// the WritableFile underneath.
class SubmissionQueue {
 public:
  explicit SubmissionQueue(size_t depth = 64) : depth_(depth) {}

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Stage one operation; false when the submission ring is full (caller
  /// submits and retries).
  bool StageAppend(WritableFile* file, Slice data, uint64_t user_data);
  bool StageSync(WritableFile* file, uint64_t user_data);

  /// Executes the staged chain; one CQE per staged SQE becomes reapable.
  /// Returns the number of entries submitted.
  size_t Submit();

  /// Pops the oldest completion; false when the CQ ring is empty.
  bool Reap(Cqe* out);

  size_t staged() const { return sq_.size(); }
  size_t ready() const { return cq_.size(); }
  size_t depth() const { return depth_; }
  int64_t submitted() const { return submitted_; }
  int64_t completed() const { return completed_; }
  /// Entries never executed because an earlier link in their chain failed.
  int64_t aborted_links() const { return aborted_links_; }

 private:
  const size_t depth_;
  std::vector<Sqe> sq_;
  std::deque<Cqe> cq_;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  int64_t aborted_links_ = 0;
};

}  // namespace lidi::io

#endif  // LIDI_IO_SUBMISSION_QUEUE_H_
