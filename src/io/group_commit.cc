#include "io/group_commit.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace lidi::io {

GroupCommitter::GroupCommitter(SyncFn sync_fn, GroupCommitOptions options)
    : sync_fn_(std::move(sync_fn)), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    const obs::Labels labels{{"layer", options_.layer}};
    leader_syncs_ =
        options_.metrics->GetCounter("io.group_commit.leader_syncs", labels);
    piggybacked_ =
        options_.metrics->GetCounter("io.group_commit.piggybacked", labels);
    batch_msgs_ =
        options_.metrics->GetHistogram("io.sync.batch_msgs", labels);
  }
}

uint64_t GroupCommitter::epoch() const {
  MutexLock lock(&mu_);
  return epoch_;
}

int64_t GroupCommitter::frontier() const {
  MutexLock lock(&mu_);
  return frontier_;
}

Status GroupCommitter::SyncTo(int64_t target, uint64_t staged_epoch) {
  MutexLock lock(&mu_);
  bool led = false;
  for (;;) {
    // Epoch first: after a failed sync the owner may have rolled its file
    // back and re-used this target's byte positions, so a frontier that
    // "covers" the target could be covering different bytes.
    if (epoch_ != staged_epoch) {
      return last_error_.ok()
                 ? Status::IOError("group sync failed while parked")
                 : last_error_;
    }
    if (frontier_ >= target) {
      if (!led && piggybacked_ != nullptr) piggybacked_->Increment();
      return Status::OK();
    }
    if (led) {
      // This thread's own successful sync covered everything staged before
      // it, yet not this target — an earlier hole (failed write by another
      // appender) blocks the contiguous frontier. Waiting longer cannot
      // acknowledge these bytes; surface it instead of spinning on the disk.
      return Status::IOError("group sync did not cover this append");
    }
    if (leader_active_) {
      max_requested_ = std::max(max_requested_, target);
      ++waiting_;
      // Wake the lingering leader early once a full batch is pending.
      if (max_requested_ - frontier_ >= options_.max_batch_bytes) {
        cv_.NotifyAll();
      }
      cv_.Wait(&mu_);
      --waiting_;
      continue;
    }
    // Become the leader for everything staged so far.
    leader_active_ = true;
    max_requested_ = std::max(max_requested_, target);
    if (options_.max_wait_ms > 0 &&
        max_requested_ - frontier_ < options_.max_batch_bytes) {
      cv_.WaitFor(&mu_, std::chrono::milliseconds(options_.max_wait_ms));
    }
    const int batch = 1 + waiting_;
    lock.Unlock();
    Result<int64_t> synced = sync_fn_();
    lock.Lock();
    leader_active_ = false;
    if (synced.ok()) {
      frontier_ = std::max(frontier_, synced.value());
      led = true;
      if (leader_syncs_ != nullptr) leader_syncs_->Increment();
      // Requests acknowledged by this one sync: the leader plus everyone
      // parked when it went to disk (all of whom staged before the sync and
      // are therefore covered, absent holes).
      if (batch_msgs_ != nullptr) batch_msgs_->Record(batch);
    } else {
      last_error_ = synced.status();
      ++epoch_;  // any frontier published before this failure is now stale
    }
    cv_.NotifyAll();
  }
}

}  // namespace lidi::io
