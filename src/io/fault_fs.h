#ifndef LIDI_IO_FAULT_FS_H_
#define LIDI_IO_FAULT_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/sync.h"
#include "common/random.h"
#include "io/file.h"

namespace lidi::io {

/// Deterministic fault schedule for FaultFs. Everything is driven by `seed`,
/// so a failing schedule replays exactly (tests surface the seed and accept
/// the LIDI_FAULTFS_SEED env knob).
struct FaultFsOptions {
  uint64_t seed = 1;
  /// Probability an Append is rejected outright (ENOSPC-style: zero bytes
  /// accepted, IOError returned).
  double write_error_probability = 0.0;
  /// Probability an Append accepts only a seeded strict prefix of the data
  /// before failing (the torn-write case std::ofstream hides).
  double short_write_probability = 0.0;
  /// Probability a Sync fails (bytes stay in the "page cache": accepted but
  /// not durable).
  double sync_error_probability = 0.0;
  /// Crash point: once this many bytes (across all files) have been
  /// accepted, the write that crosses the line is torn mid-byte-stream and
  /// every subsequent operation fails until Restart(). -1 = never.
  int64_t crash_after_bytes = -1;
  /// On Restart, probability that the surviving unsynced tail of a file is
  /// additionally scribbled with seeded garbage (a torn sector), instead of
  /// being cleanly cut at a write boundary.
  double torn_garbage_probability = 0.5;
};

/// Fault-injecting Fs decorator: the repo's standing crash-correctness
/// harness. It owns the durability model — Sync marks accepted bytes
/// durable in its own bookkeeping (the base Fs is just the byte store), and
/// Restart() simulates the machine dying: every file keeps its durable
/// prefix plus a seeded amount of its unsynced tail, possibly garbage-torn.
/// A persistence layer is crash-correct iff, for every schedule, everything
/// it acknowledged as durable is intact after Restart() + reopen.
///
/// Thread-safe (one mutex; this is a test harness, not a hot path).
class FaultFs : public Fs {
 public:
  FaultFs(Fs* base, FaultFsOptions options);

  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, int64_t size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& path) override;
  Result<int64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;

  /// True once a crash point has fired (or CrashNow was called): every
  /// operation fails with IOError("crashed (injected)") until Restart.
  bool crashed() const;
  void CrashNow();

  /// Simulates power loss + reboot: unsynced bytes of every tracked file
  /// are cut back to a seeded survivor prefix (possibly garbage-torn), the
  /// crashed flag clears, and everything now on "disk" counts as durable.
  /// The consumed crash point is disarmed.
  Status Restart();

  /// Total injected Append/Sync failures so far (tests assert schedules
  /// actually bit).
  int64_t injected_failures() const;
  /// Total bytes accepted across all files (to aim crash points).
  int64_t total_bytes_written() const;

  // --- runtime schedule knobs (the sim harness flips these per event) ---

  /// Replaces the write/short-write/sync fault probabilities mid-run. The
  /// seeded RNG stream is untouched, so a schedule that toggles bursts at
  /// the same points replays identically.
  void SetFaultProbabilities(double write_error, double short_write,
                             double sync_error);

  /// Arms (or re-arms) a crash point `more_bytes` accepted bytes from now.
  /// Negative disarms.
  void ArmCrashAfterBytes(int64_t more_bytes);

 private:
  friend class FaultWritableFile;

  struct FileState {
    int64_t durable = 0;  // covered by a successful Sync (or pre-existing)
    int64_t written = 0;  // accepted by Append (durable + page cache)
  };

  /// Appends on behalf of a FaultWritableFile, applying the schedule.
  Status AppendWithFaults(const std::string& path, Slice data,
                          int64_t* accepted);
  Status SyncWithFaults(const std::string& path);
  FileState* Track(const std::string& path) LIDI_REQUIRES(mu_);

  Fs* const base_;
  FaultFsOptions options_ LIDI_GUARDED_BY(mu_);
  /// Held across base-fs calls (the base fs has its own leaf lock and
  /// never calls back) so a fault verdict and its bookkeeping are atomic.
  mutable Mutex mu_{"io.fault_fs"};
  Random rng_ LIDI_GUARDED_BY(mu_);
  bool crashed_ LIDI_GUARDED_BY(mu_) = false;
  int64_t total_written_ LIDI_GUARDED_BY(mu_) = 0;
  int64_t injected_failures_ LIDI_GUARDED_BY(mu_) = 0;
  std::map<std::string, FileState> files_ LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::io

#endif  // LIDI_IO_FAULT_FS_H_
