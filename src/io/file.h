#ifndef LIDI_IO_FILE_H_
#define LIDI_IO_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace lidi::io {

/// When a persistence layer pushes accepted bytes down to stable storage.
/// The knob every durability/throughput trade-off in the repo hangs off:
/// Kafka's flush policy (paper V.B), Espresso's commit log (IV), and the
/// engine behind Voldemort RW stores all expose it.
enum class SyncPolicy {
  kNever = 0,     // rely on the OS page cache; a crash loses unsynced bytes
  kInterval = 1,  // fdatasync every sync_interval_bytes accepted bytes
  kAlways = 2,    // fdatasync before acknowledging every flush/append
};

/// "never" | "interval" | "always" — bench/report labels.
const char* SyncPolicyName(SyncPolicy policy);

/// An append-only file handle with full error propagation. Unlike
/// std::ofstream, every call reports failure, and a failed Append says how
/// many bytes the filesystem actually took — the counter persistence layers
/// must not advance past.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends data. When `accepted` is non-null it receives the number of
  /// bytes the filesystem took, even on failure (short write, ENOSPC):
  /// exactly the prefix of `data` now present at the end of the file.
  virtual Status Append(Slice data, int64_t* accepted = nullptr) = 0;

  /// Pushes accepted bytes to stable storage (fdatasync). Only bytes
  /// covered by a successful Sync are promised to survive a crash.
  virtual Status Sync() = 0;

  /// Closes the handle. Idempotent; the destructor closes too (ignoring
  /// errors — call Close when the result matters).
  virtual Status Close() = 0;
};

/// Filesystem abstraction the persistence layers write through. Two real
/// implementations: the fd-based PosixFs (production) and MemFs (tests);
/// FaultFs (fault_fs.h) decorates either with deterministic fault injection.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens (creating if absent) `path` for appending.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;

  /// Reads the whole file into *out.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// Names (not paths) of the entries directly inside `path`, sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  virtual Status CreateDirs(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Shrinks (or grows, zero-filled) the file to `size` bytes. Recovery uses
  /// this to drop torn tails; the error code matters — a failed truncate
  /// leaves garbage a later append would bury.
  virtual Status TruncateFile(const std::string& path, int64_t size) = 0;

  /// Atomic replace (POSIX rename semantics): after a crash either the old
  /// or the new file is visible, never a mix.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// fsyncs the directory itself, making entry creates/renames/removes
  /// durable (the step naive persistence layers forget).
  virtual Status SyncDir(const std::string& path) = 0;

  virtual Result<int64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
};

/// The process-wide fd-based POSIX filesystem (open/write/fdatasync/rename).
/// Never null; safe to share across threads.
Fs* DefaultFs();

/// A fresh in-memory filesystem (tests, FaultFs substrate): same contract as
/// PosixFs, no disk I/O, Sync is a recorded no-op.
std::unique_ptr<Fs> NewMemFs();

}  // namespace lidi::io

#endif  // LIDI_IO_FILE_H_
