#ifndef LIDI_STORAGE_ENGINE_H_
#define LIDI_STORAGE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace lidi::storage {

/// Pluggable key-value storage engine interface (paper Section II.B:
/// "Of the various storage engine implementations supported by Voldemort...").
/// Every module in the Voldemort stack implements a common code interface so
/// engines can be interchanged and mocked; this is that interface for the
/// storage layer.
///
/// Keys and values are arbitrary byte strings. Implementations must be
/// thread-safe.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Engine name for diagnostics, e.g. "memtable", "logstructured".
  virtual std::string name() const = 0;

  /// Reads the value for `key`; NotFound if absent.
  virtual Status Get(Slice key, std::string* value) const = 0;

  /// Writes (inserts or overwrites) `key`.
  virtual Status Put(Slice key, Slice value) = 0;

  /// Removes `key`; OK even if absent (idempotent).
  virtual Status Delete(Slice key) = 0;

  /// Number of live keys.
  virtual int64_t Count() const = 0;

  /// Iterates all live entries in unspecified order. Returning false from
  /// the visitor stops the scan.
  virtual void ForEach(
      const std::function<bool(Slice key, Slice value)>& visitor) const = 0;
};

/// Simple map-backed engine, the baseline/mock engine.
std::unique_ptr<StorageEngine> NewMemTableEngine();

/// Log-structured engine (the read-write BDB-class engine): appends every
/// write to a segment log, keeps an in-memory key -> location index, and
/// compacts segments when the dead-byte ratio passes a threshold. See
/// log_engine.h for tuning knobs.
std::unique_ptr<StorageEngine> NewLogStructuredEngine();

}  // namespace lidi::storage

#endif  // LIDI_STORAGE_ENGINE_H_
