#ifndef LIDI_STORAGE_LOG_ENGINE_H_
#define LIDI_STORAGE_LOG_ENGINE_H_

#include <memory>
#include <string>

#include "io/file.h"
#include "obs/metrics.h"
#include "storage/engine.h"

namespace lidi::storage {

/// Tuning knobs for the log-structured engine.
struct LogEngineOptions {
  /// A segment is sealed once it reaches this many bytes.
  int64_t segment_size_bytes = 1 << 20;
  /// Compaction runs when dead bytes exceed this fraction of total bytes.
  double compaction_garbage_ratio = 0.5;
  /// When non-empty, every segment is persisted as a file under this
  /// directory ("<seq>.seg"); a new engine instance recovers by scanning the
  /// segments in order and rebuilding the in-memory key index (the Bitcask
  /// recovery model, mirroring how BDB-JE replays its log). Empty =
  /// in-memory only.
  std::string data_dir;
  /// Filesystem the persistent mode writes through; null = the process-wide
  /// fd-based POSIX fs. Tests inject io::MemFs / io::FaultFs here.
  io::Fs* fs = nullptr;
  /// When accepted record bytes are pushed to stable storage (fdatasync).
  /// kAlways means a Put/Delete returning OK is crash-durable; kNever rides
  /// the page cache (the BDB-JE default the paper's RW stores tuned).
  io::SyncPolicy sync = io::SyncPolicy::kNever;
  int64_t sync_interval_bytes = 1 << 20;
  /// Registry the engine's instruments ("storage.live_keys" et al.) land in;
  /// null = engine-private registry. When several engines share a registry,
  /// set distinct `metrics_scope`s — it becomes the "store" label.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_scope;
};

/// Statistics exposed for tests and the ablation benches. A *view* over the
/// engine's registry instruments (gauges "storage.live_keys", ...,
/// counter "storage.compactions"): GetStats materializes it, and the same
/// numbers appear in the registry's Snapshot().
struct LogEngineStats {
  int64_t live_keys = 0;
  int64_t segments = 0;
  int64_t total_bytes = 0;
  int64_t dead_bytes = 0;
  int64_t compactions = 0;
};

class LogStructuredEngine;

std::unique_ptr<LogStructuredEngine> NewLogStructuredEngine(
    const LogEngineOptions& options);

/// Bitcask-style log-structured KV engine standing in for BerkeleyDB JE in
/// the Voldemort read-write path (see DESIGN.md substitution table).
///
/// Writes append a checksummed record to the active segment and update the
/// in-memory index (key -> segment/offset). Reads are a single index probe
/// plus a record decode. Overwrites and deletes leave dead bytes behind;
/// compaction rewrites live records into fresh segments once the garbage
/// ratio passes the configured threshold.
class LogStructuredEngine : public StorageEngine {
 public:
  ~LogStructuredEngine() override = default;

  virtual LogEngineStats GetStats() const = 0;

  /// The registry the engine's instruments live in (injected or
  /// engine-owned); GetStats is a view over it.
  virtual obs::MetricsRegistry* metrics() const = 0;

  /// Forces a compaction regardless of the garbage ratio (for tests).
  virtual void CompactNow() = 0;

  /// Verifies every live record's checksum; Corruption on mismatch.
  virtual Status VerifyChecksums() const = 0;

  /// Non-OK when constructor-time recovery hit a problem it refuses to
  /// paper over: an unreadable or missing segment file (a placeholder keeps
  /// the segment-index <-> file-name mapping intact, but the records in
  /// that file are lost) or a torn-tail truncation that failed.
  virtual Status RecoveryStatus() const { return Status::OK(); }
};

}  // namespace lidi::storage

#endif  // LIDI_STORAGE_LOG_ENGINE_H_
