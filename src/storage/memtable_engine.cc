#include <map>

#include "storage/engine.h"

#include "common/sync.h"

namespace lidi::storage {

namespace {

/// std::map-backed engine. Ordered iteration makes it the easiest engine to
/// reason about in tests; it is also the mock-engine referenced by the
/// pluggable-architecture tests.
class MemTableEngine : public StorageEngine {
 public:
  std::string name() const override { return "memtable"; }

  Status Get(Slice key, std::string* value) const override {
    MutexLock lock(&mu_);
    auto it = data_.find(key.ToString());
    if (it == data_.end()) return Status::NotFound();
    *value = it->second;
    return Status::OK();
  }

  Status Put(Slice key, Slice value) override {
    MutexLock lock(&mu_);
    data_[key.ToString()] = value.ToString();
    return Status::OK();
  }

  Status Delete(Slice key) override {
    MutexLock lock(&mu_);
    data_.erase(key.ToString());
    return Status::OK();
  }

  int64_t Count() const override {
    MutexLock lock(&mu_);
    return static_cast<int64_t>(data_.size());
  }

  void ForEach(const std::function<bool(Slice key, Slice value)>& visitor)
      const override {
    // Snapshot, then visit without the lock: the engine contract (see
    // LogEngineImpl::ForEach) lets the visitor call back into the engine,
    // which would self-deadlock if mu_ were held across the callback.
    std::map<std::string, std::string> snapshot;
    {
      MutexLock lock(&mu_);
      snapshot = data_;
    }
    for (const auto& [k, v] : snapshot) {
      if (!visitor(k, v)) return;
    }
  }

 private:
  mutable Mutex mu_{"storage.memtable"};
  std::map<std::string, std::string> data_ LIDI_GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<StorageEngine> NewMemTableEngine() {
  return std::make_unique<MemTableEngine>();
}

}  // namespace lidi::storage
