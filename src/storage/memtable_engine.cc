#include <map>
#include <mutex>

#include "storage/engine.h"

namespace lidi::storage {

namespace {

/// std::map-backed engine. Ordered iteration makes it the easiest engine to
/// reason about in tests; it is also the mock-engine referenced by the
/// pluggable-architecture tests.
class MemTableEngine : public StorageEngine {
 public:
  std::string name() const override { return "memtable"; }

  Status Get(Slice key, std::string* value) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key.ToString());
    if (it == data_.end()) return Status::NotFound();
    *value = it->second;
    return Status::OK();
  }

  Status Put(Slice key, Slice value) override {
    std::lock_guard<std::mutex> lock(mu_);
    data_[key.ToString()] = value.ToString();
    return Status::OK();
  }

  Status Delete(Slice key) override {
    std::lock_guard<std::mutex> lock(mu_);
    data_.erase(key.ToString());
    return Status::OK();
  }

  int64_t Count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(data_.size());
  }

  void ForEach(const std::function<bool(Slice key, Slice value)>& visitor)
      const override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, v] : data_) {
      if (!visitor(k, v)) return;
    }
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> data_;
};

}  // namespace

std::unique_ptr<StorageEngine> NewMemTableEngine() {
  return std::make_unique<MemTableEngine>();
}

}  // namespace lidi::storage
