#include "storage/log_engine.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::storage {

namespace {

// Record layout within a segment:
//   fixed32 crc (over the rest of the record)
//   varint  key length, key bytes
//   varint  value length + 1  (0 encodes a tombstone)
//   value bytes
class LogEngineImpl : public LogStructuredEngine {
 public:
  explicit LogEngineImpl(const LogEngineOptions& options) : options_(options) {
    if (options_.metrics == nullptr) {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    obs::MetricsRegistry* metrics =
        options_.metrics != nullptr ? options_.metrics : owned_metrics_.get();
    obs::Labels labels;
    if (!options_.metrics_scope.empty()) {
      labels.emplace_back("store", options_.metrics_scope);
    }
    live_keys_ = metrics->GetGauge("storage.live_keys", labels);
    segment_count_ = metrics->GetGauge("storage.segments", labels);
    total_bytes_gauge_ = metrics->GetGauge("storage.total_bytes", labels);
    dead_bytes_gauge_ = metrics->GetGauge("storage.dead_bytes", labels);
    compactions_counter_ = metrics->GetCounter("storage.compactions", labels);
    if (!options_.data_dir.empty()) {
      RecoverFromDisk();
    }
    if (segments_.empty()) segments_.emplace_back();
    UpdateGaugesLocked();
  }

  std::string name() const override { return "logstructured"; }

  obs::MetricsRegistry* metrics() const override {
    return options_.metrics != nullptr ? options_.metrics
                                       : owned_metrics_.get();
  }

  Status Get(Slice key, std::string* value) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key.ToString());
    if (it == index_.end()) return Status::NotFound();
    return ReadRecordLocked(it->second, nullptr, value);
  }

  Status Put(Slice key, Slice value) override {
    std::lock_guard<std::mutex> lock(mu_);
    AppendLocked(key, value, /*tombstone=*/false);
    MaybeCompactLocked();
    UpdateGaugesLocked();
    return Status::OK();
  }

  Status Delete(Slice key) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key.ToString());
    if (it == index_.end()) return Status::OK();
    AppendLocked(key, Slice(), /*tombstone=*/true);
    MaybeCompactLocked();
    UpdateGaugesLocked();
    return Status::OK();
  }

  int64_t Count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(index_.size());
  }

  void ForEach(const std::function<bool(Slice key, Slice value)>& visitor)
      const override {
    // Snapshot the index so the visitor can call back into the engine.
    std::map<std::string, Location> snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot = index_;
    }
    for (const auto& [key, loc] : snapshot) {
      std::string value;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!ReadRecordLocked(loc, nullptr, &value).ok()) continue;
      }
      if (!visitor(key, value)) return;
    }
  }

  LogEngineStats GetStats() const override {
    // The registry instruments are the source of truth; this struct is the
    // legacy-shaped view of them.
    std::lock_guard<std::mutex> lock(mu_);
    LogEngineStats stats;
    stats.live_keys = live_keys_->Value();
    stats.segments = segment_count_->Value();
    stats.total_bytes = total_bytes_gauge_->Value();
    stats.dead_bytes = dead_bytes_gauge_->Value();
    stats.compactions = compactions_counter_->Value();
    return stats;
  }

  void CompactNow() override {
    std::lock_guard<std::mutex> lock(mu_);
    CompactLocked();
    UpdateGaugesLocked();
  }

  Status VerifyChecksums() const override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, loc] : index_) {
      std::string k, v;
      Status s = ReadRecordLocked(loc, &k, &v);
      if (!s.ok()) return s;
      if (k != key) return Status::Corruption("index points at wrong key");
    }
    return Status::OK();
  }

 private:
  struct Location {
    size_t segment;
    size_t offset;
    size_t record_size;
  };

  std::string SegmentPath(size_t index) const {
    char name[32];
    std::snprintf(name, sizeof(name), "%010zu.seg", index);
    return options_.data_dir + "/" + name;
  }

  /// Constructor-time recovery: reads segment files in order and replays
  /// every record through the index, so the last write per key wins and
  /// tombstones erase. Torn trailing records are discarded.
  void RecoverFromDisk() {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options_.data_dir, ec);
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(options_.data_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() == 14 && name.substr(10) == ".seg") names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      std::ifstream in(options_.data_dir + "/" + name, std::ios::binary);
      if (!in) continue;
      std::string data((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      segments_.push_back(data);
      const size_t segment_index = segments_.size() - 1;
      Slice scan(data);
      size_t offset = 0;
      while (!scan.empty()) {
        Slice record = scan;
        uint32_t crc;
        Slice key, body;
        uint64_t vlen_plus1;
        if (!GetFixed32(&record, &crc)) break;
        body = record;
        if (!GetLengthPrefixed(&record, &key) ||
            !GetVarint64(&record, &vlen_plus1)) {
          break;  // torn tail
        }
        if (vlen_plus1 > 0 && record.size() < vlen_plus1 - 1) break;
        const size_t value_bytes = vlen_plus1 == 0 ? 0 : vlen_plus1 - 1;
        const size_t record_size =
            4 + (record.data() - body.data()) + value_bytes;
        Slice full_body(data.data() + offset + 4, record_size - 4);
        if (Crc32(full_body) != crc) break;  // corruption: stop this segment
        const std::string k = key.ToString();
        auto it = index_.find(k);
        if (vlen_plus1 == 0) {
          if (it != index_.end()) {
            dead_bytes_ += static_cast<int64_t>(it->second.record_size);
            index_.erase(it);
          }
          dead_bytes_ += static_cast<int64_t>(record_size);
        } else {
          const Location loc{segment_index, offset, record_size};
          if (it != index_.end()) {
            dead_bytes_ += static_cast<int64_t>(it->second.record_size);
            it->second = loc;
          } else {
            index_[k] = loc;
          }
        }
        offset += record_size;
        scan = Slice(data.data() + offset, data.size() - offset);
      }
      // Drop any torn tail from memory and disk.
      if (offset < segments_.back().size()) {
        segments_.back().resize(offset);
        std::ofstream out(options_.data_dir + "/" + name,
                          std::ios::binary | std::ios::trunc);
        out.write(segments_.back().data(), offset);
      }
      persisted_bytes_.push_back(static_cast<int64_t>(offset));
    }
  }

  void PersistAppendLocked(size_t segment_index, const std::string& record) {
    if (options_.data_dir.empty()) return;
    while (persisted_bytes_.size() <= segment_index) {
      persisted_bytes_.push_back(0);
    }
    std::ofstream out(SegmentPath(segment_index),
                      std::ios::binary | std::ios::app);
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
    persisted_bytes_[segment_index] += static_cast<int64_t>(record.size());
  }

  void AppendLocked(Slice key, Slice value, bool tombstone) {
    std::string record_body;
    PutLengthPrefixed(&record_body, key);
    if (tombstone) {
      PutVarint64(&record_body, 0);
    } else {
      PutVarint64(&record_body, value.size() + 1);
      record_body.append(value.data(), value.size());
    }
    std::string record;
    PutFixed32(&record, Crc32(record_body));
    record += record_body;

    if (static_cast<int64_t>(segments_.back().size()) >=
        options_.segment_size_bytes) {
      segments_.emplace_back();
    }
    std::string& seg = segments_.back();
    const Location loc{segments_.size() - 1, seg.size(), record.size()};
    seg += record;
    PersistAppendLocked(segments_.size() - 1, record);

    const std::string k = key.ToString();
    auto it = index_.find(k);
    if (it != index_.end()) {
      dead_bytes_ += static_cast<int64_t>(it->second.record_size);
      if (tombstone) {
        dead_bytes_ += static_cast<int64_t>(loc.record_size);
        index_.erase(it);
      } else {
        it->second = loc;
      }
    } else if (tombstone) {
      dead_bytes_ += static_cast<int64_t>(loc.record_size);
    } else {
      index_[k] = loc;
    }
  }

  Status ReadRecordLocked(const Location& loc, std::string* key,
                          std::string* value) const {
    const std::string& seg = segments_[loc.segment];
    if (loc.offset + loc.record_size > seg.size()) {
      return Status::Corruption("record out of segment bounds");
    }
    Slice record(seg.data() + loc.offset, loc.record_size);
    uint32_t stored_crc;
    if (!GetFixed32(&record, &stored_crc)) {
      return Status::Corruption("truncated record header");
    }
    if (Crc32(record) != stored_crc) {
      return Status::Corruption("record checksum mismatch");
    }
    Slice k, body = record;
    if (!GetLengthPrefixed(&body, &k)) {
      return Status::Corruption("truncated key");
    }
    uint64_t vlen_plus1;
    if (!GetVarint64(&body, &vlen_plus1)) {
      return Status::Corruption("truncated value length");
    }
    if (vlen_plus1 == 0) return Status::NotFound("tombstone");
    if (body.size() < vlen_plus1 - 1) {
      return Status::Corruption("truncated value");
    }
    if (key != nullptr) *key = k.ToString();
    if (value != nullptr) value->assign(body.data(), vlen_plus1 - 1);
    return Status::OK();
  }

  /// Mirrors the engine's state into its registry gauges (counters for
  /// monotone events are incremented at the event site). Called after every
  /// mutation, so Snapshot() and GetStats never disagree.
  void UpdateGaugesLocked() {
    live_keys_->Set(static_cast<int64_t>(index_.size()));
    segment_count_->Set(static_cast<int64_t>(segments_.size()));
    int64_t total = 0;
    for (const auto& seg : segments_) total += static_cast<int64_t>(seg.size());
    total_bytes_gauge_->Set(total);
    dead_bytes_gauge_->Set(dead_bytes_);
  }

  void MaybeCompactLocked() {
    int64_t total = 0;
    for (const auto& seg : segments_) total += static_cast<int64_t>(seg.size());
    if (total > options_.segment_size_bytes &&
        static_cast<double>(dead_bytes_) >
            options_.compaction_garbage_ratio * static_cast<double>(total)) {
      CompactLocked();
    }
  }

  void CompactLocked() {
    std::vector<std::string> old_segments = std::move(segments_);
    std::map<std::string, Location> old_index = std::move(index_);
    segments_.clear();
    segments_.emplace_back();
    index_.clear();
    dead_bytes_ = 0;
    compactions_counter_->Increment();
    if (!options_.data_dir.empty()) {
      // Compaction rewrites everything: drop the old segment files.
      for (size_t i = 0; i < old_segments.size(); ++i) {
        std::error_code ec;
        std::filesystem::remove(SegmentPath(i), ec);
      }
      persisted_bytes_.clear();
    }
    for (const auto& [key, loc] : old_index) {
      // Read from the old segments directly.
      const std::string& seg = old_segments[loc.segment];
      Slice record(seg.data() + loc.offset, loc.record_size);
      uint32_t crc;
      GetFixed32(&record, &crc);
      Slice k;
      GetLengthPrefixed(&record, &k);
      uint64_t vlen_plus1;
      GetVarint64(&record, &vlen_plus1);
      Slice value(record.data(), vlen_plus1 - 1);
      AppendLocked(key, value, /*tombstone=*/false);
    }
  }

  const LogEngineOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Gauge* live_keys_ = nullptr;
  obs::Gauge* segment_count_ = nullptr;
  obs::Gauge* total_bytes_gauge_ = nullptr;
  obs::Gauge* dead_bytes_gauge_ = nullptr;
  obs::Counter* compactions_counter_ = nullptr;
  mutable std::mutex mu_;
  std::vector<std::string> segments_;
  std::vector<int64_t> persisted_bytes_;  // per segment (persistent mode)
  std::map<std::string, Location> index_;
  int64_t dead_bytes_ = 0;
};

}  // namespace

std::unique_ptr<LogStructuredEngine> NewLogStructuredEngine(
    const LogEngineOptions& options) {
  return std::make_unique<LogEngineImpl>(options);
}

std::unique_ptr<StorageEngine> NewLogStructuredEngine() {
  return NewLogStructuredEngine(LogEngineOptions{});
}

}  // namespace lidi::storage
