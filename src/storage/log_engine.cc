#include "storage/log_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/sync.h"

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::storage {

namespace {

// Record layout within a segment:
//   fixed32 crc (over the rest of the record)
//   varint  key length, key bytes
//   varint  value length + 1  (0 encodes a tombstone)
//   value bytes
class LogEngineImpl : public LogStructuredEngine {
 public:
  explicit LogEngineImpl(const LogEngineOptions& options)
      : options_(options),
        fs_(options.data_dir.empty()
                ? nullptr
                : (options.fs != nullptr ? options.fs : io::DefaultFs())) {
    if (options_.metrics == nullptr) {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    obs::MetricsRegistry* metrics =
        options_.metrics != nullptr ? options_.metrics : owned_metrics_.get();
    obs::Labels labels;
    if (!options_.metrics_scope.empty()) {
      labels.emplace_back("store", options_.metrics_scope);
    }
    live_keys_ = metrics->GetGauge("storage.live_keys", labels);
    segment_count_ = metrics->GetGauge("storage.segments", labels);
    total_bytes_gauge_ = metrics->GetGauge("storage.total_bytes", labels);
    dead_bytes_gauge_ = metrics->GetGauge("storage.dead_bytes", labels);
    compactions_counter_ = metrics->GetCounter("storage.compactions", labels);
    obs::Labels io_labels{{"layer", "storage.log_engine"}};
    if (!options_.metrics_scope.empty()) {
      io_labels.emplace_back("store", options_.metrics_scope);
    }
    io_sync_count_ = metrics->GetCounter("io.sync.count", io_labels);
    io_write_failed_ = metrics->GetCounter("io.write.failed", io_labels);
    io_torn_truncations_ =
        metrics->GetCounter("io.recovery.torn_truncations", io_labels);
    // Constructor: no concurrent access yet, but the *Locked() helpers
    // require mu_ held.
    MutexLock lock(&mu_);
    if (fs_ != nullptr) {
      RecoverFromDiskLocked();
    }
    if (segments_.empty()) segments_.emplace_back();
    UpdateGaugesLocked();
  }

  std::string name() const override { return "logstructured"; }

  obs::MetricsRegistry* metrics() const override {
    return options_.metrics != nullptr ? options_.metrics
                                       : owned_metrics_.get();
  }

  Status Get(Slice key, std::string* value) const override {
    MutexLock lock(&mu_);
    auto it = index_.find(key.ToString());
    if (it == index_.end()) return Status::NotFound();
    return ReadRecordLocked(it->second, nullptr, value);
  }

  Status Put(Slice key, Slice value) override {
    MutexLock lock(&mu_);
    Status s = AppendLocked(key, value, /*tombstone=*/false);
    if (s.ok()) MaybeCompactLocked();
    UpdateGaugesLocked();
    return s;
  }

  Status Delete(Slice key) override {
    MutexLock lock(&mu_);
    auto it = index_.find(key.ToString());
    if (it == index_.end()) return Status::OK();
    Status s = AppendLocked(key, Slice(), /*tombstone=*/true);
    if (s.ok()) MaybeCompactLocked();
    UpdateGaugesLocked();
    return s;
  }

  int64_t Count() const override {
    MutexLock lock(&mu_);
    return static_cast<int64_t>(index_.size());
  }

  void ForEach(const std::function<bool(Slice key, Slice value)>& visitor)
      const override {
    // Snapshot the index so the visitor can call back into the engine.
    std::map<std::string, Location> snapshot;
    {
      MutexLock lock(&mu_);
      snapshot = index_;
    }
    for (const auto& [key, loc] : snapshot) {
      std::string value;
      {
        MutexLock lock(&mu_);
        if (!ReadRecordLocked(loc, nullptr, &value).ok()) continue;
      }
      if (!visitor(key, value)) return;
    }
  }

  LogEngineStats GetStats() const override {
    // The registry instruments are the source of truth; this struct is the
    // legacy-shaped view of them.
    MutexLock lock(&mu_);
    LogEngineStats stats;
    stats.live_keys = live_keys_->Value();
    stats.segments = segment_count_->Value();
    stats.total_bytes = total_bytes_gauge_->Value();
    stats.dead_bytes = dead_bytes_gauge_->Value();
    stats.compactions = compactions_counter_->Value();
    return stats;
  }

  void CompactNow() override {
    MutexLock lock(&mu_);
    CompactLocked();
    UpdateGaugesLocked();
  }

  Status VerifyChecksums() const override {
    MutexLock lock(&mu_);
    for (const auto& [key, loc] : index_) {
      std::string k, v;
      Status s = ReadRecordLocked(loc, &k, &v);
      if (!s.ok()) return s;
      if (k != key) return Status::Corruption("index points at wrong key");
    }
    return Status::OK();
  }

  Status RecoveryStatus() const override {
    MutexLock lock(&mu_);
    return recovery_status_;
  }

 private:
  struct Location {
    size_t segment;
    size_t offset;
    size_t record_size;
  };

  std::string SegmentPath(size_t index) const {
    char name[32];
    std::snprintf(name, sizeof(name), "%010zu.seg", index);
    return options_.data_dir + "/" + name;
  }

  static std::string EncodeRecord(Slice key, Slice value, bool tombstone) {
    std::string body;
    PutLengthPrefixed(&body, key);
    if (tombstone) {
      PutVarint64(&body, 0);
    } else {
      PutVarint64(&body, value.size() + 1);
      body.append(value.data(), value.size());
    }
    std::string record;
    PutFixed32(&record, Crc32(body));
    record += body;
    return record;
  }

  /// Replays one segment's bytes into the index, stopping at the first
  /// torn or CRC-invalid record. Returns the clean prefix length.
  size_t ReplaySegmentLocked(const std::string& data, size_t segment_index)
      LIDI_REQUIRES(mu_) {
    Slice scan(data);
    size_t offset = 0;
    while (!scan.empty()) {
      Slice record = scan;
      uint32_t crc;
      Slice key, body;
      uint64_t vlen_plus1;
      if (!GetFixed32(&record, &crc)) break;
      body = record;
      if (!GetLengthPrefixed(&record, &key) ||
          !GetVarint64(&record, &vlen_plus1)) {
        break;  // torn tail
      }
      if (vlen_plus1 > 0 && record.size() < vlen_plus1 - 1) break;
      const size_t value_bytes = vlen_plus1 == 0 ? 0 : vlen_plus1 - 1;
      const size_t record_size =
          4 + (record.data() - body.data()) + value_bytes;
      Slice full_body(data.data() + offset + 4, record_size - 4);
      if (Crc32(full_body) != crc) break;  // corruption: stop this segment
      const std::string k = key.ToString();
      auto it = index_.find(k);
      if (vlen_plus1 == 0) {
        if (it != index_.end()) {
          dead_bytes_ += static_cast<int64_t>(it->second.record_size);
          index_.erase(it);
        }
        dead_bytes_ += static_cast<int64_t>(record_size);
      } else {
        const Location loc{segment_index, offset, record_size};
        if (it != index_.end()) {
          dead_bytes_ += static_cast<int64_t>(it->second.record_size);
          it->second = loc;
        } else {
          index_[k] = loc;
        }
      }
      offset += record_size;
      scan = Slice(data.data() + offset, data.size() - offset);
    }
    return offset;
  }

  /// Constructor-time recovery: reads segment files in file-number order
  /// and replays every record through the index, so the last write per key
  /// wins and tombstones erase. Torn trailing records are discarded.
  ///
  /// The in-memory segment index must keep matching the on-disk file names
  /// — segments_[i] is always file "<i>.seg". A missing or unreadable file
  /// therefore becomes an empty placeholder (its records are lost, which
  /// RecoveryStatus reports loudly) rather than being skipped, which would
  /// shift every later segment and make future appends land in the wrong
  /// file.
  void RecoverFromDiskLocked() LIDI_REQUIRES(mu_) {
    Status s = fs_->CreateDirs(options_.data_dir);
    if (!s.ok()) {
      recovery_status_ = s;
      return;
    }
    auto names = fs_->ListDir(options_.data_dir);
    if (!names.ok()) {
      recovery_status_ = names.status();
      return;
    }
    std::vector<std::pair<size_t, std::string>> files;  // (number, name)
    for (const std::string& name : names.value()) {
      if (name.size() == 14 && name.substr(10) == ".seg") {
        files.emplace_back(static_cast<size_t>(std::atoll(name.c_str())),
                           name);
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        // Staged compaction output from a crashed run; never made live.
        // discard-ok: best-effort cleanup; a surviving .tmp is never read
        // and the next compaction removes or overwrites it.
        (void)fs_->RemoveFile(options_.data_dir + "/" + name);
      }
    }
    std::sort(files.begin(), files.end());
    bool last_damaged = false;
    for (const auto& [number, name] : files) {
      last_damaged = false;
      while (segments_.size() < number) {
        // A hole in the numbering: that file's records are gone.
        if (recovery_status_.ok()) {
          recovery_status_ = Status::Corruption(
              "segment file missing: " + SegmentPath(segments_.size()));
        }
        segments_.emplace_back();
        persisted_bytes_.push_back(0);
      }
      const std::string path = options_.data_dir + "/" + name;
      std::string data;
      Status read_status = fs_->ReadFile(path, &data);
      if (!read_status.ok()) {
        if (recovery_status_.ok()) recovery_status_ = read_status;
        segments_.emplace_back();
        persisted_bytes_.push_back(0);
        // The real file still has bytes we could not read; never append to
        // it, or its contents and this placeholder diverge.
        last_damaged = true;
        continue;
      }
      const size_t segment_index = segments_.size();
      const size_t clean = ReplaySegmentLocked(data, segment_index);
      if (clean < data.size()) {
        io_torn_truncations_->Increment();
        data.resize(clean);
        Status truncate_status =
            fs_->TruncateFile(path, static_cast<int64_t>(clean));
        if (!truncate_status.ok()) {
          // Garbage stays on disk past `clean`; quarantine the file.
          if (recovery_status_.ok()) recovery_status_ = truncate_status;
          io_write_failed_->Increment();
          last_damaged = true;
        }
      }
      segments_.push_back(std::move(data));
      persisted_bytes_.push_back(static_cast<int64_t>(clean));
    }
    if (last_damaged) {
      // Quarantine the damaged tail file: appends move to a fresh segment.
      segments_.emplace_back();
      persisted_bytes_.push_back(0);
    }
  }

  /// Persists one record to the segment's file, applying the sync policy.
  /// All-or-nothing toward the caller: on any failure the file is rolled
  /// back to its pre-write length (or, if even that fails, *quarantine is
  /// set and the caller must stop appending to this segment), so on-disk
  /// bytes never diverge from the in-memory segment copy.
  Status PersistAppendLocked(size_t segment_index, const std::string& record,
                             bool* quarantine) LIDI_REQUIRES(mu_) {
    *quarantine = false;
    if (fs_ == nullptr) return Status::OK();
    while (persisted_bytes_.size() <= segment_index) {
      persisted_bytes_.push_back(0);
    }
    if (active_file_ == nullptr || active_file_index_ != segment_index) {
      active_file_.reset();
      auto file = fs_->OpenAppend(SegmentPath(segment_index));
      if (!file.ok()) {
        io_write_failed_->Increment();
        return file.status();
      }
      active_file_ = std::move(file.value());
      active_file_index_ = segment_index;
    }
    int64_t accepted = 0;
    Status s = active_file_->Append(record, &accepted);
    if (s.ok()) {
      unsynced_bytes_ += static_cast<int64_t>(record.size());
      const bool sync_due =
          options_.sync == io::SyncPolicy::kAlways ||
          (options_.sync == io::SyncPolicy::kInterval &&
           unsynced_bytes_ >= options_.sync_interval_bytes);
      if (sync_due) {
        // sync-choke-point: the engine's inline policy fdatasync.
        s = active_file_->Sync();
        if (s.ok()) {
          io_sync_count_->Increment();
          unsynced_bytes_ = 0;
        }
      }
    }
    if (!s.ok()) {
      io_write_failed_->Increment();
      // The write (or the sync acknowledging it) failed: the caller will
      // not apply the record in memory, so take it back off the disk too.
      active_file_.reset();
      unsynced_bytes_ = std::max<int64_t>(0, unsynced_bytes_ - accepted);
      Status t = fs_->TruncateFile(SegmentPath(segment_index),
                                   persisted_bytes_[segment_index]);
      if (!t.ok()) {
        // Unacked bytes are stuck in the file; recovery CRC-scans will
        // handle them, but no further append may bury them.
        persisted_bytes_[segment_index] += accepted;
        *quarantine = true;
      }
      return s;
    }
    persisted_bytes_[segment_index] += static_cast<int64_t>(record.size());
    return Status::OK();
  }

  /// Appends the record durably first (per the sync policy), then applies
  /// it to the in-memory segment and index — so an error return means the
  /// engine state is exactly as if the call never happened.
  Status AppendLocked(Slice key, Slice value, bool tombstone)
      LIDI_REQUIRES(mu_) {
    const std::string record = EncodeRecord(key, value, tombstone);
    if (static_cast<int64_t>(segments_.back().size()) >=
        options_.segment_size_bytes) {
      segments_.emplace_back();
      active_file_.reset();
    }
    const size_t segment_index = segments_.size() - 1;
    bool quarantine = false;
    Status s = PersistAppendLocked(segment_index, record, &quarantine);
    if (!s.ok()) {
      if (quarantine) {
        segments_.emplace_back();
        active_file_.reset();
      }
      return s;
    }

    std::string& seg = segments_[segment_index];
    const Location loc{segment_index, seg.size(), record.size()};
    seg += record;

    const std::string k = key.ToString();
    auto it = index_.find(k);
    if (it != index_.end()) {
      dead_bytes_ += static_cast<int64_t>(it->second.record_size);
      if (tombstone) {
        dead_bytes_ += static_cast<int64_t>(loc.record_size);
        index_.erase(it);
      } else {
        it->second = loc;
      }
    } else if (tombstone) {
      dead_bytes_ += static_cast<int64_t>(loc.record_size);
    } else {
      index_[k] = loc;
    }
    return Status::OK();
  }

  Status ReadRecordLocked(const Location& loc, std::string* key,
                          std::string* value) const LIDI_REQUIRES(mu_) {
    const std::string& seg = segments_[loc.segment];
    if (loc.offset + loc.record_size > seg.size()) {
      return Status::Corruption("record out of segment bounds");
    }
    Slice record(seg.data() + loc.offset, loc.record_size);
    uint32_t stored_crc;
    if (!GetFixed32(&record, &stored_crc)) {
      return Status::Corruption("truncated record header");
    }
    if (Crc32(record) != stored_crc) {
      return Status::Corruption("record checksum mismatch");
    }
    Slice k, body = record;
    if (!GetLengthPrefixed(&body, &k)) {
      return Status::Corruption("truncated key");
    }
    uint64_t vlen_plus1;
    if (!GetVarint64(&body, &vlen_plus1)) {
      return Status::Corruption("truncated value length");
    }
    if (vlen_plus1 == 0) return Status::NotFound("tombstone");
    if (body.size() < vlen_plus1 - 1) {
      return Status::Corruption("truncated value");
    }
    if (key != nullptr) *key = k.ToString();
    if (value != nullptr) value->assign(body.data(), vlen_plus1 - 1);
    return Status::OK();
  }

  /// Mirrors the engine's state into its registry gauges (counters for
  /// monotone events are incremented at the event site). Called after every
  /// mutation, so Snapshot() and GetStats never disagree.
  void UpdateGaugesLocked() LIDI_REQUIRES(mu_) {
    live_keys_->Set(static_cast<int64_t>(index_.size()));
    segment_count_->Set(static_cast<int64_t>(segments_.size()));
    int64_t total = 0;
    for (const auto& seg : segments_) total += static_cast<int64_t>(seg.size());
    total_bytes_gauge_->Set(total);
    dead_bytes_gauge_->Set(dead_bytes_);
  }

  void MaybeCompactLocked() LIDI_REQUIRES(mu_) {
    int64_t total = 0;
    for (const auto& seg : segments_) total += static_cast<int64_t>(seg.size());
    if (total > options_.segment_size_bytes &&
        static_cast<double>(dead_bytes_) >
            options_.compaction_garbage_ratio * static_cast<double>(total)) {
      CompactLocked();
    }
  }

  /// Compaction rewrites live records into fresh segments. Persistent mode
  /// stages the new segments as "<n>.seg.tmp" files (synced), then
  /// atomically renames them over the live files and fsyncs the directory —
  /// a crash mid-compaction leaves the old, complete generation in place
  /// (recovery deletes stray .tmp files). On a staging failure the
  /// compaction is abandoned and the engine keeps its current state.
  void CompactLocked() LIDI_REQUIRES(mu_) {
    // Rebuild in memory first; no I/O can fail here.
    std::vector<std::string> new_segments(1);
    std::map<std::string, Location> new_index;
    for (const auto& [key, loc] : index_) {
      const std::string& seg = segments_[loc.segment];
      Slice record(seg.data() + loc.offset, loc.record_size);
      uint32_t crc;
      GetFixed32(&record, &crc);
      Slice k;
      GetLengthPrefixed(&record, &k);
      uint64_t vlen_plus1;
      GetVarint64(&record, &vlen_plus1);
      const Slice value(record.data(), vlen_plus1 - 1);
      const std::string rec = EncodeRecord(key, value, /*tombstone=*/false);
      if (static_cast<int64_t>(new_segments.back().size()) >=
          options_.segment_size_bytes) {
        new_segments.emplace_back();
      }
      new_index[key] = Location{new_segments.size() - 1,
                                new_segments.back().size(), rec.size()};
      new_segments.back() += rec;
    }

    std::vector<int64_t> new_persisted;
    if (fs_ != nullptr) {
      active_file_.reset();
      const size_t old_files = persisted_bytes_.size();
      // Stage.
      for (size_t i = 0; i < new_segments.size(); ++i) {
        const std::string tmp = SegmentPath(i) + ".tmp";
        // A stale .tmp from a crashed run must not survive into this
        // generation: OpenAppend below is O_APPEND without O_TRUNC, so
        // leftover bytes would become a garbage prefix of the staged
        // segment — which then gets synced and renamed live. If neither
        // remove nor truncate can clear it, abandon the compaction.
        if (fs_->FileExists(tmp) && !fs_->RemoveFile(tmp).ok()) {
          if (!fs_->TruncateFile(tmp, 0).ok()) {
            io_write_failed_->Increment();
            return;
          }
        }
        auto file = fs_->OpenAppend(tmp);
        Status s = file.ok() ? file.value()->Append(new_segments[i], nullptr)
                             : file.status();
        // sync-choke-point: compaction staging files are synced before the
        // generation pointer flips to them.
        if (s.ok()) s = file.value()->Sync();
        if (file.ok()) {
          // A failed close after a clean sync still abandons the staging
          // run: the handle's state is unknown and the flip must not trust
          // it.
          Status close_status = file.value()->Close();
          if (s.ok()) s = close_status;
        }
        if (!s.ok()) {
          // Abandon: remove staged files, keep the current generation.
          io_write_failed_->Increment();
          for (size_t j = 0; j <= i; ++j) {
            // discard-ok: best-effort cleanup of abandoned staging files; a
            // leftover .tmp is removed by the next recovery or compaction.
            (void)fs_->RemoveFile(SegmentPath(j) + ".tmp");
          }
          return;
        }
        io_sync_count_->Increment();
      }
      // Swap: atomic per file; then drop the old generation's surplus.
      for (size_t i = 0; i < new_segments.size(); ++i) {
        Status s = fs_->RenameFile(SegmentPath(i) + ".tmp", SegmentPath(i));
        if (!s.ok()) {
          io_write_failed_->Increment();
          if (recovery_status_.ok()) recovery_status_ = s;
        }
      }
      for (size_t i = new_segments.size(); i < old_files; ++i) {
        Status s = fs_->RemoveFile(SegmentPath(i));
        if (!s.ok()) {
          // A surviving surplus segment is not just litter: recovery reads
          // every N.seg in order, so the old generation's records — deleted
          // keys included — would be resurrected on the next restart.
          // Truncating the stale file to empty is the cheap way to defuse
          // it; only if that also fails is the engine marked degraded.
          Status truncated = fs_->TruncateFile(SegmentPath(i), 0);
          if (!truncated.ok()) {
            io_write_failed_->Increment();
            if (recovery_status_.ok()) recovery_status_ = truncated;
          }
        }
      }
      Status dir_sync = fs_->SyncDir(options_.data_dir);
      if (!dir_sync.ok()) {
        // The renames may not survive power loss: the directory could come
        // back with any mix of old and new generation files. Surface it —
        // claiming the compaction durable here would be a silent lie.
        io_write_failed_->Increment();
        if (recovery_status_.ok()) recovery_status_ = dir_sync;
      }
      for (const auto& seg : new_segments) {
        new_persisted.push_back(static_cast<int64_t>(seg.size()));
      }
      unsynced_bytes_ = 0;
    }

    segments_ = std::move(new_segments);
    index_ = std::move(new_index);
    persisted_bytes_ = std::move(new_persisted);
    dead_bytes_ = 0;
    compactions_counter_->Increment();
  }

  const LogEngineOptions options_;
  io::Fs* const fs_;  // null = in-memory only
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Gauge* live_keys_ = nullptr;
  obs::Gauge* segment_count_ = nullptr;
  obs::Gauge* total_bytes_gauge_ = nullptr;
  obs::Gauge* dead_bytes_gauge_ = nullptr;
  obs::Counter* compactions_counter_ = nullptr;
  obs::Counter* io_sync_count_ = nullptr;
  obs::Counter* io_write_failed_ = nullptr;
  obs::Counter* io_torn_truncations_ = nullptr;
  mutable Mutex mu_{"storage.log_engine.writer", lockrank::kLogEngineWriter};
  std::vector<std::string> segments_ LIDI_GUARDED_BY(mu_);
  std::vector<int64_t> persisted_bytes_
      LIDI_GUARDED_BY(mu_);  // per segment (persistent mode)
  std::map<std::string, Location> index_ LIDI_GUARDED_BY(mu_);
  int64_t dead_bytes_ LIDI_GUARDED_BY(mu_) = 0;
  Status recovery_status_ LIDI_GUARDED_BY(mu_);
  /// Cached append handle for the active segment's file.
  std::unique_ptr<io::WritableFile> active_file_ LIDI_GUARDED_BY(mu_);
  size_t active_file_index_ LIDI_GUARDED_BY(mu_) = 0;
  int64_t unsynced_bytes_ LIDI_GUARDED_BY(mu_) = 0;
};

}  // namespace

std::unique_ptr<LogStructuredEngine> NewLogStructuredEngine(
    const LogEngineOptions& options) {
  return std::make_unique<LogEngineImpl>(options);
}

std::unique_ptr<StorageEngine> NewLogStructuredEngine() {
  return NewLogStructuredEngine(LogEngineOptions{});
}

}  // namespace lidi::storage
