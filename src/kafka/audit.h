#ifndef LIDI_KAFKA_AUDIT_H_
#define LIDI_KAFKA_AUDIT_H_

#include <map>
#include <string>

#include "common/clock.h"
#include "common/sync.h"
#include "common/status.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"

namespace lidi::kafka {

/// The pipeline auditing system of Section V.D: each producer periodically
/// publishes a monitoring event recording the number of messages it produced
/// per topic within a fixed time window (to a dedicated audit topic);
/// consumers count what they received and validate the counts to prove no
/// data was lost along the pipeline.
constexpr char kAuditTopic[] = "_audit";

/// A monitoring event: "producer published `count` messages to `topic` in
/// the window starting at `window_start_ms`".
struct AuditEvent {
  std::string producer;
  std::string topic;
  int64_t window_start_ms = 0;
  int64_t count = 0;

  std::string Encode() const;
  static Result<AuditEvent> Decode(Slice input);
};

/// Producer-side audit tracker. Call RecordProduced for each message; call
/// MaybeEmit (or ForceEmit at shutdown) to publish monitoring events for
/// closed windows to the audit topic through `producer`.
class ProducerAudit {
 public:
  ProducerAudit(std::string producer_name, Producer* producer,
                const Clock* clock, int64_t window_ms = 60'000)
      : name_(std::move(producer_name)),
        producer_(producer),
        clock_(clock),
        window_ms_(window_ms) {}

  void RecordProduced(const std::string& topic);

  /// Emits monitoring events for windows that have closed. Returns the
  /// number of events published.
  int MaybeEmit();
  /// Emits everything regardless of window age (shutdown path).
  int ForceEmit();

 private:
  int Emit(bool force) LIDI_EXCLUDES(mu_);

  const std::string name_;
  Producer* const producer_;
  const Clock* const clock_;
  const int64_t window_ms_;
  /// Guards the window counters; never held across the audit-topic produce
  /// RPC (Emit drains under the lock, sends outside, re-merges failures).
  Mutex mu_{"kafka.audit"};
  // (topic, window start) -> count
  std::map<std::pair<std::string, int64_t>, int64_t> pending_
      LIDI_GUARDED_BY(mu_);
};

/// Consumer-side validation: counts messages actually received per topic
/// and compares against the producers' monitoring events.
class AuditValidator {
 public:
  void RecordConsumed(const std::string& topic, int64_t count) {
    consumed_[topic] += count;
  }

  /// Ingests monitoring events fetched from the audit topic.
  Status IngestAuditMessages(const std::vector<Message>& messages);

  /// Produced count claimed by monitoring events for a topic.
  int64_t ProducedCount(const std::string& topic) const;
  int64_t ConsumedCount(const std::string& topic) const;

  /// True when consumed == produced for the topic (no loss, no dupes).
  bool Validate(const std::string& topic) const {
    return ProducedCount(topic) == ConsumedCount(topic);
  }

 private:
  std::map<std::string, int64_t> produced_;
  std::map<std::string, int64_t> consumed_;
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_AUDIT_H_
