#include "kafka/message.h"

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::kafka {

void AppendMessageEntry(Slice payload, CompressionCodec codec,
                        std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(payload.size() + 5));
  out->push_back(static_cast<char>(codec));
  PutFixed32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

void MessageSetBuilder::Add(Slice payload) {
  AppendMessageEntry(payload, CompressionCodec::kNone, &plain_);
  ++count_;
}

std::string MessageSetBuilder::Build() {
  std::string out;
  if (codec_ == CompressionCodec::kNone) {
    out = std::move(plain_);
  } else {
    std::string compressed;
    Status s = Compress(codec_, plain_, &compressed);
    if (s.ok()) {
      AppendMessageEntry(compressed, codec_, &out);
    } else {
      // A failed compression must not ship a truncated deflate stream as if
      // it were the batch. plain_ already holds well-formed entries, so the
      // uncompressed form is wire-compatible — just bigger.
      out = std::move(plain_);
    }
  }
  plain_.clear();
  count_ = 0;
  return out;
}

namespace {

/// Parses one entry header at the front of *data. Returns false when the
/// range holds no complete entry. On success strips the entry from *data.
bool TakeEntry(Slice* data, uint8_t* attributes, Slice* payload,
               int64_t* entry_size, Status* status) {
  if (data->size() < 4) return false;
  const uint32_t length = DecodeFixed32(data->data());
  if (data->size() < 4 + static_cast<size_t>(length)) return false;
  if (length < 5) {
    *status = Status::Corruption("message entry shorter than header");
    return false;
  }
  *attributes = static_cast<uint8_t>((*data)[4]);
  const uint32_t crc = DecodeFixed32(data->data() + 5);
  *payload = Slice(data->data() + 9, length - 5);
  if (Crc32(*payload) != crc) {
    *status = Status::Corruption("message crc mismatch");
    return false;
  }
  *entry_size = 4 + static_cast<int64_t>(length);
  data->RemovePrefix(static_cast<size_t>(*entry_size));
  return true;
}

}  // namespace

MessageSetIterator::MessageSetIterator(Slice data, int64_t base_offset)
    : data_(data), offset_(base_offset), next_fetch_offset_(base_offset) {}

bool MessageSetIterator::Next(Message* message) {
  MessageView view;
  if (!NextView(&view)) return false;
  message->payload.assign(view.payload.data(), view.payload.size());
  message->offset = view.offset;
  return true;
}

bool MessageSetIterator::NextView(MessageView* view) {
  for (;;) {
    // Drain the current decompressed wrapper first.
    if (inner_pos_ < inner_buffer_.size()) {
      Slice inner(inner_buffer_.data() + inner_pos_,
                  inner_buffer_.size() - inner_pos_);
      uint8_t attributes;
      Slice payload;
      int64_t entry_size;
      Status entry_status;
      if (TakeEntry(&inner, &attributes, &payload, &entry_size,
                    &entry_status)) {
        inner_pos_ = inner_buffer_.size() - inner.size();
        view->payload = payload;  // into inner_buffer_; valid until next call
        view->offset = inner_wrapper_offset_;
        return true;
      }
      if (!entry_status.ok()) {
        status_ = entry_status;
        return false;
      }
      inner_buffer_.clear();
      inner_pos_ = 0;
    }

    uint8_t attributes;
    Slice payload;
    int64_t entry_size;
    Status entry_status;
    if (!TakeEntry(&data_, &attributes, &payload, &entry_size,
                   &entry_status)) {
      if (!entry_status.ok()) status_ = entry_status;
      return false;  // end of range (or partial trailing entry)
    }
    const int64_t entry_offset = offset_;
    offset_ += entry_size;
    next_fetch_offset_ = offset_;
    const CompressionCodec codec = static_cast<CompressionCodec>(attributes);
    if (codec == CompressionCodec::kNone) {
      view->payload = payload;  // zero-copy: points into the iterated range
      view->offset = entry_offset;
      return true;
    }
    // Wrapper entry: decompress and iterate its inner messages.
    inner_buffer_.clear();
    inner_pos_ = 0;
    Status s = Decompress(codec, payload, &inner_buffer_);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    inner_wrapper_offset_ = entry_offset;
  }
}

Result<int64_t> CountMessages(Slice data) {
  MessageSetIterator it(data, 0);
  Message message;
  int64_t count = 0;
  while (it.Next(&message)) ++count;
  if (!it.status().ok()) return it.status();
  return count;
}

}  // namespace lidi::kafka
