#ifndef LIDI_KAFKA_REPLICATION_H_
#define LIDI_KAFKA_REPLICATION_H_

#include <string>
#include <vector>

#include "kafka/broker.h"
#include "net/transport.h"
#include "zk/zookeeper.h"

namespace lidi::kafka {

/// Intra-cluster replication — the paper's named future work for Kafka
/// (Section V.D: "One of the most important features that we plan to add in
/// the future is intra-cluster replication"). This module implements the
/// leader/follower design Kafka later shipped:
///
///  - each partition of a replicated topic has an ordered replica list of
///    brokers and a current leader, both kept in Zookeeper;
///  - producers send to the leader; consumers fetch from the leader;
///  - followers run a ReplicaFetcher that pulls the leader's log from their
///    own log-end offset and appends the raw bytes — follower logs are
///    byte-identical prefixes of the leader's log, so offsets remain valid
///    across failovers;
///  - on leader death, the most caught-up live follower is promoted.
///
/// Durability semantics match acks=1: messages the leader acknowledged but
/// no follower fetched before the crash are lost; everything fetched
/// survives.
class ReplicatedTopicManager {
 public:
  ReplicatedTopicManager(zk::ZooKeeper* zookeeper, net::Transport* network,
                         std::string zk_root = "/kafka");

  /// Creates `topic` with `partitions` partitions replicated over
  /// `replica_brokers` (each broker hosts every partition; the leader of
  /// partition p is initially replica_brokers[p % n]). The brokers must
  /// exist and be passed in so their local logs get created.
  Status CreateReplicatedTopic(const std::string& topic, int partitions,
                               const std::vector<Broker*>& replica_brokers);

  /// Current leader broker id of a partition; NotFound if unknown.
  Result<int> LeaderOf(const std::string& topic, int partition) const;

  /// Replica broker ids of a partition.
  Result<std::vector<int>> ReplicasOf(const std::string& topic,
                                      int partition) const;

  /// Produce to / fetch from the partition's current leader.
  Result<int64_t> ProduceToLeader(const std::string& from,
                                  const std::string& topic, int partition,
                                  Slice message_set);
  Result<std::string> FetchFromLeader(const std::string& from,
                                      const std::string& topic, int partition,
                                      int64_t offset, int64_t max_bytes);

  /// Scans all partitions of `topic`; every partition whose leader is no
  /// longer alive (its ephemeral broker registration vanished) gets the
  /// most caught-up live follower promoted. Returns leaderships moved.
  Result<int> FailoverDeadLeaders(const std::string& topic);

  /// Begins moving a partition's leadership to `target` (live reassignment,
  /// DESIGN.md §13): creates the topic on the target broker if needed, adds
  /// it to the replica list, and records the intent in Zookeeper
  /// (<partition>/reassign). Leadership does NOT move yet — the target
  /// first catches up via the ordinary ReplicaFetcher pull path, exactly
  /// like any follower. AlreadyExists if a reassignment is already pending.
  Status BeginReassignment(const std::string& topic, int partition,
                           Broker* target);

  /// Completes a pending reassignment iff the target's flushed log end has
  /// caught up to the leader's (follower-catch-up-before-leadership-
  /// transfer). Returns true when leadership moved, false when the target
  /// is still behind (sync and call again), NotFound when nothing is
  /// pending.
  Result<bool> TryCompleteReassignment(const std::string& topic,
                                       int partition);

  /// Pending reassignment target broker id, or NotFound.
  Result<int> ReassignmentTargetOf(const std::string& topic,
                                   int partition) const;

  /// TEST-ONLY kill switch: when true, TryCompleteReassignment skips the
  /// catch-up equality gate and moves leadership immediately. Messages the
  /// old leader acked but the target never fetched are then stranded —
  /// followers only pull FROM the leader, so nothing ever back-fills the
  /// new leader. The rebalance acceptance tests flip this to prove the
  /// catch-up gate is load-bearing (ISSUE 10). Never set in production.
  void set_allow_unsafe_transfer(bool allow) {
    allow_unsafe_transfer_ = allow;
  }

 private:
  std::string PartitionPath(const std::string& topic, int partition) const;
  bool BrokerAlive(int broker_id) const;
  /// Flushed log end at a broker, or -1 when unreachable.
  int64_t LogEndAt(int broker_id, const std::string& topic,
                   int partition) const;

  zk::ZooKeeper* const zookeeper_;
  net::Transport* const network_;
  const std::string zk_root_;
  zk::SessionId session_;
  // See set_allow_unsafe_transfer — test-only, single-threaded harness use.
  bool allow_unsafe_transfer_ = false;
};

/// The follower side: keeps one broker's copies of a replicated topic in
/// sync by pulling from the current leaders. Run per broker (in production,
/// a thread; here, invoked by tests/benches).
class ReplicaFetcher {
 public:
  ReplicaFetcher(Broker* broker, ReplicatedTopicManager* manager,
                 net::Transport* network)
      : broker_(broker), manager_(manager), network_(network) {}

  /// One sync pass over all partitions of `topic` this broker follows.
  /// Returns bytes copied. Followers append the leader's raw bytes at the
  /// exact same offsets, then flush, keeping logs byte-identical.
  Result<int64_t> SyncOnce(const std::string& topic, int partitions);

 private:
  Broker* const broker_;
  ReplicatedTopicManager* const manager_;
  net::Transport* const network_;
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_REPLICATION_H_
