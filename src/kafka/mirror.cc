#include "kafka/mirror.h"

namespace lidi::kafka {

MirrorMaker::MirrorMaker(const std::string& name, const std::string& topic,
                         zk::ZooKeeper* zookeeper, net::Transport* network,
                         std::string source_root, std::string target_root,
                         CompressionCodec codec)
    : topic_(topic) {
  ConsumerOptions consumer_options;
  consumer_options.zk_root = std::move(source_root);
  consumer_ = std::make_unique<Consumer>(name + "-embedded-consumer",
                                         name + "-mirror-group", zookeeper,
                                         network, consumer_options);
  ProducerOptions producer_options;
  producer_options.zk_root = std::move(target_root);
  producer_options.codec = codec;
  producer_ =
      std::make_unique<Producer>(name + "-producer", zookeeper, network,
                                 producer_options);
  // A failed subscription would otherwise make the mirror a silent no-op
  // (Poll of an unsubscribed topic returns empty batches, which PumpToHead
  // reads as "caught up"). Keep the status; PumpOnce retries and surfaces it.
  subscribe_status_ = consumer_->Subscribe(topic);
}

Result<int64_t> MirrorMaker::PumpOnce() {
  if (!subscribe_status_.ok()) {
    subscribe_status_ = consumer_->Subscribe(topic_);
    if (!subscribe_status_.ok()) return subscribe_status_;
  }
  auto messages = consumer_->Poll(topic_);
  if (!messages.ok()) return messages.status();
  for (const Message& message : messages.value()) {
    Status s = producer_->Send(topic_, message.payload);
    if (!s.ok()) return s;
  }
  Status s = producer_->Flush();
  if (!s.ok()) return s;
  return static_cast<int64_t>(messages.value().size());
}

Result<int64_t> MirrorMaker::PumpToHead(int max_rounds) {
  int64_t total = 0;
  int idle_rounds = 0;
  for (int i = 0; i < max_rounds && idle_rounds < 3; ++i) {
    auto n = PumpOnce();
    if (!n.ok()) return n;
    total += n.value();
    idle_rounds = n.value() == 0 ? idle_rounds + 1 : 0;
  }
  return total;
}

}  // namespace lidi::kafka
