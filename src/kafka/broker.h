#ifndef LIDI_KAFKA_BROKER_H_
#define LIDI_KAFKA_BROKER_H_

#include <map>
#include <memory>
#include <string>

#include "common/overload.h"
#include "common/sync.h"

#include "common/clock.h"
#include "kafka/log.h"
#include "net/address.h"
#include "net/transport.h"
#include "zk/zookeeper.h"

namespace lidi::kafka {

/// How the broker moves bytes from the log to the consumer socket — the
/// efficient-transfer ablation of Section V.B. kFourCopy models the typical
/// path (page cache -> application buffer -> kernel socket buffer -> NIC: 4
/// copies, 2 syscalls), and performs those copies for real so the bench
/// measures actual memory bandwidth. kSendfile models the sendfile API
/// (direct file channel -> socket channel): the broker hands out a pinned
/// view of the log's segment buffer and the CPU copies nothing — the two
/// remaining transfers of real sendfile are DMA, not memcpy, so they appear
/// in bytes_avoided rather than bytes_copied.
enum class TransferMode { kFourCopy, kSendfile };

/// Copy accounting for the fetch path. A *view* over the broker's registry
/// instruments ("kafka.fetch.bytes_copied{broker=...}" et al.):
/// transfer_stats() materializes it, and the identical numbers appear in
/// the registry's Snapshot().
struct TransferStats {
  int64_t bytes_copied = 0;   // real memcpy traffic incurred serving fetches
  int64_t bytes_avoided = 0;  // copy traffic the four-copy path would have
                              // incurred that the zero-copy path skipped
  int64_t syscalls = 0;       // simulated syscall count
  int64_t fetches = 0;
};

struct BrokerOptions {
  LogOptions log;
  TransferMode transfer_mode = TransferMode::kSendfile;
  /// Zookeeper chroot for this cluster; a second cluster (e.g. the offline
  /// mirror, Section V.D) uses a different root.
  std::string zk_root = "/kafka";

  /// Per-client request-rate quotas on the RPC paths (kafka.produce /
  /// kafka.fetch), token-bucket enforced per caller identity
  /// (net::CallerIdentity). A request over quota is rejected before any
  /// decode or log work with Status::Overloaded — the survival mechanism
  /// that keeps one hot producer from starving the broker (DESIGN.md §11).
  /// <= 0 disables. Direct in-process Produce/FetchPinned calls are not
  /// quota'd (they are the caller's own process).
  double quota_produce_per_sec = 0;
  double quota_fetch_per_sec = 0;
  /// Bucket capacity in requests (allowed burst above the sustained rate).
  double quota_burst = 16;
};

/// A Kafka broker (paper Section V.A): stores the partitions of topics as
/// logs, serves producer appends and consumer pulls. Brokers keep no
/// consumer state (V.B) — consumers track their own offsets.
///
/// On startup the broker registers itself in Zookeeper
/// (/kafka/brokers/ids/<id>, ephemeral) and advertises topic partition
/// counts under /kafka/brokers/topics/<topic>/<id>.
///
/// RPC: kafka.produce {topic, partition, set bytes},
///      kafka.fetch {topic, partition, offset, max_bytes} -> set bytes.
class Broker {
 public:
  Broker(int id, zk::ZooKeeper* zookeeper, net::Transport* network,
         const Clock* clock, BrokerOptions options = {});
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  int id() const { return id_; }
  const net::Address& address() const { return address_; }

  /// Creates a topic with `partitions` partitions on this broker and
  /// advertises it in Zookeeper.
  Status CreateTopic(const std::string& topic, int partitions);

  /// Direct (in-process) produce/fetch paths; the RPC handlers forward here.
  Result<int64_t> Produce(const std::string& topic, int partition,
                          Slice message_set);

  /// Zero-copy fetch: in kSendfile mode the result is a pinned view into
  /// the partition log's segment buffer (no payload bytes move); in
  /// kFourCopy mode the intermediate buffer copies are performed for real
  /// and the result owns the final "socket buffer".
  Result<PinnedSlice> FetchPinned(const std::string& topic, int partition,
                                  int64_t offset, int64_t max_bytes);

  /// Copying convenience wrapper over FetchPinned (legacy API).
  Result<std::string> Fetch(const std::string& topic, int partition,
                            int64_t offset, int64_t max_bytes);

  PartitionLog* GetLog(const std::string& topic, int partition);

  /// Flushes every partition log (tests; production uses the flush policy).
  void FlushAll();

  /// Runs the retention janitor over all logs. Returns segments deleted.
  int EnforceRetention();

  TransferStats transfer_stats() const;

  /// Quota kill switch (the sim harness ends admission pressure before
  /// settling; see PerClientQuota::set_enforcing).
  void SetQuotaEnforcing(bool enforcing);
  int64_t quota_rejects() const;

  /// Simulated crash/restart: deregisters from zk (ephemeral vanishes).
  void Shutdown();

 private:
  Result<std::string> HandleProduce(Slice request);
  Result<PinnedSlice> HandleFetch(Slice request);

  /// Shared quota gate for the RPC handlers: admits the ambient caller
  /// against `quota`, or returns the Overloaded rejection to send back.
  Status AdmitClient(PerClientQuota* quota, const char* verb);

  /// Creates the /brokers zk skeleton plus this broker's ephemeral id node
  /// (the advertisement producers/consumers discover brokers by).
  Status RegisterInZk();

  const int id_;
  zk::ZooKeeper* const zookeeper_;
  net::Transport* const network_;
  const Clock* const clock_;
  const BrokerOptions options_;
  const net::Address address_;
  // tsa-ok: written once during construction, immutable afterwards.
  zk::SessionId session_;

  /// Registry instruments (from network->metrics()); the stats hot path is
  /// relaxed atomics, no broker mutex.
  obs::Counter* fetch_bytes_copied_;
  obs::Counter* fetch_bytes_avoided_;
  obs::Counter* fetch_syscalls_;
  obs::Counter* fetch_count_;
  obs::Counter* produce_count_;
  obs::Counter* produce_messages_;
  obs::Counter* produce_bytes_;
  obs::Counter* quota_rejects_;

  /// Per-client token buckets for the RPC paths (see BrokerOptions quotas).
  PerClientQuota produce_quota_;
  PerClientQuota fetch_quota_;

  /// Guards the partition map only; held across per-log calls in the
  /// flush/retention sweeps (broker -> log writer -> snapshot order).
  mutable Mutex mu_{"kafka.broker.partitions",
                    lockrank::kKafkaBrokerPartitions};
  std::map<std::pair<std::string, int>, std::unique_ptr<PartitionLog>>
      logs_ LIDI_GUARDED_BY(mu_);
  /// Non-OK when zk registration failed at construction; CreateTopic
  /// retries it before advertising anything.
  Status zk_registration_ LIDI_GUARDED_BY(mu_);
};

/// Produce/fetch request codecs (shared with producer/consumer).
void EncodeProduceRequest(Slice topic, int partition, Slice message_set,
                          std::string* out);
Status DecodeProduceRequest(Slice input, std::string* topic, int* partition,
                            std::string* message_set);
void EncodeFetchRequest(Slice topic, int partition, int64_t offset,
                        int64_t max_bytes, std::string* out);
Status DecodeFetchRequest(Slice input, std::string* topic, int* partition,
                          int64_t* offset, int64_t* max_bytes);

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_BROKER_H_
