#include "kafka/audit.h"

#include "common/coding.h"

namespace lidi::kafka {

std::string AuditEvent::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, producer);
  PutLengthPrefixed(&out, topic);
  PutVarint64(&out, static_cast<uint64_t>(window_start_ms));
  PutVarint64(&out, static_cast<uint64_t>(count));
  return out;
}

Result<AuditEvent> AuditEvent::Decode(Slice input) {
  AuditEvent event;
  Slice producer, topic;
  uint64_t window, count;
  if (!GetLengthPrefixed(&input, &producer) ||
      !GetLengthPrefixed(&input, &topic) || !GetVarint64(&input, &window) ||
      !GetVarint64(&input, &count)) {
    return Status::Corruption("truncated audit event");
  }
  event.producer = producer.ToString();
  event.topic = topic.ToString();
  event.window_start_ms = static_cast<int64_t>(window);
  event.count = static_cast<int64_t>(count);
  return event;
}

void ProducerAudit::RecordProduced(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t window = clock_->NowMillis() / window_ms_ * window_ms_;
  pending_[{topic, window}]++;
}

int ProducerAudit::EmitLocked(bool force) {
  const int64_t current_window = clock_->NowMillis() / window_ms_ * window_ms_;
  int emitted = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto& [key, count] = *it;
    if (!force && key.second >= current_window) {
      ++it;
      continue;  // window still open
    }
    AuditEvent event{name_, key.first, key.second, count};
    if (producer_->Send(kAuditTopic, event.Encode()).ok()) {
      ++emitted;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return emitted;
}

int ProducerAudit::MaybeEmit() {
  std::lock_guard<std::mutex> lock(mu_);
  return EmitLocked(/*force=*/false);
}

int ProducerAudit::ForceEmit() {
  std::lock_guard<std::mutex> lock(mu_);
  return EmitLocked(/*force=*/true);
}

Status AuditValidator::IngestAuditMessages(
    const std::vector<Message>& messages) {
  for (const Message& message : messages) {
    auto event = AuditEvent::Decode(message.payload);
    if (!event.ok()) return event.status();
    produced_[event.value().topic] += event.value().count;
  }
  return Status::OK();
}

int64_t AuditValidator::ProducedCount(const std::string& topic) const {
  auto it = produced_.find(topic);
  return it == produced_.end() ? 0 : it->second;
}

int64_t AuditValidator::ConsumedCount(const std::string& topic) const {
  auto it = consumed_.find(topic);
  return it == consumed_.end() ? 0 : it->second;
}

}  // namespace lidi::kafka
