#include "kafka/audit.h"

#include <vector>

#include "common/coding.h"

namespace lidi::kafka {

std::string AuditEvent::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, producer);
  PutLengthPrefixed(&out, topic);
  PutVarint64(&out, static_cast<uint64_t>(window_start_ms));
  PutVarint64(&out, static_cast<uint64_t>(count));
  return out;
}

Result<AuditEvent> AuditEvent::Decode(Slice input) {
  AuditEvent event;
  Slice producer, topic;
  uint64_t window, count;
  if (!GetLengthPrefixed(&input, &producer) ||
      !GetLengthPrefixed(&input, &topic) || !GetVarint64(&input, &window) ||
      !GetVarint64(&input, &count)) {
    return Status::Corruption("truncated audit event");
  }
  event.producer = producer.ToString();
  event.topic = topic.ToString();
  event.window_start_ms = static_cast<int64_t>(window);
  event.count = static_cast<int64_t>(count);
  return event;
}

void ProducerAudit::RecordProduced(const std::string& topic) {
  MutexLock lock(&mu_);
  const int64_t window = clock_->NowMillis() / window_ms_ * window_ms_;
  pending_[{topic, window}]++;
}

int ProducerAudit::Emit(bool force) {
  const int64_t current_window = clock_->NowMillis() / window_ms_ * window_ms_;
  // Drain the closed windows under the lock, publish them after releasing
  // it: Send() is a broker RPC (via the producer's own lock), and holding
  // the audit mutex across it would stall every concurrent RecordProduced.
  std::vector<AuditEvent> to_send;
  {
    MutexLock lock(&mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      const auto& [key, count] = *it;
      if (!force && key.second >= current_window) {
        ++it;
        continue;  // window still open
      }
      to_send.push_back(AuditEvent{name_, key.first, key.second, count});
      it = pending_.erase(it);
    }
  }
  int emitted = 0;
  std::vector<AuditEvent> failed;
  for (const AuditEvent& event : to_send) {
    if (producer_->Send(kAuditTopic, event.Encode()).ok()) {
      ++emitted;
    } else {
      failed.push_back(event);
    }
  }
  if (!failed.empty()) {
    // Merge unpublished counts back (the window may have accumulated more
    // records in the meantime; += preserves both).
    MutexLock lock(&mu_);
    for (const AuditEvent& event : failed) {
      pending_[{event.topic, event.window_start_ms}] += event.count;
    }
  }
  return emitted;
}

int ProducerAudit::MaybeEmit() { return Emit(/*force=*/false); }

int ProducerAudit::ForceEmit() { return Emit(/*force=*/true); }

Status AuditValidator::IngestAuditMessages(
    const std::vector<Message>& messages) {
  for (const Message& message : messages) {
    auto event = AuditEvent::Decode(message.payload);
    if (!event.ok()) return event.status();
    produced_[event.value().topic] += event.value().count;
  }
  return Status::OK();
}

int64_t AuditValidator::ProducedCount(const std::string& topic) const {
  auto it = produced_.find(topic);
  return it == produced_.end() ? 0 : it->second;
}

int64_t AuditValidator::ConsumedCount(const std::string& topic) const {
  auto it = consumed_.find(topic);
  return it == consumed_.end() ? 0 : it->second;
}

}  // namespace lidi::kafka
