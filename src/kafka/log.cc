#include "kafka/log.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/coding.h"

namespace lidi::kafka {

std::string PartitionLog::SegmentPath(int64_t base_offset) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%020lld.log",
                static_cast<long long>(base_offset));
  return options_.data_dir + "/" + name;
}

void PartitionLog::RecoverFromDiskLocked() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.data_dir, ec);
  std::vector<int64_t> bases;
  for (const auto& entry : fs::directory_iterator(options_.data_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 24 && name.substr(20) == ".log") {
      bases.push_back(std::atoll(name.c_str()));
    }
  }
  std::sort(bases.begin(), bases.end());
  for (int64_t base : bases) {
    std::ifstream in(SegmentPath(base), std::ios::binary);
    if (!in) continue;
    Segment segment;
    segment.base_offset = base;
    segment.data.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    segment.persisted_bytes = static_cast<int64_t>(segment.data.size());
    segment.last_append_ms = clock_->NowMillis();
    // Truncate a torn trailing entry (crash mid-write): keep only complete
    // entries so recovered data is always iterable.
    int64_t good = 0;
    Slice scan(segment.data);
    while (scan.size() >= 4) {
      const uint32_t length = DecodeFixed32(scan.data());
      if (scan.size() < 4 + static_cast<size_t>(length)) break;
      scan.RemovePrefix(4 + length);
      good += 4 + static_cast<int64_t>(length);
    }
    segment.data.resize(static_cast<size_t>(good));
    segment.persisted_bytes = good;
    segments_.push_back(std::move(segment));
  }
  if (segments_.empty()) {
    segments_.push_back(Segment{0, "", clock_->NowMillis(), 0});
  } else {
    // Everything recovered from disk was flushed by definition.
    flushed_end_ = segments_.back().base_offset +
                   static_cast<int64_t>(segments_.back().data.size());
  }
}

void PartitionLog::PersistUpToLocked(int64_t flushed_end) {
  if (options_.data_dir.empty()) return;
  for (Segment& segment : segments_) {
    const int64_t visible = std::min(
        static_cast<int64_t>(segment.data.size()),
        flushed_end - segment.base_offset);
    if (visible <= segment.persisted_bytes) continue;
    std::ofstream out(SegmentPath(segment.base_offset),
                      std::ios::binary | std::ios::app);
    out.write(segment.data.data() + segment.persisted_bytes,
              visible - segment.persisted_bytes);
    segment.persisted_bytes = visible;
  }
}

PartitionLog::PartitionLog(LogOptions options, const Clock* clock)
    : options_(std::move(options)), clock_(clock) {
  if (!options_.data_dir.empty()) {
    RecoverFromDiskLocked();  // constructor: no concurrent access yet
  } else {
    segments_.push_back(Segment{0, "", clock_->NowMillis(), 0});
  }
}

int64_t PartitionLog::Append(Slice message_set, int message_count) {
  std::lock_guard<std::mutex> lock(mu_);
  Segment* active = &segments_.back();
  if (static_cast<int64_t>(active->data.size()) >= options_.segment_bytes) {
    const int64_t next_base =
        active->base_offset + static_cast<int64_t>(active->data.size());
    segments_.push_back(Segment{next_base, "", clock_->NowMillis()});
    active = &segments_.back();
  }
  const int64_t offset =
      active->base_offset + static_cast<int64_t>(active->data.size());
  active->data.append(message_set.data(), message_set.size());
  active->last_append_ms = clock_->NowMillis();
  if (unflushed_messages_ == 0) first_unflushed_ms_ = clock_->NowMillis();
  unflushed_messages_ += message_count;
  MaybeFlushLocked();
  return offset;
}

void PartitionLog::MaybeFlushLocked() {
  const bool count_due = unflushed_messages_ >= options_.flush_interval_messages;
  const bool time_due =
      unflushed_messages_ > 0 &&
      clock_->NowMillis() - first_unflushed_ms_ >= options_.flush_interval_ms;
  if (count_due || time_due) {
    flushed_end_ = segments_.back().base_offset +
                   static_cast<int64_t>(segments_.back().data.size());
    unflushed_messages_ = 0;
    PersistUpToLocked(flushed_end_);
  }
}

void PartitionLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flushed_end_ = segments_.back().base_offset +
                 static_cast<int64_t>(segments_.back().data.size());
  unflushed_messages_ = 0;
  PersistUpToLocked(flushed_end_);
}

Result<std::string> PartitionLog::Read(int64_t offset,
                                       int64_t max_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset < segments_.front().base_offset) {
    return Status::NotFound("offset " + std::to_string(offset) +
                            " expired (log starts at " +
                            std::to_string(segments_.front().base_offset) + ")");
  }
  if (offset >= flushed_end_) {
    if (offset >
        segments_.back().base_offset +
            static_cast<int64_t>(segments_.back().data.size())) {
      return Status::InvalidArgument("offset beyond log end");
    }
    return std::string();  // nothing visible yet
  }
  // Locate the segment: the last one with base_offset <= offset.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), offset,
      [](int64_t o, const Segment& s) { return o < s.base_offset; });
  --it;
  const Segment& segment = *it;
  const int64_t pos = offset - segment.base_offset;
  const int64_t segment_visible =
      std::min(static_cast<int64_t>(segment.data.size()),
               flushed_end_ - segment.base_offset);
  if (pos >= segment_visible) return std::string();

  // Truncate at entry boundaries within the available window.
  int64_t take = 0;
  while (pos + take < segment_visible) {
    if (pos + take + 4 > segment_visible) break;
    const uint32_t length = DecodeFixed32(segment.data.data() + pos + take);
    const int64_t entry = 4 + static_cast<int64_t>(length);
    if (pos + take + entry > segment_visible) break;
    if (take > 0 && take + entry > max_bytes) break;
    take += entry;
    if (take >= max_bytes) break;
  }
  if (take == 0 && pos < segment_visible) {
    return Status::InvalidArgument("offset not at an entry boundary or entry "
                                   "exceeds visible region");
  }
  return segment.data.substr(static_cast<size_t>(pos),
                             static_cast<size_t>(take));
}

int PartitionLog::DeleteExpiredSegments() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMillis();
  int deleted = 0;
  while (segments_.size() > 1 &&
         now - segments_.front().last_append_ms > options_.retention_ms) {
    if (!options_.data_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove(SegmentPath(segments_.front().base_offset), ec);
    }
    segments_.pop_front();
    ++deleted;
  }
  // The active segment may also expire entirely.
  if (segments_.size() == 1 && !segments_.front().data.empty() &&
      now - segments_.front().last_append_ms > options_.retention_ms) {
    Segment& s = segments_.front();
    const int64_t end = s.base_offset + static_cast<int64_t>(s.data.size());
    if (!options_.data_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove(SegmentPath(s.base_offset), ec);
    }
    segments_.front() = Segment{end, "", now};
    flushed_end_ = std::max(flushed_end_, end);
    ++deleted;
  }
  return deleted;
}

int64_t PartitionLog::start_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.front().base_offset;
}

int64_t PartitionLog::flushed_end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_end_;
}

int64_t PartitionLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.back().base_offset +
         static_cast<int64_t>(segments_.back().data.size());
}

int PartitionLog::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(segments_.size());
}

}  // namespace lidi::kafka
