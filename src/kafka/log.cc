#include "kafka/log.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::kafka {

namespace {
inline void Inc(obs::Counter* counter) {
  if (counter != nullptr) counter->Increment();
}
}  // namespace

std::string PartitionLog::SegmentPath(int64_t base_offset) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%020lld.log",
                static_cast<long long>(base_offset));
  return options_.data_dir + "/" + name;
}

void PartitionLog::RecoverFromDiskLocked() {
  Status mkdir = fs_->CreateDirs(options_.data_dir);
  if (!mkdir.ok() && recovery_status_.ok()) {
    // No data dir means every later append fails too — but those failures
    // are per-write; this one marks the log unhealthy from the start.
    recovery_status_ = mkdir;
  }
  std::vector<int64_t> bases;
  auto names = fs_->ListDir(options_.data_dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      if (name.size() == 24 && name.substr(20) == ".log") {
        bases.push_back(std::atoll(name.c_str()));
      }
    }
  } else if (recovery_status_.ok()) {
    recovery_status_ = names.status();
  }
  std::sort(bases.begin(), bases.end());
  bool seal_last_segment = false;
  for (size_t bi = 0; bi < bases.size(); ++bi) {
    const int64_t base = bases[bi];
    seal_last_segment = false;
    std::string data;
    Status read_status = fs_->ReadFile(SegmentPath(base), &data);
    if (!read_status.ok()) {
      // An unreadable segment is a hole in the offset space: recovering
      // anything beyond it would serve wrong bytes at those offsets. Stop
      // here, surface the error, and rename this and every later segment
      // file aside so a growing log can never append into them.
      if (recovery_status_.ok()) recovery_status_ = read_status;
      for (size_t j = bi; j < bases.size(); ++j) {
        Status renamed = fs_->RenameFile(SegmentPath(bases[j]),
                                         SegmentPath(bases[j]) + ".orphan");
        if (!renamed.ok()) {
          // The quarantine failed and the stale file keeps its live name:
          // once the log grows back to this base offset, OpenAppend
          // (O_APPEND, no truncate) would write after the stale bytes.
          // Emptying the file defuses that; if even that fails the log is
          // already marked unhealthy by recovery_status_ above.
          // discard-ok: double failure, recovery_status_ is already non-OK.
          (void)fs_->TruncateFile(SegmentPath(bases[j]), 0);
        }
      }
      break;
    }
    // Keep only the prefix of complete, CRC-valid entries. The length
    // prefix alone is not proof of integrity — torn garbage can parse as a
    // plausible length — so validate each entry's payload CRC (the wire
    // format carries one per message, message.h).
    int64_t good = 0;
    Slice scan(data);
    while (scan.size() >= 4) {
      const uint32_t length = DecodeFixed32(scan.data());
      if (length < 5) break;  // shorter than attributes+crc: torn header
      if (scan.size() < 4 + static_cast<size_t>(length)) break;
      const uint32_t crc = DecodeFixed32(scan.data() + 5);
      const Slice payload(scan.data() + 9, length - 5);
      if (Crc32(payload) != crc) break;  // plausible length, corrupt bytes
      scan.RemovePrefix(4 + length);
      good += 4 + static_cast<int64_t>(length);
    }
    if (good < static_cast<int64_t>(data.size())) {
      data.resize(static_cast<size_t>(good));
      // Drop the torn bytes from the file too, so later appends continue
      // from the last complete entry rather than after garbage.
      Inc(torn_truncations_);
      Status truncate_status =
          fs_->TruncateFile(SegmentPath(base), good);
      if (!truncate_status.ok()) {
        // The garbage stays on disk past `good`; appending to this file
        // would bury it between valid entries. Seal the segment instead.
        if (recovery_status_.ok()) recovery_status_ = truncate_status;
        Inc(write_failed_);
        seal_last_segment = true;
      }
    }
    Segment segment;
    segment.base_offset = base;
    segment.sealed_bytes = good;
    segment.persisted_bytes = good;
    segment.synced_bytes = good;  // on-disk bytes survived the restart
    segment.last_append_ms = clock_->NowMillis();
    if (good > 0) segment.sealed.push_back(WrapBuffer(std::move(data)));
    segments_.push_back(std::move(segment));
  }
  if (segments_.empty()) {
    Segment segment;
    segment.last_append_ms = clock_->NowMillis();
    segments_.push_back(std::move(segment));
  } else {
    if (seal_last_segment) {
      // The last recovered file still carries garbage we could not
      // truncate; new appends go to a fresh segment file.
      Segment fresh;
      fresh.base_offset =
          segments_.back().base_offset + segments_.back().sealed_bytes;
      fresh.last_append_ms = clock_->NowMillis();
      segments_.push_back(std::move(fresh));
    }
    // Everything recovered from disk is flushed and crash-durable.
    const int64_t recovered_end = segments_.back().base_offset +
                                  segments_.back().sealed_bytes;
    flushed_end_.store(recovered_end);
    durable_end_.store(recovered_end);
  }
  end_offset_.store(segments_.back().base_offset + segments_.back().size());
}

io::WritableFile* PartitionLog::SegmentFileLocked(Segment* segment) {
  if (segment->file == nullptr) {
    auto file = fs_->OpenAppend(SegmentPath(segment->base_offset));
    if (!file.ok()) return nullptr;
    segment->file = std::move(file.value());
  }
  return segment->file.get();
}

void PartitionLog::PersistSealedLocked() {
  if (fs_ == nullptr) return;
  // Decide up front whether this flush must reach stable storage. Under
  // group commit flushes only WRITE: the one covering fdatasync belongs to
  // the group leader (GroupSyncNow), which runs outside mu_.
  int64_t pending = 0;
  for (const Segment& segment : segments_) {
    pending += segment.sealed_bytes - segment.persisted_bytes;
  }
  const bool sync_due =
      !group_mode() &&
      (options_.sync == io::SyncPolicy::kAlways ||
       (options_.sync == io::SyncPolicy::kInterval &&
        unsynced_bytes_ + pending >= options_.sync_interval_bytes));
  for (Segment& segment : segments_) {
    const bool needs_write = segment.persisted_bytes < segment.sealed_bytes;
    const bool needs_sync =
        sync_due && segment.synced_bytes < segment.sealed_bytes;
    if (!needs_write && !needs_sync) continue;
    io::WritableFile* file = SegmentFileLocked(&segment);
    if (file == nullptr) {
      Inc(write_failed_);
      break;  // keep the durable prefix contiguous; retry next flush
    }
    // Stage the segment's pending writes (and, inline modes, its sync) as
    // one linked chain: the first failure — including a short write —
    // aborts every later link, so a later chunk can never land after an
    // earlier hole.
    if (needs_write) {
      int64_t chunk_base = 0;
      int64_t staged_from = segment.persisted_bytes;
      for (const BufferRef& chunk : segment.sealed) {
        const int64_t chunk_size = static_cast<int64_t>(chunk->size());
        if (staged_from < chunk_base + chunk_size) {
          const int64_t from = staged_from - chunk_base;
          if (!sq_.StageAppend(
                  file,
                  Slice(chunk->data() + from,
                        static_cast<size_t>(chunk_size - from)),
                  /*user_data=*/0)) {
            break;  // ring full; the unstaged suffix retries next flush
          }
          staged_from = chunk_base + chunk_size;
        }
        chunk_base += chunk_size;
      }
    }
    const bool sync_staged =
        sync_due && segment.synced_bytes < segment.sealed_bytes &&
        sq_.StageSync(file, /*user_data=*/1);
    sq_.Submit();
    bool failed = false;
    io::Cqe cqe;
    while (sq_.Reap(&cqe)) {
      if (cqe.op == io::SqOp::kAppend) {
        // Advance only past bytes the fs actually took: a short write or
        // ENOSPC must not mark lost bytes durable. The next flush resumes
        // from the honest boundary.
        segment.persisted_bytes += cqe.accepted;
        if (!cqe.status.ok()) {
          // Aborted links were never attempted; count only the real failure.
          if (cqe.status.code() != Code::kAborted) Inc(write_failed_);
          failed = true;
        }
      } else if (sync_staged) {
        if (cqe.status.ok()) {
          Inc(sync_count_);
          segment.synced_bytes = segment.persisted_bytes;
        } else {
          if (cqe.status.code() != Code::kAborted) Inc(write_failed_);
          failed = true;
        }
      }
    }
    if (failed) break;
  }
  int64_t unsynced = 0;
  for (const Segment& segment : segments_) {
    unsynced += segment.persisted_bytes - segment.synced_bytes;
  }
  unsynced_bytes_ = unsynced;
  durable_end_.store(
      std::max(durable_end_.load(), ContiguousEndLocked(/*synced=*/true)));
}

int64_t PartitionLog::ContiguousEndLocked(bool synced) const {
  int64_t end = segments_.front().base_offset;
  for (const Segment& segment : segments_) {
    int64_t bytes = synced ? segment.synced_bytes : segment.persisted_bytes;
    if (!synced && bytes < segment.sealed_bytes) {
      // A short write can leave persisted_bytes mid-entry. Floor the
      // consumer-visible frontier to the last fully-persisted sealed-chunk
      // boundary — chunks seal at entry boundaries, so readers never see a
      // frontier cutting through an entry. (synced_bytes needs no flooring:
      // syncs only happen after a segment persists completely.)
      int64_t aligned = 0;
      int64_t acc = 0;
      for (const BufferRef& chunk : segment.sealed) {
        acc += static_cast<int64_t>(chunk->size());
        if (bytes < acc) break;
        aligned = acc;
      }
      bytes = aligned;
    }
    end = segment.base_offset + bytes;
    if (bytes < segment.sealed_bytes) break;
  }
  return end;
}

PartitionLog::PartitionLog(LogOptions options, const Clock* clock)
    : options_(std::move(options)),
      clock_(clock),
      fs_(options_.data_dir.empty()
              ? nullptr
              : (options_.fs != nullptr ? options_.fs : io::DefaultFs())) {
  if (options_.metrics != nullptr) {
    const obs::Labels labels{{"layer", "kafka.log"}};
    sync_count_ = options_.metrics->GetCounter("io.sync.count", labels);
    write_failed_ = options_.metrics->GetCounter("io.write.failed", labels);
    torn_truncations_ =
        options_.metrics->GetCounter("io.recovery.torn_truncations", labels);
  }
  if (fs_ != nullptr && options_.sync == io::SyncPolicy::kAlways &&
      options_.group_commit) {
    io::GroupCommitOptions group_options;
    group_options.max_batch_bytes = options_.group_max_batch_bytes;
    group_options.max_wait_ms = options_.group_max_wait_ms;
    group_options.metrics = options_.metrics;
    group_options.layer = "kafka.log";
    group_ = std::make_unique<io::GroupCommitter>(
        [this] { return GroupSyncNow(); }, std::move(group_options));
  }
  // No concurrent access yet, but the *Locked() helpers require mu_ — and
  // taking it keeps the thread-safety analysis airtight for free.
  MutexLock lock(&mu_);
  if (fs_ != nullptr) {
    RecoverFromDiskLocked();
  } else {
    Segment segment;
    segment.last_append_ms = clock_->NowMillis();
    segments_.push_back(std::move(segment));
  }
  PublishSnapshotLocked();
}

/// Seals the segment's unflushed tail into an immutable chunk. Adjacent
/// chunks merge geometrically (merge while the previous chunk is no larger
/// than the new one), which bounds both the chunk count per segment at
/// O(log segment_bytes) and the amortized re-copy cost per byte at
/// O(log segment_bytes) — flush-per-append workloads neither fragment the
/// segment into per-entry chunks nor degenerate into quadratic copying.
void PartitionLog::SealTailLocked(Segment* segment) {
  if (segment->tail.empty()) return;
  std::string chunk_data = std::move(segment->tail);
  segment->tail.clear();
  if (!segment->sealed.empty() &&
      segment->sealed.back()->size() <= chunk_data.size()) {
    // The merge staging buffer comes from the slab arena: flush-per-append
    // workloads run this chain on every message, and leasing (instead of
    // allocating) the scratch keeps the merge's staging copies off the heap.
    io::RecordArena::Scratch scratch(&arena_);
    while (!segment->sealed.empty() &&
           segment->sealed.back()->size() <= chunk_data.size()) {
      const BufferRef& prev = segment->sealed.back();
      scratch->clear();
      scratch->reserve(prev->size() + chunk_data.size());
      scratch->append(prev->data(), prev->size());
      scratch->append(chunk_data);
      chunk_data.swap(*scratch);  // old chunk_data buffer becomes the next
                                  // iteration's (and next seal's) scratch
      segment->sealed.pop_back();
    }
  }
  segment->sealed.push_back(WrapBuffer(std::move(chunk_data)));
  int64_t total = 0;
  for (const BufferRef& c : segment->sealed) {
    total += static_cast<int64_t>(c->size());
  }
  segment->sealed_bytes = total;
}

void PartitionLog::PublishSnapshotLocked() {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->reserve(segments_.size());
  auto previous = LoadSnapshot();
  for (const Segment& segment : segments_) {
    // Reuse the previous snapshot's ReaderSegment when the segment's sealed
    // chunk list is unchanged (same base, same chunk count and total) —
    // the common case for all but the tail segment. The previous snapshot
    // is sorted by base_offset, so a binary search finds the candidate.
    std::shared_ptr<const ReaderSegment> reuse;
    if (previous) {
      auto it = std::lower_bound(
          previous->begin(), previous->end(), segment.base_offset,
          [](const std::shared_ptr<const ReaderSegment>& rs, int64_t base) {
            return rs->base_offset < base;
          });
      if (it != previous->end() &&
          (*it)->base_offset == segment.base_offset &&
          (*it)->chunks.size() == segment.sealed.size() &&
          ((*it)->chunk_end.empty() ? 0 : (*it)->chunk_end.back()) ==
              segment.sealed_bytes) {
        reuse = *it;
      }
    }
    if (reuse != nullptr) {
      snapshot->push_back(std::move(reuse));
      continue;
    }
    auto rs = std::make_shared<ReaderSegment>();
    rs->base_offset = segment.base_offset;
    rs->chunks = segment.sealed;
    rs->chunk_end.reserve(segment.sealed.size());
    int64_t end = 0;
    for (const BufferRef& c : segment.sealed) {
      end += static_cast<int64_t>(c->size());
      rs->chunk_end.push_back(end);
    }
    snapshot->push_back(std::move(rs));
  }
  std::shared_ptr<const Snapshot> fresh = std::move(snapshot);
  {
    MutexLock lock(&snapshot_mu_);
    snapshot_.swap(fresh);
  }
  // `fresh` now holds the previous snapshot; it destructs here, outside
  // the micro-mutex, so readers never wait on chunk teardown.
}

std::shared_ptr<const PartitionLog::Snapshot> PartitionLog::LoadSnapshot()
    const {
  MutexLock lock(&snapshot_mu_);
  return snapshot_;
}

int64_t PartitionLog::Append(Slice message_set, int message_count) {
  MutexLock lock(&mu_);
  return AppendLocked(message_set, message_count);
}

int64_t PartitionLog::AppendLocked(Slice message_set, int message_count) {
  Segment* active = &segments_.back();
  if (active->size() >= options_.segment_bytes) {
    Segment next;
    next.base_offset = active->base_offset + active->size();
    next.last_append_ms = clock_->NowMillis();
    segments_.push_back(std::move(next));
    active = &segments_.back();
    PublishSnapshotLocked();  // readers learn the new segment's base
  }
  const int64_t offset = active->base_offset + active->size();
  active->tail.append(message_set.data(), message_set.size());
  active->last_append_ms = clock_->NowMillis();
  end_offset_.store(offset + static_cast<int64_t>(message_set.size()));
  if (unflushed_messages_ == 0) first_unflushed_ms_ = clock_->NowMillis();
  unflushed_messages_ += message_count;
  MaybeFlushLocked();
  return offset;
}

void PartitionLog::MaybeFlushLocked() {
  const bool count_due = unflushed_messages_ >= options_.flush_interval_messages;
  const bool time_due =
      unflushed_messages_ > 0 &&
      clock_->NowMillis() - first_unflushed_ms_ >= options_.flush_interval_ms;
  if (count_due || time_due) FlushLocked();
}

void PartitionLog::FlushLocked() {
  for (Segment& segment : segments_) SealTailLocked(&segment);
  unflushed_messages_ = 0;
  PersistSealedLocked();
  // Publish order matters for the lock-free readers: snapshot first, then
  // the frontier, so a reader that sees the new frontier is guaranteed a
  // snapshot containing every chunk below it.
  PublishSnapshotLocked();
  // The consumer-visible frontier advances only past bytes the fs actually
  // accepted (persistent mode) — a failed write must not expose offsets
  // that vanish on restart. In-memory mode has no fs to disagree with.
  int64_t visible = segments_.back().base_offset +
                    segments_.back().sealed_bytes;
  if (fs_ != nullptr) {
    visible = ContiguousEndLocked(/*synced=*/false);
  }
  flushed_end_.store(std::max(flushed_end_.load(), visible));
  if (fs_ == nullptr) {
    durable_end_.store(flushed_end_.load());
  }
}

void PartitionLog::Flush() {
  int64_t target = 0;
  {
    MutexLock lock(&mu_);
    FlushLocked();
    target = flushed_end_.load();
  }
  // kAlways legacy callers expect a flush to reach stable storage; in group
  // mode that fdatasync belongs to the committer and runs with mu_ released.
  // discard-ok: best effort — the acknowledged path is AppendDurable.
  if (group_mode() && target > durable_end_.load()) {
    (void)group_->SyncTo(target);
  }
}

Result<int64_t> PartitionLog::AppendDurable(Slice message_set,
                                            int message_count) {
  const int64_t set_bytes = static_cast<int64_t>(message_set.size());
  if (!group_mode()) {
    const int64_t offset = Append(message_set, message_count);
    Flush();
    if (fs_ == nullptr) return offset;  // in-memory: flushed == durable
    const int64_t entry_end = offset + set_bytes;
    const int64_t covered = options_.sync == io::SyncPolicy::kAlways
                                ? durable_end_.load()
                                : flushed_end_.load();
    if (covered < entry_end) {
      return Status::IOError(
          "append not acknowledged (write or sync failed)");
    }
    return offset;
  }
  // Group commit: stage (append + write-only flush) under mu_, then hand
  // the fdatasync to the group committer with mu_ RELEASED — concurrent
  // appenders stage into the same batch while the leader's sync is in
  // flight. Kafka never rolls the file back on a failed sync, so the epoch
  // capture is belt-and-braces (see io/group_commit.h).
  const uint64_t staged_epoch = group_->epoch();
  int64_t offset = 0;
  int64_t entry_end = 0;
  {
    MutexLock lock(&mu_);
    offset = AppendLocked(message_set, message_count);
    entry_end = offset + set_bytes;
    FlushLocked();
    if (ContiguousEndLocked(/*synced=*/false) < entry_end) {
      // Short write / ENOSPC: the entry is not fully in the file, so no
      // sync can cover it this round. Later flushes retry the write; this
      // append stays unacknowledged.
      return Status::IOError("append not fully accepted by fs");
    }
  }
  Status s = group_->SyncTo(entry_end, staged_epoch);
  if (!s.ok()) return s;
  return offset;
}

Result<int64_t> PartitionLog::GroupSyncNow() {
  struct ToSync {
    std::shared_ptr<io::WritableFile> file;
    int64_t base_offset = 0;
    int64_t target = 0;  // persisted (== sealed) bytes the sync covers
  };
  std::vector<ToSync> to_sync;
  {
    MutexLock lock(&mu_);
    for (Segment& segment : segments_) {
      if (segment.persisted_bytes < segment.sealed_bytes) {
        // Hole (failed/short write): syncing later segments cannot extend
        // the contiguous durable frontier; stop at the honest boundary.
        break;
      }
      if (segment.file != nullptr &&
          segment.synced_bytes < segment.persisted_bytes) {
        to_sync.push_back(
            {segment.file, segment.base_offset, segment.persisted_bytes});
      }
    }
  }
  Status fail;
  size_t done = 0;
  for (; done < to_sync.size(); ++done) {
    // sync-choke-point: the group leader's one covering fdatasync — the
    // only sync the kAlways group path ever issues, with mu_ released so
    // appenders keep staging the next batch.
    Status s = to_sync[done].file->Sync();
    if (!s.ok()) {
      fail = s;
      break;  // keep the durable prefix contiguous
    }
  }
  MutexLock lock(&mu_);
  for (size_t i = 0; i < done; ++i) {
    for (Segment& segment : segments_) {
      if (segment.base_offset == to_sync[i].base_offset) {
        // The file may hold more than `target` by now (appends staged while
        // we were at the disk); fdatasync covered those too, but claiming
        // only the snapshot value keeps synced_bytes entry-aligned.
        segment.synced_bytes =
            std::max(segment.synced_bytes, to_sync[i].target);
        break;
      }
    }
    Inc(sync_count_);
  }
  if (!fail.ok()) Inc(write_failed_);
  int64_t unsynced = 0;
  for (const Segment& segment : segments_) {
    unsynced += segment.persisted_bytes - segment.synced_bytes;
  }
  unsynced_bytes_ = unsynced;
  const int64_t durable =
      std::max(durable_end_.load(), ContiguousEndLocked(/*synced=*/true));
  durable_end_.store(durable);
  if (!fail.ok()) return fail;
  return durable;
}

Result<PinnedSlice> PartitionLog::ReadPinnedChunk(int64_t offset,
                                                  int64_t max_bytes) const {
  // Load the frontier before the snapshot (writers store in the opposite
  // order), so the snapshot covers everything below the frontier we serve.
  const int64_t flushed_end = flushed_end_.load();
  const std::shared_ptr<const Snapshot> snapshot = LoadSnapshot();
  if (offset < snapshot->front()->base_offset) {
    return Status::NotFound(
        "offset " + std::to_string(offset) + " expired (log starts at " +
        std::to_string(snapshot->front()->base_offset) + ")");
  }
  if (offset >= flushed_end) {
    if (offset > end_offset_.load()) {
      return Status::InvalidArgument("offset beyond log end");
    }
    return PinnedSlice();  // nothing visible yet
  }
  // Locate the segment: the last one with base_offset <= offset.
  auto it = std::upper_bound(
      snapshot->begin(), snapshot->end(), offset,
      [](int64_t o, const std::shared_ptr<const ReaderSegment>& s) {
        return o < s->base_offset;
      });
  --it;
  const ReaderSegment& segment = **it;
  const int64_t pos = offset - segment.base_offset;
  const int64_t segment_visible =
      std::min(segment.chunk_end.empty() ? 0 : segment.chunk_end.back(),
               flushed_end - segment.base_offset);
  if (pos >= segment_visible) return PinnedSlice();
  // Locate the chunk holding pos: first chunk whose end exceeds it.
  const size_t chunk_index = static_cast<size_t>(
      std::upper_bound(segment.chunk_end.begin(), segment.chunk_end.end(),
                       pos) -
      segment.chunk_end.begin());
  const BufferRef& chunk = segment.chunks[chunk_index];
  const int64_t chunk_base =
      chunk_index == 0 ? 0 : segment.chunk_end[chunk_index - 1];
  const int64_t cpos = pos - chunk_base;
  const int64_t visible =
      std::min(static_cast<int64_t>(chunk->size()),
               segment_visible - chunk_base);

  // Truncate at entry boundaries within the chunk's visible window,
  // returning at least one whole entry when any fits it.
  int64_t take = 0;
  while (cpos + take + 4 <= visible) {
    const uint32_t length = DecodeFixed32(chunk->data() + cpos + take);
    const int64_t entry = 4 + static_cast<int64_t>(length);
    if (cpos + take + entry > visible) break;
    if (take > 0 && take + entry > max_bytes) break;
    take += entry;
    if (take >= max_bytes) break;
  }
  if (take == 0) {
    return Status::InvalidArgument("offset not at an entry boundary or entry "
                                   "exceeds visible region");
  }
  return PinnedSlice(Slice(chunk->data() + cpos, static_cast<size_t>(take)),
                     chunk);
}

Result<PinnedSlice> PartitionLog::ReadPinned(int64_t offset, int64_t max_bytes,
                                             int64_t* gathered_bytes) const {
  if (gathered_bytes != nullptr) *gathered_bytes = 0;
  auto first = ReadPinnedChunk(offset, max_bytes);
  if (!first.ok() || first.value().empty()) return first;
  int64_t have = static_cast<int64_t>(first.value().size());
  if (have >= max_bytes) return first;

  // More budget left: see whether further entries continue in the next
  // chunk (or segment). If not, the single-chunk view is the zero-copy
  // fast path; otherwise gather the chain into one owned buffer so callers
  // get the same whole-entries-up-to-max_bytes contract regardless of how
  // flushes happened to chunk the log.
  auto next = ReadPinnedChunk(offset + have, max_bytes - have);
  if (!next.ok() || next.value().empty() ||
      static_cast<int64_t>(next.value().size()) > max_bytes - have) {
    // The at-least-one-entry rule only applies to the start of a read: a
    // continuation entry that would overflow the budget is left for the
    // caller's next fetch.
    return first;
  }
  std::string out;
  out.reserve(static_cast<size_t>(max_bytes));
  out.append(first.value().data(), first.value().size());
  out.append(next.value().data(), next.value().size());
  have += static_cast<int64_t>(next.value().size());
  while (have < max_bytes) {
    auto more = ReadPinnedChunk(offset + have, max_bytes - have);
    if (!more.ok() || more.value().empty() ||
        static_cast<int64_t>(more.value().size()) > max_bytes - have) {
      break;
    }
    out.append(more.value().data(), more.value().size());
    have += static_cast<int64_t>(more.value().size());
  }
  if (gathered_bytes != nullptr) *gathered_bytes = have;
  return PinnedSlice::Own(std::move(out));
}

Result<std::string> PartitionLog::Read(int64_t offset,
                                       int64_t max_bytes) const {
  auto pinned = ReadPinned(offset, max_bytes);
  if (!pinned.ok()) return pinned.status();
  return pinned.value().ToString();
}

int PartitionLog::DeleteExpiredSegments() {
  MutexLock lock(&mu_);
  const int64_t now = clock_->NowMillis();
  int deleted = 0;
  while (segments_.size() > 1 &&
         now - segments_.front().last_append_ms > options_.retention_ms) {
    if (fs_ != nullptr) {
      segments_.front().file.reset();  // close before unlink
      Status removed =
          fs_->RemoveFile(SegmentPath(segments_.front().base_offset));
      if (!removed.ok() &&
          !fs_->TruncateFile(SegmentPath(segments_.front().base_offset), 0)
               .ok()) {
        // Dropping the in-memory segment while its file survives intact
        // would resurrect the expired records on the next restart. Leave it
        // in place; the next retention sweep retries the unlink.
        break;
      }
    }
    segments_.pop_front();
    ++deleted;
  }
  // The active segment may also expire entirely.
  if (segments_.size() == 1 && segments_.front().size() > 0 &&
      now - segments_.front().last_append_ms > options_.retention_ms) {
    Segment& s = segments_.front();
    const int64_t end = s.base_offset + s.size();
    if (fs_ != nullptr) {
      s.file.reset();  // close before unlink
      Status removed = fs_->RemoveFile(SegmentPath(s.base_offset));
      if (!removed.ok() &&
          !fs_->TruncateFile(SegmentPath(s.base_offset), 0).ok()) {
        // Same resurrection hazard as above: keep the segment until the
        // file is actually gone (or at least empty).
        if (deleted > 0) PublishSnapshotLocked();
        return deleted;
      }
    }
    Segment fresh;
    fresh.base_offset = end;
    fresh.last_append_ms = now;
    segments_.front() = std::move(fresh);
    unflushed_messages_ = 0;
    flushed_end_.store(std::max(flushed_end_.load(), end));
    ++deleted;
  }
  if (deleted > 0) PublishSnapshotLocked();
  return deleted;
}

int64_t PartitionLog::start_offset() const {
  return LoadSnapshot()->front()->base_offset;
}

int64_t PartitionLog::flushed_end_offset() const {
  return flushed_end_.load();
}

int64_t PartitionLog::durable_end_offset() const {
  return durable_end_.load();
}

Status PartitionLog::recovery_status() const {
  MutexLock lock(&mu_);
  return recovery_status_;
}

int64_t PartitionLog::end_offset() const { return end_offset_.load(); }

int PartitionLog::segment_count() const {
  return static_cast<int>(LoadSnapshot()->size());
}

}  // namespace lidi::kafka
