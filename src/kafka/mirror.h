#ifndef LIDI_KAFKA_MIRROR_H_
#define LIDI_KAFKA_MIRROR_H_

#include <memory>
#include <string>

#include "kafka/consumer.h"
#include "kafka/producer.h"

namespace lidi::kafka {

/// The cross-datacenter replication pattern of Section V.D: a Kafka cluster
/// in the offline datacenter "runs a set of embedded consumers to pull data
/// from the Kafka instances in the live datacenters" and re-publishes it
/// locally for Hadoop loads and warehouse jobs.
///
/// The embedded consumer and the local producer live on different zk roots
/// (different clusters).
class MirrorMaker {
 public:
  MirrorMaker(const std::string& name, const std::string& topic,
              zk::ZooKeeper* zookeeper, net::Transport* network,
              std::string source_root, std::string target_root,
              CompressionCodec codec = CompressionCodec::kNone);

  /// Pulls one batch from the source cluster and republishes it on the
  /// target cluster. Returns messages mirrored.
  Result<int64_t> PumpOnce();

  /// Pumps until the source has no new data (bounded by max_rounds).
  Result<int64_t> PumpToHead(int max_rounds = 1000);

  Consumer* consumer() { return consumer_.get(); }
  Producer* producer() { return producer_.get(); }

 private:
  const std::string topic_;
  std::unique_ptr<Consumer> consumer_;
  std::unique_ptr<Producer> producer_;
  /// Non-OK when the embedded consumer's subscription has not succeeded
  /// yet; PumpOnce retries before polling.
  Status subscribe_status_;
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_MIRROR_H_
