#ifndef LIDI_KAFKA_PRODUCER_H_
#define LIDI_KAFKA_PRODUCER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

#include "common/compression.h"
#include "common/random.h"
#include "kafka/message.h"
#include "net/transport.h"
#include "zk/zookeeper.h"

namespace lidi::kafka {

/// Identifies one partition of a topic cluster-wide: partitions live on
/// specific brokers (paper Figure V.1: each broker stores one or more
/// partitions of a topic).
struct TopicPartition {
  int broker_id = -1;
  int partition = -1;
  friend bool operator<(const TopicPartition& a, const TopicPartition& b) {
    return std::tie(a.broker_id, a.partition) <
           std::tie(b.broker_id, b.partition);
  }
  friend bool operator==(const TopicPartition& a, const TopicPartition& b) {
    return a.broker_id == b.broker_id && a.partition == b.partition;
  }
};

struct ProducerOptions {
  CompressionCodec codec = CompressionCodec::kNone;
  /// Messages buffered per partition before a batch is shipped ("the
  /// producer can send a set of messages in a single publish request").
  int batch_size = 1;
  uint64_t seed = 7;
  std::string zk_root = "/kafka";
};

/// The Kafka producer (paper Section V.A/V.C): discovers brokers and topic
/// partition counts from Zookeeper, publishes message sets to either a
/// randomly selected partition or one chosen by a partitioning key and
/// function (key-hash), batching and optionally compressing each set.
class Producer {
 public:
  Producer(std::string name, zk::ZooKeeper* zookeeper, net::Transport* network,
           ProducerOptions options = {});

  /// Publishes to a random partition of the topic.
  Status Send(const std::string& topic, Slice payload);
  /// Publishes to the partition selected by hash(key) — messages with the
  /// same key preserve relative order.
  Status Send(const std::string& topic, Slice key, Slice payload);

  /// Ships all buffered batches. Returns the first error encountered.
  Status Flush();

  /// The cluster-wide partition list of a topic, refreshed from Zookeeper.
  Result<std::vector<TopicPartition>> PartitionsOf(const std::string& topic);

  int64_t messages_sent() const { return messages_sent_.load(); }
  /// Bytes actually shipped to brokers (after compression) — the numerator
  /// of the bandwidth-saving experiment (E16).
  int64_t bytes_on_wire() const { return bytes_on_wire_.load(); }

 private:
  /// A produce request built under mu_ but dispatched after release: the
  /// producer never holds its lock across the broker RPC.
  struct PendingRequest {
    bool send = false;
    TopicPartition tp;
    std::string request;
  };

  /// Buffers the payload; when the batch fills, drains it into *out.
  void BufferLocked(const std::string& topic, const TopicPartition& tp,
                    Slice payload, PendingRequest* out) LIDI_REQUIRES(mu_);
  /// Drains the partition's batch (if any) into *out, resetting the builder.
  void BuildRequestLocked(const std::string& topic, const TopicPartition& tp,
                          PendingRequest* out) LIDI_REQUIRES(mu_);
  /// Ships a drained batch; no lock held.
  Status Dispatch(const PendingRequest& pending) LIDI_EXCLUDES(mu_);

  const std::string name_;
  zk::ZooKeeper* const zookeeper_;
  net::Transport* const network_;
  const ProducerOptions options_;

  Mutex mu_{"kafka.producer"};
  Random rng_ LIDI_GUARDED_BY(mu_);
  std::map<std::pair<std::string, TopicPartition>, MessageSetBuilder> batches_
      LIDI_GUARDED_BY(mu_);
  /// Atomics, not guarded: the stats accessors read them without the mutex.
  std::atomic<int64_t> messages_sent_{0};
  std::atomic<int64_t> bytes_on_wire_{0};
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_PRODUCER_H_
