#ifndef LIDI_KAFKA_MESSAGE_H_
#define LIDI_KAFKA_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/compression.h"
#include "common/slice.h"
#include "common/status.h"

namespace lidi::kafka {

/// A Kafka message is just a payload of bytes (paper Section V.A); the user
/// chooses the serialization. On the wire and in the log each message entry
/// is:
///   fixed32 length      (bytes after this field)
///   uint8   attributes  (compression codec of the payload)
///   fixed32 crc         (over the payload)
///   payload
///
/// Messages have no explicit id: a message is addressed by its logical byte
/// offset in the partition log, and the id of the next message is the
/// current id plus the current entry's length (Section V.B).
struct Message {
  std::string payload;
  /// Log offset of the entry that carried this message (the wrapper entry
  /// for compressed sets).
  int64_t offset = 0;
};

/// Zero-copy view of one message: the payload Slice points into the
/// iterated byte range (uncompressed entries) or into the iterator's
/// decompression buffer (compressed wrappers). Valid until the iterator's
/// next Next/NextView call or destruction — copy into a Message to keep it.
struct MessageView {
  Slice payload;
  int64_t offset = 0;
};

/// Fixed per-entry overhead: length (4) + attributes (1) + crc (4).
constexpr int64_t kMessageOverheadBytes = 9;

/// Serialized size of one entry carrying `payload_size` bytes.
inline int64_t MessageEntrySize(int64_t payload_size) {
  return kMessageOverheadBytes + payload_size;
}

/// Appends one message entry (uncompressed attributes) to *out.
void AppendMessageEntry(Slice payload, CompressionCodec codec,
                        std::string* out);

/// Builds message sets: "the producer can send a set of messages in a single
/// publish request" (V.A). With a codec, the whole set is compressed into a
/// single wrapper entry (V.B: producers compress sets; brokers store them
/// compressed; consumers decompress).
class MessageSetBuilder {
 public:
  explicit MessageSetBuilder(CompressionCodec codec = CompressionCodec::kNone)
      : codec_(codec) {}

  void Add(Slice payload);
  int count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Serialized (and possibly compressed) message-set bytes. Resets the
  /// builder.
  std::string Build();

 private:
  CompressionCodec codec_;
  std::string plain_;  // concatenated uncompressed entries
  int count_ = 0;
};

/// Iterates the messages of a message-set byte range, transparently
/// expanding compressed wrapper entries. `base_offset` is the log offset of
/// the first byte of `data`.
///
/// next_fetch_offset() is the offset a consumer should request next: it
/// advances only at outer-entry boundaries, so a compressed wrapper is
/// consumed atomically.
class MessageSetIterator {
 public:
  MessageSetIterator(Slice data, int64_t base_offset);

  /// Advances to the next message. Returns false at the end of the range
  /// (also when only a partial trailing entry remains). Corrupt entries
  /// surface through status().
  bool Next(Message* message);

  /// Zero-copy variant of Next: no payload bytes are copied. The view is
  /// invalidated by the next Next/NextView call (compressed wrappers reuse
  /// the decompression buffer); the iterated range must stay alive — pin it
  /// (PinnedSlice) when it comes from the zero-copy fetch path.
  bool NextView(MessageView* view);

  int64_t next_fetch_offset() const { return next_fetch_offset_; }
  const Status& status() const { return status_; }

 private:
  Slice data_;
  int64_t offset_;             // log offset of the next unread outer byte
  int64_t next_fetch_offset_;  // offset after the last fully consumed entry
  Status status_;
  // Decompressed inner entries of the wrapper currently being iterated.
  std::string inner_buffer_;
  size_t inner_pos_ = 0;
  int64_t inner_wrapper_offset_ = 0;
};

/// Counts messages (after decompression) in a message-set byte range.
Result<int64_t> CountMessages(Slice data);

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_MESSAGE_H_
