#include "net/address.h"
#include "kafka/producer.h"

#include "common/hash.h"
#include "kafka/broker.h"

namespace lidi::kafka {

Producer::Producer(std::string name, zk::ZooKeeper* zookeeper,
                   net::Transport* network, ProducerOptions options)
    : name_(std::move(name)),
      zookeeper_(zookeeper),
      network_(network),
      options_(std::move(options)),
      rng_(options_.seed) {}

Result<std::vector<TopicPartition>> Producer::PartitionsOf(
    const std::string& topic) {
  auto brokers =
      zookeeper_->GetChildren(options_.zk_root + "/brokers/topics/" + topic);
  if (!brokers.ok()) {
    return Status::NotFound("topic " + topic + " not advertised");
  }
  std::vector<TopicPartition> partitions;
  for (const std::string& broker : brokers.value()) {
    auto count = zookeeper_->Get(options_.zk_root + "/brokers/topics/" +
                                 topic + "/" + broker);
    if (!count.ok()) continue;
    const int n = std::atoi(count.value().c_str());
    for (int p = 0; p < n; ++p) {
      partitions.push_back(TopicPartition{std::atoi(broker.c_str()), p});
    }
  }
  if (partitions.empty()) {
    return Status::NotFound("topic " + topic + " has no partitions");
  }
  return partitions;
}

Status Producer::Send(const std::string& topic, Slice payload) {
  auto partitions = PartitionsOf(topic);
  if (!partitions.ok()) return partitions.status();
  PendingRequest pending;
  {
    MutexLock lock(&mu_);
    const TopicPartition tp =
        partitions.value()[rng_.Uniform(partitions.value().size())];
    BufferLocked(topic, tp, payload, &pending);
  }
  return Dispatch(pending);
}

Status Producer::Send(const std::string& topic, Slice key, Slice payload) {
  auto partitions = PartitionsOf(topic);
  if (!partitions.ok()) return partitions.status();
  PendingRequest pending;
  {
    MutexLock lock(&mu_);
    const TopicPartition tp =
        partitions.value()[Fnv1a64(key) % partitions.value().size()];
    BufferLocked(topic, tp, payload, &pending);
  }
  return Dispatch(pending);
}

void Producer::BufferLocked(const std::string& topic, const TopicPartition& tp,
                            Slice payload, PendingRequest* out) {
  auto it = batches_.find({topic, tp});
  if (it == batches_.end()) {
    it = batches_
             .emplace(std::make_pair(topic, tp),
                      MessageSetBuilder(options_.codec))
             .first;
  }
  it->second.Add(payload);
  messages_sent_.fetch_add(1);
  if (it->second.count() >= options_.batch_size) {
    BuildRequestLocked(topic, tp, out);
  }
}

void Producer::BuildRequestLocked(const std::string& topic,
                                  const TopicPartition& tp,
                                  PendingRequest* out) {
  auto it = batches_.find({topic, tp});
  if (it == batches_.end() || it->second.empty()) return;
  const std::string set = it->second.Build();  // resets the builder
  EncodeProduceRequest(topic, tp.partition, set, &out->request);
  bytes_on_wire_.fetch_add(static_cast<int64_t>(set.size()));
  out->send = true;
  out->tp = tp;
}

Status Producer::Dispatch(const PendingRequest& pending) {
  if (!pending.send) return Status::OK();
  auto r = network_->Call(name_, net::MakeAddress(net::Tier::kKafkaBroker, pending.tp.broker_id),
                          "kafka.produce", pending.request);
  return r.status();
}

Status Producer::Flush() {
  // Drain every batch under the lock, ship them all after releasing it: the
  // produce RPC must never run while holding the producer mutex (concurrent
  // Send()s would serialize behind broker round-trips).
  std::vector<PendingRequest> pendings;
  {
    MutexLock lock(&mu_);
    for (auto& [key, builder] : batches_) {
      PendingRequest pending;
      BuildRequestLocked(key.first, key.second, &pending);
      if (pending.send) pendings.push_back(std::move(pending));
    }
  }
  Status first_error;
  for (const PendingRequest& pending : pendings) {
    Status s = Dispatch(pending);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace lidi::kafka
