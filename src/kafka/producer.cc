#include "kafka/producer.h"

#include "common/hash.h"
#include "kafka/broker.h"

namespace lidi::kafka {

Producer::Producer(std::string name, zk::ZooKeeper* zookeeper,
                   net::Network* network, ProducerOptions options)
    : name_(std::move(name)),
      zookeeper_(zookeeper),
      network_(network),
      options_(std::move(options)),
      rng_(options_.seed) {}

Result<std::vector<TopicPartition>> Producer::PartitionsOf(
    const std::string& topic) {
  auto brokers =
      zookeeper_->GetChildren(options_.zk_root + "/brokers/topics/" + topic);
  if (!brokers.ok()) {
    return Status::NotFound("topic " + topic + " not advertised");
  }
  std::vector<TopicPartition> partitions;
  for (const std::string& broker : brokers.value()) {
    auto count = zookeeper_->Get(options_.zk_root + "/brokers/topics/" +
                                 topic + "/" + broker);
    if (!count.ok()) continue;
    const int n = std::atoi(count.value().c_str());
    for (int p = 0; p < n; ++p) {
      partitions.push_back(TopicPartition{std::atoi(broker.c_str()), p});
    }
  }
  if (partitions.empty()) {
    return Status::NotFound("topic " + topic + " has no partitions");
  }
  return partitions;
}

Status Producer::Send(const std::string& topic, Slice payload) {
  auto partitions = PartitionsOf(topic);
  if (!partitions.ok()) return partitions.status();
  std::lock_guard<std::mutex> lock(mu_);
  const TopicPartition tp =
      partitions.value()[rng_.Uniform(partitions.value().size())];
  return SendTo(topic, tp, payload);
}

Status Producer::Send(const std::string& topic, Slice key, Slice payload) {
  auto partitions = PartitionsOf(topic);
  if (!partitions.ok()) return partitions.status();
  std::lock_guard<std::mutex> lock(mu_);
  const TopicPartition tp =
      partitions.value()[Fnv1a64(key) % partitions.value().size()];
  return SendTo(topic, tp, payload);
}

Status Producer::SendTo(const std::string& topic, const TopicPartition& tp,
                        Slice payload) {
  auto it = batches_.find({topic, tp});
  if (it == batches_.end()) {
    it = batches_
             .emplace(std::make_pair(topic, tp),
                      MessageSetBuilder(options_.codec))
             .first;
  }
  it->second.Add(payload);
  ++messages_sent_;
  if (it->second.count() >= options_.batch_size) {
    return FlushBatch(topic, tp);
  }
  return Status::OK();
}

Status Producer::FlushBatch(const std::string& topic,
                            const TopicPartition& tp) {
  auto it = batches_.find({topic, tp});
  if (it == batches_.end() || it->second.empty()) return Status::OK();
  const std::string set = it->second.Build();
  std::string request;
  EncodeProduceRequest(topic, tp.partition, set, &request);
  bytes_on_wire_ += static_cast<int64_t>(set.size());
  auto r = network_->Call(name_, BrokerAddress(tp.broker_id), "kafka.produce",
                          request);
  return r.status();
}

Status Producer::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  Status first_error;
  // Collect keys first: FlushBatch mutates builders in place.
  std::vector<std::pair<std::string, TopicPartition>> keys;
  for (const auto& [key, builder] : batches_) keys.push_back(key);
  for (const auto& [topic, tp] : keys) {
    Status s = FlushBatch(topic, tp);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace lidi::kafka
