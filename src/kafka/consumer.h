#ifndef LIDI_KAFKA_CONSUMER_H_
#define LIDI_KAFKA_CONSUMER_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/sync.h"

#include "kafka/message.h"
#include "kafka/producer.h"  // TopicPartition
#include "net/transport.h"
#include "zk/zookeeper.h"

namespace lidi::kafka {

struct ConsumerOptions {
  /// Max bytes per pull request ("typically hundreds of kilobytes", V.B).
  int64_t max_fetch_bytes = 300 << 10;
  std::string zk_root = "/kafka";
};

/// A Kafka consumer in a consumer group (paper Sections V.A/V.C). Consumers
/// in a group jointly consume the subscribed topics — each partition is
/// consumed by exactly one group member at a time; different groups each
/// independently get the full stream.
///
/// Zookeeper is used for (1) detecting broker/consumer membership changes,
/// (2) triggering rebalances, and (3) ownership and offset tracking:
///   <root>/consumers/<group>/ids/<consumer>                 (ephemeral)
///   <root>/consumers/<group>/owners/<topic>/<b>-<p>         (ephemeral)
///   <root>/consumers/<group>/offsets/<topic>/<b>-<p>        (persistent)
///
/// Brokers keep no consumer state: the consumer tracks its own offsets and
/// may rewind to re-consume (V.B).
class Consumer {
 public:
  Consumer(std::string consumer_id, std::string group,
           zk::ZooKeeper* zookeeper, net::Transport* network,
           ConsumerOptions options = {});
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  const std::string& id() const { return id_; }

  /// Subscribes to a topic and performs the initial rebalance.
  Status Subscribe(const std::string& topic);

  /// Pulls the next batch of messages from the consumer's owned partitions
  /// (round-robin across them). Empty vector = nothing new. Handles pending
  /// rebalances (membership changed) transparently.
  Result<std::vector<Message>> Poll(const std::string& topic);

  /// Polls only this stream's share of the owned partitions: stream i of n
  /// handles every n-th owned partition. Used by MessageStream.
  Result<std::vector<Message>> PollStream(const std::string& topic,
                                          int stream_index, int stream_count);

  /// Blocking-iterator convenience: polls until at least one message or
  /// `max_polls` empty rounds ("the message stream iterator never
  /// terminates" — bounded here so tests cannot hang).
  Result<std::vector<Message>> PollUntilData(const std::string& topic,
                                             int max_polls = 100);

  /// Persists current offsets to Zookeeper (consumers checkpoint their own
  /// state; a restarted consumer resumes from the saved offsets).
  Status CommitOffsets();

  /// Re-runs the partition assignment now (normally triggered by watches).
  Status Rebalance(const std::string& topic);

  /// Deliberately rewinds a partition to an older offset to re-consume
  /// (V.B: "a consumer can deliberately rewind back to an old offset").
  void Seek(const std::string& topic, const TopicPartition& tp,
            int64_t offset);

  /// Partitions this consumer currently owns for the topic.
  std::vector<TopicPartition> OwnedPartitions(const std::string& topic) const;

  int64_t messages_consumed() const { return messages_consumed_; }
  int rebalance_count() const { return rebalance_count_.load(); }

  /// Leaves the group (closes the zk session; ephemerals vanish and other
  /// members rebalance).
  void Close();

  /// The paper's stream API (V.A, createMessageStreams): splits this
  /// consumer's subscription into `n` sub-streams; messages are evenly
  /// distributed across them (each stream serves a disjoint slice of the
  /// consumer's owned partitions, so per-partition order is preserved
  /// within a stream). Streams borrow the consumer; keep it alive.
  class MessageStream;
  std::vector<MessageStream> CreateMessageStreams(const std::string& topic,
                                                  int n);

 private:
  Result<std::vector<TopicPartition>> AllPartitions(const std::string& topic);

  /// (Re)creates the group's /ids skeleton and this consumer's ephemeral id
  /// node. True when the id node exists afterwards.
  bool RegisterInZk();
  std::string OwnerPath(const std::string& topic,
                        const TopicPartition& tp) const;
  std::string OffsetPath(const std::string& topic,
                         const TopicPartition& tp) const;

  const std::string id_;
  const std::string group_;
  zk::ZooKeeper* const zookeeper_;
  net::Transport* const network_;
  const ConsumerOptions options_;
  // tsa-ok: written once during construction, immutable afterwards.
  zk::SessionId session_;
  /// Close() races the destructor with external callers; exchange decides.
  std::atomic<bool> closed_{false};
  /// 0 = the group id node exists; nonzero = construction-time registration
  /// failed and Subscribe must retry before joining a rebalance.
  std::atomic<int> registration_status_{1};

  /// Guards the consumer's own bookkeeping only — never held across a
  /// network or Zookeeper call (watch callbacks may re-enter the consumer).
  mutable Mutex mu_{"kafka.consumer"};
  std::set<std::string> topics_ LIDI_GUARDED_BY(mu_);
  std::map<std::string, std::vector<TopicPartition>> owned_
      LIDI_GUARDED_BY(mu_);
  std::map<std::pair<std::string, TopicPartition>, int64_t> offsets_
      LIDI_GUARDED_BY(mu_);
  std::map<std::string, size_t> poll_cursor_
      LIDI_GUARDED_BY(mu_);  // round-robin position
  std::atomic<bool> rebalance_needed_{false};
  std::atomic<int64_t> messages_consumed_{0};
  /// Atomic, not guarded: the stats accessor reads it without the mutex.
  std::atomic<int> rebalance_count_{0};
};

/// One sub-stream of a consumer's subscription. Iterator-flavoured: Next()
/// blocks-by-polling until a message arrives or the poll budget runs out
/// ("the message stream iterator never terminates" — bounded here so tests
/// cannot hang).
class Consumer::MessageStream {
 public:
  MessageStream(Consumer* consumer, std::string topic, int index, int count)
      : consumer_(consumer),
        topic_(std::move(topic)),
        index_(index),
        count_(count) {}

  /// Non-blocking pull of this stream's share.
  Result<std::vector<Message>> Poll() {
    return consumer_->PollStream(topic_, index_, count_);
  }

  /// Blocking-iterator convenience: the next message, buffering any extras.
  Result<Message> Next(int max_polls = 100) {
    if (!buffer_.empty()) {
      Message m = std::move(buffer_.front());
      buffer_.erase(buffer_.begin());
      return m;
    }
    for (int i = 0; i < max_polls; ++i) {
      auto batch = Poll();
      if (!batch.ok()) return batch.status();
      if (batch.value().empty()) continue;
      buffer_ = std::move(batch.value());
      Message m = std::move(buffer_.front());
      buffer_.erase(buffer_.begin());
      return m;
    }
    return Status::Timeout("no message within the poll budget");
  }

  int index() const { return index_; }

 private:
  Consumer* consumer_;
  std::string topic_;
  int index_;
  int count_;
  std::vector<Message> buffer_;
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_CONSUMER_H_
