#include "net/address.h"
#include "kafka/replication.h"

#include <algorithm>

#include "kafka/message.h"

namespace lidi::kafka {

ReplicatedTopicManager::ReplicatedTopicManager(zk::ZooKeeper* zookeeper,
                                               net::Transport* network,
                                               std::string zk_root)
    : zookeeper_(zookeeper),
      network_(network),
      zk_root_(std::move(zk_root)) {
  session_ = zookeeper_->CreateSession();
}

std::string ReplicatedTopicManager::PartitionPath(const std::string& topic,
                                                  int partition) const {
  return zk_root_ + "/replicated/" + topic + "/" + std::to_string(partition);
}

Status ReplicatedTopicManager::CreateReplicatedTopic(
    const std::string& topic, int partitions,
    const std::vector<Broker*>& replica_brokers) {
  if (replica_brokers.empty()) {
    return Status::InvalidArgument("need at least one replica broker");
  }
  std::string replica_list;
  for (size_t i = 0; i < replica_brokers.size(); ++i) {
    if (i) replica_list += ',';
    replica_list += std::to_string(replica_brokers[i]->id());
  }
  for (Broker* broker : replica_brokers) {
    Status s = broker->CreateTopic(topic, partitions);
    if (!s.ok()) return s;
  }
  for (int p = 0; p < partitions; ++p) {
    const std::string path = PartitionPath(topic, p);
    Status s = zookeeper_->CreateRecursive(session_, path + "/replicas",
                                           replica_list,
                                           zk::CreateMode::kPersistent);
    if (!s.ok() && s.code() != Code::kAlreadyExists) return s;
    const int leader =
        replica_brokers[p % replica_brokers.size()]->id();
    s = zookeeper_->CreateRecursive(session_, path + "/leader",
                                    std::to_string(leader),
                                    zk::CreateMode::kPersistent);
    if (!s.ok() && s.code() != Code::kAlreadyExists) return s;
  }
  return Status::OK();
}

Result<int> ReplicatedTopicManager::LeaderOf(const std::string& topic,
                                             int partition) const {
  auto leader = zookeeper_->Get(PartitionPath(topic, partition) + "/leader");
  if (!leader.ok()) return leader.status();
  return std::atoi(leader.value().c_str());
}

Result<std::vector<int>> ReplicatedTopicManager::ReplicasOf(
    const std::string& topic, int partition) const {
  auto replicas =
      zookeeper_->Get(PartitionPath(topic, partition) + "/replicas");
  if (!replicas.ok()) return replicas.status();
  std::vector<int> out;
  size_t start = 0;
  const std::string& s = replicas.value();
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(std::atoi(s.substr(start).c_str()));
    start = comma + 1;
  }
  return out;
}

bool ReplicatedTopicManager::BrokerAlive(int broker_id) const {
  return zookeeper_->Exists(zk_root_ + "/brokers/ids/" +
                            std::to_string(broker_id));
}

int64_t ReplicatedTopicManager::LogEndAt(int broker_id,
                                         const std::string& topic,
                                         int partition) const {
  std::string request;
  EncodeProduceRequest(topic, partition, "", &request);
  auto bounds = network_->Call("replication-manager",
                               net::MakeAddress(net::Tier::kKafkaBroker, broker_id),
                               "kafka.offset-bounds", request);
  if (!bounds.ok()) return -1;
  // "start end": take the second number.
  const size_t space = bounds.value().find(' ');
  if (space == std::string::npos) return -1;
  return std::atoll(bounds.value().c_str() + space + 1);
}

Result<int64_t> ReplicatedTopicManager::ProduceToLeader(
    const std::string& from, const std::string& topic, int partition,
    Slice message_set) {
  auto leader = LeaderOf(topic, partition);
  if (!leader.ok()) return leader.status();
  std::string request;
  EncodeProduceRequest(topic, partition, message_set, &request);
  auto r = network_->Call(from, net::MakeAddress(net::Tier::kKafkaBroker, leader.value()), "kafka.produce",
                          request);
  if (!r.ok()) return r.status();
  return static_cast<int64_t>(std::atoll(r.value().c_str()));
}

Result<std::string> ReplicatedTopicManager::FetchFromLeader(
    const std::string& from, const std::string& topic, int partition,
    int64_t offset, int64_t max_bytes) {
  auto leader = LeaderOf(topic, partition);
  if (!leader.ok()) return leader.status();
  std::string request;
  EncodeFetchRequest(topic, partition, offset, max_bytes, &request);
  return network_->Call(from, net::MakeAddress(net::Tier::kKafkaBroker, leader.value()), "kafka.fetch",
                        request);
}

Result<int> ReplicatedTopicManager::FailoverDeadLeaders(
    const std::string& topic) {
  auto partitions =
      zookeeper_->GetChildren(zk_root_ + "/replicated/" + topic);
  if (!partitions.ok()) return partitions.status();
  int moved = 0;
  for (const std::string& partition_name : partitions.value()) {
    const int partition = std::atoi(partition_name.c_str());
    auto leader = LeaderOf(topic, partition);
    if (!leader.ok()) continue;
    if (BrokerAlive(leader.value())) continue;

    // Promote the most caught-up live follower.
    auto replicas = ReplicasOf(topic, partition);
    if (!replicas.ok()) continue;
    int best = -1;
    int64_t best_end = -1;
    for (int candidate : replicas.value()) {
      if (candidate == leader.value() || !BrokerAlive(candidate)) continue;
      const int64_t end = LogEndAt(candidate, topic, partition);
      if (end > best_end) {
        best_end = end;
        best = candidate;
      }
    }
    if (best < 0) continue;  // no live follower: partition stays offline
    Status s = zookeeper_->Set(PartitionPath(topic, partition) + "/leader",
                               std::to_string(best));
    if (s.ok()) ++moved;
  }
  return moved;
}

Status ReplicatedTopicManager::BeginReassignment(const std::string& topic,
                                                 int partition,
                                                 Broker* target) {
  const std::string path = PartitionPath(topic, partition);
  if (!zookeeper_->Exists(path + "/leader")) {
    return Status::NotFound("no replicated partition " + topic + "/" +
                            std::to_string(partition));
  }
  if (zookeeper_->Exists(path + "/reassign")) {
    return Status::AlreadyExists("reassignment already pending for " + topic +
                                 "/" + std::to_string(partition));
  }
  auto partitions = zookeeper_->GetChildren(zk_root_ + "/replicated/" + topic);
  if (!partitions.ok()) return partitions.status();
  // The target needs local logs before it can follow; idempotent on retry.
  Status created = target->CreateTopic(
      topic, static_cast<int>(partitions.value().size()));
  if (!created.ok() && created.code() != Code::kAlreadyExists) return created;
  auto replicas = ReplicasOf(topic, partition);
  if (!replicas.ok()) return replicas.status();
  if (std::find(replicas.value().begin(), replicas.value().end(),
                target->id()) == replicas.value().end()) {
    auto current = zookeeper_->Get(path + "/replicas");
    if (!current.ok()) return current.status();
    Status widened = zookeeper_->Set(
        path + "/replicas", current.value() + "," +
                                std::to_string(target->id()));
    if (!widened.ok()) return widened;
  }
  return zookeeper_->CreateRecursive(session_, path + "/reassign",
                                     std::to_string(target->id()),
                                     zk::CreateMode::kPersistent);
}

Result<int> ReplicatedTopicManager::ReassignmentTargetOf(
    const std::string& topic, int partition) const {
  auto target =
      zookeeper_->Get(PartitionPath(topic, partition) + "/reassign");
  if (!target.ok()) return target.status();
  return std::atoi(target.value().c_str());
}

Result<bool> ReplicatedTopicManager::TryCompleteReassignment(
    const std::string& topic, int partition) {
  auto target = ReassignmentTargetOf(topic, partition);
  if (!target.ok()) return target.status();
  auto leader = LeaderOf(topic, partition);
  if (!leader.ok()) return leader.status();
  if (leader.value() != target.value()) {
    if (!BrokerAlive(target.value())) return false;  // wait for it to return
    if (!allow_unsafe_transfer_) {
      // Follower catch-up BEFORE leadership transfer: the target must hold
      // every byte the leader has flushed, otherwise acked messages would
      // vanish at the moment of transfer (nothing ever back-fills a
      // leader). -1 (unreachable) never satisfies the gate.
      const int64_t leader_end = LogEndAt(leader.value(), topic, partition);
      const int64_t target_end = LogEndAt(target.value(), topic, partition);
      if (leader_end < 0 || target_end < leader_end) return false;
    }
    Status moved = zookeeper_->Set(PartitionPath(topic, partition) + "/leader",
                                   std::to_string(target.value()));
    if (!moved.ok()) return moved;
  }
  Status cleared =
      zookeeper_->Delete(PartitionPath(topic, partition) + "/reassign");
  if (!cleared.ok()) return cleared;
  return true;
}

Result<int64_t> ReplicaFetcher::SyncOnce(const std::string& topic,
                                         int partitions) {
  int64_t copied = 0;
  for (int p = 0; p < partitions; ++p) {
    auto leader = manager_->LeaderOf(topic, p);
    if (!leader.ok()) return leader.status();
    if (leader.value() == broker_->id()) continue;  // we lead this one

    PartitionLog* log = broker_->GetLog(topic, p);
    if (log == nullptr) continue;
    for (;;) {
      const int64_t local_end = log->end_offset();
      auto data = manager_->FetchFromLeader(
          "fetcher-" + std::to_string(broker_->id()), topic, p, local_end,
          1 << 20);
      if (!data.ok()) break;  // leader unreachable; retry next pass
      if (data.value().empty()) break;
      auto count = CountMessages(data.value());
      if (!count.ok()) return count.status();
      log->Append(data.value(), static_cast<int>(count.value()));
      log->Flush();  // followers persist immediately
      copied += static_cast<int64_t>(data.value().size());
    }
  }
  return copied;
}

}  // namespace lidi::kafka
