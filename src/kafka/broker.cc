#include "net/address.h"
#include "kafka/broker.h"

#include <cstring>

#include "common/coding.h"
#include "kafka/message.h"

namespace lidi::kafka {

namespace {

// Partition logs report their durability instruments (io.sync.count,
// io.write.failed, ...) into the broker's registry unless the caller wired
// one explicitly.
BrokerOptions WithLogMetrics(BrokerOptions options, net::Transport* network) {
  if (options.log.metrics == nullptr) options.log.metrics = network->metrics();
  return options;
}

}  // namespace

void EncodeProduceRequest(Slice topic, int partition, Slice message_set,
                          std::string* out) {
  PutLengthPrefixed(out, topic);
  PutVarint64(out, static_cast<uint64_t>(partition));
  PutLengthPrefixed(out, message_set);
}

Status DecodeProduceRequest(Slice input, std::string* topic, int* partition,
                            std::string* message_set) {
  Slice t, m;
  uint64_t p;
  if (!GetLengthPrefixed(&input, &t) || !GetVarint64(&input, &p) ||
      !GetLengthPrefixed(&input, &m)) {
    return Status::Corruption("truncated produce request");
  }
  *topic = t.ToString();
  *partition = static_cast<int>(p);
  *message_set = m.ToString();
  return Status::OK();
}

void EncodeFetchRequest(Slice topic, int partition, int64_t offset,
                        int64_t max_bytes, std::string* out) {
  PutLengthPrefixed(out, topic);
  PutVarint64(out, static_cast<uint64_t>(partition));
  PutVarint64(out, static_cast<uint64_t>(offset));
  PutVarint64(out, static_cast<uint64_t>(max_bytes));
}

Status DecodeFetchRequest(Slice input, std::string* topic, int* partition,
                          int64_t* offset, int64_t* max_bytes) {
  Slice t;
  uint64_t p, o, m;
  if (!GetLengthPrefixed(&input, &t) || !GetVarint64(&input, &p) ||
      !GetVarint64(&input, &o) || !GetVarint64(&input, &m)) {
    return Status::Corruption("truncated fetch request");
  }
  *topic = t.ToString();
  *partition = static_cast<int>(p);
  *offset = static_cast<int64_t>(o);
  *max_bytes = static_cast<int64_t>(m);
  return Status::OK();
}

Broker::Broker(int id, zk::ZooKeeper* zookeeper, net::Transport* network,
               const Clock* clock, BrokerOptions options)
    : id_(id),
      zookeeper_(zookeeper),
      network_(network),
      clock_(clock),
      options_(WithLogMetrics(std::move(options), network)),
      address_(net::MakeAddress(net::Tier::kKafkaBroker, id)),
      produce_quota_(options_.quota_produce_per_sec, options_.quota_burst),
      fetch_quota_(options_.quota_fetch_per_sec, options_.quota_burst) {
  obs::MetricsRegistry* metrics = network_->metrics();
  const obs::Labels labels{{"broker", std::to_string(id_)}};
  fetch_bytes_copied_ = metrics->GetCounter("kafka.fetch.bytes_copied", labels);
  fetch_bytes_avoided_ =
      metrics->GetCounter("kafka.fetch.bytes_avoided", labels);
  fetch_syscalls_ = metrics->GetCounter("kafka.fetch.syscalls", labels);
  fetch_count_ = metrics->GetCounter("kafka.fetch.count", labels);
  produce_count_ = metrics->GetCounter("kafka.produce.count", labels);
  produce_messages_ = metrics->GetCounter("kafka.produce.messages", labels);
  produce_bytes_ = metrics->GetCounter("kafka.produce.bytes", labels);
  quota_rejects_ = metrics->GetCounter("kafka.quota.rejects", labels);
  session_ = zookeeper_->CreateSession();
  // An unregistered broker is invisible to producers and consumers (they
  // discover brokers through these nodes) while happily serving RPCs — a
  // silent outage. The constructor cannot fail, so the status is kept and
  // the first CreateTopic retries and surfaces it.
  zk_registration_ = RegisterInZk();
  network_->Register(address_, "kafka.produce",
                     [this](Slice req) { return HandleProduce(req); });
  // Fetch serves pinned payload views (the zero-copy path); string-typed
  // callers still work through Network::Call, which materializes on demand.
  network_->RegisterPayload(address_, "kafka.fetch",
                            [this](Slice req) { return HandleFetch(req); });
  // Offset bounds: "start end" of the retained, flushed log range. Lets a
  // consumer whose offset expired under retention restart from the head.
  network_->Register(
      address_, "kafka.offset-bounds", [this](Slice req) -> Result<std::string> {
        std::string topic, ignored;
        int partition;
        Status s = DecodeProduceRequest(req, &topic, &partition, &ignored);
        if (!s.ok()) return s;
        PartitionLog* log = GetLog(topic, partition);
        if (log == nullptr) return Status::NotFound("no partition");
        return std::to_string(log->start_offset()) + " " +
               std::to_string(log->flushed_end_offset());
      });
}

Broker::~Broker() {
  network_->Unregister(address_);
  zookeeper_->CloseSession(session_);
}

void Broker::Shutdown() {
  network_->Unregister(address_);
  zookeeper_->CloseSession(session_);
}

Status Broker::RegisterInZk() {
  // AlreadyExists is success everywhere here: the skeleton is shared by all
  // brokers, and a surviving id node from this broker's previous life means
  // the advertisement clients route by is already up.
  auto tolerate_existing = [](Status s) {
    return s.code() == Code::kAlreadyExists ? Status::OK() : s;
  };
  Status reg = tolerate_existing(zookeeper_->CreateRecursive(
      session_, options_.zk_root + "/brokers/ids", "",
      zk::CreateMode::kPersistent));
  if (reg.ok()) {
    reg = tolerate_existing(zookeeper_->CreateRecursive(
        session_, options_.zk_root + "/brokers/topics", "",
        zk::CreateMode::kPersistent));
  }
  if (reg.ok()) {
    reg = tolerate_existing(zookeeper_->Create(
        session_, options_.zk_root + "/brokers/ids/" + std::to_string(id_),
        address_, zk::CreateMode::kEphemeral));
  }
  return reg;
}

Status Broker::CreateTopic(const std::string& topic, int partitions) {
  // Registration may have failed at construction (ZooKeeper unreachable);
  // the broker id node is the advertisement clients route by, so retry it
  // before advertising any topic. RPCs run outside mu_ — only the cached
  // status is read/written under the lock.
  bool need_register;
  {
    MutexLock lock(&mu_);
    need_register = !zk_registration_.ok();
  }
  if (need_register) {
    Status reg = RegisterInZk();
    MutexLock lock(&mu_);
    zk_registration_ = reg;
    if (!reg.ok()) return reg;
  }
  {
    MutexLock lock(&mu_);
    for (int p = 0; p < partitions; ++p) {
      auto key = std::make_pair(topic, p);
      if (logs_.count(key) == 0) {
        // Each partition persists under its own "<topic>-<partition>"
        // directory. Sharing the broker root would interleave the segment
        // files of different topics into one physical log — recovery would
        // then serve one topic's bytes to another's consumers.
        LogOptions log_options = options_.log;
        if (!log_options.data_dir.empty()) {
          log_options.data_dir += "/" + topic + "-" + std::to_string(p);
        }
        logs_[key] = std::make_unique<PartitionLog>(log_options, clock_);
      }
    }
  }
  // The advertisement is the topic's existence as far as clients are
  // concerned (AllPartitions reads it): a failed create must not report the
  // topic as created. AlreadyExists means it is advertised — re-creating a
  // topic (or re-advertising after restart) is idempotent success.
  Status ad = zookeeper_->CreateRecursive(
      session_,
      options_.zk_root + "/brokers/topics/" + topic + "/" + std::to_string(id_),
      std::to_string(partitions), zk::CreateMode::kEphemeral);
  return ad.code() == Code::kAlreadyExists ? Status::OK() : ad;
}

PartitionLog* Broker::GetLog(const std::string& topic, int partition) {
  MutexLock lock(&mu_);
  auto it = logs_.find({topic, partition});
  return it == logs_.end() ? nullptr : it->second.get();
}

Result<int64_t> Broker::Produce(const std::string& topic, int partition,
                                Slice message_set) {
  PartitionLog* log = GetLog(topic, partition);
  if (log == nullptr) {
    return Status::NotFound("no partition " + topic + "/" +
                            std::to_string(partition));
  }
  auto count = CountMessages(message_set);
  if (!count.ok()) return count.status();
  int64_t offset = 0;
  if (options_.log.sync == io::SyncPolicy::kAlways &&
      options_.log.group_commit) {
    // Durability-acknowledged produce: the offset is returned only after a
    // covering group sync. A failed write or sync surfaces here as an error
    // instead of a silently-volatile ack.
    auto durable = log->AppendDurable(message_set,
                                      static_cast<int>(count.value()));
    if (!durable.ok()) return durable.status();
    offset = durable.value();
  } else {
    offset = log->Append(message_set, static_cast<int>(count.value()));
  }
  produce_count_->Increment();
  produce_messages_->Add(count.value());
  produce_bytes_->Add(static_cast<int64_t>(message_set.size()));
  return offset;
}

Result<PinnedSlice> Broker::FetchPinned(const std::string& topic,
                                        int partition, int64_t offset,
                                        int64_t max_bytes) {
  PartitionLog* log = GetLog(topic, partition);
  if (log == nullptr) {
    return Status::NotFound("no partition " + topic + "/" +
                            std::to_string(partition));
  }
  int64_t gathered = 0;
  auto data = log->ReadPinned(offset, max_bytes, &gathered);
  if (!data.ok()) return data;
  const int64_t n = static_cast<int64_t>(data.value().size());

  if (options_.transfer_mode == TransferMode::kSendfile) {
    // sendfile: file channel -> socket channel. The pinned view IS the
    // response — the CPU touches no payload byte. Real sendfile still moves
    // the bytes twice by DMA (page cache -> NIC), but those are not memcpys;
    // relative to the four-copy path, two buffer copies are avoided
    // outright and two more are offloaded to hardware. A read that had to
    // gather across chunk boundaries did memcpy those bytes once; count it.
    fetch_count_->Increment();
    fetch_bytes_copied_->Add(gathered);
    fetch_bytes_avoided_->Add(4 * n);
    fetch_syscalls_->Add(1);
    return data;
  }
  // Four-copy path: perform the buffer copies for real so benches observe
  // the bandwidth cost (page cache -> app -> kernel -> socket -> NIC).
  std::string page_cache(data.value().ToString());
  std::string app_buffer(page_cache);
  std::string kernel_buffer(app_buffer);
  std::string socket_buffer(kernel_buffer);
  fetch_count_->Increment();
  fetch_bytes_copied_->Add(4 * n + gathered);
  fetch_syscalls_->Add(2);
  return PinnedSlice::Own(std::move(socket_buffer));
}

Result<std::string> Broker::Fetch(const std::string& topic, int partition,
                                  int64_t offset, int64_t max_bytes) {
  auto pinned = FetchPinned(topic, partition, offset, max_bytes);
  if (!pinned.ok()) return pinned.status();
  return pinned.value().ToString();
}

void Broker::FlushAll() {
  MutexLock lock(&mu_);
  for (auto& [key, log] : logs_) log->Flush();
}

int Broker::EnforceRetention() {
  MutexLock lock(&mu_);
  int deleted = 0;
  for (auto& [key, log] : logs_) deleted += log->DeleteExpiredSegments();
  return deleted;
}

TransferStats Broker::transfer_stats() const {
  TransferStats stats;
  stats.bytes_copied = fetch_bytes_copied_->Value();
  stats.bytes_avoided = fetch_bytes_avoided_->Value();
  stats.syscalls = fetch_syscalls_->Value();
  stats.fetches = fetch_count_->Value();
  return stats;
}

void Broker::SetQuotaEnforcing(bool enforcing) {
  produce_quota_.set_enforcing(enforcing);
  fetch_quota_.set_enforcing(enforcing);
}

int64_t Broker::quota_rejects() const { return quota_rejects_->Value(); }

Status Broker::AdmitClient(PerClientQuota* quota, const char* verb) {
  if (!quota->enabled()) return Status::OK();
  const net::Address& caller = net::CallerIdentity();
  const std::string client = caller.empty() ? "anonymous" : caller;
  if (quota->Admit(client, clock_->NowMicros())) return Status::OK();
  quota_rejects_->Increment();
  return Status::Overloaded(std::string(verb) + " quota exceeded for " +
                            client + " at " + address_);
}

Result<std::string> Broker::HandleProduce(Slice request) {
  // Quota gate first: reject-before-work, the request is not even decoded.
  Status admit = AdmitClient(&produce_quota_, "produce");
  if (!admit.ok()) return admit;
  std::string topic, message_set;
  int partition;
  Status s = DecodeProduceRequest(request, &topic, &partition, &message_set);
  if (!s.ok()) return s;
  auto offset = Produce(topic, partition, message_set);
  if (!offset.ok()) return offset.status();
  return std::to_string(offset.value());
}

Result<PinnedSlice> Broker::HandleFetch(Slice request) {
  Status admit = AdmitClient(&fetch_quota_, "fetch");
  if (!admit.ok()) return admit;
  std::string topic;
  int partition;
  int64_t offset, max_bytes;
  Status s = DecodeFetchRequest(request, &topic, &partition, &offset,
                                &max_bytes);
  if (!s.ok()) return s;
  return FetchPinned(topic, partition, offset, max_bytes);
}

}  // namespace lidi::kafka
