#ifndef LIDI_KAFKA_LOG_H_
#define LIDI_KAFKA_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace lidi::kafka {

struct LogOptions {
  /// Segment roll size ("a set of segment files of approximately the same
  /// size (e.g., 1 GB)", V.B). Tests use small values.
  int64_t segment_bytes = 1 << 20;
  /// Flush after this many appended messages...
  int flush_interval_messages = 1;
  /// ...or after this much time since the first unflushed append.
  int64_t flush_interval_ms = 1000;
  /// Time-based retention SLA (V.B: "e.g., 7 days").
  int64_t retention_ms = 7LL * 24 * 3600 * 1000;
  /// When non-empty, segments are persisted as real files under this
  /// directory ("<base offset>.log"), flushes reach the filesystem, and a
  /// new PartitionLog recovers the existing segments on construction — the
  /// durability model the paper's brokers rely on (V.B: the flush policy and
  /// the OS page cache do the heavy lifting). Empty = in-memory only.
  std::string data_dir;
};

/// The log of one topic partition (paper Section V.B, Simple storage): a
/// sequence of segment files. A producer append simply extends the last
/// segment; messages become visible to consumers only after a flush; a
/// message is addressed by its logical byte offset; the broker locates the
/// segment for a requested offset by searching the (in-memory) offset list.
///
/// Thread-safe.
class PartitionLog {
 public:
  PartitionLog(LogOptions options, const Clock* clock);

  /// Appends message-set bytes; returns the offset assigned to the first
  /// byte. The data may not be visible until a flush happens (count/time
  /// policy, or explicit Flush).
  int64_t Append(Slice message_set, int message_count);

  /// Makes everything appended so far visible to consumers.
  void Flush();

  /// Reads up to max_bytes starting at `offset`, truncated at entry
  /// boundaries, from the flushed region. An offset below start_offset()
  /// (expired) fails NotFound; an offset at or past the flushed end returns
  /// an empty string (nothing new yet); an offset that is not an entry
  /// boundary fails InvalidArgument.
  Result<std::string> Read(int64_t offset, int64_t max_bytes) const;

  /// Deletes whole segments whose newest append is older than the retention
  /// SLA. Returns segments deleted.
  int DeleteExpiredSegments();

  int64_t start_offset() const;      // oldest retained offset
  int64_t flushed_end_offset() const;  // first offset not yet readable
  int64_t end_offset() const;        // next offset to be assigned
  int segment_count() const;

 private:
  struct Segment {
    int64_t base_offset = 0;
    std::string data;
    int64_t last_append_ms = 0;
    /// Bytes already written to the segment file (persistent mode).
    int64_t persisted_bytes = 0;
  };

  void MaybeFlushLocked();
  void RecoverFromDiskLocked();
  void PersistUpToLocked(int64_t flushed_end);
  std::string SegmentPath(int64_t base_offset) const;

  const LogOptions options_;
  const Clock* const clock_;
  mutable std::mutex mu_;
  std::deque<Segment> segments_;
  int64_t flushed_end_ = 0;
  int unflushed_messages_ = 0;
  int64_t first_unflushed_ms_ = 0;
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_LOG_H_
