#ifndef LIDI_KAFKA_LOG_H_
#define LIDI_KAFKA_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/sync.h"
#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/arena.h"
#include "io/file.h"
#include "io/group_commit.h"
#include "io/submission_queue.h"
#include "obs/metrics.h"

namespace lidi::kafka {

struct LogOptions {
  /// Segment roll size ("a set of segment files of approximately the same
  /// size (e.g., 1 GB)", V.B). Tests use small values.
  int64_t segment_bytes = 1 << 20;
  /// Flush after this many appended messages...
  int flush_interval_messages = 1;
  /// ...or after this much time since the first unflushed append.
  int64_t flush_interval_ms = 1000;
  /// Time-based retention SLA (V.B: "e.g., 7 days").
  int64_t retention_ms = 7LL * 24 * 3600 * 1000;
  /// When non-empty, segments are persisted as real files under this
  /// directory ("<base offset>.log"), flushes reach the filesystem, and a
  /// new PartitionLog recovers the existing segments on construction — the
  /// durability model the paper's brokers rely on (V.B: the flush policy and
  /// the OS page cache do the heavy lifting). Empty = in-memory only.
  std::string data_dir;
  /// Filesystem the persistent mode writes through; null = the process-wide
  /// fd-based POSIX fs. Tests inject io::MemFs / io::FaultFs here.
  io::Fs* fs = nullptr;
  /// When accepted bytes are pushed to stable storage (fdatasync): never
  /// (page cache only, the paper's default stance), every
  /// `sync_interval_bytes`, or on every flush. Only synced bytes advance
  /// durable_end_offset() — the crash-survival promise.
  io::SyncPolicy sync = io::SyncPolicy::kNever;
  int64_t sync_interval_bytes = 1 << 20;
  /// Registry for the durability instruments ("io.sync.count",
  /// "io.write.failed", "io.recovery.torn_truncations", and under group
  /// commit "io.group_commit.leader_syncs" / "io.group_commit.piggybacked" /
  /// "io.sync.batch_msgs", labeled layer=kafka.log). Null = not
  /// instrumented.
  obs::MetricsRegistry* metrics = nullptr;
  /// Group commit (persistent kAlways only): durability acks go through
  /// AppendDurable — the first appender becomes the sync leader and its one
  /// fdatasync covers every append staged before it; the rest park on a
  /// condvar (io/group_commit.h). Flushes under this mode write but do not
  /// sync; only the group leader syncs, so N concurrent producers pay ~1
  /// fdatasync per batch instead of N. Off = every flush pays its own sync
  /// inline (the historical behavior).
  bool group_commit = false;
  /// Pending bytes that make a lingering group leader sync immediately.
  int64_t group_max_batch_bytes = 1 << 20;
  /// How long a group leader lingers for joiners (0 = sync immediately).
  int64_t group_max_wait_ms = 0;
};

/// The log of one topic partition (paper Section V.B, Simple storage): a
/// sequence of segment files. A producer append simply extends the last
/// segment; messages become visible to consumers only after a flush; a
/// message is addressed by its logical byte offset; the broker locates the
/// segment for a requested offset by searching the (in-memory) offset list.
///
/// Storage model (zero-copy read path): the flushed region of every segment
/// is a list of immutable refcounted chunk Buffers, each sealed at a message
/// entry boundary; unflushed bytes live in a writer-private tail. Readers
/// never take the writer mutex — they load the atomic flushed frontier, copy
/// the published snapshot pointer under a micro-mutex that guards only that
/// pointer, and serve PinnedSlices straight out of the sealed chunks (the
/// in-process analogue of Kafka handing the page cache to sendfile, V.B).
/// Appends, flushes and the retention janitor serialize on the writer mutex;
/// a reader holding a PinnedSlice keeps its chunk alive after the janitor
/// drops the segment.
///
/// Thread-safe.
class PartitionLog {
 public:
  PartitionLog(LogOptions options, const Clock* clock);

  /// Appends message-set bytes; returns the offset assigned to the first
  /// byte. The data may not be visible until a flush happens (count/time
  /// policy, or explicit Flush).
  int64_t Append(Slice message_set, int message_count);

  /// Appends message-set bytes and returns the assigned offset only once
  /// the durability the sync policy promises actually holds for them:
  /// under kAlways the entry is covered by a successful fdatasync, under
  /// the other policies it is at least accepted by the fs and consumer-
  /// visible. In group-commit mode the writer lock is NOT held across the
  /// sync — the caller stages its bytes, then parks on the group committer
  /// until a leader's covering sync acknowledges them. An error means the
  /// append was NOT acknowledged; the bytes may still surface after a later
  /// flush (the same indeterminacy a client that crashed before its ack
  /// observes), but no acknowledged write is ever lost.
  Result<int64_t> AppendDurable(Slice message_set, int message_count);

  /// Makes everything appended so far visible to consumers. In group-commit
  /// mode also requests a covering group sync (kAlways flushes stay
  /// durable for legacy callers), best-effort — durability failures surface
  /// through AppendDurable, which is the acknowledged path.
  void Flush();

  /// Zero-copy read: up to max_bytes starting at `offset`, truncated at
  /// entry boundaries (always at least one whole entry when any is
  /// available), from the flushed region. When a single sealed chunk
  /// satisfies the request — the common case — the returned PinnedSlice is
  /// a view into it and no byte is copied; the slice shares ownership of
  /// the chunk, so it remains valid after retention deletes the segment. A
  /// request straddling chunk (or segment) boundaries is gathered into a
  /// fresh owned buffer; when `gathered_bytes` is non-null it receives the
  /// number of bytes memcpy'd that way (0 on the zero-copy path), which the
  /// broker's transfer accounting reports.
  ///
  /// Errors: an offset below start_offset() (expired) fails NotFound; an
  /// offset past end_offset() fails InvalidArgument; an offset that is not
  /// an entry boundary fails InvalidArgument. An empty result means nothing
  /// new at that offset yet.
  ///
  /// Never blocks on appenders, flush I/O, or the janitor: the only lock
  /// taken is the snapshot micro-mutex, held for a pointer copy.
  Result<PinnedSlice> ReadPinned(int64_t offset, int64_t max_bytes,
                                 int64_t* gathered_bytes = nullptr) const;

  /// Copying convenience wrapper over ReadPinned (legacy API): same
  /// semantics, materializes the bytes into a std::string.
  Result<std::string> Read(int64_t offset, int64_t max_bytes) const;

  /// Deletes whole segments whose newest append is older than the retention
  /// SLA. Returns segments deleted. In-flight PinnedSlices keep their
  /// chunk's memory alive; subsequent reads at deleted offsets fail
  /// NotFound.
  int DeleteExpiredSegments();

  int64_t start_offset() const;        // oldest retained offset
  int64_t flushed_end_offset() const;  // first offset not yet readable
  int64_t end_offset() const;          // next offset to be assigned
  int segment_count() const;

  /// First offset NOT covered by a successful fdatasync — the byte boundary
  /// the log promises survives a crash. Advances per the sync policy; in
  /// in-memory mode (no data_dir) it tracks flushed_end_offset(), there
  /// being no crash to survive. Everything below it is also flushed:
  /// durable_end_offset() <= flushed_end_offset().
  int64_t durable_end_offset() const;

  /// Non-OK when constructor-time recovery hit a problem it could not mend
  /// silently: an unreadable segment file (recovery stops there; later
  /// segment files are renamed aside to "<name>.orphan" so appends can
  /// never collide with them) or a torn tail whose on-disk truncation
  /// failed (that segment is sealed; appends move to a fresh file).
  Status recovery_status() const;

 private:
  /// Writer-side segment state, guarded by mu_. `sealed` chunks are
  /// immutable and shared with reader snapshots; `tail` holds unflushed
  /// bytes no reader can observe.
  struct Segment {
    int64_t base_offset = 0;
    std::vector<BufferRef> sealed;
    int64_t sealed_bytes = 0;
    std::string tail;
    int64_t last_append_ms = 0;
    /// Bytes the filesystem accepted into the segment file (persistent
    /// mode). Advances only by what WritableFile::Append reports accepted —
    /// a failed or short write leaves it honest.
    int64_t persisted_bytes = 0;
    /// Prefix of persisted_bytes covered by a successful Sync.
    int64_t synced_bytes = 0;
    /// Cached append handle for the segment file, opened on first persist
    /// and kept until the segment is deleted (the historical open/append/
    /// close per flush was pure overhead). shared_ptr so a group leader can
    /// sync it outside mu_ while the janitor races a retention delete.
    std::shared_ptr<io::WritableFile> file;

    int64_t size() const {
      return sealed_bytes + static_cast<int64_t>(tail.size());
    }
  };

  /// Immutable reader view of one segment's flushed chunks. chunk_end[i] is
  /// the cumulative size of chunks [0..i], relative to base_offset.
  struct ReaderSegment {
    int64_t base_offset = 0;
    std::vector<BufferRef> chunks;
    std::vector<int64_t> chunk_end;
  };
  using Snapshot = std::vector<std::shared_ptr<const ReaderSegment>>;

  /// One chunk-bounded pinned read: never copies, never crosses a sealed
  /// chunk boundary. ReadPinned chains these, gathering only when needed.
  Result<PinnedSlice> ReadPinnedChunk(int64_t offset, int64_t max_bytes) const;

  std::shared_ptr<const Snapshot> LoadSnapshot() const LIDI_EXCLUDES(snapshot_mu_);
  int64_t AppendLocked(Slice message_set, int message_count)
      LIDI_REQUIRES(mu_);
  void MaybeFlushLocked() LIDI_REQUIRES(mu_);
  void FlushLocked() LIDI_REQUIRES(mu_);
  void SealTailLocked(Segment* segment) LIDI_REQUIRES(mu_);
  void PublishSnapshotLocked() LIDI_REQUIRES(mu_);
  void RecoverFromDiskLocked() LIDI_REQUIRES(mu_);
  void PersistSealedLocked() LIDI_REQUIRES(mu_);
  /// Opens (and caches) the segment's append handle. Null on open failure.
  io::WritableFile* SegmentFileLocked(Segment* segment) LIDI_REQUIRES(mu_);
  /// Group-commit SyncFn: snapshots the fully-persisted-but-unsynced
  /// segments under mu_, fdatasyncs them with mu_ RELEASED (appenders keep
  /// staging), then re-locks to advance synced/durable frontiers. Returns
  /// the new durable end offset.
  Result<int64_t> GroupSyncNow() LIDI_EXCLUDES(mu_);
  bool group_mode() const { return group_ != nullptr; }
  std::string SegmentPath(int64_t base_offset) const;
  /// End of the contiguous prefix of the log the fs accepted (synced=false)
  /// or fdatasync'ed (synced=true): stops at the first segment whose
  /// persisted/synced bytes trail its sealed bytes.
  int64_t ContiguousEndLocked(bool synced) const LIDI_REQUIRES(mu_);

  const LogOptions options_;
  const Clock* const clock_;
  /// Null in in-memory mode; otherwise options_.fs or the default POSIX fs.
  io::Fs* const fs_;
  /// Durability instruments (null when options_.metrics is null).
  obs::Counter* sync_count_ = nullptr;
  obs::Counter* write_failed_ = nullptr;
  obs::Counter* torn_truncations_ = nullptr;
  /// Non-null exactly when group commit is active (persistent + kAlways +
  /// options_.group_commit).
  // tsa-ok: set once during construction; the committer is internally
  // synchronized (its own leaf lock).
  std::unique_ptr<io::GroupCommitter> group_;

  /// Writer lock: appends, flush policy, persistence, retention. Readers do
  /// not take it. Ordered before the snapshot micro-mutex (publishing takes
  /// both, writer first).
  mutable Mutex mu_{"kafka.log.writer", lockrank::kKafkaLogWriter};
  Status recovery_status_ LIDI_GUARDED_BY(mu_);
  std::deque<Segment> segments_ LIDI_GUARDED_BY(mu_);
  int unflushed_messages_ LIDI_GUARDED_BY(mu_) = 0;
  int64_t first_unflushed_ms_ LIDI_GUARDED_BY(mu_) = 0;
  /// Accepted-but-unsynced bytes across all segments (drives kInterval).
  int64_t unsynced_bytes_ LIDI_GUARDED_BY(mu_) = 0;
  /// Scratch slab for the seal-merge path (chunk coalescing re-copies bytes
  /// O(log segment) times; the arena keeps those staging buffers off the
  /// allocator on the flush-per-append hot path).
  io::RecordArena arena_ LIDI_GUARDED_BY(mu_);
  /// Staging rings for persist writes (deterministic simulated backend;
  /// linked-chain semantics keep multi-chunk persists hole-free).
  io::SubmissionQueue sq_ LIDI_GUARDED_BY(mu_);

  /// Reader-visible state. Writers publish the snapshot before advancing
  /// flushed_end_ (release), and readers load flushed_end_ (acquire) before
  /// the snapshot, so a reader's snapshot always covers everything below the
  /// frontier it saw. snapshot_mu_ guards only the shared_ptr copy — it is
  /// never held across I/O, appends, or chunk scans, so readers cannot be
  /// blocked behind writers (std::atomic<shared_ptr> would express this
  /// directly, but libstdc++'s spinlock implementation releases with a
  /// relaxed RMW, which thread sanitizer rejects under the strict
  /// happens-before model).
  mutable Mutex snapshot_mu_{"kafka.log.snapshot",
                             lockrank::kKafkaLogSnapshot};
  std::shared_ptr<const Snapshot> snapshot_ LIDI_GUARDED_BY(snapshot_mu_);
  std::atomic<int64_t> flushed_end_{0};
  std::atomic<int64_t> durable_end_{0};
  std::atomic<int64_t> end_offset_{0};
};

}  // namespace lidi::kafka

#endif  // LIDI_KAFKA_LOG_H_
